//! Determinism-under-telemetry tests: the engine counters are write-only
//! state, so sampling them must not move a single simulated bit.
//!
//! The digest suite (`tests/digest.rs`) and the replay-parity suite
//! (`tests/replay.rs`) already run with the `telemetry` feature on (it is
//! a default feature of `fireguard-soc`), and their goldens were pinned
//! *before* the counters existed — so every green run of those suites is
//! itself an enabled-vs-pre-telemetry bit-equality proof. The tests here
//! close the remaining gaps: the instrumented entry point returns the
//! same `RunResult` as the plain one, the counters agree with the run
//! they observed, and CI additionally compiles + tests `fireguard-soc`
//! with `--no-default-features` to prove the increments compile away
//! cleanly.

use fireguard::kernels::KernelId;
use fireguard::soc::{
    experiments::run_fireguard_telemetry, run_fireguard, ExperimentConfig, MAX_ENGINES,
};
use fireguard::trace::{AttackKind, AttackPlan};

fn insts() -> u64 {
    // FG_INSTS keeps this aligned with the CI smoke budget.
    std::env::var("FG_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

fn attack_cfg(workload: &str, n: u64) -> ExperimentConfig {
    let plan = AttackPlan::campaign(
        &[AttackKind::RetHijack],
        6,
        n / 10,
        n.saturating_sub(n / 5),
        3,
    );
    ExperimentConfig::new(workload)
        .kernel(KernelId::SHADOW_STACK, 4)
        .insts(n)
        .attacks(plan)
}

/// The instrumented entry point returns a `RunResult` bit-identical to
/// the plain one — `Debug` formatting prints the shortest round-trip
/// representation of every `f64`, so equal strings ⇔ equal bits.
#[test]
fn instrumented_run_is_bit_identical_to_plain_run() {
    let n = insts();
    for w in fireguard::soc::experiments::workloads() {
        let cfg = attack_cfg(w, n);
        let plain = run_fireguard(&cfg);
        let (instrumented, counters, _slots) = run_fireguard_telemetry(&cfg);
        assert_eq!(
            format!("{plain:?}"),
            format!("{instrumented:?}"),
            "{w}: counter sampling perturbed the simulation"
        );
        assert!(counters.slow_edges > 0, "{w}: no slow edges sampled");
    }
}

/// The counters describe the run they observed: the packet tallies match
/// the `RunResult`'s, per-kernel alarm tallies partition the detection
/// set, and the per-class tallies partition the packets.
#[test]
fn counters_are_consistent_with_the_run() {
    let cfg = attack_cfg("dedup", insts());
    let (result, counters, slots) = run_fireguard_telemetry(&cfg);

    assert_eq!(counters.packets, result.packets, "filter packet tally");
    assert_eq!(
        counters.class_packets.iter().sum::<u64>(),
        result.packets,
        "per-class tallies partition the packet stream"
    );
    assert_eq!(
        counters.kernel_alarms.iter().sum::<u64>(),
        result.detections.len() as u64,
        "per-kernel alarm tallies partition the detection set"
    );
    // Single-kernel deployment: every alarm belongs to the one slot.
    assert_eq!(slots.len(), 1);
    let (slot, id) = slots[0];
    assert_eq!(id, KernelId::SHADOW_STACK);
    assert!(slot < MAX_ENGINES);
    assert_eq!(counters.kernel_alarms[slot], result.detections.len() as u64);
    assert!(
        counters.kernel_packets[slot] > 0,
        "the deployed kernel saw packets"
    );
    assert!(
        counters.kernel_verdicts[slot] >= counters.kernel_alarms[slot],
        "verdict bits at least cover the alarms"
    );
    assert!(counters.ucore_retired > 0, "µcores retired instructions");
    assert!(
        counters.cache_hits + counters.cache_misses > 0,
        "µcore data caches saw accesses"
    );
    assert!(
        counters.filter_ring_hwm > 0,
        "the filter ring high-water mark moved"
    );
}

/// Counter sampling composes with the digest/replay determinism contract
/// transitively; this pins the cheapest end-to-end corner of it — two
/// instrumented runs of the same config are themselves bit-identical
/// (no hidden wall-clock or allocation dependence in the sampled state).
#[test]
fn instrumented_runs_are_reproducible() {
    let cfg = attack_cfg("ferret", insts());
    let (r1, c1, _) = run_fireguard_telemetry(&cfg);
    let (r2, c2, _) = run_fireguard_telemetry(&cfg);
    assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    assert_eq!(c1, c2, "counters diverged across identical runs");
}
