//! Pipeline-width parity suite: `--pipeline N` is a pure throughput knob.
//!
//! The in-session pipeline (`fireguard-soc::pipeline`) moves trace
//! generation and verdict judging onto worker threads, but every stage
//! preserves [`BATCH_EVENTS`] batch boundaries and seq order, so cycles,
//! packets, detections and replays must be **bit-identical** at every
//! width. This suite pins that contract from the outside:
//!
//! 1. Every PARSEC workload produces a `Debug`-equal [`RunResult`]
//!    (every `f64` bit-exact) at serial, threaded and auto widths.
//! 2. An attacked run — detections live, verdict bits past the v1
//!    nibble exercised — is width-invariant too.
//! 3. `.fgt`-style replay (`run_fireguard_events`) over one captured
//!    event vector reproduces the same result at every width.
//! 4. A property test: seq-ordered commit through the [`VerdictWindow`]
//!    over *randomized* batch sizes, worker lead and refusal retries
//!    reproduces the serial per-event judging order exactly. This is the
//!    determinism argument of the pipeline reduced to its kernel: any
//!    interleaving the worker stages can produce is some schedule of
//!    "push a judged chunk" / "commit the next event", and all such
//!    schedules commit the same (seq, verdict) sequence.
//!
//! The pipeline's stall counters are deliberately *not* compared
//! anywhere here: they count spin iterations against ring backpressure
//! and are wall-clock artifacts, not simulation outputs.

use fireguard::kernels::KernelId;
use fireguard::soc::pipeline::fresh_judges;
use fireguard::soc::{
    baseline_cycles, capture_events, run_fireguard, run_fireguard_events, EngineConfig,
    ExperimentConfig, VerdictWindow,
};
use fireguard::trace::{
    AttackPlan, EventBatch, TraceGenerator, TraceInst, WorkloadProfile, BATCH_EVENTS,
    PARSEC_WORKLOADS,
};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Commit budget for the per-workload benign sweep (batch boundaries are
/// straddled many times over at 256 events per batch).
const BENIGN_INSTS: u64 = 3_000;
/// Commit budget for the attacked runs — long enough that dedup's first
/// frees land inside the attack window (see `tests/conformance.rs`).
const ATTACKED_INSTS: u64 = 36_000;

/// Threaded widths under test: both pipeline shapes (2 = gen+judge ∥
/// core, 3 = gen ∥ judge ∥ core), a clamped over-ask (4 → 3), and auto
/// (0), which must be parity-safe whatever the host resolves it to.
const WIDTHS: [u32; 4] = [2, 3, 4, 0];

/// The four paper kernels on a workload at a given pipeline width.
fn paper_cfg(workload: &str, insts: u64, pipeline: u32) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(workload)
        .insts(insts)
        .pipeline(pipeline);
    cfg.kernels = vec![
        (KernelId::PMC, EngineConfig::Ucores(2)),
        (KernelId::SHADOW_STACK, EngineConfig::Ucores(2)),
        (KernelId::ASAN, EngineConfig::Ucores(2)),
        (KernelId::UAF, EngineConfig::Ucores(2)),
    ];
    cfg
}

/// An attacked all-kinds dedup experiment at a given width: detections
/// (including verdict bits ≥ 4) must be width-invariant, not just the
/// benign counters.
fn attacked_cfg(pipeline: u32) -> ExperimentConfig {
    let kinds: Vec<_> = {
        let mut v: Vec<_> = fireguard::kernels::registry()
            .iter()
            .flat_map(|s| s.detects().iter().copied())
            .collect();
        v.sort_unstable_by_key(|k| format!("{k:?}"));
        v.dedup();
        v
    };
    let plan = AttackPlan::campaign(
        &kinds,
        24,
        ATTACKED_INSTS / 2,
        ATTACKED_INSTS - ATTACKED_INSTS / 10,
        5,
    );
    let mut cfg = ExperimentConfig::new("dedup")
        .insts(ATTACKED_INSTS)
        .attacks(plan)
        .pipeline(pipeline);
    cfg.kernels = fireguard::kernels::registry()
        .iter()
        .map(|s| (s.id(), EngineConfig::Ucores(2)))
        .collect();
    cfg
}

#[test]
fn every_workload_is_bit_identical_at_every_width() {
    for profile in PARSEC_WORKLOADS {
        let workload = profile.name;
        let serial = format!("{:?}", run_fireguard(&paper_cfg(workload, BENIGN_INSTS, 1)));
        for width in WIDTHS {
            let threaded = format!(
                "{:?}",
                run_fireguard(&paper_cfg(workload, BENIGN_INSTS, width))
            );
            assert_eq!(
                serial, threaded,
                "{workload}: --pipeline {width} diverged from serial"
            );
        }
    }
}

#[test]
fn attacked_detections_are_width_invariant() {
    let serial = run_fireguard(&attacked_cfg(1));
    assert!(!serial.detections.is_empty(), "campaign must detect");
    assert!(
        serial.detections.iter().any(|d| d.kernel_slot >= 4),
        "verdict bits past the v1 nibble must be live"
    );
    let serial = format!("{serial:?}");
    for width in WIDTHS {
        let threaded = format!("{:?}", run_fireguard(&attacked_cfg(width)));
        assert_eq!(serial, threaded, "--pipeline {width} diverged under attack");
    }
}

#[test]
fn replay_is_bit_identical_at_every_width() {
    let cfg = attacked_cfg(1);
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let events = capture_events(&cfg);
    let serial = format!("{:?}", run_fireguard_events(&cfg, events.clone(), base));
    for width in WIDTHS {
        let replayed = run_fireguard_events(&attacked_cfg(width), events.clone(), base);
        assert_eq!(
            serial,
            format!("{replayed:?}"),
            "replay at --pipeline {width} diverged from serial replay"
        );
    }
}

// ---- seq-ordered commit property ------------------------------------------

const KERNELS: &[KernelId] = &[
    KernelId::PMC,
    KernelId::SHADOW_STACK,
    KernelId::ASAN,
    KernelId::UAF,
];

/// Serial per-event judging of `events`: the reference commit stream.
fn serial_reference(events: &[TraceInst]) -> Vec<(u64, u8)> {
    let mut judges = fresh_judges(KERNELS);
    events
        .iter()
        .map(|t| {
            let mut v = 0u8;
            for (vbit, sem) in judges.iter_mut() {
                if sem.judge(t) {
                    v |= 1 << *vbit;
                }
            }
            (t.seq, v)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any schedule of judged-chunk pushes and per-event commits over the
    /// [`VerdictWindow`] — randomized chunk sizes (1..=2 batches), a
    /// randomized push-vs-commit interleaving (the worker lead), and
    /// randomized refusal retries (commit re-reading a verdict without
    /// consuming it) — reproduces the serial per-event judging order
    /// exactly.
    #[test]
    fn seq_ordered_commit_reproduces_serial_order(
        chunks in proptest::collection::vec(1usize..=2 * BATCH_EVENTS, 1..24),
        lead in proptest::collection::vec(any::<bool>(), 1..96),
        retries in proptest::collection::vec(0usize..3, 1..32),
        seed in 0u64..1_000,
    ) {
        let n: usize = chunks.iter().sum();
        let events: Vec<TraceInst> =
            TraceGenerator::new(WorkloadProfile::parsec("dedup").unwrap(), seed)
                .take(n)
                .collect();
        let want = serial_reference(&events);

        // The judging side: batched judging over the randomized chunk
        // sizes, pushed into the window in seq order — exactly what
        // `JudgedTrace`/`PipelinedTrace` do per batch.
        let mut judges = fresh_judges(KERNELS);
        let mut src = events.iter().copied();
        let mut batch = EventBatch::with_capacity(2 * BATCH_EVENTS);
        let mut window = VerdictWindow::new();
        let mut pending: VecDeque<TraceInst> = VecDeque::new();
        let mut got: Vec<(u64, u8)> = Vec::with_capacity(n);
        let mut chunk_it = chunks.iter();
        let mut li = 0usize;
        let mut ri = 0usize;

        // Interleave "judge+push next chunk" with "commit next event"
        // according to the randomized lead schedule, then drain.
        loop {
            // Push when the schedule says so, or when the commit side has
            // nothing pending (the core blocks on the ring until the
            // judging side produces — it can never run ahead of it).
            let push_next = lead[li % lead.len()] || pending.is_empty();
            li += 1;
            if push_next {
                if let Some(&c) = chunk_it.next() {
                    batch.refill(&mut src, c);
                    let mut out = std::mem::take(&mut batch.verdicts);
                    for (vbit, sem) in judges.iter_mut() {
                        sem.judge_batch(&batch, *vbit, &mut out);
                    }
                    batch.verdicts = out;
                    window.push_judged(batch.events(), &batch.verdicts);
                    pending.extend(batch.events().iter().copied());
                    continue;
                }
            }
            let Some(t) = pending.pop_front() else {
                break; // chunks exhausted and everything committed
            };
            // A refused offer re-reads the same verdict next cycle
            // without consuming it; the retry must be idempotent.
            let v = window.verdict_for(t.seq);
            for _ in 0..retries[ri % retries.len()] {
                prop_assert_eq!(window.verdict_for(t.seq), v, "retry changed the verdict");
            }
            ri += 1;
            window.consume(t.seq);
            got.push((t.seq, v));
        }

        prop_assert_eq!(got, want);
        prop_assert!(window.is_empty(), "every judged verdict was consumed");
    }
}
