//! Golden replay-parity tests: for every workload profile, recording a
//! trace through the `.fgt` codec and replaying it must produce a
//! `RunResult` **byte-identical** to in-process generation — the
//! determinism contract behind `fireguard trace record | replay` and the
//! streaming service.
//!
//! The comparison goes through `Debug` formatting, which for `f64` prints
//! the shortest round-trip representation: equal strings ⇔ equal bits for
//! every scalar, including `slowdown` and each detection latency.

use fireguard::soc::{
    baseline_cycles, capture_events, run_fireguard, run_fireguard_events, ExperimentConfig,
};
use fireguard::trace::codec::{read_trace, write_trace, TraceMeta};
use fireguard::trace::{AttackKind, AttackPlan};
use fireguard_kernels::KernelId;

fn insts() -> u64 {
    // FG_INSTS keeps this aligned with the CI smoke budget.
    std::env::var("FG_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

/// Record → encode → decode → replay, asserting bit-exact equality with
/// the equivalent in-process run.
fn assert_replay_parity(cfg: &ExperimentConfig) {
    let offline = run_fireguard(cfg);
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let events = capture_events(cfg);
    let meta = TraceMeta {
        workload: cfg.workload.clone(),
        seed: cfg.seed,
        insts: cfg.insts,
        baseline_cycles: base,
        events: events.len() as u64,
    };
    // Round-trip through the codec, exactly as `trace record`/`replay` do.
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &meta, &events).expect("encode");
    let (meta2, events2) = read_trace(&mut bytes.as_slice()).expect("decode");
    assert_eq!(meta2, meta);
    assert_eq!(events2, events, "{}: codec round-trip", cfg.workload);

    let replayed = run_fireguard_events(cfg, events2, meta2.baseline_cycles);
    assert_eq!(
        format!("{offline:?}"),
        format!("{replayed:?}"),
        "{}: replayed RunResult diverged from in-process generation",
        cfg.workload
    );
}

#[test]
fn replay_parity_for_every_workload_profile() {
    let n = insts();
    for w in fireguard::soc::experiments::workloads() {
        let cfg = ExperimentConfig::new(w).kernel(KernelId::ASAN, 4).insts(n);
        assert_replay_parity(&cfg);
    }
}

#[test]
fn replay_parity_under_an_attack_campaign() {
    let n = insts().max(2_000);
    let plan = AttackPlan::campaign(
        &[AttackKind::RetHijack, AttackKind::OutOfBounds],
        6,
        n / 10,
        n - n / 5,
        3,
    );
    let cfg = ExperimentConfig::new("ferret")
        .kernel(KernelId::SHADOW_STACK, 2)
        .kernel(KernelId::ASAN, 2)
        .insts(n)
        .attacks(plan);
    assert_replay_parity(&cfg);
}

#[test]
fn replay_parity_with_a_hardware_accelerator() {
    let n = insts();
    let cfg = ExperimentConfig::new("streamcluster")
        .kernel_ha(KernelId::SHADOW_STACK)
        .insts(n)
        .mapper_width(2);
    assert_replay_parity(&cfg);
}
