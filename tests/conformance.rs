//! Registry-wide kernel-conformance suite.
//!
//! Every kernel registered in `fireguard_kernels::registry()` — the four
//! paper kernels *and* anything landed since — must honour the same
//! contract, with no per-kernel special cases in this file:
//!
//! 1. **Benign silence** — a clean trace produces zero detections.
//! 2. **Attack sensitivity** — an injected campaign of the attack kinds
//!    the kernel declares via `KernelSpec::detects` produces detections.
//! 3. **Determinism** — re-running the identical attacked experiment
//!    yields a bit-identical `RunResult` (`Debug`-equal, so every `f64`
//!    matches to the bit).
//! 4. **Replay parity** — recording the commit stream and replaying it
//!    through `run_fireguard_events` reproduces the in-process result
//!    bit-for-bit.
//!
//! Because the suite is driven off the registry, a new plugin is covered
//! the moment it is registered — there is no second list to update.
//!
//! A fifth axis exercises **all registered kernels at once** — the
//! packet-layout-v2 deployment, with verdict bits past the old 4-bit
//! nibble live — through the same benign / attacked / deterministic /
//! replay contract, plus per-slot verdict attribution.
//!
//! A sixth axis pins the data-oriented hot path: every registered
//! kernel's `Semantics::judge_batch` (the batched, possibly column-scan
//! override) must be bit-identical to per-event `judge` over an attacked
//! commit stream — the contract the pipeline's width-parity guarantee
//! rests on.

use fireguard::kernels::registry;
use fireguard::soc::{
    baseline_cycles, capture_events, run_fireguard, run_fireguard_events, ExperimentConfig,
};
use fireguard::trace::{AttackPlan, EventBatch, BATCH_EVENTS};

/// Commit budget for the attacked runs. Long enough that dedup's first
/// frees (allocation lifetime ~30k instructions) land inside the attack
/// window, so UaF-style campaigns materialise.
const ATTACKED_INSTS: u64 = 36_000;
/// Commit budget for the benign runs.
const BENIGN_INSTS: u64 = 30_000;

/// The attacked experiment for one kernel: its declared attack kinds,
/// injected into dedup's allocation-heavy stream late enough that every
/// kind is feasible.
fn attacked_experiment(spec: &dyn fireguard::kernels::KernelSpec) -> ExperimentConfig {
    let plan = AttackPlan::campaign(
        spec.detects(),
        24,
        ATTACKED_INSTS / 2,
        ATTACKED_INSTS - ATTACKED_INSTS / 10,
        5,
    );
    let mut cfg = ExperimentConfig::new("dedup")
        .insts(ATTACKED_INSTS)
        .attacks(plan);
    cfg.kernels = vec![(spec.id(), fireguard::soc::EngineConfig::Ucores(4))];
    cfg
}

/// The attacked experiment with **every** registered kernel deployed at
/// once: the union of all declared attack kinds, one engine pair per
/// kernel (the registry currently holds 6 kernels → 12 engines).
fn all_kernels_experiment() -> ExperimentConfig {
    let kinds: Vec<_> = {
        let mut v: Vec<_> = registry()
            .iter()
            .flat_map(|s| s.detects().iter().copied())
            .collect();
        v.sort_unstable_by_key(|k| format!("{k:?}"));
        v.dedup();
        v
    };
    let plan = AttackPlan::campaign(
        &kinds,
        24,
        ATTACKED_INSTS / 2,
        ATTACKED_INSTS - ATTACKED_INSTS / 10,
        5,
    );
    let mut cfg = ExperimentConfig::new("dedup")
        .insts(ATTACKED_INSTS)
        .attacks(plan);
    cfg.kernels = registry()
        .iter()
        .map(|s| (s.id(), fireguard::soc::EngineConfig::Ucores(2)))
        .collect();
    cfg
}

#[test]
fn benign_traces_raise_zero_detections_for_every_kernel() {
    for &spec in registry() {
        let mut cfg = ExperimentConfig::new("dedup").insts(BENIGN_INSTS);
        cfg.kernels = vec![(spec.id(), fireguard::soc::EngineConfig::Ucores(4))];
        let r = run_fireguard(&cfg);
        assert!(
            r.detections.is_empty(),
            "{}: {} detections on a clean trace",
            spec.name(),
            r.detections.len()
        );
        assert!(r.committed >= BENIGN_INSTS, "{}", spec.name());
        assert_eq!(
            r.unclaimed_packets,
            0,
            "{}: unsubscribed packets",
            spec.name()
        );
    }
}

#[test]
fn injected_campaigns_are_detected_by_every_kernel() {
    for &spec in registry() {
        let cfg = attacked_experiment(spec);
        let r = run_fireguard(&cfg);
        assert!(
            !r.detections.is_empty(),
            "{}: campaign of {:?} raised no detections",
            spec.name(),
            spec.detects()
        );
        // Latencies of ground-truth attack detections are physical.
        for l in r.attack_latencies_ns() {
            assert!(
                l > 0.0 && l < 1e6,
                "{}: implausible detection latency {l} ns",
                spec.name()
            );
        }
    }
}

#[test]
fn attacked_runs_are_deterministic_across_reruns_for_every_kernel() {
    for &spec in registry() {
        let cfg = attacked_experiment(spec);
        let a = run_fireguard(&cfg);
        let b = run_fireguard(&cfg);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{}: rerun diverged",
            spec.name()
        );
    }
}

#[test]
fn replay_is_byte_identical_for_every_kernel() {
    for &spec in registry() {
        let cfg = attacked_experiment(spec);
        let offline = run_fireguard(&cfg);
        let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
        let events = capture_events(&cfg);
        let replayed = run_fireguard_events(&cfg, events, base);
        assert_eq!(
            format!("{offline:?}"),
            format!("{replayed:?}"),
            "{}: replay diverged from in-process generation",
            spec.name()
        );
    }
}

#[test]
fn batched_judging_is_bit_identical_to_serial_for_every_kernel() {
    for &spec in registry() {
        // The attacked stream for this kernel: heap churn, control flow
        // and its own declared attack kinds, so both the fast-reject
        // column scans and the exact slow paths of any `judge_batch`
        // override are exercised.
        let events = capture_events(&attacked_experiment(spec));
        let mut serial = spec.id().semantics();
        let mut batched = spec.id().semantics();
        let vbit = 5u8; // past the v1 nibble: the bit must be honored too
        let mut it = events.iter().copied();
        let mut batch = EventBatch::with_capacity(BATCH_EVENTS);
        let mut fired = 0u64;
        while batch.refill(&mut it, BATCH_EVENTS) > 0 {
            let mut out = std::mem::take(&mut batch.verdicts);
            batched.judge_batch(&batch, vbit, &mut out);
            for (i, t) in batch.events().iter().enumerate() {
                let want = if serial.judge(t) { 1u8 << vbit } else { 0 };
                assert_eq!(
                    out[i],
                    want,
                    "{}: batched verdict diverges from serial at seq {}",
                    spec.name(),
                    t.seq
                );
                fired += u64::from(out[i] != 0);
            }
            batch.verdicts = out;
        }
        assert!(
            fired > 0,
            "{}: attacked stream never fired — the axis tested nothing",
            spec.name()
        );
    }
}

// ---- all registered kernels at once (packet layout v2) ---------------------

#[test]
fn all_kernels_at_once_stay_silent_on_benign_traces() {
    let mut cfg = ExperimentConfig::new("dedup").insts(BENIGN_INSTS);
    cfg.kernels = registry()
        .iter()
        .map(|s| (s.id(), fireguard::soc::EngineConfig::Ucores(2)))
        .collect();
    assert!(cfg.kernels.len() > 4, "deployment exceeds the v1 nibble");
    let r = run_fireguard(&cfg);
    assert!(
        r.detections.is_empty(),
        "{} detections on a clean trace with all kernels",
        r.detections.len()
    );
    assert!(r.committed >= BENIGN_INSTS);
    assert_eq!(r.unclaimed_packets, 0);
}

#[test]
fn all_kernels_at_once_detect_and_attribute_per_slot() {
    let cfg = all_kernels_experiment();
    let r = run_fireguard(&cfg);
    assert!(!r.detections.is_empty(), "combined campaign undetected");
    // Every slot index must be a deployed kernel, and slots past the v1
    // verdict nibble (≥ 4) must actually fire — the 8-bit verdict field
    // carries them end-to-end.
    let n = cfg.kernels.len();
    assert!(r.detections.iter().all(|d| d.kernel_slot < n));
    assert!(
        r.detections.iter().any(|d| d.kernel_slot >= 4),
        "no detection attributed to a verdict bit beyond the v1 nibble"
    );
    for l in r.attack_latencies_ns() {
        assert!(l > 0.0 && l < 1e6, "implausible detection latency {l} ns");
    }
}

#[test]
fn all_kernels_at_once_are_deterministic_and_replay_identically() {
    let cfg = all_kernels_experiment();
    let a = run_fireguard(&cfg);
    let b = run_fireguard(&cfg);
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "rerun diverged");
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let events = capture_events(&cfg);
    let replayed = run_fireguard_events(&cfg, events, base);
    assert_eq!(
        format!("{a:?}"),
        format!("{replayed:?}"),
        "all-kernels replay diverged from in-process generation"
    );
}
