//! Packet-stream digest golden test: the determinism contract as one
//! cheap check.
//!
//! For every PARSEC workload profile we push 2 000 trace instructions
//! through an [`EventFilter`] programmed with all four guardian kernels'
//! subscriptions, pop the arbiter dry each commit cycle, and fold every
//! valid packet's 128-bit payload (plus its group index) into an FNV-1a
//! digest. The digests below were pinned *before* the PR-4 hot-path
//! refactor (ring-buffer FIFOs, index-based commit-order merge); any
//! change to packet content, commit-order re-serialisation, or the
//! placeholder-squashing rules flips a digest and fails loudly — without
//! running a full end-to-end simulation per kernel.

use fireguard::core_::{EventFilter, FilterConfig};
use fireguard::kernels::KernelId;
use fireguard::trace::{TraceGenerator, WorkloadProfile, PARSEC_WORKLOADS};

/// Instructions per workload (matches the CI smoke budget `FG_INSTS=2000`).
const INSTS: u64 = 2_000;
/// Commit width used to assign slots/cycles (Table II: 4-wide BOOM).
const WIDTH: u64 = 4;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= u64::from(b);
        *digest = digest.wrapping_mul(FNV_PRIME);
    }
}

/// The digest of the arbiter's output stream for one seeded workload.
///
/// Programmed with the four paper kernels' subscriptions — exactly the
/// pre-PR-5 filter programming the pinned digests were captured under.
/// The post-paper plugins add no new subscription shape (asserted by
/// `new_kernels_reuse_the_pinned_subscription_shape` below), so these
/// digests cover the packet stream every registered kernel sees.
fn packet_stream_digest(workload: &str) -> u64 {
    let mut filter = EventFilter::new(FilterConfig::default());
    for kind in [
        KernelId::PMC,
        KernelId::SHADOW_STACK,
        KernelId::ASAN,
        KernelId::UAF,
    ] {
        for (class, gid, dp) in kind.subscriptions() {
            filter.subscribe(class, gid, dp);
        }
    }
    let profile = WorkloadProfile::parsec(workload).expect("known workload");
    let gen = TraceGenerator::new(profile, 42);

    let mut digest = FNV_OFFSET;
    let mut packets = 0u64;
    for t in gen.take(INSTS as usize) {
        let cycle = 1 + t.seq / WIDTH;
        let slot = (t.seq % WIDTH) as usize;
        assert!(
            filter.offer(cycle, slot, &t),
            "{workload}: a drained 4-wide filter never refuses a 4-wide burst"
        );
        if slot as u64 == WIDTH - 1 {
            while let Some(p) = filter.arbiter_pop() {
                fnv1a(&mut digest, &p.bits().to_le_bytes());
                fnv1a(&mut digest, &[p.gid.value()]);
                packets += 1;
            }
        }
    }
    while let Some(p) = filter.arbiter_pop() {
        fnv1a(&mut digest, &p.bits().to_le_bytes());
        fnv1a(&mut digest, &[p.gid.value()]);
        packets += 1;
    }
    assert!(
        packets > INSTS / 10,
        "{workload}: implausibly few packets ({packets})"
    );
    digest
}

/// Pinned 2026-07-30 from the pre-PR-4 arbiter (VecDeque FIFOs, mutable
/// peek). The post-refactor ring-buffer arbiter must reproduce every value.
const GOLDEN_DIGESTS: &[(&str, u64)] = &[
    ("blackscholes", 0xde3f_e88d_6060_8877),
    ("bodytrack", 0xf994_49b9_847e_aa8a),
    ("dedup", 0x0bb1_f7ce_c793_8619),
    ("ferret", 0x1abe_3cbf_a41f_abe3),
    ("fluidanimate", 0x6876_c090_b6ea_02aa),
    ("freqmine", 0x0dbc_15a1_1ff8_9219),
    ("streamcluster", 0xa163_5a65_a2c3_125c),
    ("swaptions", 0xcb83_43f1_86f7_d78a),
    ("x264", 0x2ab1_078e_70b4_302f),
];

#[test]
fn packet_stream_digests_are_pinned_for_all_workloads() {
    assert_eq!(GOLDEN_DIGESTS.len(), PARSEC_WORKLOADS.len());
    for (workload, expected) in GOLDEN_DIGESTS {
        let got = packet_stream_digest(workload);
        assert_eq!(
            got, *expected,
            "{workload}: packet stream digest drifted (got {got:#018x})"
        );
    }
}

#[test]
fn new_kernels_reuse_the_pinned_subscription_shape() {
    // The taint and MTE plugins program the filter with exactly ASan's
    // mem+ctrl tuples, so the digests above — captured before they
    // existed — also pin the packet stream they observe.
    let asan = KernelId::ASAN.subscriptions();
    assert_eq!(KernelId::TAINT.subscriptions(), asan);
    assert_eq!(fireguard::kernels::KernelId::MTE.subscriptions(), asan);
}
