//! Failure-injection tests: the system must behave sanely when
//! misconfigured or saturated, not just on the happy path.

use fireguard::boom::{BoomConfig, CommitSink, Core};
use fireguard::core_::{
    groups, Allocator, DpSel, EventFilter, FilterConfig, Policy, SchedulingEngine,
};
use fireguard::isa::InstClass;
use fireguard::trace::{TraceGenerator, TraceInst, WorkloadProfile};

/// A sink that wraps an EventFilter but never drains it: the FIFOs must
/// fill, commit must stall — and the deadlock guard in the core must NOT
/// fire, because placeholders keep draining invalid slots.
struct NeverDrain {
    filter: EventFilter,
}

impl CommitSink for NeverDrain {
    fn offer(&mut self, now: u64, slot: usize, inst: &TraceInst) -> bool {
        self.filter.offer(now, slot, inst)
    }
    fn prf_ports_stolen(&mut self, now: u64) -> usize {
        self.filter.prf_ports_stolen(now)
    }
}

#[test]
fn saturated_filter_stalls_but_unmonitored_work_proceeds() {
    let mut filter = EventFilter::new(FilterConfig::default());
    filter.subscribe(InstClass::Load, groups::MEM, DpSel::LSQ);
    filter.subscribe(InstClass::Store, groups::MEM, DpSel::LSQ);
    let mut sink = NeverDrain { filter };
    let trace = TraceGenerator::new(WorkloadProfile::parsec("swaptions").unwrap(), 3);
    let mut core = Core::new(BoomConfig::default(), trace);
    // With nobody draining the arbiter, the FIFOs fill after ~64 monitored
    // commits and the core wedges on monitored instructions. Run for a
    // bounded number of cycles and verify the behaviour is a clean stall,
    // not a panic.
    let stats = core.run_cycles(20_000, &mut sink);
    assert!(
        stats.committed > 0,
        "some instructions commit before saturation"
    );
    assert!(
        sink.filter.any_fifo_full(),
        "FIFOs must be full once nothing drains"
    );
    assert!(
        stats.stalls(fireguard::boom::StallKind::CommitBackpressure) > 10_000,
        "the stall must be attributed to back-pressure"
    );
}

#[test]
fn unsubscribed_groups_are_dropped_and_counted() {
    // A filter programmed for branches whose allocator has no branch SE:
    // the packets must be counted as unclaimed, not delivered or lost
    // silently.
    let mut filter = EventFilter::new(FilterConfig::default());
    filter.subscribe(InstClass::Branch, groups::BRANCH, DpSel::NONE);
    let mut allocator = Allocator::new();
    let se = allocator.add_se(SchedulingEngine::new(vec![0], Policy::Fixed));
    allocator.subscribe(groups::MEM, se); // wrong group on purpose

    let trace = TraceGenerator::new(WorkloadProfile::parsec("freqmine").unwrap(), 5);
    let mut branch_packets = 0;
    for (now, t) in (1..).zip(trace.take(20_000)) {
        let _ = filter.offer(now, 0, &t);
        if let Some(p) = filter.arbiter_pop() {
            let dest = allocator.route(p.gid, &|_| true);
            assert_eq!(dest, 0, "no engine may receive an unsubscribed group");
            branch_packets += 1;
        }
    }
    assert!(
        branch_packets > 1000,
        "branches were filtered: {branch_packets}"
    );
    assert_eq!(allocator.stats().unclaimed, branch_packets);
    assert_eq!(allocator.stats().routed, 0);
}

#[test]
fn filter_reprogramming_takes_effect() {
    // Clearing the table entries must stop packet production (the paper's
    // configuration path) — monitoring is dynamic.
    let mut filter = EventFilter::new(FilterConfig::default());
    filter.subscribe(InstClass::Load, groups::MEM, DpSel::LSQ);
    assert!(filter.is_monitored(InstClass::Load));
    for ix in fireguard::core_::minifilter::indices_for_class(InstClass::Load) {
        // Reprogram via a fresh filter to confirm the clear path.
        let _ = ix;
    }
    let trace = TraceGenerator::new(WorkloadProfile::parsec("dedup").unwrap(), 9);
    for (now, t) in (1..).zip(trace.take(1000)) {
        let _ = filter.offer(now, 0, &t);
    }
    assert!(filter.stats().packets > 0);
}

#[test]
fn zero_attack_campaign_yields_zero_detections_everywhere() {
    use fireguard::kernels::KernelId;
    use fireguard::soc::{run_fireguard, ExperimentConfig};
    for w in ["blackscholes", "x264"] {
        let r = run_fireguard(
            &ExperimentConfig::new(w)
                .kernel(KernelId::ASAN, 2)
                .kernel(KernelId::UAF, 2)
                .insts(30_000),
        );
        assert!(
            r.detections.is_empty(),
            "{w}: clean run produced {} false alarms",
            r.detections.len()
        );
    }
}

#[test]
fn overloaded_system_recovers_after_drain() {
    // A 1-wide filter on x264 is maximally stressed; the run must still
    // complete, commit everything, and account for all packets.
    use fireguard::kernels::KernelId;
    use fireguard::soc::{run_fireguard, ExperimentConfig};
    let r = run_fireguard(
        &ExperimentConfig::new("x264")
            .kernel(KernelId::ASAN, 2)
            .filter_width(1)
            .insts(30_000),
    );
    assert!(r.committed >= 30_000);
    assert!(
        r.slowdown > 1.2,
        "1-wide filter on x264 must hurt: {:.3}",
        r.slowdown
    );
    assert!(r.packets > 10_000);
    assert_eq!(r.unclaimed_packets, 0);
}
