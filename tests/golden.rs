//! Golden-value regression tests.
//!
//! The simulator is deterministic: the same `ExperimentConfig` must produce
//! bit-identical cycle counts, packet counts, and slowdowns on every machine
//! and in every profile. These tests pin one small run per guardian kernel
//! so that *silent* simulator drift — a timing-model tweak that shifts
//! results without breaking any behavioural test — fails loudly.
//!
//! If a change intentionally alters timing, update the constants below in
//! the same commit and call the change out in the PR description.

use fireguard::kernels::KernelId;
use fireguard::soc::{run_fireguard, ExperimentConfig, RunResult};

/// 10k instructions of swaptions, kernel on 4 µcores, trace seed 42.
fn run(kind: KernelId) -> RunResult {
    let cfg = ExperimentConfig::new("swaptions")
        .kernel(kind, 4)
        .insts(10_000)
        .seed(42);
    run_fireguard(&cfg)
}

struct Golden {
    kind: KernelId,
    committed: u64,
    cycles: u64,
    baseline_cycles: u64,
    packets: u64,
    slowdown_milli: u64,
}

/// Paper-kernel rows captured 2026-07-30 from the seed simulator
/// (identical in dev/release) and untouched since; taint/MTE rows
/// captured from the PR-5 plugin layer the day it landed.
const GOLDEN: &[Golden] = &[
    Golden {
        kind: KernelId::PMC,
        committed: 10_001,
        cycles: 7_484,
        baseline_cycles: 7_484,
        packets: 2_611,
        slowdown_milli: 1_000,
    },
    Golden {
        kind: KernelId::SHADOW_STACK,
        committed: 10_001,
        cycles: 7_484,
        baseline_cycles: 7_484,
        packets: 655,
        slowdown_milli: 1_000,
    },
    Golden {
        kind: KernelId::ASAN,
        committed: 10_002,
        cycles: 11_470,
        baseline_cycles: 7_484,
        packets: 3_266,
        slowdown_milli: 1_532,
    },
    Golden {
        kind: KernelId::UAF,
        committed: 10_000,
        cycles: 9_047,
        baseline_cycles: 7_484,
        packets: 3_266,
        slowdown_milli: 1_208,
    },
    // The two post-paper plugin kernels (PR 5). Their packet stream is the
    // ASan/UaF mem+ctrl subscription, so `packets` matches those kernels
    // exactly; only the µcore-side timing differs.
    Golden {
        kind: KernelId::TAINT,
        committed: 10_003,
        cycles: 11_483,
        baseline_cycles: 7_484,
        packets: 3_266,
        slowdown_milli: 1_534,
    },
    Golden {
        kind: KernelId::MTE,
        committed: 10_002,
        cycles: 9_454,
        baseline_cycles: 7_484,
        packets: 3_266,
        slowdown_milli: 1_263,
    },
];

#[test]
fn golden_per_kernel_runs_are_pinned() {
    for g in GOLDEN {
        let r = run(g.kind);
        assert_eq!(r.committed, g.committed, "{:?}: committed drifted", g.kind);
        assert_eq!(r.cycles, g.cycles, "{:?}: cycles drifted", g.kind);
        assert_eq!(
            r.baseline_cycles, g.baseline_cycles,
            "{:?}: baseline cycles drifted",
            g.kind
        );
        assert_eq!(r.packets, g.packets, "{:?}: packet count drifted", g.kind);
        assert_eq!(
            (r.slowdown * 1000.0) as u64,
            g.slowdown_milli,
            "{:?}: slowdown drifted ({:.6})",
            g.kind,
            r.slowdown
        );
        assert_eq!(
            r.unclaimed_packets, 0,
            "{:?}: packets lost their subscriber",
            g.kind
        );
    }
}

#[test]
fn golden_run_is_reproducible_within_process() {
    let a = run(KernelId::ASAN);
    let b = run(KernelId::ASAN);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.slowdown.to_bits(), b.slowdown.to_bits());
}
