//! Golden-value regression tests.
//!
//! The simulator is deterministic: the same `ExperimentConfig` must produce
//! bit-identical cycle counts, packet counts, and slowdowns on every machine
//! and in every profile. These tests pin one small run per guardian kernel
//! so that *silent* simulator drift — a timing-model tweak that shifts
//! results without breaking any behavioural test — fails loudly.
//!
//! If a change intentionally alters timing, update the constants below in
//! the same commit and call the change out in the PR description.

use fireguard::kernels::KernelKind;
use fireguard::soc::{run_fireguard, ExperimentConfig, RunResult};

/// 10k instructions of swaptions, kernel on 4 µcores, trace seed 42.
fn run(kind: KernelKind) -> RunResult {
    let cfg = ExperimentConfig::new("swaptions")
        .kernel(kind, 4)
        .insts(10_000)
        .seed(42);
    run_fireguard(&cfg)
}

struct Golden {
    kind: KernelKind,
    committed: u64,
    cycles: u64,
    baseline_cycles: u64,
    packets: u64,
    slowdown_milli: u64,
}

/// Captured 2026-07-30 from the seed simulator (identical in dev/release).
const GOLDEN: &[Golden] = &[
    Golden {
        kind: KernelKind::Pmc,
        committed: 10_001,
        cycles: 7_484,
        baseline_cycles: 7_484,
        packets: 2_611,
        slowdown_milli: 1_000,
    },
    Golden {
        kind: KernelKind::ShadowStack,
        committed: 10_001,
        cycles: 7_484,
        baseline_cycles: 7_484,
        packets: 655,
        slowdown_milli: 1_000,
    },
    Golden {
        kind: KernelKind::Asan,
        committed: 10_002,
        cycles: 11_470,
        baseline_cycles: 7_484,
        packets: 3_266,
        slowdown_milli: 1_532,
    },
    Golden {
        kind: KernelKind::Uaf,
        committed: 10_000,
        cycles: 9_047,
        baseline_cycles: 7_484,
        packets: 3_266,
        slowdown_milli: 1_208,
    },
];

#[test]
fn golden_per_kernel_runs_are_pinned() {
    for g in GOLDEN {
        let r = run(g.kind);
        assert_eq!(r.committed, g.committed, "{:?}: committed drifted", g.kind);
        assert_eq!(r.cycles, g.cycles, "{:?}: cycles drifted", g.kind);
        assert_eq!(
            r.baseline_cycles, g.baseline_cycles,
            "{:?}: baseline cycles drifted",
            g.kind
        );
        assert_eq!(r.packets, g.packets, "{:?}: packet count drifted", g.kind);
        assert_eq!(
            (r.slowdown * 1000.0) as u64,
            g.slowdown_milli,
            "{:?}: slowdown drifted ({:.6})",
            g.kind,
            r.slowdown
        );
        assert_eq!(
            r.unclaimed_packets, 0,
            "{:?}: packets lost their subscriber",
            g.kind
        );
    }
}

#[test]
fn golden_run_is_reproducible_within_process() {
    let a = run(KernelKind::Asan);
    let b = run(KernelKind::Asan);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.slowdown.to_bits(), b.slowdown.to_bits());
}
