//! Cross-crate integration tests: the whole FireGuard system, end to end.

use fireguard::kernels::{KernelId, ProgrammingModel, SoftwareScheme};
use fireguard::soc::{baseline_cycles, run_fireguard, run_software, ExperimentConfig};
use fireguard::trace::{AttackKind, AttackPlan};
use fireguard::ucore::IsaxMode;

const N: u64 = 40_000;

#[test]
fn end_to_end_determinism() {
    let cfg = ExperimentConfig::new("dedup")
        .kernel(KernelId::UAF, 4)
        .insts(N);
    let a = run_fireguard(&cfg);
    let b = run_fireguard(&cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.detections.len(), b.detections.len());
}

#[test]
fn slowdown_is_never_speedup() {
    for w in ["swaptions", "x264"] {
        for kind in [KernelId::PMC, KernelId::ASAN] {
            let r = run_fireguard(&ExperimentConfig::new(w).kernel(kind, 4).insts(N));
            assert!(
                r.slowdown > 0.99,
                "{w}/{kind:?}: FireGuard cannot speed the core up: {:.3}",
                r.slowdown
            );
        }
    }
}

#[test]
fn more_engines_never_hurt_much() {
    // Monotonicity (within simulator noise) for a saturating kernel.
    let run = |n| {
        run_fireguard(
            &ExperimentConfig::new("x264")
                .kernel(KernelId::ASAN, n)
                .insts(N),
        )
        .slowdown
    };
    let s2 = run(2);
    let s6 = run(6);
    let s12 = run(12);
    assert!(s2 >= s6 * 0.98, "2u {s2:.3} vs 6u {s6:.3}");
    assert!(s6 >= s12 * 0.98, "6u {s6:.3} vs 12u {s12:.3}");
    assert!(s2 > 1.5, "x264 overloads 2 engines: {s2:.3}");
}

#[test]
fn every_attack_kind_is_detected_by_its_kernel() {
    let pairs = [
        (KernelId::PMC, AttackKind::BoundsViolation),
        (KernelId::SHADOW_STACK, AttackKind::RetHijack),
        (KernelId::ASAN, AttackKind::OutOfBounds),
        (KernelId::UAF, AttackKind::UseAfterFree),
    ];
    for (kind, attack) in pairs {
        let plan = AttackPlan::campaign(&[attack], 12, N / 4, N - N / 4, 5);
        let r = run_fireguard(
            &ExperimentConfig::new("dedup")
                .kernel(kind, 4)
                .insts(N + N / 2)
                .attacks(plan),
        );
        let lats = r.attack_latencies_ns();
        assert!(
            lats.len() >= 8,
            "{kind:?} detected only {} of ~12 {attack:?} attacks",
            lats.len()
        );
        assert!(lats.iter().all(|&l| l > 0.0 && l < 1e6));
    }
}

#[test]
fn no_false_alarms_without_attacks() {
    for kind in [
        KernelId::PMC,
        KernelId::SHADOW_STACK,
        KernelId::ASAN,
        KernelId::UAF,
    ] {
        let r = run_fireguard(&ExperimentConfig::new("ferret").kernel(kind, 4).insts(N));
        assert!(
            r.detections.is_empty(),
            "{kind:?} raised {} alarms on a clean trace",
            r.detections.len()
        );
    }
}

#[test]
fn hardware_accelerators_remove_the_overhead() {
    for kind in [KernelId::PMC, KernelId::SHADOW_STACK] {
        // On the heaviest workload the HA must dominate µcores...
        let ucores = run_fireguard(&ExperimentConfig::new("x264").kernel(kind, 2).insts(N));
        let ha = run_fireguard(&ExperimentConfig::new("x264").kernel_ha(kind).insts(N));
        assert!(
            ha.slowdown <= ucores.slowdown + 1e-9,
            "{kind:?}: HA {:.3} must not exceed 2-ucore {:.3}",
            ha.slowdown,
            ucores.slowdown
        );
        // ...and on ordinary traffic the overhead vanishes. (x264 retains a
        // few percent from the scalar mapper under commit bursts — see
        // EXPERIMENTS.md.)
        let calm = run_fireguard(
            &ExperimentConfig::new("streamcluster")
                .kernel_ha(kind)
                .insts(N),
        );
        assert!(
            calm.slowdown < 1.05,
            "{kind:?} HA ≈ zero overhead: {:.3}",
            calm.slowdown
        );
    }
}

#[test]
fn combining_kernels_does_not_multiply_slowdowns() {
    let w = "streamcluster";
    let asan = run_fireguard(&ExperimentConfig::new(w).kernel(KernelId::ASAN, 4).insts(N));
    let pmc = run_fireguard(&ExperimentConfig::new(w).kernel(KernelId::PMC, 4).insts(N));
    let both = run_fireguard(
        &ExperimentConfig::new(w)
            .kernel(KernelId::ASAN, 4)
            .kernel(KernelId::PMC, 4)
            .insts(N),
    );
    let max = asan.slowdown.max(pmc.slowdown);
    let product = asan.slowdown * pmc.slowdown;
    assert!(
        both.slowdown < product,
        "combined {:.3} must undercut the product {:.3}",
        both.slowdown,
        product
    );
    assert!(
        both.slowdown >= max * 0.95,
        "combined {:.3} is dominated by the heavier kernel {:.3}",
        both.slowdown,
        max
    );
}

#[test]
fn narrow_filters_cost_performance() {
    let run = |w| {
        run_fireguard(
            &ExperimentConfig::new("bodytrack")
                .kernel(KernelId::ASAN, 4)
                .filter_width(w)
                .insts(N),
        )
        .slowdown
    };
    let wide = run(4);
    let narrow = run(1);
    assert!(
        narrow > wide,
        "1-wide filter {narrow:.3} must be slower than 4-wide {wide:.3}"
    );
}

#[test]
fn ma_stage_isax_beats_post_commit_system_wide() {
    let run = |mode| {
        run_fireguard(
            &ExperimentConfig::new("freqmine")
                .kernel(KernelId::ASAN, 4)
                .isax(mode)
                .insts(N),
        )
        .slowdown
    };
    let ma = run(IsaxMode::MaStage);
    let pc = run(IsaxMode::PostCommit);
    assert!(
        pc > ma,
        "post-commit ISAX {pc:.3} must lose to MA-stage {ma:.3}"
    );
}

#[test]
fn programming_models_order_as_in_fig11() {
    let run = |m| {
        run_fireguard(
            &ExperimentConfig::new("x264")
                .kernel(KernelId::PMC, 4)
                .model(m)
                .insts(N),
        )
        .slowdown
    };
    let conventional = run(ProgrammingModel::Conventional);
    let hybrid = run(ProgrammingModel::Hybrid);
    assert!(
        conventional > hybrid,
        "conventional {conventional:.3} must be worst; hybrid {hybrid:.3}"
    );
}

#[test]
fn software_baselines_cost_more_than_hardware_for_light_kernels() {
    let hw = run_fireguard(
        &ExperimentConfig::new("bodytrack")
            .kernel(KernelId::SHADOW_STACK, 4)
            .insts(N),
    );
    let sw = run_software(SoftwareScheme::ShadowStackAArch64, "bodytrack", 42, N);
    assert!(
        sw > hw.slowdown,
        "software shadow stack {sw:.3} must exceed FireGuard {:.3}",
        hw.slowdown
    );
}

#[test]
fn baseline_cycles_are_stable_and_positive() {
    let a = baseline_cycles("blackscholes", 42, N);
    let b = baseline_cycles("blackscholes", 42, N);
    assert_eq!(a, b);
    assert!(a > N / 4, "IPC can't exceed 4: {a}");
}
