//! Combined safeguards (the paper's Fig. 7(b) in miniature): running
//! several guardian kernels at once costs about as much as the heaviest
//! one, not the product of all of them.
//!
//! Run with: `cargo run --release --example combined_kernels`

use fireguard::kernels::KernelId;
use fireguard::soc::{run_fireguard, ExperimentConfig};

fn main() {
    let w = "freqmine";
    let n = 80_000;
    let single = |kind| run_fireguard(&ExperimentConfig::new(w).kernel(kind, 4).insts(n)).slowdown;
    let ss = single(KernelId::SHADOW_STACK);
    let pmc = single(KernelId::PMC);
    let asan = single(KernelId::ASAN);
    let all = run_fireguard(
        &ExperimentConfig::new(w)
            .kernel_ha(KernelId::SHADOW_STACK)
            .kernel(KernelId::PMC, 4)
            .kernel(KernelId::ASAN, 4)
            .insts(n),
    )
    .slowdown;
    println!("{w}: SS {ss:.3}  PMC {pmc:.3}  ASan {asan:.3}");
    println!("{w}: SS(HA)+PMC+ASan together: {all:.3}");
    println!(
        "product of singles would be {:.3}; the combination costs ~the max",
        ss * pmc * asan
    );
}
