//! Combined safeguards (the paper's Fig. 7(b) in miniature): running
//! several guardian kernels at once costs about as much as the heaviest
//! one, not the product of all of them.
//!
//! Run with: `cargo run --release --example combined_kernels`

use fireguard::kernels::KernelKind::{Asan, Pmc, ShadowStack};
use fireguard::soc::{run_fireguard, ExperimentConfig};

fn main() {
    let w = "freqmine";
    let n = 80_000;
    let single = |kind| run_fireguard(&ExperimentConfig::new(w).kernel(kind, 4).insts(n)).slowdown;
    let ss = single(ShadowStack);
    let pmc = single(Pmc);
    let asan = single(Asan);
    let all = run_fireguard(
        &ExperimentConfig::new(w)
            .kernel_ha(ShadowStack)
            .kernel(Pmc, 4)
            .kernel(Asan, 4)
            .insts(n),
    )
    .slowdown;
    println!("{w}: SS {ss:.3}  PMC {pmc:.3}  ASan {asan:.3}");
    println!("{w}: SS(HA)+PMC+ASan together: {all:.3}");
    println!(
        "product of singles would be {:.3}; the combination costs ~the max",
        ss * pmc * asan
    );
}
