//! Scalability study (the paper's Fig. 10 in miniature): how does
//! AddressSanitizer's slowdown fall as analysis engines are added — and why
//! does x264 refuse to parallelise away?
//!
//! Run with: `cargo run --release --example scaling_study`

use fireguard::kernels::KernelId;
use fireguard::soc::{run_fireguard, ExperimentConfig};

fn main() {
    println!("AddressSanitizer slowdown vs ucore count\n");
    println!("{:>14} {:>7} {:>7} {:>7}", "workload", "2u", "4u", "12u");
    for w in ["swaptions", "bodytrack", "x264"] {
        let run = |n| {
            run_fireguard(
                &ExperimentConfig::new(w)
                    .kernel(KernelId::ASAN, n)
                    .insts(80_000),
            )
            .slowdown
        };
        let (a, b, c) = (run(2), run(4), run(12));
        println!("{w:>14} {a:>7.3} {b:>7.3} {c:>7.3}");
    }
    println!();
    println!("swaptions parallelises away quickly; x264's load/store volume");
    println!("keeps the analysis engines saturated even at 12 ucores —");
    println!("the paper's §IV-D observation.");
}
