//! Writing your own guardian kernel with the µ-ISA (the paper's §III-D
//! programming model): this example builds a *taint-burst monitor* from
//! scratch — a kernel that watches memory packets and alarms when too many
//! accesses hit one page inside a sliding window — and runs it on a bare
//! analysis engine with the Table I queue instructions.
//!
//! It demonstrates:
//! * the `count`/`pop`/`recent`/`push` ISAX instructions and their hazards;
//! * a custom kernel-assist op through [`KernelBackend`];
//! * the hybrid programming pattern (unroll when the queue is deep).
//!
//! Run with: `cargo run --release --example custom_kernel`

use fireguard::ucore::backend::CustomResult;
use fireguard::ucore::{Asm, KernelBackend, QueueEntry, Ucore, UcoreConfig};
use std::collections::BTreeMap;

/// Custom op 0x20: count an access to the page of `a`; returns 1 when the
/// page exceeds the burst threshold within the current window.
const OP_BURST_COUNT: u8 = 0x20;

struct BurstMonitor {
    per_page: BTreeMap<u64, u32>,
    window: u32,
    seen: u32,
    threshold: u32,
}

impl KernelBackend for BurstMonitor {
    fn mem_read(&mut self, _addr: u64) -> u64 {
        0
    }
    fn mem_write(&mut self, _addr: u64, _value: u64) {}

    fn custom(&mut self, op: u8, a: u64, _b: u64) -> CustomResult {
        if op != OP_BURST_COUNT {
            return CustomResult::default();
        }
        self.seen += 1;
        if self.seen == self.window {
            self.seen = 0;
            self.per_page.clear();
        }
        let page = a >> 12;
        let hits = self.per_page.entry(page).or_insert(0);
        *hits += 1;
        CustomResult {
            value: u64::from(*hits > self.threshold),
            extra_cycles: 0,
            // The counter table lives in µcore memory: one line per page
            // bucket, so hot pages stay cached and cold ones miss.
            mem_touch: Some(0xD0_0000_0000 + (page & 0x3FF) * 8),
            touch_blind: false,
        }
    }
}

fn build_program() -> fireguard::ucore::UProgram {
    let mut asm = Asm::new();
    asm.addi(10, 0, 8); // unroll threshold
    let alarm_path = asm.fwd_label();
    let top = asm.here();
    // Hybrid dispatch: deep queue => 8-way unrolled block.
    let unrolled = asm.fwd_label();
    asm.qcount(4);
    asm.bgeu(4, 10, unrolled);
    // Shallow path: one packet (pop blocks while the queue is empty).
    asm.qpop(1, 0); // address field
    asm.custom(OP_BURST_COUNT, 3, 1, 0);
    asm.bnez(3, alarm_path);
    asm.jump(top);
    asm.bind(unrolled);
    for _ in 0..8 {
        asm.qpop(1, 0);
        asm.custom(OP_BURST_COUNT, 3, 1, 0);
        asm.bnez(3, alarm_path);
    }
    asm.jump(top);
    asm.bind(alarm_path);
    asm.alarm(0);
    asm.qrecent(5, 64); // fetch the PC only on an alarm (the `recent` idiom)
    asm.jump(top);
    asm.assemble()
}

fn main() {
    let mut monitor = BurstMonitor {
        per_page: BTreeMap::new(),
        window: 512,
        seen: 0,
        threshold: 48,
    };
    let mut engine = Ucore::new(UcoreConfig::default(), build_program());

    // Feed a synthetic packet stream: mostly scattered accesses, with a
    // hot burst against one page in the middle.
    let mut pushed = 0u64;
    let mut t = 0u64;
    for i in 0..4_000u64 {
        let addr = if (1_500..1_700).contains(&i) {
            0xBEEF_0000 + (i % 64) * 8 // the burst: one page, hammered
        } else {
            0x4000_0000 + i * 4096 // background: a new page every packet
        };
        let entry = QueueEntry::with_meta(u128::from(addr), i, i * 3, false);
        // Respect the 32-entry queue: drain by advancing the engine.
        while engine.input_mut().push(entry).is_err() {
            t += 64;
            engine.advance(t, &mut monitor);
        }
        pushed += 1;
    }
    t += 100_000;
    engine.advance(t, &mut monitor);

    let stats = engine.stats();
    println!("packets pushed:    {pushed}");
    println!("packets processed: {}", stats.packets);
    println!(
        "engine cycles:     {} ({} idle)",
        engine.now(),
        stats.idle_cycles
    );
    println!("alarms raised:     {}", engine.alarms().len());
    let first = engine.alarms().first().expect("the burst must be caught");
    println!(
        "first alarm at packet seq {} ({} µ-cycles in)",
        first.seq, first.cycle
    );
    assert!(
        first.seq >= 1_500 && first.seq < 1_700,
        "alarm inside the burst window"
    );
}
