//! Quickstart: attach a shadow stack to the main core, run a workload, and
//! inject a return-address hijack that the kernel must catch.
//!
//! Run with: `cargo run --release --example quickstart`

use fireguard::kernels::KernelId;
use fireguard::soc::{run_fireguard, ExperimentConfig};
use fireguard::trace::{AttackKind, AttackPlan};

fn main() {
    let plan = AttackPlan::campaign(&[AttackKind::RetHijack], 5, 10_000, 70_000, 1);
    let cfg = ExperimentConfig::new("ferret")
        .kernel(KernelId::SHADOW_STACK, 4)
        .insts(100_000)
        .attacks(plan);

    println!("running ferret with a 4-ucore shadow stack and 5 injected hijacks...");
    let r = run_fireguard(&cfg);

    println!("committed:  {} instructions", r.committed);
    println!("slowdown:   {:.3}x over the bare core", r.slowdown);
    println!("packets:    {} analysis packets filtered", r.packets);
    let lats = r.attack_latencies_ns();
    println!("detections: {} hijacks caught", lats.len());
    for (i, l) in lats.iter().enumerate() {
        println!("  attack {i}: detected {l:.0} ns after commit");
    }
    assert!(!lats.is_empty(), "the shadow stack must catch the hijacks");
}
