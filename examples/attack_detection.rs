//! Detection-latency campaign (the paper's Fig. 8 in miniature): inject
//! memory-safety attacks and measure how long each kernel takes to flag
//! them, in nanoseconds from commit.
//!
//! Run with: `cargo run --release --example attack_detection`

use fireguard::kernels::KernelId;
use fireguard::soc::report::percentile;
use fireguard::soc::{run_fireguard, ExperimentConfig};
use fireguard::trace::{AttackKind, AttackPlan};

fn main() {
    println!("detection latency on dedup, 4 ucores per kernel\n");
    println!(
        "{:>10} {:>4} {:>8} {:>8} {:>8}",
        "kernel", "n", "min", "p50", "max"
    );
    for (kind, attack) in [
        (KernelId::PMC, AttackKind::BoundsViolation),
        (KernelId::SHADOW_STACK, AttackKind::RetHijack),
        (KernelId::ASAN, AttackKind::OutOfBounds),
        (KernelId::UAF, AttackKind::UseAfterFree),
    ] {
        let plan = AttackPlan::campaign(&[attack], 40, 20_000, 90_000, 9);
        let r = run_fireguard(
            &ExperimentConfig::new("dedup")
                .kernel(kind, 4)
                .insts(120_000)
                .attacks(plan),
        );
        let lats = r.attack_latencies_ns();
        println!(
            "{:>10} {:>4} {:>7.0}n {:>7.0}n {:>7.0}n",
            kind.name(),
            lats.len(),
            lats.first().copied().unwrap_or(0.0),
            percentile(&lats, 50.0),
            lats.last().copied().unwrap_or(0.0),
        );
    }
}
