//! Feasibility analysis (the paper's Table III): what does it cost, in
//! silicon, to put FireGuard into commercial SoCs?
//!
//! Run with: `cargo run --release --example area_feasibility`

use fireguard::area::{components, table3};

fn main() {
    let c = components();
    println!("14nm component areas (paper IV-F):");
    println!(
        "  filter {:.3} mm2, mapper {:.3} mm2, Rocket ucore {:.3} mm2",
        c.filter_mm2, c.mapper_mm2, c.rocket_mm2
    );
    println!("\nper-core and per-SoC overheads:");
    for r in table3() {
        println!(
            "  {:>12} ({:>10}): {:>2} ucores, {:.2} mm2 = {:.1}% of core, {:.2}% of SoC",
            r.core.name, r.core.soc, r.ucores, r.overhead_mm2, r.pct_of_core, r.pct_of_soc
        );
    }
    println!("\nevery commercial SoC lands under 1% — the paper's headline claim.");
}
