//! Calibration tool: one-line system summaries (slowdown, bottleneck
//! attribution) for representative kernel/workload pairs.
use fireguard_kernels::KernelId;
use fireguard_soc::{run_fireguard, ExperimentConfig};

fn main() {
    for (w, kind, n) in [
        ("fluidanimate", KernelId::PMC, 4),
        ("bodytrack", KernelId::ASAN, 4),
    ] {
        let cfg = ExperimentConfig::new(w).kernel(kind, n).insts(60_000);
        let r = run_fireguard(&cfg);
        println!(
            "{w} {kind:?} slow={:.3} packets={} cyc={} base={} bn={:?} unclaimed={}",
            r.slowdown, r.packets, r.cycles, r.baseline_cycles, r.bottlenecks, r.unclaimed_packets
        );
    }
}
