//! Calibration tool: inspects the hardware-accelerator path's residual
//! overhead and its bottleneck attribution.
use fireguard_kernels::KernelId;
use fireguard_soc::{run_fireguard, ExperimentConfig};
fn main() {
    let r = run_fireguard(
        &ExperimentConfig::new("x264")
            .kernel_ha(KernelId::PMC)
            .insts(40_000),
    );
    println!(
        "slow={:.3} bn={:?} packets={}",
        r.slowdown, r.bottlenecks, r.packets
    );
}
