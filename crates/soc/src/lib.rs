//! Full-system FireGuard integration: the BOOM main core, the commit-stage
//! frontend (filter + allocator), the clock-domain crossing, the fabric
//! (multicast + NoC), the analysis engines (µcores or hardware
//! accelerators) running guardian kernels, and the experiment drivers that
//! regenerate every figure of the paper's evaluation.
//!
//! # Examples
//!
//! ```no_run
//! use fireguard_soc::{ExperimentConfig, run_fireguard};
//! use fireguard_kernels::{KernelId, ProgrammingModel};
//!
//! let cfg = ExperimentConfig::new("swaptions")
//!     .kernel(KernelId::PMC, 4)
//!     .insts(50_000);
//! let result = run_fireguard(&cfg);
//! println!("slowdown {:.3}", result.slowdown);
//! ```
//!
//! Experiment *grids* (many such configs) are executed through the
//! [`sweep`] worker pool and rendered through the [`reporter`] formats:
//!
//! ```no_run
//! use fireguard_soc::sweep::{run_jobs, JobSpec};
//! use fireguard_soc::{ExperimentConfig, KernelId};
//!
//! let jobs: Vec<JobSpec> = ["swaptions", "x264"]
//!     .iter()
//!     .map(|w| JobSpec::FireGuard(ExperimentConfig::new(w).kernel(KernelId::PMC, 4)))
//!     .collect();
//! for out in run_jobs(jobs, 4) {
//!     println!("{:.3}", out.slowdown());
//! }
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod pipeline;
pub mod report;
pub mod reporter;
pub mod sweep;
pub mod system;

pub use experiments::{
    baseline_cycles, build_system, build_system_auto, capture_events, run_fireguard,
    run_fireguard_events, run_fireguard_telemetry, run_software, try_build_system,
    try_build_system_send, ExperimentConfig, REPLAY_MARGIN,
};
pub use pipeline::{
    resolve_pipeline_width, JudgedTrace, PipelineStats, PipelinedTrace, VerdictWindow,
};
pub use report::{BottleneckBreakdown, Detection, RunResult};
pub use reporter::{render, render_to_string, Block, Cell, Format, Report, Table};
pub use sweep::{default_workers, run_jobs, JobOutput, JobSpec, SweepGrid, SweepPoint};
pub use system::{
    validate_capacity, CapacityError, EngineConfig, FireGuardSystem, SocConfig, MAX_ENGINES,
    MAX_KERNELS,
};

// Re-exported so downstream layers (server, bench, CLI, tests) consume
// engine counters without a direct `fireguard-telemetry` dependency.
pub use fireguard_telemetry::EngineCounters;

// Re-exported so sweep callers (CLI, bench, server) can reach the kernel
// registry without a direct `fireguard-kernels` dependency.
pub use fireguard_kernels::{
    canonical_names, parse_kernel_name, registry, KernelId, KernelSpec, ProgrammingModel,
    SoftwareScheme,
};
