//! Full-system FireGuard integration: the BOOM main core, the commit-stage
//! frontend (filter + allocator), the clock-domain crossing, the fabric
//! (multicast + NoC), the analysis engines (µcores or hardware
//! accelerators) running guardian kernels, and the experiment drivers that
//! regenerate every figure of the paper's evaluation.
//!
//! # Examples
//!
//! ```no_run
//! use fireguard_soc::{ExperimentConfig, run_fireguard};
//! use fireguard_kernels::{KernelKind, ProgrammingModel};
//!
//! let cfg = ExperimentConfig::new("swaptions")
//!     .kernel(KernelKind::Pmc, 4)
//!     .insts(50_000);
//! let result = run_fireguard(&cfg);
//! println!("slowdown {:.3}", result.slowdown);
//! ```

pub mod experiments;
pub mod report;
pub mod system;

pub use experiments::{baseline_cycles, run_fireguard, run_software, ExperimentConfig};
pub use report::{BottleneckBreakdown, Detection, RunResult};
pub use system::{EngineConfig, FireGuardSystem, SocConfig};
