//! Experiment drivers: everything the figure/table binaries need.

use crate::report::RunResult;
use crate::system::{CapacityError, EngineConfig, FireGuardSystem, SocConfig};
use fireguard_boom::{BoomConfig, Core, NullSink};
use fireguard_kernels::{InstrumentedTrace, KernelId, ProgrammingModel, SoftwareScheme};
use fireguard_trace::{AttackPlan, AttackingTrace, TraceGenerator, WorkloadProfile};
use fireguard_ucore::IsaxMode;

/// Declarative description of one system run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// PARSEC workload name.
    pub workload: String,
    /// Trace seed.
    pub seed: u64,
    /// Instructions to commit.
    pub insts: u64,
    /// Kernels and their engine provisioning, in verdict-bit order.
    pub kernels: Vec<(KernelId, EngineConfig)>,
    /// µ-program style.
    pub model: ProgrammingModel,
    /// Event-filter width (Fig. 9 sweeps 1/2/4).
    pub filter_width: usize,
    /// ISAX placement (ablation).
    pub isax: IsaxMode,
    /// Optional attack campaign (Fig. 8).
    pub attacks: Option<AttackPlan>,
    /// Mapper width (1 = the paper's scalar mapper; >1 = footnote 5's
    /// superscalar extension).
    pub mapper_width: usize,
    /// Requested in-session pipeline width: 1 = serial (judge inline with
    /// the core's trace pull), ≥2 = worker stages ahead of the core, 0 =
    /// auto from the host's parallelism. Results are bit-identical at
    /// every width.
    pub pipeline: u32,
}

impl ExperimentConfig {
    /// A default configuration for `workload`: no kernels yet, 200k
    /// instructions, hybrid µ-programs, 4-wide filter, MA-stage ISAX.
    pub fn new(workload: &str) -> Self {
        ExperimentConfig {
            workload: workload.to_owned(),
            seed: 42,
            insts: 200_000,
            kernels: Vec::new(),
            model: ProgrammingModel::Hybrid,
            filter_width: 4,
            isax: IsaxMode::MaStage,
            attacks: None,
            mapper_width: 1,
            pipeline: 1,
        }
    }

    /// Adds a kernel backed by `n` µcores.
    pub fn kernel(mut self, kind: KernelId, n: usize) -> Self {
        self.kernels.push((kind, EngineConfig::Ucores(n)));
        self
    }

    /// Adds a kernel backed by a hardware accelerator.
    pub fn kernel_ha(mut self, kind: KernelId) -> Self {
        self.kernels.push((kind, EngineConfig::Ha));
        self
    }

    /// Sets the instruction budget.
    pub fn insts(mut self, n: u64) -> Self {
        self.insts = n;
        self
    }

    /// Sets the trace seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the programming model.
    pub fn model(mut self, m: ProgrammingModel) -> Self {
        self.model = m;
        self
    }

    /// Sets the event-filter width.
    pub fn filter_width(mut self, w: usize) -> Self {
        self.filter_width = w;
        self
    }

    /// Sets the ISAX placement.
    pub fn isax(mut self, mode: IsaxMode) -> Self {
        self.isax = mode;
        self
    }

    /// Installs an attack campaign.
    pub fn attacks(mut self, plan: AttackPlan) -> Self {
        self.attacks = Some(plan);
        self
    }

    /// Sets the mapper width (footnote 5's superscalar-mapper extension).
    pub fn mapper_width(mut self, w: usize) -> Self {
        self.mapper_width = w;
        self
    }

    /// Sets the in-session pipeline width (0 = auto).
    pub fn pipeline(mut self, w: u32) -> Self {
        self.pipeline = w;
        self
    }

    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile::parsec(&self.workload)
            .unwrap_or_else(|| panic!("unknown workload {}", self.workload))
    }

    /// The in-process commit stream this configuration describes: the
    /// seeded workload generator, wrapped with the attack campaign if one
    /// is installed.
    ///
    /// # Panics
    ///
    /// Panics if the workload name is unknown.
    pub fn trace(&self) -> Box<dyn Iterator<Item = fireguard_trace::TraceInst>> {
        let g = TraceGenerator::new(self.profile(), self.seed);
        match &self.attacks {
            Some(plan) => Box::new(AttackingTrace::new(g, plan.clone())),
            None => Box::new(g),
        }
    }

    /// [`ExperimentConfig::trace`] with a `Send` bound, so the stream can
    /// move onto a pipeline generation worker. Same generator, same seed,
    /// same events.
    pub fn trace_send(&self) -> Box<dyn Iterator<Item = fireguard_trace::TraceInst> + Send> {
        let g = TraceGenerator::new(self.profile(), self.seed);
        match &self.attacks {
            Some(plan) => Box::new(AttackingTrace::new(g, plan.clone())),
            None => Box::new(g),
        }
    }
}

/// Events captured beyond the commit budget when recording a trace.
///
/// The core fetches ahead of commit; its in-flight window is bounded by the
/// ROB (128), the fetch buffer (16) and one pending fetch, so a margin of
/// 4096 guarantees a replayed finite trace never exposes its end to the
/// core before the commit target is reached — which is what makes replay
/// *byte-identical* to in-process generation, for any plausible core
/// configuration.
pub const REPLAY_MARGIN: u64 = 4096;

/// Materializes the commit stream of `cfg` as a finite event vector sized
/// for bit-exact replay (`cfg.insts + REPLAY_MARGIN` events).
pub fn capture_events(cfg: &ExperimentConfig) -> Vec<fireguard_trace::TraceInst> {
    cfg.trace()
        .take((cfg.insts + REPLAY_MARGIN) as usize)
        .collect()
}

/// Assembles a [`FireGuardSystem`] for `cfg` over an arbitrary commit
/// stream (the in-process generator, a replayed recording, or a live
/// network session). `cfg.attacks` is *not* applied here — an externally
/// supplied stream already carries its injected attacks.
///
/// # Panics
///
/// Panics on a capacity violation; use [`try_build_system`] for configs
/// built from untrusted input.
pub fn build_system(
    cfg: &ExperimentConfig,
    trace: Box<dyn Iterator<Item = fireguard_trace::TraceInst>>,
) -> FireGuardSystem {
    try_build_system(cfg, trace).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`build_system`]: a deployment exceeding the packet verdict
/// width or the allocator's engine bitmap comes back as a
/// [`CapacityError`] instead of a panic, so the CLI and the serve loop
/// can reject oversized requests cleanly.
pub fn try_build_system(
    cfg: &ExperimentConfig,
    trace: Box<dyn Iterator<Item = fireguard_trace::TraceInst>>,
) -> Result<FireGuardSystem, CapacityError> {
    FireGuardSystem::try_new(soc_config(cfg), trace, &cfg.kernels)
}

/// [`try_build_system`] over a `Send` commit stream, honoring
/// `cfg.pipeline`: the judging stage (and at width ≥ 3, generation) runs
/// on worker threads ahead of the core. Results are bit-identical to the
/// serial build at every width.
///
/// # Errors
///
/// The same capacity errors as [`try_build_system`].
pub fn try_build_system_send(
    cfg: &ExperimentConfig,
    trace: Box<dyn Iterator<Item = fireguard_trace::TraceInst> + Send>,
) -> Result<FireGuardSystem, CapacityError> {
    FireGuardSystem::try_new_pipelined(soc_config(cfg), trace, &cfg.kernels, cfg.pipeline)
}

/// Builds the system for `cfg` from its own generator, routing through
/// the pipelined constructor whenever `cfg.pipeline` asks for more than
/// the serial stage.
///
/// # Panics
///
/// Panics on a capacity violation, like [`build_system`].
pub fn build_system_auto(cfg: &ExperimentConfig) -> FireGuardSystem {
    let r = if cfg.pipeline == 1 {
        try_build_system(cfg, cfg.trace())
    } else {
        try_build_system_send(cfg, cfg.trace_send())
    };
    r.unwrap_or_else(|e| panic!("{e}"))
}

fn soc_config(cfg: &ExperimentConfig) -> SocConfig {
    SocConfig {
        filter: fireguard_core::FilterConfig {
            width: cfg.filter_width,
            ..Default::default()
        },
        isax: cfg.isax,
        model: cfg.model,
        mapper_width: cfg.mapper_width,
        ..SocConfig::default()
    }
}

/// Replays a pre-captured event stream through the system described by
/// `cfg`, reporting against a pinned baseline cycle count (recorded in the
/// `.fgt` header at capture time).
///
/// For events produced by [`capture_events`] with the same `cfg`, the
/// result is byte-identical to [`run_fireguard`] — the determinism
/// contract `fireguard trace record | replay` is built on.
pub fn run_fireguard_events(
    cfg: &ExperimentConfig,
    events: Vec<fireguard_trace::TraceInst>,
    baseline_cycles: u64,
) -> RunResult {
    // A captured event vector is `Send`, so replay honors `cfg.pipeline`
    // exactly like a generated run — replay parity holds at every width.
    let mut sys = if cfg.pipeline == 1 {
        build_system(cfg, Box::new(events.into_iter()))
    } else {
        try_build_system_send(cfg, Box::new(events.into_iter())).unwrap_or_else(|e| panic!("{e}"))
    };
    sys.run_insts(cfg.insts, baseline_cycles)
}

/// Cycles the bare core (no FireGuard, no instrumentation) takes for the
/// workload — the slowdown denominator.
///
/// The result is a pure function of `(workload, seed, insts)` and every
/// figure grid re-derives it for each of its jobs (fig7a asks for the
/// same denominator ten times per workload), so it is memoized
/// process-wide. The cache is transparent: hits return exactly the
/// cycles a fresh simulation would.
pub fn baseline_cycles(workload: &str, seed: u64, insts: u64) -> u64 {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type BaselineCache = Mutex<HashMap<(String, u64, u64), u64>>;
    static CACHE: OnceLock<BaselineCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (workload.to_owned(), seed, insts);
    if let Some(&cycles) = cache.lock().expect("baseline cache lock").get(&key) {
        return cycles;
    }
    let profile =
        WorkloadProfile::parsec(workload).unwrap_or_else(|| panic!("unknown workload {workload}"));
    let trace = TraceGenerator::new(profile, seed);
    let mut core = Core::new(BoomConfig::default(), trace);
    let cycles = core.run_insts(insts, &mut NullSink).cycles;
    cache
        .lock()
        .expect("baseline cache lock")
        .insert(key, cycles);
    cycles
}

/// Runs a full FireGuard system per `cfg` and reports against the matching
/// bare-core baseline.
pub fn run_fireguard(cfg: &ExperimentConfig) -> RunResult {
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let mut sys = build_system_auto(cfg);
    sys.run_insts(cfg.insts, base)
}

/// [`run_fireguard`] with the engine-counter snapshot and its
/// `(slot, kernel)` labeling attached — the instrumented entry point the
/// metrics plane and `bench --profile` share. The [`RunResult`] is
/// byte-identical to the uninstrumented call: the snapshot is read after
/// the run completes and reading mutates nothing.
pub fn run_fireguard_telemetry(
    cfg: &ExperimentConfig,
) -> (
    RunResult,
    fireguard_telemetry::EngineCounters,
    Vec<(usize, KernelId)>,
) {
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let mut sys = build_system_auto(cfg);
    let result = sys.run_insts(cfg.insts, base);
    (result, sys.telemetry(), sys.kernel_slots())
}

/// Runs a software-instrumented baseline; returns its slowdown over the
/// bare core for the same original instruction count.
///
/// Like [`baseline_cycles`], the result is a pure function of its
/// arguments — the instrumented trace is fully determined by
/// `(scheme, workload, seed, insts)` and the core is deterministic — and
/// software rows recur across figure grids and repeated sweeps, each one
/// simulating `insts × inflation` instructions. So the *cycle count* is
/// memoized process-wide the same way; hits divide by the (also cached)
/// bare-core denominator exactly as a fresh simulation would.
pub fn run_software(scheme: SoftwareScheme, workload: &str, seed: u64, insts: u64) -> f64 {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type SoftwareCache = Mutex<HashMap<(SoftwareScheme, String, u64, u64), u64>>;
    static CACHE: OnceLock<SoftwareCache> = OnceLock::new();
    let base = baseline_cycles(workload, seed, insts);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (scheme, workload.to_owned(), seed, insts);
    if let Some(&cycles) = cache.lock().expect("software cache lock").get(&key) {
        return cycles as f64 / base as f64;
    }
    let profile =
        WorkloadProfile::parsec(workload).unwrap_or_else(|| panic!("unknown workload {workload}"));
    // Bound the original instruction count, then instrument.
    let orig = TraceGenerator::new(profile, seed).take(insts as usize);
    let instrumented = InstrumentedTrace::new(orig, scheme);
    let mut core = Core::new(BoomConfig::default(), instrumented);
    let stats = core.run_insts(u64::MAX / 2, &mut NullSink);
    cache
        .lock()
        .expect("software cache lock")
        .insert(key, stats.cycles);
    stats.cycles as f64 / base as f64
}

/// The nine PARSEC workload names, paper order.
pub fn workloads() -> Vec<&'static str> {
    fireguard_trace::PARSEC_WORKLOADS
        .iter()
        .map(|w| w.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmc_on_four_ucores_has_low_overhead() {
        let cfg = ExperimentConfig::new("swaptions")
            .kernel(KernelId::PMC, 4)
            .insts(60_000);
        let r = run_fireguard(&cfg);
        assert!(r.committed >= 60_000 && r.committed < 60_004);
        assert!(r.packets > 10_000, "PMC sees mem+ctrl+branch packets");
        assert!(
            r.slowdown < 1.6,
            "PMC on 4 µcores should be cheap-ish: {:.3}",
            r.slowdown
        );
        assert!(r.slowdown > 0.95, "sanity: {:.3}", r.slowdown);
        assert_eq!(r.unclaimed_packets, 0, "every packet had a subscriber");
    }

    #[test]
    fn asan_scales_with_ucore_count() {
        let run = |n| {
            run_fireguard(
                &ExperimentConfig::new("bodytrack")
                    .kernel(KernelId::ASAN, n)
                    .insts(60_000),
            )
            .slowdown
        };
        let two = run(2);
        let twelve = run(12);
        assert!(
            two > twelve,
            "more µcores must reduce ASan slowdown: 2µ={two:.3} 12µ={twelve:.3}"
        );
        assert!(two > 1.2, "2 µcores overload on bodytrack: {two:.3}");
    }

    #[test]
    fn ha_overhead_is_negligible() {
        let r = run_fireguard(
            &ExperimentConfig::new("streamcluster")
                .kernel_ha(KernelId::SHADOW_STACK)
                .insts(60_000),
        );
        assert!(
            r.slowdown < 1.02,
            "HA shadow stack ≈ zero overhead: {:.4}",
            r.slowdown
        );
    }

    #[test]
    fn attacks_are_detected_with_positive_latency() {
        let plan = AttackPlan::campaign(
            &[fireguard_trace::AttackKind::RetHijack],
            10,
            5_000,
            40_000,
            3,
        );
        let r = run_fireguard(
            &ExperimentConfig::new("ferret")
                .kernel(KernelId::SHADOW_STACK, 4)
                .insts(80_000)
                .attacks(plan),
        );
        let lats = r.attack_latencies_ns();
        assert!(!lats.is_empty(), "hijacks detected");
        assert!(lats.iter().all(|&l| l > 0.0), "positive latencies");
        assert!(lats[0] < 10_000.0, "latency in the ns range: {}", lats[0]);
    }

    #[test]
    fn software_asan_is_slower_than_nothing() {
        let s = run_software(SoftwareScheme::AsanX86, "swaptions", 42, 40_000);
        assert!(s > 1.3, "software ASan costs real time: {s:.3}");
        let arm = run_software(SoftwareScheme::AsanAArch64, "swaptions", 42, 40_000);
        assert!(arm > s, "AArch64 ASan heavier than x86: {arm:.3} vs {s:.3}");
    }

    #[test]
    fn superscalar_mapper_helps_burst_bound_workloads() {
        // x264 + HA is mapper-bound under commit bursts; footnote 5's
        // superscalar mapper should recover most of the residual overhead.
        let scalar = run_fireguard(
            &ExperimentConfig::new("x264")
                .kernel_ha(KernelId::PMC)
                .insts(40_000),
        );
        let wide = run_fireguard(
            &ExperimentConfig::new("x264")
                .kernel_ha(KernelId::PMC)
                .mapper_width(2)
                .insts(40_000),
        );
        assert!(
            wide.slowdown < scalar.slowdown,
            "2-wide mapper {:.3} must beat scalar {:.3}",
            wide.slowdown,
            scalar.slowdown
        );
        assert!(
            wide.slowdown < 1.03,
            "wide mapper ≈ no overhead: {:.3}",
            wide.slowdown
        );
    }

    #[test]
    fn replay_of_captured_events_is_byte_identical() {
        let plan = AttackPlan::campaign(
            &[fireguard_trace::AttackKind::RetHijack],
            5,
            2_000,
            18_000,
            3,
        );
        let cfg = ExperimentConfig::new("ferret")
            .kernel(KernelId::SHADOW_STACK, 4)
            .insts(20_000)
            .attacks(plan);
        let offline = run_fireguard(&cfg);
        let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
        let events = capture_events(&cfg);
        assert_eq!(events.len() as u64, cfg.insts + crate::REPLAY_MARGIN);
        let replayed = run_fireguard_events(&cfg, events, base);
        assert_eq!(
            format!("{offline:?}"),
            format!("{replayed:?}"),
            "replay must be byte-identical to in-process generation"
        );
        assert!(!offline.detections.is_empty(), "hijacks detected");
    }

    #[test]
    fn observed_run_streams_every_detection_exactly_once() {
        let plan = AttackPlan::campaign(
            &[fireguard_trace::AttackKind::OutOfBounds],
            8,
            2_000,
            25_000,
            7,
        );
        let cfg = ExperimentConfig::new("dedup")
            .kernel(KernelId::ASAN, 4)
            .insts(30_000)
            .attacks(plan);
        let offline = run_fireguard(&cfg);
        let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
        let mut sys = crate::build_system(&cfg, cfg.trace());
        let mut streamed = Vec::new();
        let result = sys.run_insts_observed(cfg.insts, base, 512, &mut |batch| {
            streamed.extend_from_slice(batch);
        });
        assert_eq!(result.cycles, offline.cycles);
        assert_eq!(result.packets, offline.packets);
        assert_eq!(
            streamed.len(),
            offline.detections.len(),
            "online observer sees exactly the offline detections"
        );
        assert_eq!(
            result.detections.len(),
            offline.detections.len(),
            "the final result is complete regardless of draining"
        );
        let mut a: Vec<u64> = streamed.iter().map(|d| d.seq).collect();
        let mut b: Vec<u64> = offline.detections.iter().map(|d| d.seq).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_runs() {
        let cfg = ExperimentConfig::new("freqmine")
            .kernel(KernelId::ASAN, 4)
            .insts(30_000);
        let a = run_fireguard(&cfg);
        let b = run_fireguard(&cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.packets, b.packets);
    }
}
