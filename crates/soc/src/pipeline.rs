//! In-session pipeline parallelism: trace generation ∥ verdict judging ∥
//! core simulation, bit-identical to the serial path at any width.
//!
//! # Why this is legal
//!
//! Kernel verdicts are **pure functions of the event-stream prefix in seq
//! order** ([`Semantics`] implementations may touch nothing but their own
//! state and the events). The core commits events in exactly that order,
//! so the verdict of event *n* can be computed arbitrarily far ahead of
//! the cycle in which event *n* commits — the timing simulation never
//! feeds back into the verdicts. This module exploits that: events are
//! judged in fixed-size seq-ordered batches ([`EventBatch`]) either
//! inline (serial [`JudgedTrace`]) or on worker threads
//! ([`PipelinedTrace`]), and the results are committed through a single
//! seq-ordered [`VerdictWindow`] the frontend consumes front-first. Every
//! stage preserves batch boundaries ([`BATCH_EVENTS`]) and batch order,
//! so cycles, packets, detections, digests and `.fgt` replays are
//! byte-identical at every `--pipeline` width.
//!
//! # Stages and widths
//!
//! * width 1 — serial: the core's trace pull judges a batch inline.
//! * width 2 — one worker generates **and** judges batches; the core
//!   consumes them through a bounded SPSC ring.
//! * width ≥ 3 — generation and judging split onto two workers chained
//!   by a second ring (effective stages clamp at 3; higher widths are
//!   accepted and identical by construction).
//! * width 0 / auto — `std::thread::available_parallelism()`, clamped;
//!   a 1-CPU container degrades to the serial path automatically.
//!
//! Backpressure is explicit: a stage that cannot hand off its batch spins
//! on the ring, counting stalled iterations into [`PipelineStats`] — the
//! per-stage ring-full counters surfaced through telemetry.

use fireguard_core::spsc::{self, PushError};
use fireguard_kernels::{KernelId, Semantics};
use fireguard_trace::{EventBatch, TraceInst, BATCH_EVENTS};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// Judged batches buffered between stages. Two rings of this depth bound
/// the pipeline's look-ahead at `2 * RING_BATCHES * BATCH_EVENTS` events.
const RING_BATCHES: usize = 8;

/// The seq-ordered verdict hand-off between the judging stage (wherever
/// it runs) and the commit-stage frontend.
///
/// The judging side pushes `(seq, verdict)` pairs in seq order *before*
/// the corresponding events are yielded to the core; the frontend reads
/// the front entry matching the committing seq and pops it once the offer
/// is accepted — exactly the judge-once-per-event discipline the serial
/// `last_judged` dedup implemented, generalised to a window.
#[derive(Debug, Default)]
pub struct VerdictWindow {
    q: VecDeque<(u64, u8)>,
}

impl VerdictWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one judged event (called in seq order by the judging side).
    #[inline]
    pub fn push(&mut self, seq: u64, verdict: u8) {
        self.q.push_back((seq, verdict));
    }

    /// Appends one judged batch: `events[i]` got `verdicts[i]`. One
    /// reserve + bulk extend instead of a checked push per event.
    #[inline]
    pub fn push_judged(&mut self, events: &[TraceInst], verdicts: &[u8]) {
        debug_assert_eq!(events.len(), verdicts.len());
        self.q
            .extend(events.iter().map(|t| t.seq).zip(verdicts.iter().copied()));
    }

    /// The verdict for the committing event `seq`, without consuming it
    /// (commit may retry the same event next cycle after a refusal).
    /// Entries older than `seq` are discarded — they were judged for
    /// events the core never offered (possible only across run
    /// boundaries, never mid-stream).
    ///
    /// # Panics
    ///
    /// Panics if `seq` has no judged verdict: the trace-iterator contract
    /// (judge the batch before yielding any of its events) was broken.
    #[inline]
    pub fn verdict_for(&mut self, seq: u64) -> u8 {
        while let Some(&(s, v)) = self.q.front() {
            if s < seq {
                self.q.pop_front();
                continue;
            }
            if s == seq {
                return v;
            }
            break;
        }
        panic!("event {seq} reached commit without a judged verdict");
    }

    /// Consumes the front entry once its offer was accepted.
    #[inline]
    pub fn consume(&mut self, seq: u64) {
        if let Some(&(s, _)) = self.q.front() {
            if s == seq {
                self.q.pop_front();
            }
        }
    }

    /// Judged-but-unconsumed entries (look-ahead depth).
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when no judged verdicts are pending.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

/// Per-stage backpressure tallies for one pipelined session: every
/// counter is a stalled spin iteration against a full (producer side) or
/// empty (consumer side) ring. Written with relaxed atomics by the worker
/// threads, read by telemetry snapshots.
#[derive(Debug, Default)]
pub struct PipelineStats {
    /// Generation stalled: the gen→judge ring was full.
    pub gen_ring_full: AtomicU64,
    /// Judging stalled: the judge→core ring was full.
    pub judge_ring_full: AtomicU64,
    /// The core waited: the judged-batch ring was empty.
    pub core_ring_empty: AtomicU64,
    /// Batches that crossed the final ring.
    pub batches: AtomicU64,
}

impl PipelineStats {
    /// A relaxed snapshot as plain numbers: `(gen_ring_full,
    /// judge_ring_full, core_ring_empty, batches)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.gen_ring_full.load(Ordering::Relaxed),
            self.judge_ring_full.load(Ordering::Relaxed),
            self.core_ring_empty.load(Ordering::Relaxed),
            self.batches.load(Ordering::Relaxed),
        )
    }
}

/// Fresh judging state machines for a deployment, in slot order — the
/// exact semantics the serial frontend would have owned.
pub fn fresh_judges(kernels: &[KernelId]) -> Vec<(u8, Box<dyn Semantics>)> {
    kernels
        .iter()
        .enumerate()
        .map(|(vbit, id)| (vbit as u8, id.semantics()))
        .collect()
}

/// Runs every kernel's batched judge over `batch`, leaving the OR-ed
/// verdict bytes in `batch.verdicts`.
fn judge_batch_into(judges: &mut [(u8, Box<dyn Semantics>)], batch: &mut EventBatch) {
    // The verdict column is detached while judging so the batch can be
    // borrowed immutably; `refill` left it zeroed at batch length.
    let mut out = std::mem::take(&mut batch.verdicts);
    debug_assert_eq!(out.len(), batch.len());
    for (vbit, sem) in judges.iter_mut() {
        sem.judge_batch(batch, *vbit, &mut out);
    }
    batch.verdicts = out;
}

/// Resolves a requested `--pipeline` width (0 = auto) against the host:
/// auto takes `available_parallelism()`; everything is clamped to the
/// three real stages. The result decides serial (≤1) vs threaded.
pub fn resolve_pipeline_width(requested: u32) -> u32 {
    let w = if requested == 0 {
        thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1)
    } else {
        requested
    };
    w.min(3)
}

/// The serial judged trace: pulls events from the source in
/// [`BATCH_EVENTS`]-sized batches, judges each batch inline through the
/// deployment's kernels, deposits the verdicts in the shared
/// [`VerdictWindow`], then yields the events one at a time to the core.
pub struct JudgedTrace<I> {
    src: I,
    judges: Vec<(u8, Box<dyn Semantics>)>,
    window: Rc<RefCell<VerdictWindow>>,
    batch: EventBatch,
    pos: usize,
}

impl<I: Iterator<Item = TraceInst>> JudgedTrace<I> {
    /// Wraps `src`, judging through fresh semantics for `kernels` (slot
    /// order = verdict bit order).
    pub fn new(src: I, kernels: &[KernelId], window: Rc<RefCell<VerdictWindow>>) -> Self {
        JudgedTrace {
            src,
            judges: fresh_judges(kernels),
            window,
            batch: EventBatch::with_capacity(BATCH_EVENTS),
            pos: 0,
        }
    }
}

impl<I: Iterator<Item = TraceInst>> Iterator for JudgedTrace<I> {
    type Item = TraceInst;

    fn next(&mut self) -> Option<TraceInst> {
        if self.pos >= self.batch.len() {
            if self.batch.refill(&mut self.src, BATCH_EVENTS) == 0 {
                return None;
            }
            judge_batch_into(&mut self.judges, &mut self.batch);
            self.window
                .borrow_mut()
                .push_judged(self.batch.events(), &self.batch.verdicts);
            self.pos = 0;
        }
        let t = self.batch.events()[self.pos];
        self.pos += 1;
        Some(t)
    }
}

/// Pushes `batch` into `tx`, spinning against a full ring (each stalled
/// iteration counted into `stalls`) until it fits, the peer is gone, or
/// `shutdown` is raised. Returns `false` when the stage should exit.
fn push_batch(
    tx: &mut spsc::Producer<EventBatch>,
    mut batch: EventBatch,
    stalls: &AtomicU64,
    shutdown: &AtomicBool,
) -> bool {
    loop {
        match tx.try_push(batch) {
            Ok(()) => return true,
            Err(PushError::Closed(_)) => return false,
            Err(PushError::Full(back)) => {
                if shutdown.load(Ordering::Relaxed) {
                    return false;
                }
                batch = back;
                stalls.fetch_add(1, Ordering::Relaxed);
                thread::yield_now();
            }
        }
    }
}

/// The threaded judged trace: identical observable behaviour to
/// [`JudgedTrace`], with generation (and, at width ≥ 3, judging) running
/// ahead of the core on worker threads connected by bounded SPSC rings.
/// Batches are recycled back to the generation stage through a return
/// ring, so the steady state allocates nothing per event.
pub struct PipelinedTrace {
    rx: spsc::Consumer<EventBatch>,
    recycle_tx: spsc::Producer<EventBatch>,
    window: Rc<RefCell<VerdictWindow>>,
    stats: Arc<PipelineStats>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<thread::JoinHandle<()>>,
    batch: EventBatch,
    pos: usize,
    done: bool,
}

impl PipelinedTrace {
    /// Spawns the worker stages for `width` (≥ 2; callers resolve auto
    /// and route width ≤ 1 to [`JudgedTrace`]).
    ///
    /// At width 2 a single worker generates **and** judges; at width ≥ 3
    /// generation and judging are separate workers chained by a ring.
    pub fn new(
        src: Box<dyn Iterator<Item = TraceInst> + Send>,
        kernels: &[KernelId],
        window: Rc<RefCell<VerdictWindow>>,
        width: u32,
        stats: Arc<PipelineStats>,
    ) -> Self {
        let mut judges = fresh_judges(kernels);
        let shutdown = Arc::new(AtomicBool::new(false));
        let (judged_tx, judged_rx) = spsc::ring::<EventBatch>(RING_BATCHES);
        let (recycle_tx, recycle_rx) = spsc::ring::<EventBatch>(2 * RING_BATCHES + 2);
        let mut workers = Vec::new();

        if width >= 3 {
            // gen ∥ judge ∥ core.
            let (raw_tx, raw_rx) = spsc::ring::<EventBatch>(RING_BATCHES);
            workers.push(spawn_gen(
                src,
                raw_tx,
                recycle_rx,
                Arc::clone(&stats),
                Arc::clone(&shutdown),
            ));
            let jstats = Arc::clone(&stats);
            let jshut = Arc::clone(&shutdown);
            workers.push(
                thread::Builder::new()
                    .name("fg-judge".into())
                    .spawn(move || {
                        let mut raw_rx = raw_rx;
                        let mut judged_tx = judged_tx;
                        while let Some(mut batch) = pop_batch(&mut raw_rx, &jshut) {
                            judge_batch_into(&mut judges, &mut batch);
                            if !push_batch(&mut judged_tx, batch, &jstats.judge_ring_full, &jshut) {
                                break;
                            }
                        }
                    })
                    .expect("spawn judge stage"),
            );
        } else {
            // gen+judge ∥ core.
            let gstats = Arc::clone(&stats);
            let gshut = Arc::clone(&shutdown);
            workers.push(
                thread::Builder::new()
                    .name("fg-genjudge".into())
                    .spawn(move || {
                        let mut src = src;
                        let mut recycle_rx = recycle_rx;
                        let mut judged_tx = judged_tx;
                        loop {
                            let mut batch = recycle_rx
                                .try_pop()
                                .unwrap_or_else(|| EventBatch::with_capacity(BATCH_EVENTS));
                            if batch.refill(&mut src, BATCH_EVENTS) == 0 {
                                break; // source exhausted: ring closes on drop
                            }
                            judge_batch_into(&mut judges, &mut batch);
                            if !push_batch(&mut judged_tx, batch, &gstats.judge_ring_full, &gshut) {
                                break;
                            }
                        }
                    })
                    .expect("spawn gen+judge stage"),
            );
        }

        PipelinedTrace {
            rx: judged_rx,
            recycle_tx,
            window,
            stats,
            shutdown,
            workers,
            batch: EventBatch::with_capacity(BATCH_EVENTS),
            pos: 0,
            done: false,
        }
    }
}

/// Spawns the generation stage for the 3-stage shape: refills batches
/// from `src` (recycled where possible) and hands them to the judge ring.
fn spawn_gen(
    src: Box<dyn Iterator<Item = TraceInst> + Send>,
    raw_tx: spsc::Producer<EventBatch>,
    recycle_rx: spsc::Consumer<EventBatch>,
    stats: Arc<PipelineStats>,
    shutdown: Arc<AtomicBool>,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("fg-gen".into())
        .spawn(move || {
            let mut src = src;
            let mut raw_tx = raw_tx;
            let mut recycle_rx = recycle_rx;
            loop {
                let mut batch = recycle_rx
                    .try_pop()
                    .unwrap_or_else(|| EventBatch::with_capacity(BATCH_EVENTS));
                if batch.refill(&mut src, BATCH_EVENTS) == 0 {
                    break;
                }
                if !push_batch(&mut raw_tx, batch, &stats.gen_ring_full, &shutdown) {
                    break;
                }
            }
        })
        .expect("spawn gen stage")
}

/// Pops the next batch, spinning on an empty ring until a batch arrives,
/// the producer closed, or `shutdown` is raised.
fn pop_batch(rx: &mut spsc::Consumer<EventBatch>, shutdown: &AtomicBool) -> Option<EventBatch> {
    loop {
        if let Some(b) = rx.try_pop() {
            return Some(b);
        }
        if rx.is_closed() || shutdown.load(Ordering::Relaxed) {
            return None;
        }
        thread::yield_now();
    }
}

impl Iterator for PipelinedTrace {
    type Item = TraceInst;

    fn next(&mut self) -> Option<TraceInst> {
        if self.pos >= self.batch.len() {
            if self.done {
                return None;
            }
            // Recycle the spent batch (best effort; a full return ring
            // just lets this one drop).
            let spent = std::mem::take(&mut self.batch);
            let _ = self.recycle_tx.try_push(spent);
            // Blocking pop with stall accounting on the core side.
            let next = loop {
                if let Some(b) = self.rx.try_pop() {
                    break b;
                }
                if self.rx.is_closed() {
                    self.done = true;
                    return None;
                }
                self.stats.core_ring_empty.fetch_add(1, Ordering::Relaxed);
                thread::yield_now();
            };
            self.stats.batches.fetch_add(1, Ordering::Relaxed);
            self.window
                .borrow_mut()
                .push_judged(next.events(), &next.verdicts);
            self.batch = next;
            self.pos = 0;
        }
        let t = self.batch.events()[self.pos];
        self.pos += 1;
        Some(t)
    }
}

impl Drop for PipelinedTrace {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Drain so a producer blocked on a full judged ring can observe
        // shutdown at its next spin and exit.
        while self.rx.try_pop().is_some() {}
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireguard_trace::{TraceGenerator, WorkloadProfile};

    fn gen(seed: u64) -> TraceGenerator {
        TraceGenerator::new(WorkloadProfile::parsec("dedup").unwrap(), seed)
    }

    const KERNELS: &[KernelId] = &[
        KernelId::PMC,
        KernelId::SHADOW_STACK,
        KernelId::ASAN,
        KernelId::UAF,
    ];

    /// Serial per-event judging: the reference stream.
    fn reference(n: usize) -> Vec<(TraceInst, u8)> {
        let mut judges = fresh_judges(KERNELS);
        gen(9)
            .take(n)
            .map(|t| {
                let mut v = 0u8;
                for (vbit, sem) in judges.iter_mut() {
                    if sem.judge(&t) {
                        v |= 1 << *vbit;
                    }
                }
                (t, v)
            })
            .collect()
    }

    fn drain<I: Iterator<Item = TraceInst>>(
        mut it: I,
        window: &Rc<RefCell<VerdictWindow>>,
        n: usize,
    ) -> Vec<(TraceInst, u8)> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let t = it.next().expect("stream");
            let mut w = window.borrow_mut();
            let v = w.verdict_for(t.seq);
            w.consume(t.seq);
            out.push((t, v));
        }
        out
    }

    #[test]
    fn serial_judged_trace_matches_per_event_judging() {
        let n = 3 * BATCH_EVENTS + 17; // straddle batch boundaries
        let window = Rc::new(RefCell::new(VerdictWindow::new()));
        let jt = JudgedTrace::new(gen(9).take(n), KERNELS, Rc::clone(&window));
        let got = drain(jt, &window, n);
        let want = reference(n);
        for ((gt, gv), (wt, wv)) in got.iter().zip(&want) {
            assert_eq!(gt.seq, wt.seq);
            assert_eq!(gv, wv, "verdict mismatch at seq {}", gt.seq);
        }
    }

    #[test]
    fn pipelined_trace_matches_serial_at_both_shapes() {
        let n = 5 * BATCH_EVENTS + 3;
        let want = reference(n);
        for width in [2u32, 3, 4] {
            let window = Rc::new(RefCell::new(VerdictWindow::new()));
            let src: Box<dyn Iterator<Item = TraceInst> + Send> = Box::new(gen(9).take(n));
            let pt = PipelinedTrace::new(
                src,
                KERNELS,
                Rc::clone(&window),
                width,
                Arc::new(PipelineStats::default()),
            );
            let got = drain(pt, &window, n);
            assert_eq!(got.len(), want.len());
            for ((gt, gv), (wt, wv)) in got.iter().zip(&want) {
                assert_eq!(gt.seq, wt.seq, "order differs at width {width}");
                assert_eq!(gv, wv, "verdict differs at width {width} seq {}", gt.seq);
            }
        }
    }

    #[test]
    fn dropping_a_pipelined_trace_midstream_joins_workers() {
        // Infinite source: only shutdown can stop the workers.
        let window = Rc::new(RefCell::new(VerdictWindow::new()));
        let src: Box<dyn Iterator<Item = TraceInst> + Send> = Box::new(gen(1));
        let mut pt = PipelinedTrace::new(
            src,
            KERNELS,
            Rc::clone(&window),
            3,
            Arc::new(PipelineStats::default()),
        );
        for _ in 0..10 {
            pt.next().expect("live stream");
        }
        drop(pt); // must not hang
    }

    #[test]
    fn window_discards_stale_and_panics_on_missing() {
        let mut w = VerdictWindow::new();
        w.push(10, 1);
        w.push(11, 2);
        w.push(12, 0);
        assert_eq!(w.verdict_for(11), 2, "stale seq 10 discarded");
        assert_eq!(w.verdict_for(11), 2, "retry reads the same verdict");
        w.consume(11);
        assert_eq!(w.verdict_for(12), 0);
        let r = std::panic::catch_unwind(move || w.verdict_for(13));
        assert!(r.is_err(), "unjudged seq must panic loudly");
    }

    #[test]
    fn auto_width_resolves_to_host_parallelism_clamped() {
        let w = resolve_pipeline_width(0);
        assert!((1..=3).contains(&w));
        assert_eq!(resolve_pipeline_width(1), 1);
        assert_eq!(resolve_pipeline_width(4), 3, "stages clamp at 3");
    }
}
