//! The assembled FireGuard SoC.
//!
//! Wires the paper's Fig. 1 together: the BOOM core's commit paths feed the
//! event filter (fast domain); the arbiter/allocator move one packet per
//! fast cycle into per-engine handshake CDC queues; on slow-domain edges
//! the multicast channel drains CDCs into the analysis engines' message
//! queues; µcores (or HAs) consume packets; inter-checker packets ride the
//! Manhattan-grid NoC. Any full queue back-pressures upstream all the way
//! to commit, which is where slowdown comes from.

use crate::pipeline::{JudgedTrace, PipelineStats, PipelinedTrace, VerdictWindow};
use crate::report::{BottleneckBreakdown, Detection, RunResult};
use fireguard_boom::{BoomConfig, CommitSink, Core};
use fireguard_core::{
    Allocator, CdcQueue, ClockDivider, EventFilter, FilterConfig, Packet, SchedulingEngine,
};
use fireguard_kernels::{
    GuardianKernel, HardwareAccelerator, KernelId, ProgrammingModel, SharedTiming,
};
use fireguard_noc::Mesh;
use fireguard_telemetry::{EngineCounters, MAX_CLASSES};
use fireguard_trace::TraceInst;
use fireguard_ucore::{IsaxMode, KernelBackend, QueueEntry, Ucore, UcoreConfig};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::Arc;

/// How a kernel's analysis capacity is provisioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineConfig {
    /// `n` Rocket µcores.
    Ucores(usize),
    /// A single fixed-function hardware accelerator.
    Ha,
}

/// Hard ceiling on kernels sharing one packet stream: the width of the
/// packet verdict field (layout v2: 8). Derived, not repeated — widening
/// the field in `fireguard_core::packet::layout` lifts this too.
pub const MAX_KERNELS: usize = fireguard_core::packet::layout::VERDICT_BITS as usize;

/// Hard ceiling on total analysis engines (the allocator's `AE_Bitmap`
/// addresses 16 engines).
pub const MAX_ENGINES: usize = 16;

/// A deployment request the SoC cannot be built for. Surfaced as a clean
/// error (CLI exit, serve `ERROR` frame) rather than a panic, because the
/// request may come from untrusted session input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityError {
    /// More kernels than the packet verdict field has bits.
    TooManyKernels {
        /// Kernels requested.
        requested: usize,
    },
    /// More engines than the allocator bitmap addresses.
    TooManyEngines {
        /// Total engines requested across all kernels.
        requested: usize,
    },
    /// A kernel provisioned with zero µcores.
    ZeroEngines {
        /// The kernel with the empty allocation.
        kernel: KernelId,
    },
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapacityError::TooManyKernels { requested } => write!(
                f,
                "{requested} kernels requested but the packet verdict field holds {MAX_KERNELS}"
            ),
            CapacityError::TooManyEngines { requested } => write!(
                f,
                "{requested} engines requested but the allocator addresses {MAX_ENGINES}"
            ),
            CapacityError::ZeroEngines { kernel } => {
                write!(f, "kernel {} needs at least one engine", kernel.name())
            }
        }
    }
}

impl std::error::Error for CapacityError {}

/// Validates a deployment request against the structural ceilings:
/// at most [`MAX_KERNELS`] kernels (the packet verdict width), at most
/// [`MAX_ENGINES`] engines in total (the allocator bitmap), and no
/// kernel provisioned with zero µcores. Shared by
/// [`FireGuardSystem::try_new`] and every front door that accepts a
/// deployment from outside (CLI flags, served HELLOs, sweep grids).
///
/// # Errors
///
/// The specific [`CapacityError`].
pub fn validate_capacity(kernels: &[(KernelId, EngineConfig)]) -> Result<(), CapacityError> {
    if kernels.len() > MAX_KERNELS {
        return Err(CapacityError::TooManyKernels {
            requested: kernels.len(),
        });
    }
    let mut total_engines = 0usize;
    for (id, provision) in kernels {
        total_engines += match provision {
            EngineConfig::Ucores(0) => return Err(CapacityError::ZeroEngines { kernel: *id }),
            EngineConfig::Ucores(n) => *n,
            EngineConfig::Ha => 1,
        };
    }
    if total_engines > MAX_ENGINES {
        return Err(CapacityError::TooManyEngines {
            requested: total_engines,
        });
    }
    Ok(())
}

/// System-level configuration.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// Main-core configuration.
    pub boom: BoomConfig,
    /// Event-filter geometry (width sweeps drive Fig. 9).
    pub filter: FilterConfig,
    /// Fast:slow clock ratio (3.2 GHz : 1.6 GHz).
    pub clock_ratio: u64,
    /// Per-engine CDC queue depth (Table II: 8).
    pub cdc_depth: usize,
    /// Packets the multicast channel can deliver per engine per slow cycle.
    pub multicast_rate: usize,
    /// Packets the mapper moves per fast cycle. The paper's mapper is
    /// scalar (1); footnote 5 sketches a superscalar mapper with duplicated
    /// channels and SEs for more powerful cores — setting this above 1
    /// models that extension.
    pub mapper_width: usize,
    /// ISAX interface placement in the µcores.
    pub isax: IsaxMode,
    /// Programming model for the kernel µ-programs.
    pub model: ProgrammingModel,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            boom: BoomConfig::default(),
            filter: FilterConfig::default(),
            clock_ratio: 2,
            cdc_depth: 8,
            multicast_rate: 2,
            mapper_width: 1,
            isax: IsaxMode::MaStage,
            model: ProgrammingModel::Hybrid,
        }
    }
}

/// A µcore engine with its kernel backend, boxed as a unit: `Ucore` is far
/// larger than `HardwareAccelerator`, and boxing keeps `Engine` small and
/// cheap to move while a system is being assembled.
struct UcoreEngine {
    u: Ucore,
    backend: Box<dyn KernelBackend>,
}

enum Engine {
    Ucore(Box<UcoreEngine>),
    Ha(HardwareAccelerator),
}

impl Engine {
    fn queue_full(&self) -> bool {
        match self {
            Engine::Ucore(e) => e.u.input().is_full(),
            Engine::Ha(h) => h.is_full(),
        }
    }

    fn queue_free(&self) -> bool {
        !self.queue_full()
    }
}

/// The commit-stage frontend: filter + mapper + CDC, consuming verdicts
/// the judging stage computed ahead of commit. Implements [`CommitSink`]
/// so the core drives it directly.
struct Frontend {
    filter: EventFilter,
    allocator: Allocator,
    /// Seq-ordered verdicts deposited by the judging stage (inline or a
    /// pipeline worker) before each event reaches the core.
    window: Rc<RefCell<VerdictWindow>>,
    cdcs: Vec<CdcQueue<Packet>>,
    engine_full: Vec<bool>,
    breakdown: BottleneckBreakdown,
    /// Write-only telemetry tallies (never read by the simulation): the
    /// offer path adds per-class/per-kernel packet counts, slow edges add
    /// occupancy samples. Compiled to nothing without the `telemetry`
    /// feature.
    counters: EngineCounters,
    /// Per-`InstClass` bitmask of kernel slots subscribed to that class,
    /// derived from the registry's subscriptions at construction — how a
    /// packet's destination kernels are attributed without touching the
    /// mini-filter lookup.
    class_kernels: [u8; MAX_CLASSES],
}

impl Frontend {
    /// One mapper step: at most one packet from the arbiter through the
    /// allocator into the destination CDC queues. Runs every fast cycle,
    /// so it is allocation-free: the engine-occupancy mirror is borrowed
    /// directly and the candidate/destination bitmaps are walked bitwise.
    fn step_mapper(&mut self, now: u64) {
        self.filter.squash_placeholders();
        let Some(p) = self.filter.arbiter_peek() else {
            return;
        };
        // Conservative space check over every candidate engine.
        let mut candidates = self.allocator.candidate_engines(p.gid);
        while candidates != 0 {
            let e = candidates.trailing_zeros() as usize;
            if self.cdcs[e].is_full() {
                return; // CDC back-pressure: leave the packet buffered
            }
            candidates &= candidates - 1;
        }
        let engine_full = &self.engine_full;
        let mut dest = self.allocator.route(p.gid, &|e| !engine_full[e]);
        let p = self.filter.arbiter_pop().expect("peeked");
        while dest != 0 {
            let e = dest.trailing_zeros() as usize;
            self.cdcs[e]
                .push(p, now)
                .unwrap_or_else(|_| unreachable!("space checked above"));
            dest &= dest - 1;
        }
    }

    /// Offers one committing instruction; on refusal the stall is
    /// attributed to the deepest blocked stage (Fig. 9's decomposition).
    ///
    /// The verdict is read (not consumed) from the window front — commit
    /// retries the same event next cycle after a refusal and must see the
    /// same verdict; acceptance pops it, which is exactly the
    /// judge-once-per-event discipline.
    fn offer_inner(&mut self, now: u64, slot: usize, inst: &TraceInst) -> bool {
        let mut window = self.window.borrow_mut();
        let verdicts = window.verdict_for(inst.seq);
        let before = self.filter.stats();
        let ok = self.filter.offer_judged(now, slot, inst, verdicts);
        if ok {
            window.consume(inst.seq);
        }
        drop(window);
        if cfg!(feature = "telemetry") && self.filter.stats().packets > before.packets {
            // A valid packet left the mini-filters: attribute it to its
            // instruction class and every subscribed kernel slot.
            let class_ix = (inst.class as usize).min(MAX_CLASSES - 1);
            self.counters.class_packets[class_ix] += 1;
            let mut mask = self.class_kernels[class_ix];
            while mask != 0 {
                let k = mask.trailing_zeros() as usize;
                self.counters.kernel_packets[k] += 1;
                if verdicts & (1 << k) != 0 {
                    self.counters.kernel_verdicts[k] += 1;
                }
                mask &= mask - 1;
            }
        }
        if !ok {
            if self.filter.stats().refusals_width > before.refusals_width {
                self.breakdown.filter += 1;
            } else if self.engine_full.iter().any(|&f| f) {
                self.breakdown.ucore += 1;
            } else if self.cdcs.iter().any(|c| c.is_full()) {
                self.breakdown.cdc += 1;
            } else {
                self.breakdown.mapper += 1;
            }
        }
        ok
    }

    fn new(
        filter: EventFilter,
        allocator: Allocator,
        window: Rc<RefCell<VerdictWindow>>,
        cdcs: Vec<CdcQueue<Packet>>,
        n_engines: usize,
        class_kernels: [u8; MAX_CLASSES],
    ) -> Self {
        Frontend {
            filter,
            allocator,
            window,
            cdcs,
            engine_full: vec![false; n_engines],
            breakdown: BottleneckBreakdown::default(),
            counters: EngineCounters::default(),
            class_kernels,
        }
    }
}

impl CommitSink for Frontend {
    fn offer(&mut self, now: u64, slot: usize, inst: &TraceInst) -> bool {
        self.offer_inner(now, slot, inst)
    }

    fn prf_ports_stolen(&mut self, now: u64) -> usize {
        self.filter.prf_ports_stolen(now)
    }
}

/// The full FireGuard system.
pub struct FireGuardSystem {
    cfg: SocConfig,
    core: Core<Box<dyn Iterator<Item = TraceInst>>>,
    frontend: Frontend,
    engines: Vec<Engine>,
    /// (kernel id, vbit, engines) for reporting and NoC rings.
    kernel_groups: Vec<(KernelId, usize, Vec<usize>)>,
    /// Per-kernel shared timing state, exposed for reports (sweep counts).
    pub shared_timing: Vec<std::rc::Rc<std::cell::RefCell<SharedTiming>>>,
    mesh: Mesh,
    pending_noc: BinaryHeap<Reverse<(u64, usize, u64)>>, // (deliver_at, engine, payload-lo)
    divider: ClockDivider,
    /// Effective pipeline width (1 = serial judging inline with the
    /// core's trace pull; ≥2 = worker stages ahead of the core).
    pipeline_width: u32,
    /// Stage backpressure counters when worker stages are live.
    pipeline_stats: Option<Arc<PipelineStats>>,
    /// True while the whole FireGuard side is provably quiescent — no
    /// packet buffered anywhere and every engine parked — so per-cycle
    /// mapper/fabric/engine work can be skipped without changing any
    /// observable timing (engines catch their clocks up on wake).
    fg_idle: bool,
    /// The last slow cycle whose fabric/engine work actually ran; a gap
    /// means idle cycles were skipped and µcore clocks must catch up.
    last_slow_processed: u64,
    /// The engine-occupancy mirror is stale by design: policies at fast
    /// cycle N see the queues as of the *previous* refresh, exactly like
    /// the original end-of-cycle recomputation. Set at slow edges,
    /// applied at the top of the next fast cycle.
    refresh_pending: bool,
    /// Detections drained from the engines so far (see
    /// [`FireGuardSystem::drain_detections`]).
    detections: Vec<Detection>,
}

impl FireGuardSystem {
    /// Builds a system: `kernels` are provisioned in order, each getting
    /// its engine allocation and the verdict bit equal to its position.
    ///
    /// # Panics
    ///
    /// Panics on a capacity violation (see [`FireGuardSystem::try_new`]).
    /// Use `try_new` when the deployment request comes from untrusted
    /// input (a CLI flag, a served HELLO).
    pub fn new(
        cfg: SocConfig,
        trace: Box<dyn Iterator<Item = TraceInst>>,
        kernels: &[(KernelId, EngineConfig)],
    ) -> Self {
        Self::try_new(cfg, trace, kernels).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: rejects deployments exceeding [`MAX_KERNELS`]
    /// (the packet verdict width) or [`MAX_ENGINES`] (the allocator
    /// bitmap), or provisioning a kernel with zero engines — without
    /// panicking, so hostile or oversized session configs surface as
    /// clean errors.
    ///
    /// The trace is judged serially (batched, inline with the core's
    /// trace pull); see [`FireGuardSystem::try_new_pipelined`] for the
    /// threaded stages.
    pub fn try_new(
        cfg: SocConfig,
        trace: Box<dyn Iterator<Item = TraceInst>>,
        kernels: &[(KernelId, EngineConfig)],
    ) -> Result<Self, CapacityError> {
        validate_capacity(kernels)?;
        let ids: Vec<KernelId> = kernels.iter().map(|&(id, _)| id).collect();
        let window = Rc::new(RefCell::new(VerdictWindow::new()));
        let judged: Box<dyn Iterator<Item = TraceInst>> =
            Box::new(JudgedTrace::new(trace, &ids, Rc::clone(&window)));
        Ok(Self::assemble(cfg, judged, window, 1, None, kernels))
    }

    /// Like [`FireGuardSystem::try_new`], but the judging stage may run
    /// ahead of the core on worker threads. `pipeline` is the requested
    /// width (0 = auto from `available_parallelism()`); the effective
    /// width is clamped to the three real stages and a width ≤ 1 —
    /// including auto on a 1-CPU host — degrades to the serial path.
    /// Results are bit-identical at every width: verdicts are pure
    /// functions of the seq-ordered event stream, and batch boundaries
    /// and batch order are preserved across all shapes.
    ///
    /// # Errors
    ///
    /// The same capacity errors as [`FireGuardSystem::try_new`].
    pub fn try_new_pipelined(
        cfg: SocConfig,
        trace: Box<dyn Iterator<Item = TraceInst> + Send>,
        kernels: &[(KernelId, EngineConfig)],
        pipeline: u32,
    ) -> Result<Self, CapacityError> {
        validate_capacity(kernels)?;
        let width = crate::pipeline::resolve_pipeline_width(pipeline);
        let ids: Vec<KernelId> = kernels.iter().map(|&(id, _)| id).collect();
        let window = Rc::new(RefCell::new(VerdictWindow::new()));
        if width <= 1 {
            let judged: Box<dyn Iterator<Item = TraceInst>> =
                Box::new(JudgedTrace::new(trace, &ids, Rc::clone(&window)));
            return Ok(Self::assemble(cfg, judged, window, 1, None, kernels));
        }
        let stats = Arc::new(PipelineStats::default());
        let judged: Box<dyn Iterator<Item = TraceInst>> = Box::new(PipelinedTrace::new(
            trace,
            &ids,
            Rc::clone(&window),
            width,
            Arc::clone(&stats),
        ));
        Ok(Self::assemble(
            cfg,
            judged,
            window,
            width,
            Some(stats),
            kernels,
        ))
    }

    /// Builds the SoC around an already-judged trace stream (capacity
    /// pre-validated by the public constructors).
    fn assemble(
        cfg: SocConfig,
        trace: Box<dyn Iterator<Item = TraceInst>>,
        window: Rc<RefCell<VerdictWindow>>,
        pipeline_width: u32,
        pipeline_stats: Option<Arc<PipelineStats>>,
        kernels: &[(KernelId, EngineConfig)],
    ) -> Self {
        let mut filter = EventFilter::new(cfg.filter);
        let mut allocator = Allocator::new();
        let mut engines = Vec::new();
        let mut kernel_groups = Vec::new();
        let mut shared_timing = Vec::new();

        let mut class_kernels = [0u8; MAX_CLASSES];
        for (vbit, (id, provision)) in kernels.iter().enumerate() {
            let g = GuardianKernel::new(*id, vbit, cfg.model);
            for (class, gid, dp) in id.subscriptions() {
                filter.subscribe(class, gid, dp);
                class_kernels[(class as usize).min(MAX_CLASSES - 1)] |= 1 << vbit;
            }
            let engine_ids: Vec<usize> = match provision {
                EngineConfig::Ucores(n) => {
                    // n >= 1: validated above.
                    (0..*n)
                        .map(|_| {
                            let ucfg = UcoreConfig {
                                isax_mode: cfg.isax,
                                ..UcoreConfig::default()
                            };
                            let u = Ucore::new(ucfg, g.program());
                            let backend = g.engine_backend();
                            engines.push(Engine::Ucore(Box::new(UcoreEngine { u, backend })));
                            engines.len() - 1
                        })
                        .collect()
                }
                EngineConfig::Ha => {
                    engines.push(Engine::Ha(HardwareAccelerator::line_rate(vbit)));
                    vec![engines.len() - 1]
                }
            };
            let policy = match provision {
                EngineConfig::Ha => fireguard_core::Policy::Fixed,
                _ => id.policy(),
            };
            let se = allocator.add_se(SchedulingEngine::new(engine_ids.clone(), policy));
            for gid in id.gids() {
                allocator.subscribe(gid, se);
            }
            shared_timing.push(g.shared_timing());
            kernel_groups.push((*id, vbit, engine_ids));
        }

        let divider = ClockDivider::new(cfg.clock_ratio);
        let cdcs = (0..engines.len())
            .map(|_| CdcQueue::new(cfg.cdc_depth, divider))
            .collect();
        let mesh = Mesh::for_engines(engines.len().max(1));
        let n_engines = engines.len();
        let frontend = Frontend::new(filter, allocator, window, cdcs, n_engines, class_kernels);
        FireGuardSystem {
            core: Core::new(cfg.boom, trace),
            cfg,
            frontend,
            engines,
            kernel_groups,
            shared_timing,
            mesh,
            pending_noc: BinaryHeap::new(),
            divider,
            pipeline_width,
            pipeline_stats,
            fg_idle: false,
            last_slow_processed: u64::MAX,
            refresh_pending: false,
            detections: Vec::new(),
        }
    }

    /// One fast-domain cycle of the whole system.
    pub fn step(&mut self) {
        let now = self.core.now();
        self.tick_fireguard(now);
        // Main core cycle (commit drives the frontend).
        self.core.step(&mut self.frontend);
        // A committed instruction may have produced the first packet of a
        // busy phase: leave idle mode before the next mapper cycle.
        if self.fg_idle && self.frontend.filter.arbiter_has_packet() {
            self.fg_idle = false;
        }
    }

    /// The FireGuard-side work of one fast cycle: occupancy refresh,
    /// mapper steps, and (on slow-domain edges) fabric + engines. Skipped
    /// wholesale while the system is provably idle.
    fn tick_fireguard(&mut self, now: u64) {
        // Apply the occupancy mirror refresh scheduled by the previous
        // slow edge (equivalent to the original end-of-cycle refresh).
        if self.refresh_pending {
            self.refresh_pending = false;
            for (i, e) in self.engines.iter().enumerate() {
                self.frontend.engine_full[i] = e.queue_full();
            }
        }
        if self.fg_idle {
            // Placeholders still stream in from unmonitored commits; the
            // arbiter keeps discarding them (as the mapper's peek always
            // did) so they never back-pressure the commit stage. Valid
            // packets cannot appear without first leaving idle mode.
            self.frontend.filter.squash_placeholders();
            return;
        }
        // Mapper: one packet per fast cycle (the paper's scalar mapper), or
        // several under the footnote-5 superscalar extension.
        for _ in 0..self.cfg.mapper_width {
            self.frontend.step_mapper(now);
        }
        // Slow-domain edge: multicast delivery, engines, NoC.
        if self.divider.is_slow_edge(now) {
            let slow = self.divider.slow_cycle(now);
            self.slow_edge(slow);
        }
    }

    /// One slow-domain edge: catch up skipped µcore clocks, deliver,
    /// advance engines, route the NoC, then schedule the occupancy
    /// refresh and re-evaluate idleness.
    fn slow_edge(&mut self, slow: u64) {
        if self.last_slow_processed.wrapping_add(1) != slow {
            // Edges were skipped while idle: parked µcores bulk-account
            // the missed cycles so their clocks read exactly as if every
            // edge had advanced them individually.
            for engine in &mut self.engines {
                if let Engine::Ucore(e) = engine {
                    e.u.advance(slow, e.backend.as_mut());
                }
            }
        }
        self.last_slow_processed = slow;
        self.deliver(slow);
        self.step_engines(slow);
        self.route_noc(slow);
        self.refresh_pending = true;
        self.fg_idle = self.all_quiet();
        if cfg!(feature = "telemetry") {
            // Occupancy sampling at the slow edge: reads only, after all
            // state transitions of this edge are done, so the samples can
            // never influence them.
            let buffered = self.frontend.filter.buffered() as u64;
            let mut cdc_total = 0u64;
            let mut cdc_max = 0u64;
            for q in &self.frontend.cdcs {
                let len = q.len() as u64;
                cdc_total += len;
                cdc_max = cdc_max.max(len);
            }
            let c = &mut self.frontend.counters;
            c.slow_edges += 1;
            c.filter_ring_hwm = c.filter_ring_hwm.max(buffered);
            c.cdc_hwm = c.cdc_hwm.max(cdc_max);
            c.mapper_occupancy_sum += cdc_total;
        }
    }

    /// True when no packet is buffered anywhere in the FireGuard side and
    /// every engine is parked (or drained, for HAs): until the commit
    /// stream produces another packet, every skipped cycle is a no-op.
    fn all_quiet(&self) -> bool {
        !self.frontend.filter.arbiter_has_packet()
            && self.pending_noc.is_empty()
            && self.frontend.cdcs.iter().all(|c| c.is_empty())
            && self.engines.iter().all(|e| match e {
                Engine::Ucore(eng) => {
                    eng.u.input().is_empty()
                        && eng.u.output().is_empty()
                        && eng.u.parked_on_empty_input()
                }
                Engine::Ha(h) => h.occupancy() == 0,
            })
    }

    fn deliver(&mut self, slow: u64) {
        for (i, engine) in self.engines.iter_mut().enumerate() {
            // HAs are tightly coupled at line rate (a full commit burst per
            // slow cycle); µcore message queues take the configured rate.
            let rate = match engine {
                Engine::Ha(_) => self.cfg.multicast_rate.max(8),
                Engine::Ucore(_) => self.cfg.multicast_rate,
            };
            for _ in 0..rate {
                if !engine.queue_free() {
                    break;
                }
                let Some(p) = self.frontend.cdcs[i].pop(slow) else {
                    break;
                };
                let entry =
                    QueueEntry::with_meta(p.bits(), p.meta.seq, p.meta.commit_cycle, p.meta.attack);
                match engine {
                    Engine::Ucore(e) => {
                        e.u.input_mut().push(entry).expect("space checked");
                    }
                    Engine::Ha(h) => {
                        let _ = h.push(entry);
                    }
                }
            }
        }
    }

    fn step_engines(&mut self, slow: u64) {
        for engine in &mut self.engines {
            match engine {
                Engine::Ucore(e) => e.u.advance(slow + 1, e.backend.as_mut()),
                Engine::Ha(h) => h.step(slow),
            }
        }
    }

    fn route_noc(&mut self, slow: u64) {
        // Inter-checker traffic: each µcore's output queue is routed to the
        // next engine of the same kernel (ring), via the mesh.
        for (_, _, group) in &self.kernel_groups {
            if group.len() < 2 {
                continue;
            }
            for (gi, &src) in group.iter().enumerate() {
                let dst = group[(gi + 1) % group.len()];
                if let Engine::Ucore(eng) = &mut self.engines[src] {
                    while let Some(e) = eng.u.output_mut().pop() {
                        let t = self.mesh.send(
                            self.mesh.node_for_engine(src),
                            self.mesh.node_for_engine(dst),
                            slow,
                        );
                        self.pending_noc.push(Reverse((t, dst, e.bits() as u64)));
                    }
                }
            }
        }
        // Deliver matured NoC packets.
        while let Some(&Reverse((t, dst, payload))) = self.pending_noc.peek() {
            if t > slow {
                break;
            }
            self.pending_noc.pop();
            if let Engine::Ucore(eng) = &mut self.engines[dst] {
                if eng
                    .u
                    .input_mut()
                    .push(QueueEntry::from_bits(payload.into()))
                    .is_err()
                {
                    // Destination full: retry next slow cycle.
                    self.pending_noc.push(Reverse((t + 1, dst, payload)));
                    break;
                }
            }
        }
    }

    /// Runs until `n` instructions commit; returns the result against the
    /// provided baseline cycle count.
    pub fn run_insts(&mut self, n: u64, baseline_cycles: u64) -> RunResult {
        // `u64::MAX` period = never drain mid-run, so the detection order in
        // the result is engine-major, exactly as it has always been.
        self.run_insts_observed(n, baseline_cycles, u64::MAX, &mut |_| {})
    }

    /// Runs until `n` instructions commit, delivering kernel detections to
    /// `observer` *online*: every `observe_every` fast cycles the engines'
    /// alarm queues are drained and any new [`Detection`]s are handed to
    /// the observer in batch. This is how `fireguard-server` streams alarm
    /// frames to a client while the session is still running.
    ///
    /// Draining alarms has no effect on the simulation itself, so the
    /// returned [`RunResult`] is identical to [`FireGuardSystem::run_insts`]
    /// except for the *order* of `detections` (time-bucketed rather than
    /// engine-major). With `observe_every == u64::MAX` the two are
    /// bit-identical.
    pub fn run_insts_observed(
        &mut self,
        n: u64,
        baseline_cycles: u64,
        observe_every: u64,
        observer: &mut dyn FnMut(&[Detection]),
    ) -> RunResult {
        let target = n;
        let observing = observe_every != u64::MAX;
        let mut tick = 0u64;
        while self.core.stats().committed < target && !self.core.is_drained() {
            self.step();
            tick += 1;
            if observing && tick >= observe_every {
                tick = 0;
                let new = self.drain_detections();
                if !new.is_empty() {
                    observer(&new);
                }
            }
        }
        // Drain the analysis backlog so late detections are observed —
        // without advancing the main core (its cycle count is the result).
        let mut now = self.core.now();
        let drain_until = now + 50_000;
        while now < drain_until {
            self.tick_fireguard(now);
            now += 1;
            if self.engines.iter().all(|e| match e {
                Engine::Ucore(eng) => eng.u.input().is_empty(),
                Engine::Ha(h) => h.occupancy() == 0,
            }) && !self.frontend.filter.arbiter_has_packet()
            {
                break;
            }
        }
        if observing {
            let tail = self.drain_detections();
            if !tail.is_empty() {
                observer(&tail);
            }
        }
        self.collect(baseline_cycles)
    }

    /// Drains the engines' alarm queues into [`Detection`]s, returning the
    /// *new* detections since the previous drain. All drained detections
    /// are also accumulated internally so the final [`RunResult`] is
    /// complete regardless of how often this is called.
    pub fn drain_detections(&mut self) -> Vec<Detection> {
        let ns_per_fast = self.cfg.boom.ns_per_cycle();
        let ratio = self.cfg.clock_ratio;
        let mut new = Vec::new();
        for (_, vbit, group) in &self.kernel_groups {
            for &e in group {
                match &mut self.engines[e] {
                    Engine::Ucore(eng) => {
                        for a in eng.u.take_alarms() {
                            let fast_at = a.cycle * ratio;
                            new.push(Detection {
                                seq: a.seq,
                                latency_ns: (fast_at.saturating_sub(a.commit_cycle)) as f64
                                    * ns_per_fast,
                                attack: a.attack,
                                kernel_slot: *vbit,
                            });
                        }
                    }
                    Engine::Ha(h) => {
                        for d in h.take_detections() {
                            let fast_at = d.cycle * ratio;
                            new.push(Detection {
                                seq: d.seq,
                                latency_ns: (fast_at.saturating_sub(d.commit_cycle)) as f64
                                    * ns_per_fast,
                                attack: d.attack,
                                kernel_slot: *vbit,
                            });
                        }
                    }
                }
            }
        }
        if cfg!(feature = "telemetry") {
            for d in &new {
                self.frontend.counters.kernel_alarms[d.kernel_slot] += 1;
            }
        }
        self.detections.extend_from_slice(&new);
        new
    }

    fn collect(&mut self, baseline_cycles: u64) -> RunResult {
        let _ = self.drain_detections();
        let detections = std::mem::take(&mut self.detections);
        let stats = self.core.stats().clone();
        let cycles = stats.cycles;
        RunResult {
            committed: stats.committed,
            cycles,
            baseline_cycles,
            slowdown: if baseline_cycles == 0 {
                1.0
            } else {
                cycles as f64 / baseline_cycles as f64
            },
            packets: self.frontend.filter.stats().packets,
            detections,
            bottlenecks: self.frontend.breakdown,
            unclaimed_packets: self.frontend.allocator.stats().unclaimed,
        }
    }

    /// The main core's statistics so far.
    pub fn core_stats(&self) -> &fireguard_boom::CoreStats {
        self.core.stats()
    }

    /// A snapshot of the engine counters: the live offer-path and
    /// slow-edge tallies, plus the per-stage statistics (filter totals,
    /// µcore park/idle/cache/TLB, NoC) folded in at read time. Reading a
    /// snapshot performs no mutation anywhere, so it can never perturb
    /// the simulation — the determinism contract's telemetry half.
    pub fn telemetry(&self) -> EngineCounters {
        let mut c = self.frontend.counters;
        let fs = self.frontend.filter.stats();
        c.packets = fs.packets;
        c.placeholders = fs.placeholders;
        c.offers = fs.offers;
        c.refusals = fs.refusals;
        for engine in &self.engines {
            if let Engine::Ucore(e) = engine {
                let s = e.u.stats();
                c.ucore_idle_cycles += s.idle_cycles;
                c.ucore_retired += s.retired;
                c.ucore_mem_accesses += s.mem_accesses;
                c.ucore_parks += s.parks;
                c.ucore_wakes += s.wakes;
                let m = e.u.mem_stats();
                c.cache_hits += m.hits;
                c.cache_misses += m.misses;
                let (th, tm) = e.u.tlb_stats();
                c.tlb_hits += th;
                c.tlb_misses += tm;
            }
        }
        let ms = self.mesh.stats();
        c.noc_flits = ms.packets;
        c.noc_hops = ms.hops;
        c.noc_queue_cycles = ms.queueing;
        c.pipeline_width = u64::from(self.pipeline_width);
        if let Some(ps) = &self.pipeline_stats {
            let (gen_full, judge_full, core_empty, batches) = ps.snapshot();
            c.pipeline_gen_stalls = gen_full;
            c.pipeline_judge_stalls = judge_full;
            c.pipeline_core_waits = core_empty;
            c.pipeline_batches = batches;
        }
        c
    }

    /// The effective in-session pipeline width (1 = serial judging).
    pub fn pipeline_width(&self) -> u32 {
        self.pipeline_width
    }

    /// The deployment's `(verdict slot, kernel)` map, in slot order —
    /// what relabels slot-indexed telemetry by registry kernel.
    pub fn kernel_slots(&self) -> Vec<(usize, KernelId)> {
        self.kernel_groups
            .iter()
            .map(|&(id, vbit, _)| (vbit, id))
            .collect()
    }
}
