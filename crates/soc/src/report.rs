//! Result records for system runs.

/// Fig. 9's stacked components: where back-pressure stall cycles originate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BottleneckBreakdown {
    /// Commit refused because the filter is narrower than the burst.
    pub filter: u64,
    /// FIFO full while the mapper (arbiter/allocator) is the choke point.
    pub mapper: u64,
    /// Clock-domain-crossing queues full.
    pub cdc: u64,
    /// Analysis-engine message queues full (µcores can't keep up).
    pub ucore: u64,
}

impl BottleneckBreakdown {
    /// Total attributed stall cycles.
    pub fn total(&self) -> u64 {
        self.filter + self.mapper + self.cdc + self.ucore
    }
}

/// One detection event (a kernel alarm mapped back to wall-clock time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Sequence number of the flagged instruction.
    pub seq: u64,
    /// Detection latency from commit, in nanoseconds.
    pub latency_ns: f64,
    /// Ground truth: was this an injected attack?
    pub attack: bool,
    /// Verdict bit / kernel slot that raised it.
    pub kernel_slot: usize,
}

/// The outcome of one system run.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Instructions committed.
    pub committed: u64,
    /// Fast-domain cycles taken.
    pub cycles: u64,
    /// Baseline (bare core) cycles for the same instruction count.
    pub baseline_cycles: u64,
    /// Main-core slowdown vs the bare baseline (≥ 1.0 up to simulator noise).
    pub slowdown: f64,
    /// Analysis packets produced by the event filter.
    pub packets: u64,
    /// Detections raised by the kernels.
    pub detections: Vec<Detection>,
    /// Stall attribution (Fig. 9).
    pub bottlenecks: BottleneckBreakdown,
    /// Packets dropped because no SE subscribed to their group.
    pub unclaimed_packets: u64,
}

impl RunResult {
    /// Detections whose ground truth marks them as injected attacks.
    pub fn true_detections(&self) -> impl Iterator<Item = &Detection> {
        self.detections.iter().filter(|d| d.attack)
    }

    /// Detection latencies (ns) of true attacks, sorted ascending.
    pub fn attack_latencies_ns(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.true_detections().map(|d| d.latency_ns).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        v
    }
}

/// Percentile over a sorted slice (nearest-rank); 0 for empty input.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Geometric mean of a slice; 0 for empty input.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn breakdown_totals() {
        let b = BottleneckBreakdown {
            filter: 1,
            mapper: 2,
            cdc: 3,
            ucore: 4,
        };
        assert_eq!(b.total(), 10);
    }
}
