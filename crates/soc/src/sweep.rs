//! The parallel sweep engine: expand an experiment grid into independent
//! jobs, shard them across a worker pool, and return results in job order.
//!
//! Every figure in the paper's evaluation is a *grid* of independent
//! simulations (workloads × kernels × knob settings). Each grid point is a
//! [`JobSpec`]; [`run_jobs`] executes a batch of them across `workers`
//! OS threads (a hand-rolled pool — std threads plus a channel, no
//! external dependencies) and re-orders the results by job index before
//! returning. Because every job is itself deterministic and results are
//! keyed by index, the output of a parallel sweep is **byte-identical** to
//! a sequential one: `--jobs 32` and `--jobs 1` print the same bytes.
//!
//! The worker count comes from the caller (the CLI's `--jobs` flag) or
//! from [`default_workers`], which honours the `FG_JOBS` environment
//! variable and otherwise uses the machine's available parallelism.

use crate::experiments::{baseline_cycles, run_fireguard, run_software, ExperimentConfig};
use crate::report::RunResult;
use crate::system::EngineConfig;
use fireguard_kernels::{KernelId, ProgrammingModel, SoftwareScheme};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// One independent grid point of a sweep.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// A full FireGuard system run (filter + mapper + CDC + engines).
    FireGuard(ExperimentConfig),
    /// A software-instrumented baseline run on the bare core.
    Software {
        /// Instrumentation scheme (LLVM-style shadow stack / ASan / DangSan).
        scheme: SoftwareScheme,
        /// PARSEC workload name.
        workload: String,
        /// Trace seed.
        seed: u64,
        /// Original (pre-instrumentation) instruction budget.
        insts: u64,
    },
    /// A bare-core run (the slowdown denominator), reported as raw cycles.
    Baseline {
        /// PARSEC workload name.
        workload: String,
        /// Trace seed.
        seed: u64,
        /// Instruction budget.
        insts: u64,
    },
}

impl JobSpec {
    /// Executes the job synchronously on the calling thread.
    pub fn run(&self) -> JobOutput {
        match self {
            JobSpec::FireGuard(cfg) => JobOutput::Run(run_fireguard(cfg)),
            JobSpec::Software {
                scheme,
                workload,
                seed,
                insts,
            } => JobOutput::Slowdown(run_software(*scheme, workload, *seed, *insts)),
            JobSpec::Baseline {
                workload,
                seed,
                insts,
            } => JobOutput::Cycles(baseline_cycles(workload, *seed, *insts)),
        }
    }
}

/// The result of one [`JobSpec`], mirroring its variant.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Full system run result.
    Run(RunResult),
    /// Software-baseline slowdown over the bare core.
    Slowdown(f64),
    /// Bare-core cycle count.
    Cycles(u64),
}

impl JobOutput {
    /// The slowdown this job observed (1.0-relative).
    ///
    /// # Panics
    ///
    /// Panics on [`JobOutput::Cycles`], which has no slowdown.
    pub fn slowdown(&self) -> f64 {
        match self {
            JobOutput::Run(r) => r.slowdown,
            JobOutput::Slowdown(s) => *s,
            JobOutput::Cycles(_) => panic!("a baseline job has no slowdown"),
        }
    }

    /// The full [`RunResult`].
    ///
    /// # Panics
    ///
    /// Panics unless this is a [`JobOutput::Run`].
    pub fn into_run(self) -> RunResult {
        match self {
            JobOutput::Run(r) => r,
            other => panic!("expected a FireGuard run result, got {other:?}"),
        }
    }
}

/// Runs `jobs` across up to `workers` threads, returning outputs in job
/// order regardless of completion order.
///
/// `workers` is clamped to `1..=jobs.len()`. With `workers == 1` the jobs
/// run inline on the calling thread; either way the returned vector is
/// index-aligned with `jobs`, so downstream rendering is byte-identical
/// across worker counts.
///
/// # Panics
///
/// Panics if a worker thread panics (i.e. a job itself panicked).
pub fn run_jobs(jobs: Vec<JobSpec>, workers: usize) -> Vec<JobOutput> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return jobs.iter().map(JobSpec::run).collect();
    }
    let jobs = Arc::new(jobs);
    let cursor = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel::<(usize, JobOutput)>();
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let jobs = Arc::clone(&jobs);
            let cursor = Arc::clone(&cursor);
            let tx = tx.clone();
            std::thread::spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                // The channel is unbounded, so send never blocks; a closed
                // receiver only happens if the collector below bailed out.
                if tx.send((i, jobs[i].run())).is_err() {
                    break;
                }
            })
        })
        .collect();
    drop(tx);
    for h in handles {
        if h.join().is_err() {
            panic!("a sweep worker thread panicked");
        }
    }
    let mut slots: Vec<Option<JobOutput>> = (0..n).map(|_| None).collect();
    for (i, out) in rx {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job index reports exactly once"))
        .collect()
}

/// Parses a worker-count override; `Err` carries a warning message.
///
/// Pure helper behind [`default_workers`], split out for testability.
pub fn parse_workers(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "ignoring unparseable FG_JOBS={raw:?} (expected a positive integer)"
        )),
    }
}

/// The worker count to use when the caller did not pass one explicitly:
/// the `FG_JOBS` environment variable if set and parseable (a warning is
/// printed to stderr otherwise), else the machine's available parallelism.
pub fn default_workers() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var("FG_JOBS") {
        Ok(raw) => match parse_workers(&raw) {
            Ok(n) => n,
            Err(msg) => {
                eprintln!("warning: {msg}");
                fallback()
            }
        },
        Err(std::env::VarError::NotPresent) => fallback(),
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!("warning: ignoring non-unicode FG_JOBS");
            fallback()
        }
    }
}

/// A rectangular `ExperimentConfig` grid: the cartesian product of every
/// axis, expanded in a fixed row-major order (workload-major, then kernel,
/// then engine, then filter width, then model).
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// PARSEC workload names.
    pub workloads: Vec<String>,
    /// Guardian kernels to sweep over. By default each kernel gets its
    /// own system (one grid point per kernel); with [`SweepGrid::combined`]
    /// set, all of them are deployed into *one* system per grid point.
    pub kernels: Vec<KernelId>,
    /// Deploy every kernel in `kernels` together in a single system
    /// instead of one system each, collapsing the kernel axis to one
    /// point. The engine axis then provisions each kernel independently
    /// (e.g. `Ucores(2)` means two µcores *per kernel*), so callers
    /// should pre-flight the deployment with
    /// [`crate::system::validate_capacity`].
    pub combined: bool,
    /// Engine provisionings to try for each kernel.
    pub engines: Vec<EngineConfig>,
    /// Event-filter widths to try.
    pub filter_widths: Vec<usize>,
    /// µ-program styles to try.
    pub models: Vec<ProgrammingModel>,
    /// Instructions per run.
    pub insts: u64,
    /// Trace seed.
    pub seed: u64,
}

/// The coordinates of one grid point, for labelling result rows.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// PARSEC workload name.
    pub workload: String,
    /// Guardian kernels deployed in this system (a single entry unless
    /// the grid was expanded with [`SweepGrid::combined`]).
    pub kernels: Vec<KernelId>,
    /// Engine provisioning (per kernel).
    pub engine: EngineConfig,
    /// Event-filter width.
    pub filter_width: usize,
    /// µ-program style.
    pub model: ProgrammingModel,
}

impl SweepPoint {
    /// A short human label for the engine axis (`"4u"` or `"HA"`).
    pub fn engine_label(&self) -> String {
        match self.engine {
            EngineConfig::Ucores(n) => format!("{n}u"),
            EngineConfig::Ha => "HA".to_owned(),
        }
    }

    /// A human label for the kernel axis: the kernel's display name, or
    /// the `+`-joined names of a combined deployment (`"PMC+sstack"`).
    pub fn kernel_label(&self) -> String {
        self.kernels
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join("+")
    }
}

impl SweepGrid {
    /// Expands the grid into `(point, job)` pairs in deterministic order.
    pub fn expand(&self) -> Vec<(SweepPoint, JobSpec)> {
        // The kernel axis: one singleton deployment per kernel, or — in
        // combined mode — a single deployment carrying all of them.
        let deployments: Vec<Vec<KernelId>> = if self.combined {
            vec![self.kernels.clone()]
        } else {
            self.kernels.iter().map(|&k| vec![k]).collect()
        };
        let mut out = Vec::new();
        for w in &self.workloads {
            for kernels in &deployments {
                for &engine in &self.engines {
                    for &filter_width in &self.filter_widths {
                        for &model in &self.models {
                            let mut cfg = ExperimentConfig::new(w)
                                .insts(self.insts)
                                .seed(self.seed)
                                .filter_width(filter_width)
                                .model(model);
                            for &kernel in kernels {
                                cfg = match engine {
                                    EngineConfig::Ucores(n) => cfg.kernel(kernel, n),
                                    EngineConfig::Ha => cfg.kernel_ha(kernel),
                                };
                            }
                            out.push((
                                SweepPoint {
                                    workload: w.clone(),
                                    kernels: kernels.clone(),
                                    engine,
                                    filter_width,
                                    model,
                                },
                                JobSpec::FireGuard(cfg),
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_jobs() -> Vec<JobSpec> {
        ["swaptions", "ferret"]
            .iter()
            .flat_map(|w| {
                [KernelId::PMC, KernelId::SHADOW_STACK].iter().map(|&k| {
                    JobSpec::FireGuard(ExperimentConfig::new(w).kernel(k, 2).insts(3_000))
                })
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq: Vec<_> = run_jobs(tiny_jobs(), 1);
        let par: Vec<_> = run_jobs(tiny_jobs(), 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.clone().into_run(), b.clone().into_run());
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.packets, b.packets);
            assert_eq!(a.slowdown.to_bits(), b.slowdown.to_bits());
            assert_eq!(a.detections.len(), b.detections.len());
        }
    }

    #[test]
    fn empty_and_oversized_pools() {
        assert!(run_jobs(Vec::new(), 8).is_empty());
        let one = run_jobs(tiny_jobs()[..1].to_vec(), 64);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn worker_parse() {
        assert_eq!(parse_workers("4"), Ok(4));
        assert_eq!(parse_workers(" 2 "), Ok(2));
        assert!(parse_workers("0").is_err());
        assert!(parse_workers("banana").is_err());
        assert!(parse_workers("-3").is_err());
    }

    #[test]
    fn grid_expansion_order_is_workload_major() {
        let g = SweepGrid {
            workloads: vec!["swaptions".into(), "x264".into()],
            kernels: vec![KernelId::PMC, KernelId::ASAN],
            combined: false,
            engines: vec![EngineConfig::Ucores(4), EngineConfig::Ha],
            filter_widths: vec![4],
            models: vec![ProgrammingModel::Hybrid],
            insts: 1_000,
            seed: 42,
        };
        let pts = g.expand();
        assert_eq!(pts.len(), 8);
        assert_eq!(pts[0].0.workload, "swaptions");
        assert_eq!(pts[0].0.kernels, vec![KernelId::PMC]);
        assert_eq!(pts[0].0.kernel_label(), "PMC");
        assert_eq!(pts[0].0.engine_label(), "4u");
        assert_eq!(pts[1].0.engine_label(), "HA");
        assert_eq!(pts[4].0.workload, "x264");
    }

    #[test]
    fn combined_grid_deploys_all_kernels_in_one_system() {
        let all: Vec<KernelId> = fireguard_kernels::registry()
            .iter()
            .map(|s| s.id())
            .collect();
        let g = SweepGrid {
            workloads: vec!["dedup".into(), "swaptions".into()],
            kernels: all.clone(),
            combined: true,
            engines: vec![EngineConfig::Ucores(2)],
            filter_widths: vec![4],
            models: vec![ProgrammingModel::Hybrid],
            insts: 4_000,
            seed: 42,
        };
        let pts = g.expand();
        // The kernel axis collapses: one point per workload, not per kernel.
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0.kernels, all);
        assert!(pts[0].0.kernel_label().matches('+').count() == all.len() - 1);
        // The full-registry deployment fits the fabric at 2 µcores each
        // and actually runs.
        for (_, job) in &pts {
            if let JobSpec::FireGuard(cfg) = job {
                crate::system::validate_capacity(&cfg.kernels).expect("fits capacity");
            }
        }
        let outs = run_jobs(pts.into_iter().map(|(_, j)| j).collect(), 2);
        for out in outs {
            let run = out.into_run();
            assert!(run.cycles > 0);
            assert!(run.slowdown >= 1.0);
        }
    }

    #[test]
    fn software_and_baseline_jobs_run() {
        let jobs = vec![
            JobSpec::Software {
                scheme: SoftwareScheme::AsanX86,
                workload: "swaptions".into(),
                seed: 42,
                insts: 3_000,
            },
            JobSpec::Baseline {
                workload: "swaptions".into(),
                seed: 42,
                insts: 3_000,
            },
        ];
        let out = run_jobs(jobs, 2);
        assert!(out[0].slowdown() > 1.0);
        assert!(matches!(out[1], JobOutput::Cycles(c) if c > 0));
    }
}
