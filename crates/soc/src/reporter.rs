//! Structured experiment reports with pluggable output formats.
//!
//! Figure drivers build a [`Report`] — an ordered list of text lines and
//! [`Table`]s with typed [`Cell`]s — instead of `println!`-ing ad hoc.
//! A [`Format`] then renders the report:
//!
//! * [`Format::Human`] — the fixed-width ASCII tables the legacy figure
//!   binaries have always printed;
//! * [`Format::Jsonl`] — one JSON object per line (notes and table rows),
//!   for piping into `jq`/pandas;
//! * [`Format::Csv`] — RFC-4180-style CSV per table, notes as `#` comments.
//!
//! Because rendering is a pure function of the report, the same experiment
//! run can be re-emitted in any format, and parallel sweeps stay
//! byte-identical to sequential ones.

use std::fmt::Write as _;
use std::io::{self, Write};

/// One typed value in a table row.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A plain string (labels, pre-formatted odds and ends).
    Str(String),
    /// An integer count.
    Int(i64),
    /// A float rendered with `prec` decimal places in human/CSV output.
    Float {
        /// The value.
        v: f64,
        /// Decimal places for fixed-point rendering.
        prec: usize,
    },
    /// A missing value: `-` in human/CSV output, `null` in JSON, so
    /// numeric columns keep a stable type for structured consumers.
    Missing,
}

impl Cell {
    /// A slowdown cell (3 decimal places, the paper's table precision).
    pub fn slowdown(v: f64) -> Cell {
        Cell::Float { v, prec: 3 }
    }

    /// The human/CSV text of this cell.
    pub fn text(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Int(i) => i.to_string(),
            Cell::Float { v, prec } => format!("{v:.prec$}"),
            Cell::Missing => "-".to_owned(),
        }
    }

    fn json_value(&self) -> String {
        match self {
            Cell::Str(s) => json_string(s),
            Cell::Int(i) => i.to_string(),
            Cell::Float { v, .. } => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_owned()
                }
            }
            Cell::Missing => "null".to_owned(),
        }
    }
}

/// A table column: header text plus the human-format field width.
#[derive(Debug, Clone)]
pub struct Column {
    /// Header text (also the JSON key and CSV header).
    pub name: String,
    /// Right-aligned field width in human output.
    pub width: usize,
}

/// A fixed-width table of typed cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers and widths.
    pub columns: Vec<Column>,
    /// Rows; each must have exactly one cell per column.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Builds an empty table from `(header, width)` pairs.
    pub fn new(cols: &[(&str, usize)]) -> Table {
        Table {
            columns: cols
                .iter()
                .map(|(name, width)| Column {
                    name: (*name).to_owned(),
                    width: *width,
                })
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push(cells);
    }
}

/// One ordered element of a report.
#[derive(Debug, Clone)]
pub enum Block {
    /// A free-text line (titles, paper-comparison footnotes).
    Text(String),
    /// A blank separator line.
    Blank,
    /// A table.
    Table(Table),
}

/// A complete figure/table report: ordered text and tables.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// The report's blocks, in print order.
    pub blocks: Vec<Block>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Appends a text line.
    pub fn text(&mut self, line: impl Into<String>) {
        self.blocks.push(Block::Text(line.into()));
    }

    /// Appends a blank line.
    pub fn blank(&mut self) {
        self.blocks.push(Block::Blank);
    }

    /// Appends a table.
    pub fn table(&mut self, t: Table) {
        self.blocks.push(Block::Table(t));
    }
}

/// An output format for [`render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Fixed-width ASCII tables (the legacy binaries' output).
    #[default]
    Human,
    /// One JSON object per line.
    Jsonl,
    /// CSV tables with `#`-prefixed notes.
    Csv,
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Format, String> {
        match s {
            "human" | "table" => Ok(Format::Human),
            "jsonl" | "json" => Ok(Format::Jsonl),
            "csv" => Ok(Format::Csv),
            other => Err(format!(
                "unknown format {other:?} (expected human, jsonl, or csv)"
            )),
        }
    }
}

/// Renders `report` to `out` in the given format.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn render(report: &Report, format: Format, out: &mut dyn Write) -> io::Result<()> {
    match format {
        Format::Human => render_human(report, out),
        Format::Jsonl => render_jsonl(report, out),
        Format::Csv => render_csv(report, out),
    }
}

/// Renders `report` to a `String` (infallible convenience wrapper).
pub fn render_to_string(report: &Report, format: Format) -> String {
    let mut buf = Vec::new();
    render(report, format, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("reports are UTF-8")
}

fn render_human(report: &Report, out: &mut dyn Write) -> io::Result<()> {
    for block in &report.blocks {
        match block {
            Block::Text(line) => writeln!(out, "{line}")?,
            Block::Blank => writeln!(out)?,
            Block::Table(t) => {
                let mut header = String::new();
                for c in &t.columns {
                    let _ = write!(header, "{:>w$} ", c.name, w = c.width);
                }
                writeln!(out, "{header}")?;
                writeln!(out, "{}", "-".repeat(header.len()))?;
                for row in &t.rows {
                    let mut line = String::new();
                    for (cell, c) in row.iter().zip(&t.columns) {
                        let _ = write!(line, "{:>w$} ", cell.text(), w = c.width);
                    }
                    writeln!(out, "{line}")?;
                }
            }
        }
    }
    Ok(())
}

fn render_jsonl(report: &Report, out: &mut dyn Write) -> io::Result<()> {
    let mut table_idx = 0usize;
    for block in &report.blocks {
        match block {
            Block::Text(line) => {
                writeln!(out, "{{\"type\":\"note\",\"text\":{}}}", json_string(line))?;
            }
            Block::Blank => {}
            Block::Table(t) => {
                for row in &t.rows {
                    let mut obj = format!("{{\"type\":\"row\",\"table\":{table_idx}");
                    for (cell, c) in row.iter().zip(&t.columns) {
                        let _ = write!(obj, ",{}:{}", json_string(&c.name), cell.json_value());
                    }
                    obj.push('}');
                    writeln!(out, "{obj}")?;
                }
                table_idx += 1;
            }
        }
    }
    Ok(())
}

fn render_csv(report: &Report, out: &mut dyn Write) -> io::Result<()> {
    for block in &report.blocks {
        match block {
            Block::Text(line) => writeln!(out, "# {line}")?,
            Block::Blank => writeln!(out)?,
            Block::Table(t) => {
                let header: Vec<String> = t.columns.iter().map(|c| csv_field(&c.name)).collect();
                writeln!(out, "{}", header.join(","))?;
                for row in &t.rows {
                    let fields: Vec<String> =
                        row.iter().map(|cell| csv_field(&cell.text())).collect();
                    writeln!(out, "{}", fields.join(","))?;
                }
            }
        }
    }
    Ok(())
}

/// JSON-escapes `s` into a quoted string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn sample() -> Report {
        let mut r = Report::new();
        r.text("Figure X: demo");
        r.blank();
        let mut t = Table::new(&[("workload", 10), ("slowdown", 9)]);
        t.row(vec![Cell::Str("x264".into()), Cell::slowdown(1.2345)]);
        t.row(vec![Cell::Str("a,b".into()), Cell::Int(7)]);
        r.table(t);
        r
    }

    #[test]
    fn human_layout_matches_legacy_print_header() {
        let s = render_to_string(&sample(), Format::Human);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Figure X: demo");
        assert_eq!(lines[1], "");
        assert_eq!(lines[2], "  workload  slowdown ");
        assert_eq!(lines[3], "-".repeat(lines[2].len()));
        assert_eq!(lines[4], "      x264     1.234 ");
    }

    #[test]
    fn jsonl_rows_carry_column_keys() {
        let s = render_to_string(&sample(), Format::Jsonl);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], r#"{"type":"note","text":"Figure X: demo"}"#);
        assert!(lines[1].contains(r#""workload":"x264""#));
        assert!(lines[1].contains(r#""slowdown":1.2345"#));
        assert!(lines[2].contains(r#""slowdown":7"#));
    }

    #[test]
    fn csv_quotes_delimiters() {
        let s = render_to_string(&sample(), Format::Csv);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "# Figure X: demo");
        assert_eq!(lines[2], "workload,slowdown");
        assert_eq!(lines[3], "x264,1.234");
        assert_eq!(lines[4], "\"a,b\",7");
    }

    #[test]
    fn format_parsing() {
        assert_eq!(Format::from_str("human"), Ok(Format::Human));
        assert_eq!(Format::from_str("jsonl"), Ok(Format::Jsonl));
        assert_eq!(Format::from_str("csv"), Ok(Format::Csv));
        assert!(Format::from_str("yaml").is_err());
    }

    #[test]
    fn missing_cells_keep_numeric_columns_stable() {
        let mut r = Report::new();
        let mut t = Table::new(&[("w", 4), ("lat", 6)]);
        t.row(vec![Cell::Str("a".into()), Cell::Missing]);
        r.table(t);
        assert!(render_to_string(&r, Format::Human).contains("     - "));
        assert!(render_to_string(&r, Format::Jsonl).contains("\"lat\":null"));
        assert!(render_to_string(&r, Format::Csv).contains("a,-"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), r#""a\"b\\c\n""#);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(&[("a", 3), ("b", 3)]);
        t.row(vec![Cell::Int(1)]);
    }
}
