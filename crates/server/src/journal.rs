//! Disk-backed session journals: bounded-memory event buffering for the
//! router tier.
//!
//! A routed session must be replayable — failover re-feeds a fresh backend
//! the full event prefix, and a SESSION-ticket resume needs to know how
//! much of the stream is safely buffered. Keeping that prefix in RAM makes
//! router memory O(events) per session; a [`Journal`] makes it
//! O(tail + file handle) instead. Events accumulate in a small in-RAM
//! tail ring; when the ring fills, the whole tail is *spilled* to a
//! journal file as one freshly-delta-encoded `.fgt` event batch (the
//! [`EventEncoder`] starts cleanly at any seq, a property the workspace
//! proptests pin). Replay walks the spilled batches — each decoded with a
//! fresh [`EventDecoder`] — followed by the live tail, handing the caller
//! contiguous event slices to re-encode onto whatever connection is being
//! rebuilt.
//!
//! Journals come in two flavors:
//!
//! - **Ephemeral** (no `--journal-dir`): the spill file lives in the OS
//!   temp directory under a process-unique name and is unconditionally
//!   removed on drop. Survives backend failover, not a router crash.
//! - **Durable** (`--journal-dir <dir>`): the spill file `<id>.fgj` is
//!   paired with an fsync'd append-only index sidecar `<id>.idx` recording
//!   the session HELLO, every alarm batch *before* it is released to the
//!   client, the END marker, and the terminal SUMMARY/ERROR. Files are
//!   removed only once the session reaches a terminal state, so a router
//!   *process* crash (`kill -9`) leaves enough on disk for a new router
//!   started with `--resume-journals <dir>` to rebuild the session table
//!   via [`recover_journals`] and let clients resume. Events still in the
//!   RAM tail at crash time are simply absent from the recovered journal;
//!   the resume ACK shrinks accordingly and the client re-sends them.
//!
//! The spill file is a sequence of `u32le byte-len ‖ u32le event-count ‖
//! batch` records; the index sidecar is a sequence of `u8 type ‖ u32le
//! len ‖ payload` records with types `H`/`A`/`E`/`S`/`R`. Both are
//! truncation-tolerant on recovery: a record cut short by the crash is
//! discarded, never misparsed.

use crate::proto::{decode_alarms, encode_alarms};
use fireguard_soc::Detection;
use fireguard_trace::codec::{CodecError, EventDecoder, EventEncoder, MAX_BATCH_EVENTS};
use fireguard_trace::TraceInst;
use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default in-RAM tail capacity (events) before a journal spills to disk.
pub const DEFAULT_JOURNAL_TAIL: usize = 4096;

/// Shared router-wide journal gauges, updated by every [`Journal`] the
/// router owns so the metrics plane and the admission controller see
/// aggregate journal pressure without walking the session table.
#[derive(Debug, Clone, Default)]
pub struct JournalGauges {
    /// Bytes currently buffered on disk across all live journals.
    pub bytes: Arc<AtomicU64>,
    /// Events spilled to disk since the router started (monotonic).
    pub spilled_events: Arc<AtomicU64>,
}

/// A bounded-memory event buffer for one routed session: RAM tail ring +
/// disk spill file (+ fsync'd recovery sidecar when durable).
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    idx_path: PathBuf,
    durable: bool,
    tail: VecDeque<TraceInst>,
    tail_cap: usize,
    spilled: u64,
    spill: Option<BufWriter<File>>,
    bytes: u64,
    gauges: JournalGauges,
    idx: Option<File>,
    remove_on_drop: bool,
}

// Process-unique suffix for ephemeral journal file names: two routers in
// the same process (or two processes sharing the temp dir) can journal
// sessions with identical ids without clobbering each other.
static EPHEMERAL_SEQ: AtomicU64 = AtomicU64::new(0);

impl Journal {
    /// Opens a journal for session `name`. `dir = Some(..)` selects
    /// durable mode (crash-recoverable, files named by `name`);
    /// `None` selects an ephemeral journal in the OS temp directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures (the spill file itself is
    /// created lazily, on first spill).
    pub fn open(
        name: &str,
        tail_cap: usize,
        dir: Option<&Path>,
        gauges: JournalGauges,
    ) -> io::Result<Self> {
        let durable = dir.is_some();
        let (dir, file_stem) = match dir {
            Some(d) => (d.to_path_buf(), name.to_string()),
            None => (
                std::env::temp_dir(),
                format!(
                    "fireguard-journal-{}-{}-{name}",
                    std::process::id(),
                    EPHEMERAL_SEQ.fetch_add(1, Ordering::Relaxed)
                ),
            ),
        };
        fs::create_dir_all(&dir)?;
        let tail_cap = tail_cap.clamp(1, MAX_BATCH_EVENTS as usize);
        Ok(Journal {
            path: dir.join(format!("{file_stem}.fgj")),
            idx_path: dir.join(format!("{file_stem}.idx")),
            durable,
            tail: VecDeque::with_capacity(tail_cap.min(DEFAULT_JOURNAL_TAIL)),
            tail_cap,
            spilled: 0,
            spill: None,
            bytes: 0,
            gauges,
            idx: None,
            remove_on_drop: !durable,
        })
    }

    /// Appends one event; spills the whole RAM tail to disk when the ring
    /// fills. RAM usage never exceeds `tail_cap` events.
    ///
    /// # Errors
    ///
    /// Spill-file I/O failures.
    pub fn push(&mut self, ev: TraceInst) -> io::Result<()> {
        self.tail.push_back(ev);
        if self.tail.len() >= self.tail_cap {
            self.spill_tail()?;
        }
        Ok(())
    }

    fn spill_tail(&mut self) -> io::Result<()> {
        if self.tail.is_empty() {
            return Ok(());
        }
        if self.spill.is_none() {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?;
            self.spill = Some(BufWriter::new(f));
        }
        let batch: Vec<TraceInst> = self.tail.drain(..).collect();
        let encoded = EventEncoder::new().encode_batch(&batch);
        let w = self.spill.as_mut().expect("spill writer just ensured");
        w.write_all(&(encoded.len() as u32).to_le_bytes())?;
        w.write_all(&(batch.len() as u32).to_le_bytes())?;
        w.write_all(&encoded)?;
        // Flushed (not fsync'd): an un-flushed spill lost to a crash only
        // shrinks the recovery ACK, and the client re-sends the tail.
        w.flush()?;
        let grew = 8 + encoded.len() as u64;
        self.spilled += batch.len() as u64;
        self.bytes += grew;
        self.gauges.bytes.fetch_add(grew, Ordering::Relaxed);
        self.gauges
            .spilled_events
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Total buffered events: spilled + RAM tail. This is the resume-ACK
    /// value — the absolute seq the next expected event carries.
    pub fn len(&self) -> u64 {
        self.spilled + self.tail.len() as u64
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events spilled to disk (not counting the RAM tail).
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Bytes currently held in the spill file.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Replays the full buffered prefix — every spilled batch (decoded
    /// with a fresh [`EventDecoder`]) and then the RAM tail — through `f`
    /// as contiguous event slices, in order. The caller re-encodes them
    /// with whatever per-connection encoder the new incarnation uses;
    /// spilled bytes are never forwarded verbatim because the receiving
    /// decoder's delta state is continuous across the whole connection.
    ///
    /// # Errors
    ///
    /// Spill-file I/O or decode failures (a decode failure means the
    /// journal file itself was corrupted on disk), or whatever `f` raises.
    pub fn replay<F>(&mut self, mut f: F) -> Result<(), CodecError>
    where
        F: FnMut(&[TraceInst]) -> io::Result<()>,
    {
        if self.spilled > 0 {
            if let Some(w) = self.spill.as_mut() {
                w.flush()?;
            }
            let mut r = File::open(&self.path)?;
            let mut replayed = 0u64;
            while replayed < self.spilled {
                let mut head = [0u8; 8];
                r.read_exact(&mut head)
                    .map_err(|_| CodecError::Truncated("journal batch header"))?;
                let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
                let count = u64::from(u32::from_le_bytes(head[4..].try_into().expect("4 bytes")));
                let mut payload = vec![0u8; len as usize];
                r.read_exact(&mut payload)
                    .map_err(|_| CodecError::Truncated("journal batch payload"))?;
                let events = EventDecoder::new().decode_batch(&payload)?;
                if events.len() as u64 != count {
                    return Err(CodecError::CountMismatch {
                        expected: count,
                        found: events.len() as u64,
                    });
                }
                f(&events)?;
                replayed += count;
            }
        }
        let (a, b) = self.tail.as_slices();
        if !a.is_empty() {
            f(a)?;
        }
        if !b.is_empty() {
            f(b)?;
        }
        Ok(())
    }

    // ---- durable sidecar ----------------------------------------------

    fn idx_append(&mut self, kind: u8, payload: &[u8]) -> io::Result<()> {
        if !self.durable {
            return Ok(());
        }
        if self.idx.is_none() {
            self.idx = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.idx_path)?,
            );
        }
        let f = self.idx.as_mut().expect("idx file just ensured");
        let mut rec = vec![kind];
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(payload);
        f.write_all(&rec)?;
        // The sidecar is the crash-recovery source of truth for what the
        // client has already been shown — it must hit the platter before
        // the client does.
        f.sync_data()
    }

    /// Records the session HELLO (durable journals only; no-op otherwise).
    ///
    /// # Errors
    ///
    /// Sidecar I/O failures.
    pub fn record_hello(&mut self, hello: &[u8]) -> io::Result<()> {
        self.idx_append(b'H', hello)
    }

    /// Records an alarm batch **before** it is released to the client, so
    /// a post-crash router never re-delivers (or loses) a detection.
    ///
    /// # Errors
    ///
    /// Sidecar I/O failures.
    pub fn record_alarms(&mut self, alarms: &[Detection]) -> io::Result<()> {
        if !self.durable || alarms.is_empty() {
            return Ok(());
        }
        self.idx_append(b'A', &encode_alarms(alarms))
    }

    /// Records that the client finished its commit stream (END seen).
    ///
    /// # Errors
    ///
    /// Sidecar I/O failures.
    pub fn record_ended(&mut self) -> io::Result<()> {
        self.idx_append(b'E', &[])
    }

    /// Records the terminal SUMMARY payload and marks the journal
    /// completed (files are removed on drop — nothing left to recover).
    ///
    /// # Errors
    ///
    /// Sidecar I/O failures.
    pub fn record_summary(&mut self, payload: &[u8]) -> io::Result<()> {
        self.remove_on_drop = true;
        self.idx_append(b'S', payload)
    }

    /// Records the terminal ERROR payload and marks the journal completed.
    ///
    /// # Errors
    ///
    /// Sidecar I/O failures.
    pub fn record_error(&mut self, payload: &[u8]) -> io::Result<()> {
        self.remove_on_drop = true;
        self.idx_append(b'R', payload)
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.gauges.bytes.fetch_sub(self.bytes, Ordering::Relaxed);
        if self.remove_on_drop {
            self.spill = None;
            self.idx = None;
            let _ = fs::remove_file(&self.path);
            let _ = fs::remove_file(&self.idx_path);
        }
    }
}

// ---- crash recovery ---------------------------------------------------------

/// One session rebuilt from a durable journal directory by
/// [`recover_journals`]: everything the router's session table needs to
/// let the session's client resume as if the crash were an ordinary
/// transport fault.
#[derive(Debug)]
pub struct RecoveredSession {
    /// The session id (`<id>.idx` file stem).
    pub id: u64,
    /// The verbatim HELLO payload the session registered with.
    pub hello: Vec<u8>,
    /// Whether the client's END was recorded before the crash.
    pub ended: bool,
    /// Every alarm released to the client before the crash, in order.
    pub alarms: Vec<Detection>,
    /// Terminal SUMMARY payload, if the session finished before the crash.
    pub summary: Option<Vec<u8>>,
    /// Terminal ERROR payload, if the session failed before the crash.
    pub error: Option<Vec<u8>>,
    /// The reopened journal, positioned to keep appending.
    pub journal: Journal,
}

/// Scans a `--journal-dir` for sessions a crashed router left behind and
/// rebuilds them. Only sessions with a recorded HELLO are recoverable;
/// both the spill file and the sidecar tolerate a trailing record the
/// crash cut short (it is discarded, and the spill file is truncated back
/// to its last complete batch so appends stay well-formed).
///
/// # Errors
///
/// Directory-scan I/O failures. Individually unreadable sessions are
/// skipped, not fatal — recovery salvages what it can.
pub fn recover_journals(
    dir: &Path,
    tail_cap: usize,
    gauges: &JournalGauges,
) -> io::Result<Vec<RecoveredSession>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("idx") {
            continue;
        }
        let Some(id) = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if let Some(s) = recover_one(dir, id, tail_cap, gauges) {
            out.push(s);
        }
    }
    out.sort_by_key(|s| s.id);
    Ok(out)
}

fn recover_one(
    dir: &Path,
    id: u64,
    tail_cap: usize,
    gauges: &JournalGauges,
) -> Option<RecoveredSession> {
    let idx_path = dir.join(format!("{id}.idx"));
    let bytes = fs::read(&idx_path).ok()?;
    let mut hello = None;
    let mut ended = false;
    let mut alarms = Vec::new();
    let mut summary = None;
    let mut error = None;
    let mut at = 0usize;
    while at + 5 <= bytes.len() {
        let kind = bytes[at];
        let len = u32::from_le_bytes(bytes[at + 1..at + 5].try_into().expect("4 bytes")) as usize;
        if at + 5 + len > bytes.len() {
            break; // record cut short by the crash — discard
        }
        let payload = &bytes[at + 5..at + 5 + len];
        at += 5 + len;
        match kind {
            b'H' => hello = Some(payload.to_vec()),
            b'A' => match decode_alarms(payload) {
                Ok(mut batch) => alarms.append(&mut batch),
                Err(_) => return None, // sidecar corrupted beyond trust
            },
            b'E' => ended = true,
            b'S' => summary = Some(payload.to_vec()),
            b'R' => error = Some(payload.to_vec()),
            _ => return None,
        }
    }
    let hello = hello?;

    // Walk the spill file to its last complete batch.
    let spill_path = dir.join(format!("{id}.fgj"));
    let (mut spilled, mut valid) = (0u64, 0u64);
    if let Ok(mut f) = File::open(&spill_path) {
        // Bound every record by the file's real length: seeking past EOF
        // silently succeeds, so only the metadata length can prove the
        // final payload wasn't cut short by the crash.
        let file_len = f.metadata().ok()?.len();
        loop {
            let mut head = [0u8; 8];
            if f.read_exact(&mut head).is_err() {
                break;
            }
            let len = u64::from(u32::from_le_bytes(head[..4].try_into().expect("4 bytes")));
            let count = u64::from(u32::from_le_bytes(head[4..].try_into().expect("4 bytes")));
            let end = valid + 8 + len;
            if end > file_len {
                break; // payload cut short
            }
            if f.seek(SeekFrom::Current(len as i64)).is_err() {
                break;
            }
            spilled += count;
            valid = end;
        }
    }

    let mut journal = Journal::open(&id.to_string(), tail_cap, Some(dir), gauges.clone()).ok()?;
    journal.spilled = spilled;
    journal.bytes = valid;
    gauges.bytes.fetch_add(valid, Ordering::Relaxed);
    if valid > 0 {
        let f = OpenOptions::new().write(true).open(&spill_path).ok()?;
        f.set_len(valid).ok()?; // drop any partial trailing batch
        let mut f = OpenOptions::new().append(true).open(&spill_path).ok()?;
        f.seek(SeekFrom::End(0)).ok()?;
        journal.spill = Some(BufWriter::new(f));
    } else {
        let _ = fs::remove_file(&spill_path);
    }
    if summary.is_some() || error.is_some() {
        journal.remove_on_drop = true;
    }
    Some(RecoveredSession {
        id,
        hello,
        ended,
        alarms,
        summary,
        error,
        journal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireguard_soc::{capture_events, ExperimentConfig, KernelId};

    fn events(n: u64) -> Vec<TraceInst> {
        let cfg = ExperimentConfig::new("dedup")
            .kernel(KernelId::PMC, 2)
            .insts(n);
        capture_events(&cfg)
    }

    fn collect(j: &mut Journal) -> Vec<TraceInst> {
        let mut got = Vec::new();
        j.replay(|chunk| {
            got.extend_from_slice(chunk);
            Ok(())
        })
        .unwrap();
        got
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fg-journal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spill_and_replay_reproduce_the_stream_bit_exactly() {
        let evs = events(3000);
        let mut j = Journal::open("t1", 64, None, JournalGauges::default()).unwrap();
        for &e in &evs {
            j.push(e).unwrap();
        }
        assert_eq!(j.len(), evs.len() as u64);
        assert!(j.spilled() >= evs.len() as u64 - 64, "spill engaged");
        assert!(j.bytes() > 0);
        assert_eq!(collect(&mut j), evs);
        // Replay is repeatable — failover can happen more than once.
        assert_eq!(collect(&mut j), evs);
    }

    #[test]
    fn ram_tail_is_bounded_by_the_cap() {
        let evs = events(2000);
        let mut j = Journal::open("t2", 32, None, JournalGauges::default()).unwrap();
        for &e in &evs {
            j.push(e).unwrap();
            assert!(j.tail.len() < 32, "RAM tail exceeded its cap");
        }
        assert_eq!(collect(&mut j), evs);
    }

    #[test]
    fn ephemeral_journal_removes_its_file_on_drop() {
        let evs = events(500);
        let mut j = Journal::open("t3", 16, None, JournalGauges::default()).unwrap();
        for &e in &evs {
            j.push(e).unwrap();
        }
        let path = j.path.clone();
        assert!(path.exists(), "spill file exists while live");
        drop(j);
        assert!(!path.exists(), "spill file removed on drop");
    }

    #[test]
    fn gauges_track_bytes_and_release_them_on_drop() {
        let gauges = JournalGauges::default();
        let evs = events(1000);
        let mut j = Journal::open("t4", 16, None, gauges.clone()).unwrap();
        for &e in &evs {
            j.push(e).unwrap();
        }
        assert_eq!(gauges.bytes.load(Ordering::Relaxed), j.bytes());
        assert!(gauges.spilled_events.load(Ordering::Relaxed) >= 1000 - 16);
        drop(j);
        assert_eq!(gauges.bytes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn durable_journal_survives_a_simulated_crash_and_recovers() {
        let dir = temp_dir("recover");
        let gauges = JournalGauges::default();
        let evs = events(1500);
        let alarms = vec![
            Detection {
                seq: 7,
                latency_ns: 12.5,
                attack: true,
                kernel_slot: 1,
            },
            Detection {
                seq: 90,
                latency_ns: 0.25,
                attack: false,
                kernel_slot: 0,
            },
        ];
        {
            let mut j = Journal::open("42", 64, Some(&dir), gauges.clone()).unwrap();
            j.record_hello(b"hello-bytes").unwrap();
            for &e in &evs {
                j.push(e).unwrap();
            }
            j.record_alarms(&alarms).unwrap();
            j.record_ended().unwrap();
            // Simulated crash: leak the journal so Drop never runs and the
            // files stay behind exactly as `kill -9` would leave them.
            std::mem::forget(j);
        }
        gauges.bytes.store(0, Ordering::Relaxed); // fresh router process

        let recovered = recover_journals(&dir, 64, &gauges).unwrap();
        assert_eq!(recovered.len(), 1);
        let mut s = recovered.into_iter().next().unwrap();
        assert_eq!(s.id, 42);
        assert_eq!(s.hello, b"hello-bytes");
        assert!(s.ended);
        assert_eq!(s.alarms, alarms);
        assert!(s.summary.is_none() && s.error.is_none());
        // The RAM tail died with the process: the recovered prefix is the
        // spilled part only, and it replays bit-exactly.
        let n = s.journal.len() as usize;
        assert!(n >= evs.len() - 64 && n <= evs.len());
        assert_eq!(collect(&mut s.journal), evs[..n]);
        // Appending the "re-sent" tail continues the stream seamlessly.
        for &e in &evs[n..] {
            s.journal.push(e).unwrap();
        }
        assert_eq!(s.journal.len(), evs.len() as u64);
        assert_eq!(collect(&mut s.journal), evs);

        // Terminal state reached → files removed on drop.
        s.journal.record_summary(b"sum").unwrap();
        let (p, ip) = (s.journal.path.clone(), s.journal.idx_path.clone());
        drop(s);
        assert!(!p.exists() && !ip.exists(), "completed journal cleaned up");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_discards_a_partial_trailing_batch() {
        let dir = temp_dir("truncate");
        let gauges = JournalGauges::default();
        let evs = events(600);
        {
            let mut j = Journal::open("7", 50, Some(&dir), gauges.clone()).unwrap();
            j.record_hello(b"h").unwrap();
            for &e in &evs {
                j.push(e).unwrap();
            }
            std::mem::forget(j);
        }
        // Chop bytes off the spill file's final record, as a crash
        // mid-write would.
        let spill = dir.join("7.fgj");
        let full = fs::read(&spill).unwrap();
        fs::write(&spill, &full[..full.len() - 3]).unwrap();

        let gauges = JournalGauges::default();
        let mut s = recover_journals(&dir, 50, &gauges)
            .unwrap()
            .into_iter()
            .next()
            .unwrap();
        let n = s.journal.len() as usize;
        assert!(n < evs.len(), "truncated batch was discarded");
        assert_eq!(collect(&mut s.journal), evs[..n]);
        // The file was truncated back to a record boundary, so appending
        // the missing events yields a well-formed journal again.
        for &e in &evs[n..] {
            s.journal.push(e).unwrap();
        }
        assert_eq!(collect(&mut s.journal), evs);
        s.journal.remove_on_drop = true;
        drop(s);
        let _ = fs::remove_dir_all(&dir);
    }
}
