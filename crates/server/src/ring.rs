//! The consistent-hash ring the router places sessions with.
//!
//! Each backend slot owns `replicas` virtual points on a `u64` ring;
//! a session id hashes to a point and walks clockwise to the first point
//! owned by a live slot. Because a dead slot only removes *its own* arcs,
//! every key whose owner survives keeps its placement — the expected
//! remap fraction on a single loss is the dead slot's share, ~`1/N` —
//! which is what keeps resume cheap: a failover re-routes only the
//! sessions that lived on the lost backend.

/// Virtual points per backend slot. 64 keeps the per-slot share within a
/// few tens of percent of the ideal `1/N` without making lookups slow.
pub const DEFAULT_REPLICAS: usize = 64;

/// An immutable consistent-hash ring over backend slot indices
/// `0..slots`. Liveness is external: lookups take a predicate so the ring
/// itself never needs rebuilding when backends die or respawn (slot
/// arcs are position-stable for the life of the pool).
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted `(point, slot)` pairs — the ring, flattened.
    points: Vec<(u64, usize)>,
    slots: usize,
}

/// SplitMix64 finalizer: a fast, well-mixed `u64 → u64` permutation
/// (the same mix [`fireguard_trace::SimRng`] draws through).
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Ring {
    /// Builds a ring for `slots` backends with `replicas` virtual points
    /// each (both clamped to at least 1).
    pub fn new(slots: usize, replicas: usize) -> Self {
        let slots = slots.max(1);
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(slots * replicas);
        for slot in 0..slots {
            for r in 0..replicas {
                // Double-mix decorrelates the (slot, replica) lattice.
                points.push((mix(mix((slot as u64) << 32 | r as u64)), slot));
            }
        }
        points.sort_unstable();
        Ring { points, slots }
    }

    /// Number of backend slots the ring was built over.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The slot owning `key` among slots where `alive(slot)` holds, or
    /// `None` if nothing is alive. Walks clockwise from the key's point,
    /// so keys owned by surviving slots never move when another dies.
    pub fn route(&self, key: u64, alive: impl Fn(usize) -> bool) -> Option<usize> {
        let point = mix(key);
        let start = self.points.partition_point(|&(p, _)| p < point);
        let n = self.points.len();
        for i in 0..n {
            let (_, slot) = self.points[(start + i) % n];
            if alive(slot) {
                return Some(slot);
            }
        }
        None
    }

    /// The slot owning `key` with every slot alive (distribution checks).
    pub fn route_all_up(&self, key: u64) -> usize {
        self.route(key, |_| true).expect("ring is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_deterministic_and_in_range() {
        let ring = Ring::new(4, DEFAULT_REPLICAS);
        for key in 0..1000u64 {
            let a = ring.route_all_up(key);
            assert!(a < 4);
            assert_eq!(a, ring.route_all_up(key), "same key, same slot");
        }
    }

    #[test]
    fn single_slot_takes_everything() {
        let ring = Ring::new(1, DEFAULT_REPLICAS);
        for key in 0..100u64 {
            assert_eq!(ring.route_all_up(key), 0);
        }
    }

    #[test]
    fn dead_slots_are_skipped_and_survivors_keep_their_keys() {
        let ring = Ring::new(4, DEFAULT_REPLICAS);
        for key in 0..2000u64 {
            let home = ring.route_all_up(key);
            let rerouted = ring.route(key, |s| s != 2).expect("three slots live");
            if home != 2 {
                assert_eq!(rerouted, home, "key {key} moved although its owner lives");
            } else {
                assert_ne!(rerouted, 2, "key {key} routed to the dead slot");
            }
        }
    }

    #[test]
    fn all_dead_routes_none() {
        let ring = Ring::new(3, 8);
        assert_eq!(ring.route(42, |_| false), None);
    }
}
