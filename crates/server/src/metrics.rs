//! The live metrics plane: a tiny admin TCP endpoint (`--metrics-addr`)
//! that serves the current counter snapshot in two dialects over one
//! port:
//!
//! - **HTTP**: any request line starting with an ASCII letter (e.g.
//!   `GET /metrics HTTP/1.1`) gets a `200 OK` with a Prometheus-style
//!   text exposition — point a real scraper at it.
//! - **framed**: a [`crate::proto::STATS`] frame gets a
//!   [`crate::proto::STATS_REPLY`] frame whose payload is the *same*
//!   exposition bytes — what `fireguard stats` and [`scrape`] speak.
//!
//! The endpoint is read-only and lives on its own listener, so the
//! session protocol (and its pinned byte-level fixtures) is untouched.

use crate::proto::{self, read_frame, write_frame};
use fireguard_telemetry::{parse_exposition, render_exposition, Sample};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Produces the current samples on demand — each scrape sees live values.
pub type SampleSource = Arc<dyn Fn() -> Vec<Sample> + Send + Sync>;

/// A running metrics endpoint. Dropping the handle leaks the thread;
/// call [`MetricsHandle::shutdown`] (the owning service does, from its
/// own shutdown path).
pub struct MetricsHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHandle")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl MetricsHandle {
    /// The bound address (`--metrics-addr 127.0.0.1:0` resolves here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the accept loop and joins the endpoint thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Starts a metrics endpoint on `addr` serving whatever `source`
/// produces at scrape time.
///
/// # Errors
///
/// Bind failures.
pub fn serve_metrics(addr: &str, source: SampleSource) -> std::io::Result<MetricsHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::spawn(move || loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are cheap and rare (a human, a CI step, a
                // scraper on a multi-second period): serving inline keeps
                // the endpoint single-threaded and unfloodable.
                let _ = handle_scrape(stream, &source);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop2.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                if stop2.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    });
    Ok(MetricsHandle {
        local_addr,
        stop,
        thread: Some(thread),
    })
}

fn codec_io(e: fireguard_trace::CodecError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

fn handle_scrape(stream: TcpStream, source: &SampleSource) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut first = [0u8; 1];
    stream.peek(&mut first)?;
    let body = render_exposition(&source());
    let mut out = stream.try_clone()?;
    if first[0] == proto::STATS {
        // Framed dialect: consume the request frame, answer in kind.
        let mut reader = BufReader::new(stream);
        match read_frame(&mut reader).map_err(codec_io)? {
            Some((proto::STATS, _)) => write_frame(&mut out, proto::STATS_REPLY, body.as_bytes())?,
            _ => write_frame(&mut out, proto::ERROR, b"expected a STATS frame")?,
        }
        return out.flush();
    }
    // HTTP dialect: drain the request head (best effort), answer 200.
    let mut reader = BufReader::new(stream);
    let mut buf = [0u8; 1024];
    loop {
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if buf[..n].windows(4).any(|w| w == b"\r\n\r\n")
                    || buf[..n].windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    write!(
        out,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )?;
    out.flush()
}

/// Scrapes a metrics endpoint via the framed dialect and parses the
/// exposition into samples — the client half `fireguard stats` uses.
///
/// # Errors
///
/// Connect/protocol failures; a malformed exposition maps to
/// [`std::io::ErrorKind::InvalidData`].
pub fn scrape(addr: &str) -> std::io::Result<Vec<Sample>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    let mut w = stream.try_clone()?;
    write_frame(&mut w, proto::STATS, &[])?;
    w.flush()?;
    let mut reader = BufReader::new(stream);
    match read_frame(&mut reader).map_err(codec_io)? {
        Some((proto::STATS_REPLY, payload)) => {
            let text = String::from_utf8(payload).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 exposition")
            })?;
            parse_exposition(&text)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
        }
        Some((proto::ERROR, payload)) => Err(std::io::Error::other(
            String::from_utf8_lossy(&payload).into_owned(),
        )),
        Some((tag, _)) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected frame tag {tag}"),
        )),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "endpoint closed without a reply",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_source() -> SampleSource {
        Arc::new(|| {
            vec![
                Sample::new("fireguard_packets_total", 42),
                Sample::new("fireguard_kernel_packets_total", 7).label("kernel", "asan"),
            ]
        })
    }

    #[test]
    fn framed_scrape_round_trips() {
        let h = serve_metrics("127.0.0.1:0", fixed_source()).expect("bind");
        let samples = scrape(&h.local_addr().to_string()).expect("scrape");
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].count(), 42);
        assert_eq!(samples[1].label_value("kernel"), Some("asan"));
        h.shutdown();
    }

    #[test]
    fn http_scrape_serves_a_valid_exposition() {
        let h = serve_metrics("127.0.0.1:0", fixed_source()).expect("bind");
        let mut stream = TcpStream::connect(h.local_addr()).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.0 200 OK"));
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        let parsed = parse_exposition(body).expect("valid exposition");
        assert_eq!(parsed.len(), 2);
        h.shutdown();
    }
}
