//! The chaos harness: a router fleet under deliberate, *deterministic*
//! backend slaughter.
//!
//! A chaos run spawns an in-process router with `backends` spawned
//! services, opens `sessions` resumable routed sessions, and — while
//! they stream — executes a seeded kill schedule against the backend
//! fleet. The schedule is keyed to the router's *progress clock*
//! ([`crate::router::RouterHandle::events_forwarded`]), not wall-clock
//! time: kill `k`
//! fires when the fleet has accepted its `k`-th share of the expected
//! event volume, and the victim slot comes from a [`SimRng`] stream. The
//! same seed therefore produces the same pressure pattern on any
//! machine, fast or slow, and the pass criterion is outcome-shaped, not
//! timing-shaped: every session completes, and its detection set is
//! bit-identical to an undisturbed run's.
//!
//! [`SimRng`]: fireguard_trace::SimRng

use crate::client::{run_routed_session, RoutedOptions, RoutedOutcome};
use crate::netem::{netem, NetemHandle, NetemOptions};
use crate::proto::SessionConfig;
use crate::router::{route, BackendMode, RouterOptions};
use fireguard_soc::Detection;
use fireguard_telemetry::TraceSink;
use fireguard_trace::{SimRng, TraceInst};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Chaos-run shape: fleet size, session load, and kill pressure.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Concurrent routed sessions to run (a floor when `duration` is set).
    pub sessions: usize,
    /// Maximum simultaneously open sessions.
    pub concurrency: usize,
    /// Events per EVENTS frame.
    pub batch: usize,
    /// Soak: keep opening sessions until this much wall-clock elapsed.
    pub duration: Option<Duration>,
    /// Backend slots behind the router.
    pub backends: usize,
    /// Worker threads per spawned backend.
    pub backend_workers: usize,
    /// Backend kills to schedule across the expected event volume.
    pub kills: usize,
    /// Seed for the kill schedule (thresholds and victim slots) and the
    /// session ids.
    pub seed: u64,
    /// Also sever each client transport after this many ACKs, forcing
    /// the resume path on top of backend failovers.
    pub drop_client_after_acks: Option<u64>,
    /// Alarm-drain period for the spawned backends.
    pub observe_every: u64,
    /// When set, interpose the seeded wire-fault proxy between every
    /// client and the router, so the network lies while backends die.
    pub wire_faults: Option<WireFaults>,
    /// Per-session journal RAM-tail capacity for the spawned router.
    /// Small values force disk spill, so failover replays come from the
    /// journal file rather than RAM.
    pub journal_tail: usize,
    /// Structured span sink shared by the spawned router (failovers,
    /// resumes, sheds) and the netem proxy (`net.fault`).
    pub trace: Option<Arc<TraceSink>>,
}

/// Wire-fault pressure for a chaos run (see [`mod@crate::netem`]).
#[derive(Debug, Clone, Copy)]
pub struct WireFaults {
    /// Mean frames between injected faults per connection direction.
    pub fault_every: u64,
    /// Upper bound for the `delay` fault, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for WireFaults {
    fn default() -> Self {
        WireFaults {
            fault_every: 64,
            max_delay_ms: 5,
        }
    }
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            sessions: 8,
            concurrency: 8,
            batch: crate::client::DEFAULT_BATCH,
            duration: None,
            backends: 2,
            backend_workers: 2,
            kills: 4,
            seed: 7,
            drop_client_after_acks: None,
            observe_every: 1024,
            wire_faults: None,
            journal_tail: crate::journal::DEFAULT_JOURNAL_TAIL,
            trace: None,
        }
    }
}

/// What the chaos run did and what survived it.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Sessions that completed with a summary.
    pub ok_sessions: usize,
    /// Sessions lost (any terminal failure) — the headline number, which
    /// a healthy fleet keeps at zero.
    pub lost_sessions: usize,
    /// Every successful session's outcome, in session-index order.
    pub outcomes: Vec<RoutedOutcome>,
    /// Backends actually killed by the schedule.
    pub kills: u64,
    /// Backend failovers the router performed.
    pub failovers: u64,
    /// Client resumes the router served.
    pub resumes: u64,
    /// Client-side reconnects summed over sessions.
    pub reconnects: u64,
    /// Fresh events the router accepted.
    pub events_forwarded: u64,
    /// Wire faults the netem proxy injected (0 when not enabled).
    pub wire_faults: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// First failure message, if any session was lost.
    pub first_error: Option<String>,
}

/// The seeded kill schedule: `(event_threshold, victim_slot)` pairs,
/// sorted by threshold. Thresholds split the expected fresh-event volume
/// into `kills + 1` roughly equal spans with ±25% seeded jitter, so
/// kills land mid-stream rather than at quiet edges.
pub fn kill_schedule(
    seed: u64,
    kills: usize,
    backends: usize,
    expected_events: u64,
) -> Vec<(u64, usize)> {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xC4A0_5C4A_05C4_A05C);
    let spacing = expected_events / (kills as u64 + 1);
    (0..kills)
        .map(|k| {
            let base = spacing * (k as u64 + 1);
            let jitter = rng.range_u64(0, (spacing / 2).max(1));
            let at = base.saturating_sub(spacing / 4).saturating_add(jitter);
            (at, rng.range_usize(backends.max(1)))
        })
        .collect()
}

/// Runs the full chaos experiment: router + fleet up, sessions through,
/// kills in, everything joined and torn down before returning.
///
/// # Errors
///
/// Only setup failures (router bind / backend spawn). Lost sessions are
/// *data*, reported in the outcome — callers assert on them.
pub fn run_chaos(
    cfg: &SessionConfig,
    events: Arc<Vec<TraceInst>>,
    opts: &ChaosOptions,
) -> std::io::Result<ChaosOutcome> {
    let started = Instant::now();
    let router = Arc::new(route(RouterOptions {
        backends: BackendMode::Spawn(opts.backends),
        backend_workers: opts.backend_workers,
        observe_every: opts.observe_every,
        drop_client_after_acks: opts.drop_client_after_acks,
        journal_tail: opts.journal_tail,
        trace: opts.trace.clone(),
        ..RouterOptions::default()
    })?);
    // With wire faults on, clients dial the proxy; otherwise the router.
    let proxy = match opts.wire_faults {
        Some(wf) => Some(netem(NetemOptions {
            upstream: router.local_addr().to_string(),
            seed: opts.seed ^ 0x4E45_5445_4D5F_5746, // "NETEM_WF"
            fault_every: wf.fault_every,
            max_delay_ms: wf.max_delay_ms,
            trace: opts.trace.clone(),
            ..NetemOptions::default()
        })?),
        None => None,
    };
    let addr = proxy
        .as_ref()
        .map_or_else(|| router.local_addr(), NetemHandle::local_addr)
        .to_string();

    // Session pool (the loadgen idiom: atomic cursor, bounded threads).
    let cursor = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel::<(usize, Result<RoutedOutcome, String>)>();
    let threads = if opts.duration.is_some() {
        opts.concurrency.max(1)
    } else {
        opts.concurrency.clamp(1, opts.sessions.max(1))
    };
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let cursor = Arc::clone(&cursor);
            let tx = tx.clone();
            let events = Arc::clone(&events);
            let cfg = cfg.clone();
            let addr = addr.clone();
            let opts = opts.clone();
            std::thread::spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let more =
                    i < opts.sessions || opts.duration.is_some_and(|d| started.elapsed() < d);
                if !more {
                    break;
                }
                let out = run_routed_session(
                    &addr,
                    &cfg,
                    Arc::clone(&events),
                    RoutedOptions {
                        batch: opts.batch,
                        // Chaos piles failures up; be patient.
                        max_reconnects: 64,
                        ..RoutedOptions::new(opts.seed.wrapping_add(1 + i as u64))
                    },
                )
                .map_err(|e| e.to_string());
                if tx.send((i, out)).is_err() {
                    break;
                }
            })
        })
        .collect();
    drop(tx);

    // The saboteur: walks the schedule as the progress clock passes each
    // threshold. In soak mode the schedule repeats (freshly seeded
    // victims) one expected-volume span at a time.
    let sessions_done = Arc::new(AtomicBool::new(false));
    let saboteur = {
        let done = Arc::clone(&sessions_done);
        let router = Arc::clone(&router);
        let expected = (events.len() as u64)
            .saturating_mul(opts.sessions.max(1) as u64)
            .max(1);
        let seed = opts.seed;
        let kills = opts.kills;
        std::thread::spawn(move || {
            let mut round = 0u64;
            let mut base = 0u64;
            let mut schedule = kill_schedule(seed, kills, router.backends(), expected);
            let mut idx = 0usize;
            loop {
                if done.load(Ordering::SeqCst) {
                    return;
                }
                if schedule.is_empty() {
                    return;
                }
                if idx >= schedule.len() {
                    // Soak: derive the next round's schedule, offset by
                    // the volume already consumed.
                    round += 1;
                    base += expected;
                    schedule =
                        kill_schedule(seed ^ (round << 32), kills, router.backends(), expected);
                    idx = 0;
                }
                let (threshold, slot) = schedule[idx];
                if router.events_forwarded() >= base + threshold {
                    // A miss (slot already down) still advances the
                    // schedule — determinism over body count.
                    let _ = router.kill_backend(slot);
                    idx += 1;
                } else {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        })
    };

    let mut results: Vec<(usize, Result<RoutedOutcome, String>)> = rx.into_iter().collect();
    for w in workers {
        let _ = w.join();
    }
    sessions_done.store(true, Ordering::SeqCst);
    let _ = saboteur.join();

    results.sort_by_key(|&(i, _)| i);
    let mut outcomes = Vec::new();
    let mut lost = 0usize;
    let mut reconnects = 0u64;
    let mut first_error = None;
    for (_, r) in results {
        match r {
            Ok(o) => {
                reconnects += u64::from(o.reconnects);
                outcomes.push(o);
            }
            Err(e) => {
                lost += 1;
                first_error.get_or_insert(e);
            }
        }
    }

    let outcome = ChaosOutcome {
        ok_sessions: outcomes.len(),
        lost_sessions: lost,
        outcomes,
        kills: router.kills(),
        failovers: router.failovers(),
        resumes: router.resumes(),
        reconnects,
        events_forwarded: router.events_forwarded(),
        wire_faults: proxy.as_ref().map_or(0, NetemHandle::faults),
        wall: started.elapsed(),
        first_error,
    };
    if let Some(p) = proxy {
        p.shutdown();
    }
    if let Ok(router) = Arc::try_unwrap(router) {
        router.shutdown();
    }
    Ok(outcome)
}

/// Sorted, bit-exact keys for a detection set — the currency of every
/// parity assertion (routed == direct == offline).
pub fn detection_keys(alarms: &[Detection]) -> Vec<(u64, u64, usize, bool)> {
    let mut keys: Vec<_> = alarms
        .iter()
        .map(|d| (d.seq, d.latency_ns.to_bits(), d.kernel_slot, d.attack))
        .collect();
    keys.sort_unstable();
    keys
}
