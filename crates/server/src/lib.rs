//! `fireguard-server`: the online streaming analysis service.
//!
//! FireGuard's premise is *online* fine-grained analysis — commit events
//! stream off a fast core into decoupled guardian engines at line rate.
//! This crate turns the closed-loop simulator into a long-lived service:
//! a std-only threaded TCP server ([`serve`]) accepts concurrent client
//! sessions, each negotiating a per-session [`SessionConfig`] in a HELLO
//! frame, streaming framed commit events (the same binary batches a
//! `.fgt` recording holds), and receiving alarm/summary frames online
//! while the analysis runs.
//!
//! Because the server feeds the *identical* [`FireGuardSystem`] the batch
//! experiments use, a served session over loopback reports exactly the
//! detections the equivalent offline [`run_fireguard`] run produces — the
//! wire adds transport, not semantics.
//!
//! [`FireGuardSystem`]: fireguard_soc::FireGuardSystem
//! [`run_fireguard`]: fireguard_soc::run_fireguard
//!
//! # Example (loopback)
//!
//! ```no_run
//! use fireguard_server::{serve, run_session, ServeOptions, SessionConfig};
//! use fireguard_soc::{capture_events, ExperimentConfig, KernelId};
//! use std::sync::Arc;
//!
//! let handle = serve(ServeOptions {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServeOptions::default()
//! }).unwrap();
//!
//! let cfg = ExperimentConfig::new("swaptions").kernel(KernelId::PMC, 4).insts(20_000);
//! let events = Arc::new(capture_events(&cfg));
//! let session = SessionConfig::from_experiment(&cfg, 0);
//! let out = run_session(&handle.local_addr().to_string(), &session, events, 512).unwrap();
//! println!("served: {} detections", out.summary.detections);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod journal;
pub mod loadgen;
pub mod metrics;
pub mod netem;
pub mod proto;
pub mod ring;
pub mod router;
pub mod service;

pub use chaos::{run_chaos, ChaosOptions, ChaosOutcome, WireFaults};
pub use client::{
    run_routed_session, run_session, ClientError, RoutedOptions, RoutedOutcome, SessionOutcome,
    DEFAULT_BATCH,
};
pub use journal::{recover_journals, Journal, JournalGauges, DEFAULT_JOURNAL_TAIL};
pub use loadgen::{run_loadgen, LatencyBucket, LoadgenOptions, LoadgenOutcome};
pub use metrics::{scrape, serve_metrics, MetricsHandle, SampleSource};
pub use netem::{netem, NetemHandle, NetemOptions};
pub use proto::{
    SessionConfig, SessionTicket, Summary, CAP_FRAME_CHECKSUM, CAP_WIDE_VERDICT, PROTO_V1,
    PROTO_V2, PROTO_VERSION, V1_MAX_KERNELS,
};
pub use ring::{Ring, DEFAULT_REPLICAS};
pub use router::{route, BackendMode, RouterHandle, RouterOptions};
pub use service::{fleet_samples, serve, ServeOptions, ServerHandle, OBSERVE_EVERY};

// Re-exported so the CLI and tests consume the telemetry vocabulary
// without a direct `fireguard-telemetry` dependency.
pub use fireguard_telemetry::{FleetCounters, Sample, TraceSink};
