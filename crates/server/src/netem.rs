//! The seeded wire-fault proxy: a frame-aware TCP interposer that makes
//! the network lie on purpose.
//!
//! `netem` sits between a client and a router (or a router and a
//! backend) and forwards framed traffic byte-exactly — until its seeded
//! fault schedule fires. Faults are clocked by *progress* (frames
//! forwarded per direction), not wall-clock time, so the same seed
//! reproduces the same damage pattern on any machine:
//!
//! - **delay** — the frame is held for a bounded, seeded number of
//!   milliseconds, then forwarded intact (the only non-lossy fault);
//! - **drop** — the frame vanishes;
//! - **corrupt** — one byte past the tag is flipped;
//! - **truncate** — only a seeded prefix of the frame's bytes leave;
//! - **duplicate** — the frame is forwarded twice;
//! - **disconnect** — the connection dies mid-stream, frame unsent.
//!
//! Every lossy fault also severs the connection immediately after the
//! damage: a real broken link does not politely resynchronize, and the
//! framed protocol has no way to skip garbage mid-stream — recovery is
//! the *session* layer's job (resume tickets + [`CAP_FRAME_CHECKSUM`]
//! detection), which is exactly the machinery under test.
//!
//! Two frame classes are never faulted: the first `handshake_grace`
//! frames of each direction (SESSION/HELLO — damaging the handshake
//! yields a terminal refusal, not a retryable transport error) and
//! ERROR/BUSY frames (they are checksum-exempt plain frames whose
//! corruption would forge a *terminal* verdict out of a transport
//! hiccup). Everything else — EVENTS, ACK, ALARMS, SUMMARY, END — is
//! fair game; the chaos contract (zero lost sessions, detections
//! bit-identical to offline) must hold anyway.
//!
//! The proxy parses frames (it must know byte boundaries and whether a
//! trailing checksum word is present) but never re-encodes them:
//! forwarded frames are bit-identical to what was read.

use crate::proto::{hello_caps, BUSY, CAP_FRAME_CHECKSUM, ERROR, HELLO, MAX_FRAME, SESSION};
use fireguard_telemetry::TraceSink;
use fireguard_trace::codec::{put_uvarint, read_uvarint};
use fireguard_trace::SimRng;
use std::collections::HashMap;
use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Wire-fault proxy configuration.
#[derive(Debug, Clone)]
pub struct NetemOptions {
    /// Address to bind (port 0 = ephemeral).
    pub listen: String,
    /// Where honest traffic would have gone (router or backend address).
    pub upstream: String,
    /// Seed for every per-connection, per-direction fault schedule.
    pub seed: u64,
    /// Mean frames between faults per direction (each gap is drawn
    /// uniformly from `1..2*fault_every`). 0 disables fault injection
    /// entirely (pure relay).
    pub fault_every: u64,
    /// Upper bound for the `delay` fault, in milliseconds.
    pub max_delay_ms: u64,
    /// Frames per direction exempt at the head of each connection, so
    /// the handshake (SESSION, HELLO) always survives.
    pub handshake_grace: u64,
    /// Structured trace sink for `net.fault` spans.
    pub trace: Option<Arc<TraceSink>>,
}

impl Default for NetemOptions {
    fn default() -> Self {
        NetemOptions {
            listen: "127.0.0.1:0".into(),
            upstream: String::new(),
            seed: 7,
            fault_every: 64,
            max_delay_ms: 5,
            handshake_grace: 2,
            trace: None,
        }
    }
}

/// A running wire-fault proxy.
pub struct NetemHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    faults: Arc<AtomicU64>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    pairs: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accept: Option<JoinHandle<()>>,
}

impl NetemHandle {
    /// The proxy's listening address (clients dial this instead of the
    /// upstream).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Faults injected so far, across all connections and directions.
    pub fn faults(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Stops accepting, severs every live connection, and joins all
    /// proxy threads.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    /// Blocks until the proxy stops (foreground `chaos-net` mode — the
    /// accept loop only exits when the process is killed).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    fn stop_all(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for s in lock_ok(&self.conns).drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in lock_ok(&self.pairs).drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NetemHandle {
    fn drop(&mut self) {
        self.stop_all();
    }
}

fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Starts the proxy.
///
/// # Errors
///
/// Only bind failures; per-connection trouble (including an unreachable
/// upstream) surfaces to the affected client as a severed connection,
/// which is the point.
pub fn netem(opts: NetemOptions) -> io::Result<NetemHandle> {
    let listener = TcpListener::bind(&opts.listen)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let faults = Arc::new(AtomicU64::new(0));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
    let pairs: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    // Session id → negotiated capability bits, shared across connections.
    // A resume connection opens with SESSION alone (no HELLO), yet both
    // sides immediately speak checksummed frames under the caps agreed on
    // the *original* connection — the proxy must remember them to keep
    // parsing frame boundaries correctly.
    let registry: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));

    let accept = {
        let stop = Arc::clone(&stop);
        let faults = Arc::clone(&faults);
        let conns = Arc::clone(&conns);
        let pairs = Arc::clone(&pairs);
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || {
            let mut conn_index = 0u64;
            loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((client, _)) => {
                        let index = conn_index;
                        conn_index += 1;
                        if let Ok(c) = client.try_clone() {
                            lock_ok(&conns).push(c);
                        }
                        let opts = opts.clone();
                        let faults = Arc::clone(&faults);
                        let conns = Arc::clone(&conns);
                        let registry = Arc::clone(&registry);
                        let h = std::thread::spawn(move || {
                            splice(client, index, &opts, &faults, &conns, &registry);
                        });
                        lock_ok(&pairs).push(h);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
        })
    };

    Ok(NetemHandle {
        local_addr,
        stop,
        faults,
        conns,
        pairs,
        accept: Some(accept),
    })
}

/// One proxied connection: dial upstream, pump both directions, join.
fn splice(
    client: TcpStream,
    index: u64,
    opts: &NetemOptions,
    faults: &Arc<AtomicU64>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
    registry: &Arc<Mutex<HashMap<u64, u64>>>,
) {
    let _ = client.set_nodelay(true);
    let upstream = match TcpStream::connect(&opts.upstream) {
        Ok(s) => s,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    let _ = upstream.set_nodelay(true);
    if let Ok(u) = upstream.try_clone() {
        lock_ok(conns).push(u);
    }

    // The client→server pump parses the handshake (SESSION ticket and/or
    // HELLO) and publishes the session's capability bits so both
    // directions agree on whether frames carry a trailing checksum word.
    // A fresh connection learns caps from its HELLO; a resume connection
    // carries only a SESSION ticket, so caps come from the proxy-global
    // registry populated when the session first negotiated.
    let caps = Arc::new(AtomicU64::new(0));
    let c2s = {
        let (Ok(from), Ok(to)) = (client.try_clone(), upstream.try_clone()) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = upstream.shutdown(Shutdown::Both);
            return;
        };
        let cfg = PumpCfg {
            dir: "c2s",
            seed: pump_seed(opts.seed, index, 0x0C25),
            fault_every: opts.fault_every,
            max_delay_ms: opts.max_delay_ms,
            grace: opts.handshake_grace,
            parse_handshake: true,
            caps: Arc::clone(&caps),
            registry: Arc::clone(registry),
            faults: Arc::clone(faults),
            trace: opts.trace.clone(),
        };
        std::thread::spawn(move || pump(from, to, cfg))
    };
    let cfg = PumpCfg {
        dir: "s2c",
        seed: pump_seed(opts.seed, index, 0x52C5),
        fault_every: opts.fault_every,
        max_delay_ms: opts.max_delay_ms,
        grace: opts.handshake_grace,
        parse_handshake: false,
        caps,
        registry: Arc::clone(registry),
        faults: Arc::clone(faults),
        trace: opts.trace.clone(),
    };
    pump(upstream, client, cfg);
    let _ = c2s.join();
}

fn pump_seed(seed: u64, index: u64, dir_salt: u64) -> u64 {
    seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ dir_salt
}

struct PumpCfg {
    dir: &'static str,
    seed: u64,
    fault_every: u64,
    max_delay_ms: u64,
    grace: u64,
    parse_handshake: bool,
    caps: Arc<AtomicU64>,
    registry: Arc<Mutex<HashMap<u64, u64>>>,
    faults: Arc<AtomicU64>,
    trace: Option<Arc<TraceSink>>,
}

/// ERROR and BUSY are checksum-exempt on the wire *and* fault-exempt in
/// the proxy (see module docs).
fn exempt(tag: u8) -> bool {
    tag == ERROR || tag == BUSY
}

/// Frames that are always plain regardless of negotiated caps: the
/// checksum-exempt verdict frames plus the handshake frames themselves
/// (SESSION/HELLO precede — or on resume, replace — the negotiation).
fn always_plain(tag: u8) -> bool {
    exempt(tag) || tag == SESSION || tag == HELLO
}

/// One raw frame as it appeared on the wire: the tag, the full byte
/// image (header ‖ payload ‖ optional checksum word), and where the
/// payload starts within it.
struct RawFrame {
    tag: u8,
    bytes: Vec<u8>,
    payload_at: usize,
    payload_len: usize,
}

/// Reads one raw frame. Whether a trailing checksum word follows the
/// payload depends on the *tag* (ERROR/BUSY and the handshake frames are
/// always plain) and on capability bits that another thread may publish
/// while this read is blocked — so the decision is made by the
/// `is_checked` callback only *after* the tag byte has arrived, never
/// from a value snapshotted before the blocking read began.
fn read_raw<R: Read>(
    r: &mut R,
    is_checked: impl FnOnce(u8) -> bool,
) -> io::Result<Option<RawFrame>> {
    let mut tag = [0u8; 1];
    loop {
        match r.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len =
        read_uvarint(r).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut bytes = vec![tag[0]];
    put_uvarint(&mut bytes, len);
    let payload_at = bytes.len();
    bytes.resize(payload_at + len as usize, 0);
    r.read_exact(&mut bytes[payload_at..])?;
    if is_checked(tag[0]) {
        let mut sum = [0u8; 4];
        r.read_exact(&mut sum)?;
        bytes.extend_from_slice(&sum);
    }
    Ok(Some(RawFrame {
        tag: tag[0],
        bytes,
        payload_at,
        payload_len: len as usize,
    }))
}

fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

const FAULT_KINDS: [&str; 6] = [
    "delay",
    "drop",
    "corrupt",
    "truncate",
    "duplicate",
    "disconnect",
];

/// One direction of one proxied connection.
fn pump(from: TcpStream, mut to: TcpStream, cfg: PumpCfg) {
    let Ok(from_raw) = from.try_clone() else {
        sever(&from, &to);
        return;
    };
    let mut r = BufReader::new(from);
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let gap = |rng: &mut SimRng| rng.range_u64(1, (2 * cfg.fault_every).max(2));
    let mut due = if cfg.fault_every == 0 {
        0
    } else {
        gap(&mut rng)
    };
    let mut pending_session: Option<u64> = None;
    let mut forwarded = 0u64;
    loop {
        let caps = &cfg.caps;
        let frame = match read_raw(&mut r, |tag| {
            !always_plain(tag) && caps.load(Ordering::Relaxed) & CAP_FRAME_CHECKSUM != 0
        }) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => {
                sever(&from_raw, &to);
                return;
            }
        };
        if cfg.parse_handshake {
            let payload = &frame.bytes[frame.payload_at..frame.payload_at + frame.payload_len];
            if frame.tag == SESSION {
                // Ticket payload leads with `uvarint id`. A resume ticket
                // for a session this proxy has seen negotiate restores its
                // caps *before* the frame is forwarded, so the upstream's
                // immediate checksummed ACK parses correctly.
                if let Ok(id) = read_uvarint(&mut &payload[..]) {
                    if let Some(&c) = lock_ok(&cfg.registry).get(&id) {
                        cfg.caps.store(c, Ordering::Relaxed);
                    }
                    pending_session = Some(id);
                }
            } else if frame.tag == HELLO {
                let c = hello_caps(payload);
                cfg.caps.store(c, Ordering::Relaxed);
                if let Some(id) = pending_session {
                    lock_ok(&cfg.registry).insert(id, c);
                }
            }
        }
        // ERROR/BUSY pass untouched and don't advance the fault clock.
        if exempt(frame.tag) {
            if to.write_all(&frame.bytes).is_err() {
                sever(&from_raw, &to);
                return;
            }
            continue;
        }
        forwarded += 1;
        let fire = cfg.fault_every != 0 && forwarded > cfg.grace && {
            due = due.saturating_sub(1);
            due == 0
        };
        if !fire {
            if to.write_all(&frame.bytes).is_err() {
                sever(&from_raw, &to);
                return;
            }
            continue;
        }
        due = gap(&mut rng);
        let kind = rng.range_usize(FAULT_KINDS.len());
        cfg.faults.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = cfg.trace.as_deref() {
            t.emit(
                "net.fault",
                None,
                vec![
                    ("dir", cfg.dir.into()),
                    ("kind", FAULT_KINDS[kind].into()),
                    ("frame", forwarded.into()),
                    ("tag", u64::from(frame.tag).into()),
                ],
            );
        }
        match kind {
            // delay: hold, then forward intact — the only survivable one.
            0 => {
                let ms = rng.range_u64(0, cfg.max_delay_ms.max(1) + 1);
                std::thread::sleep(Duration::from_millis(ms));
                if to.write_all(&frame.bytes).is_err() {
                    sever(&from_raw, &to);
                    return;
                }
            }
            // drop: the frame vanishes; the stream is now desynchronized.
            1 => {
                sever(&from_raw, &to);
                return;
            }
            // corrupt: flip one byte past the tag (never the tag itself —
            // a forged ERROR tag would fake a terminal verdict).
            2 => {
                let mut bytes = frame.bytes;
                let at = 1 + rng.range_usize(bytes.len() - 1);
                bytes[at] ^= 1 + rng.range_usize(255) as u8;
                let _ = to.write_all(&bytes);
                sever(&from_raw, &to);
                return;
            }
            // truncate: a prefix leaves, the tail never does.
            3 => {
                let cut = rng.range_usize(frame.bytes.len());
                let _ = to.write_all(&frame.bytes[..cut]);
                sever(&from_raw, &to);
                return;
            }
            // duplicate: the frame arrives twice (index-bound checksums
            // make the receiver catch the replay).
            4 => {
                let _ = to.write_all(&frame.bytes);
                let _ = to.write_all(&frame.bytes);
                sever(&from_raw, &to);
                return;
            }
            // disconnect: the link dies, frame unsent.
            _ => {
                sever(&from_raw, &to);
                return;
            }
        }
    }
}
