//! The fleet router tier: one front-end TCP process consistent-hashing
//! sessions over N `serve` backends, with transparent failover and
//! client-side session resume.
//!
//! # Topology
//!
//! ```text
//! client ──┐                    ┌── backend 0 (serve)
//! client ──┼──▶ router ── ring ─┼── backend 1 (serve)
//! client ──┘     │              └── backend 2 (serve)
//!                └ health checker: probe / mark down / respawn
//! ```
//!
//! The router speaks the existing framed protocol *transparently*: a
//! HELLO payload is stored opaque and forwarded verbatim (v1 and v2
//! wide-verdict negotiation pass through unchanged), EVENTS batches are
//! decoded into a per-session buffer and re-encoded per backend
//! incarnation, ALARMS are decoded only to deduplicate across failovers.
//! A plain [`run_session`](crate::run_session) client works unmodified; a
//! client that opens with a [`SessionTicket`] additionally gets ACK
//! frames and may *resume* the session on a fresh connection if its
//! transport dies.
//!
//! # Zero lost sessions
//!
//! Formally: for every session whose client follows the resume protocol,
//! the client observes exactly the alarm sequence and summary an
//! uninterrupted direct session would have produced — no alarm lost,
//! none delivered twice — regardless of how many backends die mid-stream
//! (as long as some backend eventually serves). The mechanism is
//! buffering + determinism: the router holds the session's full event
//! prefix, replays it to a fresh backend on failover, and suppresses the
//! alarms the replay re-raises (analysis is deterministic, so the first
//! `k` alarms of a replayed incarnation are bit-identical to the `k`
//! already logged). Client-side loss is covered the same way: the resume
//! ticket carries how many alarms the client holds, and the router
//! re-sends the missing tail from its buffer.

use crate::journal::{recover_journals, Journal, JournalGauges, DEFAULT_JOURNAL_TAIL};
use crate::metrics::{serve_metrics, MetricsHandle};
use crate::proto::{
    self, hello_caps, FrameReader, FrameWriter, SessionTicket, ACK, ALARMS, BUSY,
    CAP_FRAME_CHECKSUM, END, ERROR, EVENTS, HELLO, RETRYABLE_ERROR_PREFIX, SESSION, SUMMARY,
};
use crate::ring::{mix, Ring, DEFAULT_REPLICAS};
use crate::service::{fleet_samples, serve, ServeOptions, ServerHandle};
use fireguard_soc::Detection;
use fireguard_telemetry::{Sample, TraceSink};
use fireguard_trace::codec::{EventDecoder, EventEncoder};
use fireguard_trace::TraceInst;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Events per EVENTS frame when the router replays a buffered prefix to
/// a fresh backend incarnation.
const REPLAY_BATCH: usize = 512;

/// How long a driver keeps retrying for a live backend before giving the
/// session up with an ERROR frame.
const ROUTE_PATIENCE: Duration = Duration::from_secs(5);

/// How long a resume waits for the previous driver to let go of the
/// session before answering "session busy".
const ATTACH_PATIENCE: Duration = Duration::from_secs(5);

/// Ceiling on *consecutive* failovers without a single backend
/// round-trip — past this the fleet is clearly sick and the session is
/// parked (ticketed) or failed (anonymous) instead of thrashing in a
/// connect/replay hot loop. Any decoded backend frame resets the
/// budget, so a long session under sustained-but-survivable fault
/// pressure is never killed merely for surviving many faults.
const MAX_FAILOVERS: u32 = 32;

/// Lock recovery: a driver thread that panicked while holding a lock
/// poisons it, but the data under every router lock is valid at all
/// times (each critical section is a small, atomic mutation), so the
/// router recovers the guard and keeps serving instead of cascading the
/// panic through every thread that touches the lock.
static LOCK_POISONS: AtomicU64 = AtomicU64::new(0);

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        LOCK_POISONS.fetch_add(1, Ordering::Relaxed);
        poisoned.into_inner()
    })
}

/// Where the router's backends come from.
#[derive(Debug, Clone)]
pub enum BackendMode {
    /// Spawn `n` in-process [`serve`] instances on ephemeral ports; dead
    /// ones are respawned (the chaos harness's mode).
    Spawn(usize),
    /// Route over externally managed services; dead ones are probed and
    /// re-admitted when they answer again, never respawned. Note the
    /// health probe opens (and immediately closes) a connection, which a
    /// backend running with a `--max-sessions` budget counts against it.
    Extern(Vec<String>),
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Address to bind (port 0 = ephemeral).
    pub addr: String,
    /// Backend fleet.
    pub backends: BackendMode,
    /// Worker threads per spawned backend.
    pub backend_workers: usize,
    /// Alarm-drain period handed to spawned backends.
    pub observe_every: u64,
    /// Virtual ring points per backend slot.
    pub replicas: usize,
    /// Accept at most this many connections (resumes included), then
    /// stop (None = forever).
    pub max_sessions: Option<u64>,
    /// Health-check period.
    pub health_every: Duration,
    /// Fault injection: sever each *ticketed* client connection after
    /// this many ACKs, simulating client↔router transport loss. Session
    /// state survives, so a resuming client must still observe a
    /// lossless session — this is how the resume path is exercised
    /// deterministically in tests.
    pub drop_client_after_acks: Option<u64>,
    /// Optional admin metrics endpoint (`--metrics-addr`). The router's
    /// exposition includes its own routing counters plus, in spawn mode,
    /// each live backend's fleet counters labeled `backend="<slot>"` —
    /// one scrape sees the whole fleet.
    pub metrics_addr: Option<String>,
    /// Optional structured span sink (`--trace-out`); failover, resume,
    /// and ghost-driver transitions are emitted here.
    pub trace: Option<Arc<TraceSink>>,
    /// Client-leg read timeout (`--idle-timeout`): a connection that
    /// produces no frame for this long is reaped (slowloris defense).
    /// A session wedged with neither client nor backend progress for
    /// twice this duration is failed.
    pub idle_timeout: Duration,
    /// How long a ghost driver (client transport died mid-session) keeps
    /// driving the backend while waiting for a resume. Past it the driver
    /// detaches and exits; the session stays in the table (and, with a
    /// journal dir, on disk) so a later resume still replays it.
    pub ghost_linger: Duration,
    /// Admission budget (`--max-live-sessions`): over this many
    /// concurrently live sessions, *fresh* sessions are refused with a
    /// clean BUSY frame. Resumes are always admitted.
    pub max_live_sessions: Option<u64>,
    /// Admission budget (`--max-buffered-mb`, stored in bytes): when the
    /// aggregate journal spill exceeds it, fresh sessions get BUSY.
    pub max_buffered_bytes: Option<u64>,
    /// Durable journal directory (`--journal-dir`): ticketed sessions
    /// journal their state here with an fsync'd recovery sidecar, so a
    /// router *process* crash is resumable. `None` = ephemeral journals
    /// in the OS temp dir (failover-safe, not crash-safe).
    pub journal_dir: Option<PathBuf>,
    /// Scan `journal_dir` at startup (`--resume-journals`) and rebuild
    /// the session table from the journals a crashed router left behind.
    pub resume_journals: bool,
    /// In-RAM tail capacity per session journal, in events; the spill
    /// threshold that bounds per-session router memory.
    pub journal_tail: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            addr: "127.0.0.1:0".to_owned(),
            backends: BackendMode::Spawn(2),
            backend_workers: 2,
            observe_every: crate::service::OBSERVE_EVERY,
            replicas: DEFAULT_REPLICAS,
            max_sessions: None,
            health_every: Duration::from_millis(100),
            drop_client_after_acks: None,
            metrics_addr: None,
            trace: None,
            idle_timeout: Duration::from_secs(30),
            ghost_linger: Duration::from_secs(60),
            max_live_sessions: None,
            max_buffered_bytes: None,
            journal_dir: None,
            resume_journals: false,
            journal_tail: DEFAULT_JOURNAL_TAIL,
        }
    }
}

// ---- backend pool ----------------------------------------------------------

/// One backend slot's health state machine:
///
/// ```text
///            kill / probe failure
///      Up ───────────────────────────▶ Down
///       ▲ ◀── restore ── Draining      │
///       │        ▲           │         │
///       │        └── drain ──┘         │
///       └──────── revive (respawn or successful re-probe)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Healthy: takes new sessions.
    Up,
    /// Administratively draining: in-flight sessions finish, new ones
    /// route elsewhere.
    Draining,
    /// Dead: routed around until revived.
    Down,
}

struct Slot {
    state: SlotState,
    /// Bumped on every revival so stale death reports are ignored.
    generation: u64,
    addr: Option<SocketAddr>,
    /// The in-process service (spawn mode only).
    handle: Option<ServerHandle>,
}

struct BackendPool {
    slots: Vec<Mutex<Slot>>,
    ring: Ring,
    /// `Some((workers, observe_every))` = spawn mode; `None` = extern.
    spawn: Option<(usize, u64)>,
    kills: AtomicU64,
}

impl BackendPool {
    fn build(opts: &RouterOptions) -> std::io::Result<Self> {
        match &opts.backends {
            BackendMode::Spawn(n) => {
                let n = (*n).max(1);
                let workers = opts.backend_workers.max(1);
                let mut slots = Vec::with_capacity(n);
                for _ in 0..n {
                    let handle = spawn_backend(workers, opts.observe_every)?;
                    slots.push(Mutex::new(Slot {
                        state: SlotState::Up,
                        generation: 0,
                        addr: Some(handle.local_addr()),
                        handle: Some(handle),
                    }));
                }
                Ok(BackendPool {
                    ring: Ring::new(n, opts.replicas),
                    slots,
                    spawn: Some((workers, opts.observe_every)),
                    kills: AtomicU64::new(0),
                })
            }
            BackendMode::Extern(addrs) => {
                if addrs.is_empty() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "router needs at least one backend address",
                    ));
                }
                let mut slots = Vec::with_capacity(addrs.len());
                for a in addrs {
                    let addr = a.to_socket_addrs()?.next().ok_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            format!("backend address {a} did not resolve"),
                        )
                    })?;
                    slots.push(Mutex::new(Slot {
                        state: SlotState::Up,
                        generation: 0,
                        addr: Some(addr),
                        handle: None,
                    }));
                }
                Ok(BackendPool {
                    ring: Ring::new(addrs.len(), opts.replicas),
                    slots,
                    spawn: None,
                    kills: AtomicU64::new(0),
                })
            }
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn lock_slot(&self, slot: usize) -> MutexGuard<'_, Slot> {
        lock_recover(&self.slots[slot])
    }

    fn addrs(&self) -> Vec<Option<SocketAddr>> {
        (0..self.len()).map(|s| self.lock_slot(s).addr).collect()
    }

    /// Routes `key` to a live slot: `(slot, addr, generation)`.
    fn route(&self, key: u64) -> Option<(usize, SocketAddr, u64)> {
        let idx = self.ring.route(key, |s| {
            let sl = self.lock_slot(s);
            sl.state == SlotState::Up && sl.addr.is_some()
        })?;
        let sl = self.lock_slot(idx);
        if sl.state != SlotState::Up {
            return None; // lost a race with a kill; caller retries
        }
        sl.addr.map(|a| (idx, a, sl.generation))
    }

    /// Reports slot death observed at `generation`; stale reports (the
    /// slot already revived) are ignored.
    fn mark_down(&self, slot: usize, generation: u64) {
        let handle = {
            let mut sl = self.lock_slot(slot);
            if sl.generation != generation || sl.state == SlotState::Down {
                return;
            }
            sl.state = SlotState::Down;
            sl.handle.take()
        };
        if let Some(h) = handle {
            h.abort();
        }
    }

    /// Abruptly kills a spawned backend (in-flight sessions are severed
    /// mid-stream) — the chaos harness's lever. Returns false for extern
    /// slots and already-down slots.
    fn kill(&self, slot: usize) -> bool {
        let handle = {
            let mut sl = self.lock_slot(slot);
            if sl.state == SlotState::Down {
                return false;
            }
            match sl.handle.take() {
                Some(h) => {
                    sl.state = SlotState::Down;
                    h
                }
                None => return false,
            }
        };
        self.kills.fetch_add(1, Ordering::Relaxed);
        handle.abort();
        true
    }

    /// Brings a Down slot back: spawn mode starts a fresh service on a
    /// new ephemeral port; extern mode probes the fixed address and
    /// re-admits the slot when it answers.
    fn revive(&self, slot: usize) -> bool {
        match self.spawn {
            Some((workers, observe_every)) => {
                let mut sl = self.lock_slot(slot);
                if sl.state != SlotState::Down || sl.handle.is_some() {
                    return false;
                }
                match spawn_backend(workers, observe_every) {
                    Ok(h) => {
                        sl.addr = Some(h.local_addr());
                        sl.handle = Some(h);
                        sl.generation += 1;
                        sl.state = SlotState::Up;
                        true
                    }
                    Err(_) => false,
                }
            }
            None => {
                let addr = {
                    let sl = self.lock_slot(slot);
                    if sl.state != SlotState::Down {
                        return false;
                    }
                    match sl.addr {
                        Some(a) => a,
                        None => return false,
                    }
                };
                if TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_ok() {
                    let mut sl = self.lock_slot(slot);
                    if sl.state == SlotState::Down {
                        sl.generation += 1;
                        sl.state = SlotState::Up;
                        return true;
                    }
                }
                false
            }
        }
    }

    fn set_state(&self, slot: usize, from: SlotState, to: SlotState) -> bool {
        let mut sl = self.lock_slot(slot);
        if sl.state == from {
            sl.state = to;
            true
        } else {
            false
        }
    }

    fn shutdown(&self) {
        for slot in 0..self.len() {
            let handle = self.lock_slot(slot).handle.take();
            if let Some(h) = handle {
                h.shutdown();
            }
        }
    }
}

fn spawn_backend(workers: usize, observe_every: u64) -> std::io::Result<ServerHandle> {
    serve(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        observe_every,
        ..ServeOptions::default()
    })
}

// ---- session state ---------------------------------------------------------

/// Everything the router remembers about one session — enough to replay
/// it to a fresh backend and to resume a returning client losslessly.
struct SessionBuf {
    /// The opaque HELLO payload, forwarded verbatim to every incarnation.
    hello: Vec<u8>,
    /// The contiguous event prefix received from the client (journal
    /// index == absolute seq): a bounded RAM tail + disk spill, so the
    /// router's per-session memory is O(tail), not O(events).
    journal: Journal,
    /// The client has sent END.
    ended: bool,
    /// Every alarm the analysis has produced, deduplicated across
    /// failovers — also the re-delivery log for resumes.
    alarms: Vec<Detection>,
    /// Stored terminal frames once the analysis finished — replayed to a
    /// client that resumes afterwards.
    summary: Option<Vec<u8>>,
    error: Option<Vec<u8>>,
    /// A driver currently owns this session.
    attached: bool,
    /// A resuming connection asked the current (ghost) driver to let go.
    takeover: bool,
}

impl SessionBuf {
    fn fresh(hello: Vec<u8>, journal: Journal) -> Self {
        SessionBuf {
            hello,
            journal,
            ended: false,
            alarms: Vec::new(),
            summary: None,
            error: None,
            attached: true,
            takeover: false,
        }
    }

    fn done(&self) -> bool {
        self.summary.is_some() || self.error.is_some()
    }

    fn set_summary(&mut self, payload: Vec<u8>) {
        let _ = self.journal.record_summary(&payload);
        self.summary = Some(payload);
    }

    fn set_error(&mut self, payload: Vec<u8>) {
        let _ = self.journal.record_error(&payload);
        self.error = Some(payload);
    }
}

type SessionRef = Arc<Mutex<SessionBuf>>;

fn lock_session(session: &SessionRef) -> MutexGuard<'_, SessionBuf> {
    lock_recover(session)
}

#[derive(Default)]
struct SessionTable {
    map: Mutex<HashMap<u64, SessionRef>>,
}

impl SessionTable {
    fn forget(&self, session: &SessionRef) {
        lock_recover(&self.map).retain(|_, v| !Arc::ptr_eq(v, session));
    }
}

/// Router-wide counters (monotonic; the chaos scheduler keys off
/// `events`).
#[derive(Default)]
struct RouterStats {
    /// Fresh events accepted into session buffers (replays not counted).
    events: AtomicU64,
    /// Sessions whose terminal frame (SUMMARY or ERROR) was produced.
    sessions: AtomicU64,
    /// Backend incarnation changes forced by backend death.
    failovers: AtomicU64,
    /// Successful client resumes.
    resumes: AtomicU64,
    /// Fresh sessions refused with BUSY by the admission controller.
    shed: AtomicU64,
    /// Currently live (admitted, not yet finished) connections.
    live: AtomicU64,
}

/// The router's exposition: its own routing counters, backend liveness,
/// and (spawn mode) each live backend's fleet counters labeled
/// `backend="<slot>"` — one scrape covers the whole fleet.
fn router_samples(pool: &BackendPool, stats: &RouterStats, gauges: &JournalGauges) -> Vec<Sample> {
    let mut out = vec![
        Sample::new(
            "fireguard_router_events_total",
            stats.events.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_sessions_total",
            stats.sessions.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_failovers_total",
            stats.failovers.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_resumes_total",
            stats.resumes.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_kills_total",
            pool.kills.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_journal_bytes",
            gauges.bytes.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_events_spilled_total",
            gauges.spilled_events.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_sessions_shed_total",
            stats.shed.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_live_sessions",
            stats.live.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_lock_poison_total",
            LOCK_POISONS.load(Ordering::Relaxed),
        ),
    ];
    let mut up = 0u64;
    for slot in 0..pool.len() {
        // Clone the counters handle under the slot lock, sample unlocked.
        let (state, counters) = {
            let sl = pool.lock_slot(slot);
            (
                sl.state,
                sl.handle.as_ref().map(|h| Arc::clone(h.counters())),
            )
        };
        if state == SlotState::Up {
            up += 1;
        }
        if let Some(c) = counters {
            let slot_label = slot.to_string();
            out.extend(
                fleet_samples(&c)
                    .into_iter()
                    .map(|s| s.label("backend", &slot_label)),
            );
        }
    }
    out.push(Sample::new("fireguard_router_backends_up", up));
    out
}

// ---- handle ----------------------------------------------------------------

/// A running router: accept loop, health checker, per-session drivers,
/// and the backend pool. Obtained from [`route`].
pub struct RouterHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    pool: Arc<BackendPool>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    metrics: Option<MetricsHandle>,
}

impl RouterHandle {
    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of backend slots.
    pub fn backends(&self) -> usize {
        self.pool.len()
    }

    /// Current backend addresses by slot (`None` while a slot is down
    /// with no address).
    pub fn backend_addrs(&self) -> Vec<Option<SocketAddr>> {
        self.pool.addrs()
    }

    /// Fresh events accepted into session buffers so far — the monotonic
    /// progress clock the chaos kill schedule is keyed to.
    pub fn events_forwarded(&self) -> u64 {
        self.shared.stats.events.load(Ordering::Relaxed)
    }

    /// Sessions that reached a terminal frame.
    pub fn sessions_completed(&self) -> u64 {
        self.shared.stats.sessions.load(Ordering::Relaxed)
    }

    /// Backend failovers performed.
    pub fn failovers(&self) -> u64 {
        self.shared.stats.failovers.load(Ordering::Relaxed)
    }

    /// Client resumes served.
    pub fn resumes(&self) -> u64 {
        self.shared.stats.resumes.load(Ordering::Relaxed)
    }

    /// Backends abruptly killed via [`kill_backend`](Self::kill_backend).
    pub fn kills(&self) -> u64 {
        self.pool.kills.load(Ordering::Relaxed)
    }

    /// Fresh sessions refused with a BUSY frame by the admission
    /// controller.
    pub fn sessions_shed(&self) -> u64 {
        self.shared.stats.shed.load(Ordering::Relaxed)
    }

    /// Bytes currently spilled to session journals on disk.
    pub fn journal_bytes(&self) -> u64 {
        self.shared.gauges.bytes.load(Ordering::Relaxed)
    }

    /// Events spilled from RAM tails to journal files since startup —
    /// nonzero proves the bounded-memory path actually engaged.
    pub fn events_spilled(&self) -> u64 {
        self.shared.gauges.spilled_events.load(Ordering::Relaxed)
    }

    /// The bound metrics endpoint address, when one was requested.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsHandle::local_addr)
    }

    /// Abruptly kills the backend in `slot` (spawn mode), severing its
    /// in-flight sessions; the health checker respawns it. Returns
    /// whether a live backend was actually killed.
    pub fn kill_backend(&self, slot: usize) -> bool {
        slot < self.pool.len() && self.pool.kill(slot)
    }

    /// Marks `slot` as draining: in-flight sessions finish, new sessions
    /// route around it. Returns whether the slot was Up.
    pub fn drain_backend(&self, slot: usize) -> bool {
        slot < self.pool.len()
            && self
                .pool
                .set_state(slot, SlotState::Up, SlotState::Draining)
    }

    /// Returns a draining slot to service.
    pub fn restore_backend(&self, slot: usize) -> bool {
        slot < self.pool.len()
            && self
                .pool
                .set_state(slot, SlotState::Draining, SlotState::Up)
    }

    /// Blocks until the accept budget is spent and every connection
    /// drains, then tears the fleet down.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        loop {
            let conn = lock_recover(&self.conns).pop();
            match conn {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        if let Some(m) = self.metrics.take() {
            m.shutdown();
        }
        self.pool.shutdown();
    }

    /// Requests a stop (no new connections; in-flight sessions finish)
    /// and waits for the fleet to drain.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        self.join();
    }
}

/// Shared router state every connection handler needs, bundled once so
/// the accept loop hands each driver a single `Arc`.
struct Shared {
    pool: Arc<BackendPool>,
    table: SessionTable,
    stats: RouterStats,
    gauges: JournalGauges,
    anon_ids: AtomicU64,
    drop_after: Option<u64>,
    trace: Option<Arc<TraceSink>>,
    idle_timeout: Duration,
    ghost_linger: Duration,
    max_live_sessions: Option<u64>,
    max_buffered_bytes: Option<u64>,
    journal_dir: Option<PathBuf>,
    journal_tail: usize,
}

impl Shared {
    fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_deref()
    }

    /// Opens the journal for a new session (`name` keys the durable
    /// files, so ticketed sessions use their id and anonymous sessions a
    /// non-numeric label recovery skips).
    fn open_journal(&self, name: &str) -> std::io::Result<Journal> {
        Journal::open(
            name,
            self.journal_tail,
            self.journal_dir.as_deref(),
            self.gauges.clone(),
        )
    }
}

/// Binds the router and spawns its accept loop, health checker, and
/// backend fleet.
///
/// # Errors
///
/// Propagates bind/spawn/resolve failures, and journal-directory scan
/// failures when `resume_journals` is set.
pub fn route(opts: RouterOptions) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(&opts.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let pool = Arc::new(BackendPool::build(&opts)?);
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let shared = Arc::new(Shared {
        pool: Arc::clone(&pool),
        table: SessionTable::default(),
        stats: RouterStats::default(),
        gauges: JournalGauges::default(),
        anon_ids: AtomicU64::new(0),
        drop_after: opts.drop_client_after_acks,
        trace: opts.trace.clone(),
        idle_timeout: opts.idle_timeout.max(Duration::from_millis(10)),
        ghost_linger: opts.ghost_linger.max(Duration::from_millis(10)),
        max_live_sessions: opts.max_live_sessions,
        max_buffered_bytes: opts.max_buffered_bytes,
        journal_dir: opts.journal_dir.clone(),
        journal_tail: opts.journal_tail,
    });

    // Crash recovery: rebuild the session table from the journals a
    // previous router process left in the durable directory. Each
    // recovered session sits unattached until its client resumes; the
    // resume ACK tells the client where the recovered prefix ends.
    if opts.resume_journals {
        if let Some(dir) = &shared.journal_dir {
            if dir.is_dir() {
                for r in recover_journals(dir, shared.journal_tail, &shared.gauges)? {
                    if let Some(t) = shared.trace() {
                        t.emit(
                            "router.recover",
                            Some(mix(r.id)),
                            vec![
                                ("events", r.journal.len().into()),
                                ("alarms", (r.alarms.len() as u64).into()),
                            ],
                        );
                    }
                    let buf = SessionBuf {
                        hello: r.hello,
                        journal: r.journal,
                        ended: r.ended,
                        alarms: r.alarms,
                        summary: r.summary,
                        error: r.error,
                        attached: false,
                        takeover: false,
                    };
                    lock_recover(&shared.table.map).insert(r.id, Arc::new(Mutex::new(buf)));
                }
            }
        }
    }

    let metrics = match &opts.metrics_addr {
        Some(addr) => {
            let shared = Arc::clone(&shared);
            Some(serve_metrics(
                addr,
                Arc::new(move || router_samples(&shared.pool, &shared.stats, &shared.gauges)),
            )?)
        }
        None => None,
    };

    let health = {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        let every = opts.health_every;
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                for slot in 0..pool.len() {
                    let (state, addr, generation) = {
                        let sl = pool.lock_slot(slot);
                        (sl.state, sl.addr, sl.generation)
                    };
                    match state {
                        SlotState::Down => {
                            pool.revive(slot);
                        }
                        SlotState::Up | SlotState::Draining => {
                            if let Some(addr) = addr {
                                // A connect probe: cheap, and decisive
                                // for a killed backend whose listener is
                                // gone.
                                match TcpStream::connect_timeout(&addr, Duration::from_millis(250))
                                {
                                    Ok(s) => drop(s),
                                    Err(_) => pool.mark_down(slot, generation),
                                }
                            }
                        }
                    }
                }
                std::thread::sleep(every);
            }
        })
    };

    let accept = {
        let stop = Arc::clone(&stop);
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        let max = opts.max_sessions;
        std::thread::spawn(move || {
            let mut accepted = 0u64;
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Some(max) = max {
                    if accepted >= max {
                        break;
                    }
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        accepted += 1;
                        let shared = Arc::clone(&shared);
                        let h = std::thread::spawn(move || {
                            // A panicking driver must not take the router
                            // down (locks it held recover via
                            // lock_recover); log and count the event.
                            let caught =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    handle_conn(stream, &shared)
                                }));
                            if caught.is_err() {
                                if let Some(t) = shared.trace() {
                                    t.emit("router.panic", None, vec![("driver", 1u64.into())]);
                                }
                            }
                        });
                        lock_recover(&conns).push(h);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        })
    };

    Ok(RouterHandle {
        local_addr,
        stop,
        pool,
        shared,
        accept: Some(accept),
        health: Some(health),
        conns,
        metrics,
    })
}

// ---- per-connection driver -------------------------------------------------

enum Msg {
    /// A frame from the client.
    Client(u8, Vec<u8>),
    /// The client transport ended cleanly (EOF or read timeout).
    ClientGone,
    /// The client leg produced undecodable bytes (torn frame, oversized
    /// header, checksum mismatch) — wire damage, not a clean close.
    ClientBad(String),
    /// A frame from backend incarnation `inc`.
    Backend(u64, u8, Vec<u8>),
    /// Backend incarnation `inc`'s transport ended.
    BackendGone(u64),
}

fn send_client<W: Write>(w: &mut FrameWriter<W>, tag: u8, payload: &[u8]) -> bool {
    w.write(tag, payload).and_then(|()| w.flush()).is_ok()
}

fn client_error<W: Write>(w: &mut FrameWriter<W>, msg: &str) {
    let _ = w.write(ERROR, msg.as_bytes());
    let _ = w.flush();
}

/// RAII live-connection counter: admission control compares against it,
/// and it must decrement on *every* exit path, including panics.
struct LiveGuard<'a>(&'a AtomicU64);

impl<'a> LiveGuard<'a> {
    fn enter(counter: &'a AtomicU64) -> (Self, u64) {
        let live = counter.fetch_add(1, Ordering::Relaxed) + 1;
        (LiveGuard(counter), live)
    }
}

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The admission controller's verdict for a *fresh* session (resumes are
/// always admitted — a session the router accepted is never orphaned by
/// its own overload policy). `live` includes the connection asking.
fn admit_fresh(shared: &Shared, live: u64) -> Result<(), String> {
    if let Some(max) = shared.max_live_sessions {
        if live > max {
            return Err(format!("router busy: {live} live sessions (max {max})"));
        }
    }
    if let Some(max) = shared.max_buffered_bytes {
        let buffered = shared.gauges.bytes.load(Ordering::Relaxed);
        if buffered > max {
            return Err(format!(
                "router busy: {buffered} journal bytes buffered (max {max})"
            ));
        }
    }
    Ok(())
}

fn shed(shared: &Shared, writer: &mut FrameWriter<BufWriter<TcpStream>>, reason: &str) {
    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
    if let Some(t) = shared.trace() {
        t.emit("router.shed", None, vec![("reason", reason.into())]);
    }
    let _ = writer.write(BUSY, reason.as_bytes());
    let _ = writer.flush();
}

/// Drives one client connection end to end. Runs on its own thread; all
/// failure modes end in a best-effort ERROR (or BUSY) frame, never a
/// panic.
fn handle_conn(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.idle_timeout));
    let mut reader = match stream.try_clone() {
        Ok(s) => FrameReader::new(BufReader::new(s), false),
        Err(_) => return,
    };
    let mut writer = match stream.try_clone() {
        Ok(s) => FrameWriter::new(BufWriter::new(s), false),
        Err(_) => return,
    };
    let (_live, live_now) = LiveGuard::enter(&shared.stats.live);

    // Frame 1: SESSION (ticketed, resumable) or HELLO (anonymous
    // passthrough — byte-transparent for existing clients). The
    // handshake frames always travel plain; once the HELLO's capability
    // bits are known, both directions switch to the negotiated framing.
    let (key, session, ticketed, resume_from) = match reader.read() {
        Ok(Some((SESSION, payload))) => {
            let ticket = match SessionTicket::decode(&payload) {
                Ok(t) => t,
                Err(e) => return client_error(&mut writer, &format!("bad SESSION ticket: {e}")),
            };
            if ticket.resume {
                match attach_resume(&shared.table, ticket.id) {
                    Ok(session) => (mix(ticket.id), session, true, Some(ticket.alarms_received)),
                    Err(msg) => return client_error(&mut writer, &msg),
                }
            } else {
                if let Err(reason) = admit_fresh(shared, live_now) {
                    return shed(shared, &mut writer, &reason);
                }
                // Frame 2 must be the HELLO for the new session.
                let hello = match reader.read() {
                    Ok(Some((HELLO, p))) => p,
                    Ok(Some((tag, _))) => {
                        return client_error(
                            &mut writer,
                            &format!("expected HELLO after SESSION, got frame tag {tag}"),
                        );
                    }
                    Ok(None) => return,
                    Err(e) => return client_error(&mut writer, &format!("bad frame: {e}")),
                };
                let mut journal = match shared.open_journal(&ticket.id.to_string()) {
                    Ok(j) => j,
                    Err(e) => return client_error(&mut writer, &format!("session journal: {e}")),
                };
                let _ = journal.record_hello(&hello);
                let session = Arc::new(Mutex::new(SessionBuf::fresh(hello, journal)));
                {
                    let mut map = lock_recover(&shared.table.map);
                    if map.contains_key(&ticket.id) {
                        drop(map);
                        return client_error(
                            &mut writer,
                            &format!("session id {} already registered", ticket.id),
                        );
                    }
                    map.insert(ticket.id, Arc::clone(&session));
                }
                (mix(ticket.id), session, true, None)
            }
        }
        Ok(Some((HELLO, hello))) => {
            // Anonymous: no ticket, no ACKs, no resume — pure transparent
            // routing (still gets buffered-replay failover for free). The
            // journal is always ephemeral: with no ticket there is nothing
            // a post-crash router could hand back.
            if let Err(reason) = admit_fresh(shared, live_now) {
                return shed(shared, &mut writer, &reason);
            }
            let id = shared.anon_ids.fetch_add(1, Ordering::Relaxed);
            let journal = match Journal::open(
                &format!("anon-{id}"),
                shared.journal_tail,
                None,
                shared.gauges.clone(),
            ) {
                Ok(j) => j,
                Err(e) => return client_error(&mut writer, &format!("session journal: {e}")),
            };
            let session = Arc::new(Mutex::new(SessionBuf::fresh(hello, journal)));
            (mix(0x0A0A_0A0A ^ id), session, false, None)
        }
        Ok(Some((tag, _))) => {
            return client_error(&mut writer, &format!("expected HELLO, got frame tag {tag}"));
        }
        Ok(None) => return,
        Err(e) => return client_error(&mut writer, &format!("bad first frame: {e}")),
    };

    // Both legs of a session speak the framing its HELLO negotiated —
    // resumes included (the stored HELLO remembers).
    let checked = {
        let s = lock_session(&session);
        hello_caps(&s.hello) & CAP_FRAME_CHECKSUM != 0
    };
    reader.set_checked(checked);
    writer.set_checked(checked);

    // Resume preamble: ACK where the replay starts and re-deliver the
    // alarm tail the client missed. If the session already finished
    // while the client was away, serve it entirely from the buffer.
    if let Some(alarms_received) = resume_from {
        shared.stats.resumes.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = shared.trace() {
            t.emit(
                "router.resume",
                Some(key),
                vec![("alarms_received", alarms_received.into())],
            );
        }
        let (ack, tail, finished) = {
            let s = lock_session(&session);
            let from = (alarms_received as usize).min(s.alarms.len());
            (
                proto::encode_ack(s.journal.len()),
                s.alarms[from..].to_vec(),
                s.done(),
            )
        };
        let mut ok = send_client(&mut writer, ACK, &ack);
        if ok && !tail.is_empty() {
            ok = send_client(&mut writer, ALARMS, &proto::encode_alarms(&tail));
        }
        if !ok {
            detach(&session);
            return;
        }
        if finished {
            finish_from_buffer(&stream, reader, writer, &session, &shared.table);
            return;
        }
    }

    drive_session(DriverCtx {
        client_stream: stream,
        reader,
        writer,
        key,
        session,
        ticketed,
        checked,
        shared,
    });
}

/// Attaches to an existing session for resume, asking a ghost driver to
/// let go if one still owns it.
fn attach_resume(table: &SessionTable, id: u64) -> Result<SessionRef, String> {
    let session = {
        let map = lock_recover(&table.map);
        match map.get(&id) {
            Some(s) => Arc::clone(s),
            None => return Err(format!("unknown session id {id}")),
        }
    };
    let deadline = Instant::now() + ATTACH_PATIENCE;
    loop {
        {
            let mut s = lock_session(&session);
            if !s.attached {
                s.attached = true;
                s.takeover = false;
                drop(s);
                return Ok(session);
            }
            s.takeover = true;
        }
        if Instant::now() >= deadline {
            return Err(format!("session busy: id {id} still attached"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn detach(session: &SessionRef) {
    lock_session(session).attached = false;
}

fn shutdown_both(stream: &TcpStream) {
    let _ = stream.shutdown(Shutdown::Both);
}

/// Everything one session driver needs.
struct DriverCtx<'a> {
    client_stream: TcpStream,
    reader: FrameReader<BufReader<TcpStream>>,
    writer: FrameWriter<BufWriter<TcpStream>>,
    key: u64,
    session: SessionRef,
    ticketed: bool,
    checked: bool,
    shared: &'a Shared,
}

/// The driver proper: pumps client frames into the session journal and
/// backend frames out to the client, failing over across backend
/// incarnations, and going "ghost" (client-less but still driving the
/// backend) when the client transport dies mid-session.
fn drive_session(ctx: DriverCtx<'_>) {
    let DriverCtx {
        client_stream,
        reader,
        mut writer,
        key,
        session,
        ticketed,
        checked,
        shared,
    } = ctx;
    let pool = &*shared.pool;
    let table = &shared.table;
    let stats = &shared.stats;
    let drop_after = shared.drop_after;
    let trace = shared.trace();

    // The driver inbox. Unbounded by design: the router buffers the
    // whole stream anyway, and a bounded inbox could deadlock the
    // driver↔backend↔reader cycle (driver blocked writing EVENTS, the
    // backend blocked writing ALARMS, the reader blocked enqueueing).
    let (tx, rx) = mpsc::channel::<Msg>();

    let client_reader = {
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut r = reader;
            loop {
                match r.read() {
                    Ok(Some((tag, payload))) => {
                        if tx.send(Msg::Client(tag, payload)).is_err() {
                            return;
                        }
                    }
                    // Clean EOF at a frame boundary: the client hung up.
                    Ok(None) => {
                        let _ = tx.send(Msg::ClientGone);
                        return;
                    }
                    // Torn frame, oversized header, checksum mismatch:
                    // the client leg is no longer trustworthy — but the
                    // driver must know it was *damage*, not a hangup, so
                    // an anonymous session still draws a clean ERROR.
                    Err(e) => {
                        let _ = tx.send(Msg::ClientBad(e.to_string()));
                        return;
                    }
                }
            }
        })
    };

    // One fatal-exit macro'd closure would obscure control flow; instead
    // a tiny helper finishes the session on unrecoverable errors.
    let fatal = |writer: &mut FrameWriter<BufWriter<TcpStream>>, alive: bool, msg: &str| {
        let first = {
            let mut s = lock_session(&session);
            let first = !s.done();
            if s.error.is_none() {
                s.set_error(msg.as_bytes().to_vec());
            }
            first
        };
        if first {
            stats.sessions.fetch_add(1, Ordering::Relaxed);
        }
        if alive {
            client_error(writer, msg);
        }
        table.forget(&session);
        detach(&session);
    };

    // Transient infrastructure trouble — no routable backend, an
    // exhausted failover budget, a wedged transport — is not a verdict
    // on a *ticketed* session: its journal is intact and a resume can
    // pick it up once the fleet recovers. Park it (quiet client sever +
    // detach, table entry kept) instead of forging an ERROR; the
    // client's retry machine turns the severed leg into a resume.
    // Anonymous sessions have no resume path and draw the fatal ERROR.
    let park = |reason: &str| {
        if let Some(t) = trace {
            let buffered = lock_session(&session).journal.len();
            t.emit(
                "router.park",
                Some(key),
                vec![
                    ("reason", reason.to_owned().into()),
                    ("events_buffered", buffered.into()),
                ],
            );
        }
        shutdown_both(&client_stream);
        detach(&session);
    };

    let mut dec = EventDecoder::new();
    let mut client_alive = true;
    let mut ghost_since: Option<Instant> = None;
    let mut acks_sent = 0u64;
    // Whether the client confirmed the verdict arrived (terminal ACK).
    // A successful SUMMARY write through a faulting wire proves nothing;
    // only this flag (or the same frame surfacing in the post-join
    // drain) lets `finish` forget a ticketed session.
    let mut verdict_acked = false;
    let mut inc = 0u64; // backend incarnation counter (per driver)
    let mut failovers = 0u32;

    'incarnations: loop {
        // Route and connect, patiently: the health checker may be mid-way
        // through reviving the whole fleet.
        let deadline = Instant::now() + ROUTE_PATIENCE;
        let (slot, generation, backend) = loop {
            if let Some((slot, addr, generation)) = pool.route(key) {
                match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                    Ok(s) => break (slot, generation, s),
                    Err(_) => {
                        pool.mark_down(slot, generation);
                        pool.revive(slot);
                    }
                }
            }
            if Instant::now() >= deadline {
                if ticketed {
                    park("no live backends");
                    let _ = client_reader.join();
                    return;
                }
                fatal(&mut writer, client_alive, "no live backends");
                shutdown_both(&client_stream);
                let _ = client_reader.join();
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        inc += 1;
        let _ = backend.set_nodelay(true);
        let backend_raw = match backend.try_clone() {
            Ok(s) => s,
            Err(_) => continue 'incarnations,
        };
        let mut bw = FrameWriter::new(BufWriter::new(backend), false);

        // This incarnation's reader — spawned BEFORE the replay so alarm
        // frames raised mid-replay drain into the inbox instead of
        // filling the socket and deadlocking the replay write.
        {
            let tx = tx.clone();
            let this_inc = inc;
            let r = match backend_raw.try_clone() {
                Ok(s) => s,
                Err(_) => continue 'incarnations,
            };
            let backend_checked = checked;
            std::thread::spawn(move || {
                let mut r = FrameReader::new(BufReader::new(r), backend_checked);
                loop {
                    match r.read() {
                        Ok(Some((tag, payload))) => {
                            if tx.send(Msg::Backend(this_inc, tag, payload)).is_err() {
                                return;
                            }
                        }
                        Ok(None) | Err(_) => {
                            let _ = tx.send(Msg::BackendGone(this_inc));
                            return;
                        }
                    }
                }
            });
        }

        // Replay the journaled prefix to this incarnation with a fresh
        // encoder (codec state is per-connection on both legs). The HELLO
        // is plain — checked framing starts after it, per the handshake
        // contract — and spilled batches are decoded from disk and
        // re-encoded so the new backend sees one continuous delta stream.
        let mut enc = EventEncoder::new();
        let mut end_sent = false;
        let replay_ok = {
            let mut s = lock_session(&session);
            let mut ok = bw.write(HELLO, &s.hello).is_ok();
            bw.set_checked(checked);
            if ok {
                let bw = &mut bw;
                let enc = &mut enc;
                ok = s
                    .journal
                    .replay(|chunk| {
                        for part in chunk.chunks(REPLAY_BATCH) {
                            bw.write(EVENTS, &enc.encode_batch(part))?;
                        }
                        Ok(())
                    })
                    .is_ok();
            }
            if ok && s.ended {
                ok = bw.write(END, &[]).is_ok();
                end_sent = true;
            }
            ok && bw.flush().is_ok()
        };
        let fail_over = |backend_raw: &TcpStream, failovers: &mut u32| -> bool {
            let _ = backend_raw.shutdown(Shutdown::Both);
            pool.mark_down(slot, generation);
            pool.revive(slot);
            stats.failovers.fetch_add(1, Ordering::Relaxed);
            *failovers += 1;
            if let Some(t) = trace {
                t.emit(
                    "router.failover",
                    Some(key),
                    vec![
                        ("slot", (slot as u64).into()),
                        ("nth", u64::from(*failovers).into()),
                    ],
                );
            }
            *failovers <= MAX_FAILOVERS
        };
        if !replay_ok {
            if fail_over(&backend_raw, &mut failovers) {
                continue 'incarnations;
            }
            if ticketed {
                park("failover budget exhausted");
                let _ = client_reader.join();
                return;
            }
            fatal(
                &mut writer,
                client_alive,
                "session failed over too many times",
            );
            shutdown_both(&client_stream);
            let _ = client_reader.join();
            return;
        }

        // Alarms this incarnation has reported; the first
        // `alarms.len()` of them are deterministic repeats of the log.
        let mut seen = 0u64;
        // A SUMMARY is held back until the backend closes cleanly: a
        // summary chased by a retryable stream error is a *partial*
        // result from a damaged backend leg and must never reach the
        // client — failover replays and produces the real one.
        let mut pending_summary: Option<Vec<u8>> = None;

        loop {
            // A ghost driver (no client) yields to a resuming connection
            // as soon as one asks — and after `ghost_linger` without one
            // it parks the session: the backend is released, but the
            // journaled state stays in the table for a later resume.
            if !client_alive {
                if ghost_since.is_none() {
                    ghost_since = Some(Instant::now());
                }
                let hand_over = lock_session(&session).takeover;
                if hand_over {
                    let _ = backend_raw.shutdown(Shutdown::Both);
                    detach(&session);
                    return;
                }
                if ghost_since.is_some_and(|t| t.elapsed() >= shared.ghost_linger) {
                    if let Some(t) = trace {
                        let buffered = lock_session(&session).journal.len();
                        t.emit(
                            "router.park",
                            Some(key),
                            vec![("events_buffered", buffered.into())],
                        );
                    }
                    let _ = backend_raw.shutdown(Shutdown::Both);
                    detach(&session);
                    return;
                }
            }
            let wait = if client_alive {
                // Twice the per-read idle budget: both legs must be
                // silent that long before the session counts as wedged.
                shared.idle_timeout * 2
            } else {
                Duration::from_millis(25)
            };
            let msg = match rx.recv_timeout(wait) {
                Ok(m) => m,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !client_alive {
                        continue; // ghost: just re-check takeover/linger
                    }
                    // Neither client nor backend frames for the full
                    // budget: the session is wedged — end it. Ticketed
                    // sessions park (a resume un-wedges both legs).
                    let _ = backend_raw.shutdown(Shutdown::Both);
                    if ticketed {
                        park("router session idle timeout");
                        let _ = client_reader.join();
                        return;
                    }
                    fatal(&mut writer, client_alive, "router session idle timeout");
                    shutdown_both(&client_stream);
                    let _ = client_reader.join();
                    return;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            };
            match msg {
                // Frames from a severed client leg are untrustworthy;
                // drop them and let the resume re-deliver.
                Msg::Client(..) if !client_alive => {}
                Msg::Client(EVENTS, payload) => {
                    let batch = match dec.decode_batch(&payload) {
                        Ok(b) => b,
                        Err(e) => {
                            if ticketed {
                                // The wire lied mid-frame. Sever the
                                // client leg quietly and go ghost — the
                                // client sees EOF and resumes from the
                                // last ACK with a fresh encoder.
                                shutdown_both(&client_stream);
                                client_alive = false;
                                if let Some(t) = trace {
                                    t.emit(
                                        "router.client_fault",
                                        Some(key),
                                        vec![("error", format!("{e}").into())],
                                    );
                                }
                                continue;
                            }
                            fatal(&mut writer, client_alive, &format!("bad EVENTS frame: {e}"));
                            let _ = backend_raw.shutdown(Shutdown::Both);
                            shutdown_both(&client_stream);
                            let _ = client_reader.join();
                            return;
                        }
                    };
                    // Append fresh events; silently drop the resume
                    // overlap (seqs already journaled). A gap means the
                    // wire dropped something: recoverable for ticketed
                    // sessions (sever + resume), fatal for anonymous.
                    let mut fresh: Vec<TraceInst> = Vec::new();
                    let mut gap = None;
                    let mut journal_err = None;
                    {
                        let mut s = lock_session(&session);
                        for t in batch {
                            let n = s.journal.len();
                            if t.seq < n {
                                continue;
                            }
                            if t.seq > n {
                                gap = Some((t.seq, n));
                                break;
                            }
                            if let Err(e) = s.journal.push(t) {
                                journal_err = Some(e);
                                break;
                            }
                            fresh.push(t);
                        }
                    }
                    if let Some(e) = journal_err {
                        fatal(
                            &mut writer,
                            client_alive,
                            &format!("session journal write failed: {e}"),
                        );
                        let _ = backend_raw.shutdown(Shutdown::Both);
                        shutdown_both(&client_stream);
                        let _ = client_reader.join();
                        return;
                    }
                    if let Some((got, want)) = gap {
                        if ticketed {
                            shutdown_both(&client_stream);
                            client_alive = false;
                            if let Some(t) = trace {
                                t.emit(
                                    "router.client_fault",
                                    Some(key),
                                    vec![(
                                        "error",
                                        format!("event seq gap: got {got}, expected {want}").into(),
                                    )],
                                );
                            }
                        } else {
                            fatal(
                                &mut writer,
                                client_alive,
                                &format!("event seq gap: got {got}, expected {want}"),
                            );
                            let _ = backend_raw.shutdown(Shutdown::Both);
                            shutdown_both(&client_stream);
                            let _ = client_reader.join();
                            return;
                        }
                    }
                    if !fresh.is_empty() {
                        stats
                            .events
                            .fetch_add(fresh.len() as u64, Ordering::Relaxed);
                        let ok = bw
                            .write(EVENTS, &enc.encode_batch(&fresh))
                            .and_then(|()| bw.flush())
                            .is_ok();
                        if !ok {
                            if fail_over(&backend_raw, &mut failovers) {
                                continue 'incarnations;
                            }
                            if ticketed {
                                park("failover budget exhausted");
                                let _ = client_reader.join();
                                return;
                            }
                            fatal(
                                &mut writer,
                                client_alive,
                                "session failed over too many times",
                            );
                            shutdown_both(&client_stream);
                            let _ = client_reader.join();
                            return;
                        }
                    }
                    if ticketed && client_alive {
                        let buffered = lock_session(&session).journal.len();
                        if send_client(&mut writer, ACK, &proto::encode_ack(buffered)) {
                            acks_sent += 1;
                            if drop_after == Some(acks_sent) {
                                // Fault injection: sever the client link
                                // abruptly; the session state survives
                                // for resume.
                                shutdown_both(&client_stream);
                            }
                        } else {
                            client_alive = false;
                        }
                    }
                }
                Msg::Client(END, _) => {
                    {
                        let mut s = lock_session(&session);
                        s.ended = true;
                        let _ = s.journal.record_ended();
                    }
                    if !end_sent {
                        end_sent = true;
                        let ok = bw.write(END, &[]).and_then(|()| bw.flush()).is_ok();
                        if !ok {
                            if fail_over(&backend_raw, &mut failovers) {
                                continue 'incarnations;
                            }
                            if ticketed {
                                park("failover budget exhausted");
                                let _ = client_reader.join();
                                return;
                            }
                            fatal(
                                &mut writer,
                                client_alive,
                                "session failed over too many times",
                            );
                            shutdown_both(&client_stream);
                            let _ = client_reader.join();
                            return;
                        }
                    }
                }
                Msg::Client(ACK, _) => {
                    // The client's terminal delivery ACK — the verdict
                    // made it across the wire. (Early or duplicated ACKs
                    // are harmless: the flag only matters once the
                    // session is done.)
                    verdict_acked = true;
                }
                Msg::Client(tag, _) => {
                    if ticketed {
                        // An impossible tag on a negotiated connection is
                        // wire damage, not a client bug: sever and ghost.
                        shutdown_both(&client_stream);
                        client_alive = false;
                        if let Some(t) = trace {
                            t.emit(
                                "router.client_fault",
                                Some(key),
                                vec![("error", format!("unexpected frame tag {tag}").into())],
                            );
                        }
                        continue;
                    }
                    fatal(
                        &mut writer,
                        client_alive,
                        &format!("unexpected frame tag {tag}"),
                    );
                    let _ = backend_raw.shutdown(Shutdown::Both);
                    shutdown_both(&client_stream);
                    let _ = client_reader.join();
                    return;
                }
                Msg::ClientBad(_) if !client_alive => {} // already ghosted
                Msg::ClientBad(e) => {
                    let done = lock_session(&session).done();
                    if ticketed && !done {
                        // Wire damage on a negotiated connection: sever
                        // the client leg quietly and go ghost — the
                        // resume re-delivers from the last ACK. The
                        // damage proves nothing about who lied, so no
                        // verdict is forged.
                        shutdown_both(&client_stream);
                        client_alive = false;
                        if let Some(t) = trace {
                            t.emit("router.client_fault", Some(key), vec![("error", e.into())]);
                        }
                        continue;
                    }
                    if ticketed {
                        // The session already finished: trailing garbage
                        // is indistinguishable from a hangup, and a
                        // finished journal must never grow an error
                        // record. Detach silently, like ClientGone.
                        table.forget(&session);
                        detach(&session);
                        let _ = backend_raw.shutdown(Shutdown::Both);
                        shutdown_both(&client_stream);
                        let _ = client_reader.join();
                        return;
                    }
                    // Anonymous sessions cannot resume: answer the
                    // garbage with a clean ERROR and tear down.
                    fatal(&mut writer, client_alive, &format!("bad frame: {e}"));
                    let _ = backend_raw.shutdown(Shutdown::Both);
                    shutdown_both(&client_stream);
                    let _ = client_reader.join();
                    return;
                }
                Msg::ClientGone if !client_alive => {} // already ghosted
                Msg::ClientGone => {
                    let done = lock_session(&session).done();
                    if done || !ticketed {
                        // Anonymous sessions cannot resume; done sessions
                        // need nothing more from a client.
                        if ticketed {
                            table.forget(&session);
                        }
                        detach(&session);
                        let _ = backend_raw.shutdown(Shutdown::Both);
                        let _ = client_reader.join();
                        return;
                    }
                    // Ticketed and unfinished: go ghost — keep driving
                    // the backend so already-streamed events still yield
                    // their detections; a resume picks the session up.
                    client_alive = false;
                    if let Some(t) = trace {
                        let buffered = lock_session(&session).journal.len();
                        t.emit(
                            "router.ghost",
                            Some(key),
                            vec![("events_buffered", buffered.into())],
                        );
                    }
                }
                Msg::Backend(i, ALARMS, payload) if i == inc => {
                    let ds = match proto::decode_alarms(&payload) {
                        Ok(d) => d,
                        Err(e) => {
                            // A garbled ALARMS frame means the backend
                            // leg is damaged; failover replays and the
                            // deterministic engines re-raise everything.
                            if let Some(t) = trace {
                                t.emit(
                                    "router.backend_fault",
                                    Some(key),
                                    vec![("error", format!("bad ALARMS: {e}").into())],
                                );
                            }
                            if fail_over(&backend_raw, &mut failovers) {
                                continue 'incarnations;
                            }
                            if ticketed {
                                park("failover budget exhausted");
                                let _ = client_reader.join();
                                return;
                            }
                            fatal(
                                &mut writer,
                                client_alive,
                                "session failed over too many times",
                            );
                            shutdown_both(&client_stream);
                            let _ = client_reader.join();
                            return;
                        }
                    };
                    // A decoded ALARMS frame is a live round-trip:
                    // this incarnation connected, replayed, and spoke
                    // protocol. Reset the failover budget so it bounds
                    // consecutive *silent* failovers (a hot loop), not
                    // total failovers over a long session's lifetime
                    // under sustained-but-survivable fault pressure.
                    failovers = 0;
                    // Deduplicate across failovers: analysis is
                    // deterministic, so a replayed incarnation re-raises
                    // the logged prefix bit-identically; only the tail
                    // past the log is new. Fresh alarms hit the durable
                    // index *before* they are released to the client, so
                    // a post-crash recovery never re-raises a delivered
                    // alarm out of order.
                    let mut fresh: Vec<Detection> = Vec::new();
                    {
                        let mut s = lock_session(&session);
                        for d in ds {
                            seen += 1;
                            if seen > s.alarms.len() as u64 {
                                s.alarms.push(d);
                                fresh.push(d);
                            }
                        }
                        if !fresh.is_empty() {
                            let _ = s.journal.record_alarms(&fresh);
                        }
                    }
                    if !fresh.is_empty()
                        && client_alive
                        && !send_client(&mut writer, ALARMS, &proto::encode_alarms(&fresh))
                    {
                        client_alive = false;
                    }
                }
                Msg::Backend(i, SUMMARY, payload) if i == inc => {
                    failovers = 0;
                    pending_summary = Some(payload);
                    // The backend is draining toward close; sever our
                    // write side so its drain sees EOF *now* instead of
                    // waiting out its read timeout. A trailing ERROR (if
                    // any) was written before the drain began and still
                    // arrives.
                    let _ = backend_raw.shutdown(Shutdown::Write);
                }
                Msg::Backend(i, ERROR, payload) if i == inc => {
                    if payload.starts_with(RETRYABLE_ERROR_PREFIX.as_bytes()) {
                        // The backend saw transport damage on our leg
                        // (netem corruption, truncation, a dropped
                        // frame). Its summary — if any — is partial:
                        // discard it and fail over; the replay heals.
                        if let Some(t) = trace {
                            t.emit(
                                "router.backend_fault",
                                Some(key),
                                vec![(
                                    "error",
                                    String::from_utf8_lossy(&payload).into_owned().into(),
                                )],
                            );
                        }
                        if fail_over(&backend_raw, &mut failovers) {
                            continue 'incarnations;
                        }
                        if ticketed {
                            park("failover budget exhausted");
                            let _ = client_reader.join();
                            return;
                        }
                        fatal(
                            &mut writer,
                            client_alive,
                            "session failed over too many times",
                        );
                        shutdown_both(&client_stream);
                        let _ = client_reader.join();
                        return;
                    }
                    // Terminal error: commit the pending summary first
                    // (short-stream sessions send SUMMARY then ERROR),
                    // then the error itself.
                    if let Some(p) = pending_summary.take() {
                        lock_session(&session).set_summary(p.clone());
                        stats.sessions.fetch_add(1, Ordering::Relaxed);
                        if client_alive && !send_client(&mut writer, SUMMARY, &p) {
                            client_alive = false;
                        }
                    }
                    let had_summary = {
                        let mut s = lock_session(&session);
                        let had = s.summary.is_some();
                        s.set_error(payload.clone());
                        had
                    };
                    if !had_summary {
                        stats.sessions.fetch_add(1, Ordering::Relaxed);
                    }
                    if client_alive && !send_client(&mut writer, ERROR, &payload) {
                        client_alive = false;
                    }
                    let _ = backend_raw.shutdown(Shutdown::Write);
                }
                Msg::Backend(i, tag, _) if i == inc => {
                    // Anything else from a backend is wire damage too —
                    // replay, don't kill the session.
                    if let Some(t) = trace {
                        t.emit(
                            "router.backend_fault",
                            Some(key),
                            vec![("error", format!("unexpected frame tag {tag}").into())],
                        );
                    }
                    if fail_over(&backend_raw, &mut failovers) {
                        continue 'incarnations;
                    }
                    if ticketed {
                        park("failover budget exhausted");
                        let _ = client_reader.join();
                        return;
                    }
                    fatal(
                        &mut writer,
                        client_alive,
                        "session failed over too many times",
                    );
                    shutdown_both(&client_stream);
                    let _ = client_reader.join();
                    return;
                }
                Msg::Backend(..) => {} // stale incarnation; ignore
                Msg::BackendGone(i) if i == inc => {
                    // A clean close commits the held summary: the backend
                    // said everything it meant to.
                    if let Some(p) = pending_summary.take() {
                        lock_session(&session).set_summary(p.clone());
                        stats.sessions.fetch_add(1, Ordering::Relaxed);
                        if client_alive && !send_client(&mut writer, SUMMARY, &p) {
                            client_alive = false;
                        }
                    }
                    let done = lock_session(&session).done();
                    if done {
                        finish(
                            &client_stream,
                            writer,
                            client_reader,
                            &rx,
                            &session,
                            table,
                            ticketed,
                            verdict_acked,
                        );
                        return;
                    }
                    // Mid-session death: fail over and replay.
                    if fail_over(&backend_raw, &mut failovers) {
                        continue 'incarnations;
                    }
                    if ticketed {
                        park("failover budget exhausted");
                        let _ = client_reader.join();
                        return;
                    }
                    fatal(
                        &mut writer,
                        client_alive,
                        "session failed over too many times",
                    );
                    shutdown_both(&client_stream);
                    let _ = client_reader.join();
                    return;
                }
                Msg::BackendGone(_) => {} // stale incarnation; ignore
            }
        }
    }
}

/// Clean completion: mirror the backend's half-close discipline so the
/// client's final read sees EOF, then drain and close. A ghost driver
/// (client already gone) leaves the finished session in the table so a
/// late resume can still collect everything from the buffer.
///
/// A write that succeeded only proves the frames left this process —
/// through a faulting wire that is not delivery. A ticketed session's
/// verdict counts as **delivered** when the client *voluntarily* closed
/// (clean EOF at a frame boundary) after our terminal frames went out;
/// a severed drain keeps the table entry so the next resume collects
/// the verdict from the buffer instead of drawing "unknown session id".
#[allow(clippy::too_many_arguments)]
fn finish(
    client_stream: &TcpStream,
    mut writer: FrameWriter<BufWriter<TcpStream>>,
    client_reader: JoinHandle<()>,
    rx: &mpsc::Receiver<Msg>,
    session: &SessionRef,
    table: &SessionTable,
    ticketed: bool,
    verdict_acked: bool,
) {
    detach(session);
    if !ticketed {
        table.forget(session);
    }
    let _ = writer.flush();
    let _ = client_stream.shutdown(Shutdown::Write);
    // The reader drains the client's remaining frames until EOF and
    // exits; anything it queued — including the terminal ACK racing
    // our entry into finish — is visible after the join.
    let _ = client_reader.join();
    if ticketed {
        let mut delivered = verdict_acked;
        while let Ok(m) = rx.try_recv() {
            if let Msg::Client(tag, _) = m {
                if tag == ACK {
                    delivered = true;
                }
            }
        }
        if delivered {
            table.forget(session);
        }
    }
    let _ = client_stream.shutdown(Shutdown::Both);
}

/// Serves a resume for a session that finished while the client was
/// away: the preamble already re-sent the alarm tail; deliver the stored
/// terminal frames straight from the buffer — no backend involved.
fn finish_from_buffer(
    client_stream: &TcpStream,
    mut reader: FrameReader<BufReader<TcpStream>>,
    mut writer: FrameWriter<BufWriter<TcpStream>>,
    session: &SessionRef,
    table: &SessionTable,
) {
    let (summary, error) = {
        let s = lock_session(session);
        (s.summary.clone(), s.error.clone())
    };
    let mut sent = true;
    if let Some(p) = summary {
        sent &= writer.write(SUMMARY, &p).is_ok();
    }
    if let Some(p) = error {
        sent &= writer.write(ERROR, &p).is_ok();
    }
    sent &= writer.flush().is_ok();
    detach(session);
    let _ = client_stream.shutdown(Shutdown::Write);
    // Drain whatever the client was still sending (duplicate events,
    // END) until it sees our EOF and closes — watching for the terminal
    // delivery ACK. Same discipline as [`finish`]: only that ACK proves
    // the verdict arrived; otherwise the entry stays for the next
    // resume.
    let mut delivered = false;
    while let Ok(Some((tag, _))) = reader.read() {
        if tag == ACK {
            delivered = true;
        }
    }
    if sent && delivered {
        table.forget(session);
    }
    let _ = client_stream.shutdown(Shutdown::Both);
}
