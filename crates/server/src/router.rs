//! The fleet router tier: one front-end TCP process consistent-hashing
//! sessions over N `serve` backends, with transparent failover and
//! client-side session resume.
//!
//! # Topology
//!
//! ```text
//! client ──┐                    ┌── backend 0 (serve)
//! client ──┼──▶ router ── ring ─┼── backend 1 (serve)
//! client ──┘     │              └── backend 2 (serve)
//!                └ health checker: probe / mark down / respawn
//! ```
//!
//! The router speaks the existing framed protocol *transparently*: a
//! HELLO payload is stored opaque and forwarded verbatim (v1 and v2
//! wide-verdict negotiation pass through unchanged), EVENTS batches are
//! decoded into a per-session buffer and re-encoded per backend
//! incarnation, ALARMS are decoded only to deduplicate across failovers.
//! A plain [`run_session`](crate::run_session) client works unmodified; a
//! client that opens with a [`SessionTicket`] additionally gets ACK
//! frames and may *resume* the session on a fresh connection if its
//! transport dies.
//!
//! # Zero lost sessions
//!
//! Formally: for every session whose client follows the resume protocol,
//! the client observes exactly the alarm sequence and summary an
//! uninterrupted direct session would have produced — no alarm lost,
//! none delivered twice — regardless of how many backends die mid-stream
//! (as long as some backend eventually serves). The mechanism is
//! buffering + determinism: the router holds the session's full event
//! prefix, replays it to a fresh backend on failover, and suppresses the
//! alarms the replay re-raises (analysis is deterministic, so the first
//! `k` alarms of a replayed incarnation are bit-identical to the `k`
//! already logged). Client-side loss is covered the same way: the resume
//! ticket carries how many alarms the client holds, and the router
//! re-sends the missing tail from its buffer.

use crate::metrics::{serve_metrics, MetricsHandle};
use crate::proto::{
    self, read_frame, write_frame, SessionTicket, ACK, ALARMS, END, ERROR, EVENTS, HELLO, SESSION,
    SUMMARY,
};
use crate::ring::{mix, Ring, DEFAULT_REPLICAS};
use crate::service::{fleet_samples, serve, ServeOptions, ServerHandle};
use fireguard_soc::Detection;
use fireguard_telemetry::{Sample, TraceSink};
use fireguard_trace::codec::{EventDecoder, EventEncoder};
use fireguard_trace::TraceInst;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Events per EVENTS frame when the router replays a buffered prefix to
/// a fresh backend incarnation.
const REPLAY_BATCH: usize = 512;

/// How long a driver keeps retrying for a live backend before giving the
/// session up with an ERROR frame.
const ROUTE_PATIENCE: Duration = Duration::from_secs(5);

/// How long a resume waits for the previous driver to let go of the
/// session before answering "session busy".
const ATTACH_PATIENCE: Duration = Duration::from_secs(5);

/// Failover ceiling per session — past this the fleet is clearly sick
/// and the session is failed instead of thrashing forever.
const MAX_FAILOVERS: u32 = 32;

/// Where the router's backends come from.
#[derive(Debug, Clone)]
pub enum BackendMode {
    /// Spawn `n` in-process [`serve`] instances on ephemeral ports; dead
    /// ones are respawned (the chaos harness's mode).
    Spawn(usize),
    /// Route over externally managed services; dead ones are probed and
    /// re-admitted when they answer again, never respawned. Note the
    /// health probe opens (and immediately closes) a connection, which a
    /// backend running with a `--max-sessions` budget counts against it.
    Extern(Vec<String>),
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Address to bind (port 0 = ephemeral).
    pub addr: String,
    /// Backend fleet.
    pub backends: BackendMode,
    /// Worker threads per spawned backend.
    pub backend_workers: usize,
    /// Alarm-drain period handed to spawned backends.
    pub observe_every: u64,
    /// Virtual ring points per backend slot.
    pub replicas: usize,
    /// Accept at most this many connections (resumes included), then
    /// stop (None = forever).
    pub max_sessions: Option<u64>,
    /// Health-check period.
    pub health_every: Duration,
    /// Fault injection: sever each *ticketed* client connection after
    /// this many ACKs, simulating client↔router transport loss. Session
    /// state survives, so a resuming client must still observe a
    /// lossless session — this is how the resume path is exercised
    /// deterministically in tests.
    pub drop_client_after_acks: Option<u64>,
    /// Optional admin metrics endpoint (`--metrics-addr`). The router's
    /// exposition includes its own routing counters plus, in spawn mode,
    /// each live backend's fleet counters labeled `backend="<slot>"` —
    /// one scrape sees the whole fleet.
    pub metrics_addr: Option<String>,
    /// Optional structured span sink (`--trace-out`); failover, resume,
    /// and ghost-driver transitions are emitted here.
    pub trace: Option<Arc<TraceSink>>,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            addr: "127.0.0.1:0".to_owned(),
            backends: BackendMode::Spawn(2),
            backend_workers: 2,
            observe_every: crate::service::OBSERVE_EVERY,
            replicas: DEFAULT_REPLICAS,
            max_sessions: None,
            health_every: Duration::from_millis(100),
            drop_client_after_acks: None,
            metrics_addr: None,
            trace: None,
        }
    }
}

// ---- backend pool ----------------------------------------------------------

/// One backend slot's health state machine:
///
/// ```text
///            kill / probe failure
///      Up ───────────────────────────▶ Down
///       ▲ ◀── restore ── Draining      │
///       │        ▲           │         │
///       │        └── drain ──┘         │
///       └──────── revive (respawn or successful re-probe)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Healthy: takes new sessions.
    Up,
    /// Administratively draining: in-flight sessions finish, new ones
    /// route elsewhere.
    Draining,
    /// Dead: routed around until revived.
    Down,
}

struct Slot {
    state: SlotState,
    /// Bumped on every revival so stale death reports are ignored.
    generation: u64,
    addr: Option<SocketAddr>,
    /// The in-process service (spawn mode only).
    handle: Option<ServerHandle>,
}

struct BackendPool {
    slots: Vec<Mutex<Slot>>,
    ring: Ring,
    /// `Some((workers, observe_every))` = spawn mode; `None` = extern.
    spawn: Option<(usize, u64)>,
    kills: AtomicU64,
}

impl BackendPool {
    fn build(opts: &RouterOptions) -> std::io::Result<Self> {
        match &opts.backends {
            BackendMode::Spawn(n) => {
                let n = (*n).max(1);
                let workers = opts.backend_workers.max(1);
                let mut slots = Vec::with_capacity(n);
                for _ in 0..n {
                    let handle = spawn_backend(workers, opts.observe_every)?;
                    slots.push(Mutex::new(Slot {
                        state: SlotState::Up,
                        generation: 0,
                        addr: Some(handle.local_addr()),
                        handle: Some(handle),
                    }));
                }
                Ok(BackendPool {
                    ring: Ring::new(n, opts.replicas),
                    slots,
                    spawn: Some((workers, opts.observe_every)),
                    kills: AtomicU64::new(0),
                })
            }
            BackendMode::Extern(addrs) => {
                if addrs.is_empty() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "router needs at least one backend address",
                    ));
                }
                let mut slots = Vec::with_capacity(addrs.len());
                for a in addrs {
                    let addr = a.to_socket_addrs()?.next().ok_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            format!("backend address {a} did not resolve"),
                        )
                    })?;
                    slots.push(Mutex::new(Slot {
                        state: SlotState::Up,
                        generation: 0,
                        addr: Some(addr),
                        handle: None,
                    }));
                }
                Ok(BackendPool {
                    ring: Ring::new(addrs.len(), opts.replicas),
                    slots,
                    spawn: None,
                    kills: AtomicU64::new(0),
                })
            }
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn lock_slot(&self, slot: usize) -> std::sync::MutexGuard<'_, Slot> {
        self.slots[slot].lock().expect("slot lock never poisoned")
    }

    fn addrs(&self) -> Vec<Option<SocketAddr>> {
        (0..self.len()).map(|s| self.lock_slot(s).addr).collect()
    }

    /// Routes `key` to a live slot: `(slot, addr, generation)`.
    fn route(&self, key: u64) -> Option<(usize, SocketAddr, u64)> {
        let idx = self.ring.route(key, |s| {
            let sl = self.lock_slot(s);
            sl.state == SlotState::Up && sl.addr.is_some()
        })?;
        let sl = self.lock_slot(idx);
        if sl.state != SlotState::Up {
            return None; // lost a race with a kill; caller retries
        }
        sl.addr.map(|a| (idx, a, sl.generation))
    }

    /// Reports slot death observed at `generation`; stale reports (the
    /// slot already revived) are ignored.
    fn mark_down(&self, slot: usize, generation: u64) {
        let handle = {
            let mut sl = self.lock_slot(slot);
            if sl.generation != generation || sl.state == SlotState::Down {
                return;
            }
            sl.state = SlotState::Down;
            sl.handle.take()
        };
        if let Some(h) = handle {
            h.abort();
        }
    }

    /// Abruptly kills a spawned backend (in-flight sessions are severed
    /// mid-stream) — the chaos harness's lever. Returns false for extern
    /// slots and already-down slots.
    fn kill(&self, slot: usize) -> bool {
        let handle = {
            let mut sl = self.lock_slot(slot);
            if sl.state == SlotState::Down {
                return false;
            }
            match sl.handle.take() {
                Some(h) => {
                    sl.state = SlotState::Down;
                    h
                }
                None => return false,
            }
        };
        self.kills.fetch_add(1, Ordering::Relaxed);
        handle.abort();
        true
    }

    /// Brings a Down slot back: spawn mode starts a fresh service on a
    /// new ephemeral port; extern mode probes the fixed address and
    /// re-admits the slot when it answers.
    fn revive(&self, slot: usize) -> bool {
        match self.spawn {
            Some((workers, observe_every)) => {
                let mut sl = self.lock_slot(slot);
                if sl.state != SlotState::Down || sl.handle.is_some() {
                    return false;
                }
                match spawn_backend(workers, observe_every) {
                    Ok(h) => {
                        sl.addr = Some(h.local_addr());
                        sl.handle = Some(h);
                        sl.generation += 1;
                        sl.state = SlotState::Up;
                        true
                    }
                    Err(_) => false,
                }
            }
            None => {
                let addr = {
                    let sl = self.lock_slot(slot);
                    if sl.state != SlotState::Down {
                        return false;
                    }
                    match sl.addr {
                        Some(a) => a,
                        None => return false,
                    }
                };
                if TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_ok() {
                    let mut sl = self.lock_slot(slot);
                    if sl.state == SlotState::Down {
                        sl.generation += 1;
                        sl.state = SlotState::Up;
                        return true;
                    }
                }
                false
            }
        }
    }

    fn set_state(&self, slot: usize, from: SlotState, to: SlotState) -> bool {
        let mut sl = self.lock_slot(slot);
        if sl.state == from {
            sl.state = to;
            true
        } else {
            false
        }
    }

    fn shutdown(&self) {
        for slot in 0..self.len() {
            let handle = self.lock_slot(slot).handle.take();
            if let Some(h) = handle {
                h.shutdown();
            }
        }
    }
}

fn spawn_backend(workers: usize, observe_every: u64) -> std::io::Result<ServerHandle> {
    serve(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        observe_every,
        ..ServeOptions::default()
    })
}

// ---- session state ---------------------------------------------------------

/// Everything the router remembers about one session — enough to replay
/// it to a fresh backend and to resume a returning client losslessly.
struct SessionBuf {
    /// The opaque HELLO payload, forwarded verbatim to every incarnation.
    hello: Vec<u8>,
    /// The contiguous event prefix received from the client (index ==
    /// absolute seq).
    events: Vec<TraceInst>,
    /// The client has sent END.
    ended: bool,
    /// Every alarm the analysis has produced, deduplicated across
    /// failovers — also the re-delivery log for resumes.
    alarms: Vec<Detection>,
    /// Stored terminal frames once the analysis finished — replayed to a
    /// client that resumes afterwards.
    summary: Option<Vec<u8>>,
    error: Option<Vec<u8>>,
    /// A driver currently owns this session.
    attached: bool,
    /// A resuming connection asked the current (ghost) driver to let go.
    takeover: bool,
}

impl SessionBuf {
    fn fresh(hello: Vec<u8>) -> Self {
        SessionBuf {
            hello,
            events: Vec::new(),
            ended: false,
            alarms: Vec::new(),
            summary: None,
            error: None,
            attached: true,
            takeover: false,
        }
    }

    fn done(&self) -> bool {
        self.summary.is_some() || self.error.is_some()
    }
}

type SessionRef = Arc<Mutex<SessionBuf>>;

fn lock_session(session: &SessionRef) -> std::sync::MutexGuard<'_, SessionBuf> {
    session.lock().expect("session lock never poisoned")
}

#[derive(Default)]
struct SessionTable {
    map: Mutex<HashMap<u64, SessionRef>>,
}

impl SessionTable {
    fn forget(&self, session: &SessionRef) {
        self.map
            .lock()
            .expect("table lock never poisoned")
            .retain(|_, v| !Arc::ptr_eq(v, session));
    }
}

/// Router-wide counters (monotonic; the chaos scheduler keys off
/// `events`).
#[derive(Default)]
struct RouterStats {
    /// Fresh events accepted into session buffers (replays not counted).
    events: AtomicU64,
    /// Sessions whose terminal frame (SUMMARY or ERROR) was produced.
    sessions: AtomicU64,
    /// Backend incarnation changes forced by backend death.
    failovers: AtomicU64,
    /// Successful client resumes.
    resumes: AtomicU64,
}

/// The router's exposition: its own routing counters, backend liveness,
/// and (spawn mode) each live backend's fleet counters labeled
/// `backend="<slot>"` — one scrape covers the whole fleet.
fn router_samples(pool: &BackendPool, stats: &RouterStats) -> Vec<Sample> {
    let mut out = vec![
        Sample::new(
            "fireguard_router_events_total",
            stats.events.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_sessions_total",
            stats.sessions.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_failovers_total",
            stats.failovers.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_resumes_total",
            stats.resumes.load(Ordering::Relaxed),
        ),
        Sample::new(
            "fireguard_router_kills_total",
            pool.kills.load(Ordering::Relaxed),
        ),
    ];
    let mut up = 0u64;
    for slot in 0..pool.len() {
        // Clone the counters handle under the slot lock, sample unlocked.
        let (state, counters) = {
            let sl = pool.lock_slot(slot);
            (
                sl.state,
                sl.handle.as_ref().map(|h| Arc::clone(h.counters())),
            )
        };
        if state == SlotState::Up {
            up += 1;
        }
        if let Some(c) = counters {
            let slot_label = slot.to_string();
            out.extend(
                fleet_samples(&c)
                    .into_iter()
                    .map(|s| s.label("backend", &slot_label)),
            );
        }
    }
    out.push(Sample::new("fireguard_router_backends_up", up));
    out
}

// ---- handle ----------------------------------------------------------------

/// A running router: accept loop, health checker, per-session drivers,
/// and the backend pool. Obtained from [`route`].
pub struct RouterHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    pool: Arc<BackendPool>,
    stats: Arc<RouterStats>,
    accept: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    metrics: Option<MetricsHandle>,
}

impl RouterHandle {
    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of backend slots.
    pub fn backends(&self) -> usize {
        self.pool.len()
    }

    /// Current backend addresses by slot (`None` while a slot is down
    /// with no address).
    pub fn backend_addrs(&self) -> Vec<Option<SocketAddr>> {
        self.pool.addrs()
    }

    /// Fresh events accepted into session buffers so far — the monotonic
    /// progress clock the chaos kill schedule is keyed to.
    pub fn events_forwarded(&self) -> u64 {
        self.stats.events.load(Ordering::Relaxed)
    }

    /// Sessions that reached a terminal frame.
    pub fn sessions_completed(&self) -> u64 {
        self.stats.sessions.load(Ordering::Relaxed)
    }

    /// Backend failovers performed.
    pub fn failovers(&self) -> u64 {
        self.stats.failovers.load(Ordering::Relaxed)
    }

    /// Client resumes served.
    pub fn resumes(&self) -> u64 {
        self.stats.resumes.load(Ordering::Relaxed)
    }

    /// Backends abruptly killed via [`kill_backend`](Self::kill_backend).
    pub fn kills(&self) -> u64 {
        self.pool.kills.load(Ordering::Relaxed)
    }

    /// The bound metrics endpoint address, when one was requested.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsHandle::local_addr)
    }

    /// Abruptly kills the backend in `slot` (spawn mode), severing its
    /// in-flight sessions; the health checker respawns it. Returns
    /// whether a live backend was actually killed.
    pub fn kill_backend(&self, slot: usize) -> bool {
        slot < self.pool.len() && self.pool.kill(slot)
    }

    /// Marks `slot` as draining: in-flight sessions finish, new sessions
    /// route around it. Returns whether the slot was Up.
    pub fn drain_backend(&self, slot: usize) -> bool {
        slot < self.pool.len()
            && self
                .pool
                .set_state(slot, SlotState::Up, SlotState::Draining)
    }

    /// Returns a draining slot to service.
    pub fn restore_backend(&self, slot: usize) -> bool {
        slot < self.pool.len()
            && self
                .pool
                .set_state(slot, SlotState::Draining, SlotState::Up)
    }

    /// Blocks until the accept budget is spent and every connection
    /// drains, then tears the fleet down.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        loop {
            let conn = self.conns.lock().expect("conns lock never poisoned").pop();
            match conn {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        if let Some(m) = self.metrics.take() {
            m.shutdown();
        }
        self.pool.shutdown();
    }

    /// Requests a stop (no new connections; in-flight sessions finish)
    /// and waits for the fleet to drain.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        self.join();
    }
}

/// Binds the router and spawns its accept loop, health checker, and
/// backend fleet.
///
/// # Errors
///
/// Propagates bind/spawn/resolve failures.
pub fn route(opts: RouterOptions) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(&opts.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let pool = Arc::new(BackendPool::build(&opts)?);
    let stats = Arc::new(RouterStats::default());
    let table = Arc::new(SessionTable::default());
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let anon_ids = Arc::new(AtomicU64::new(0));
    let metrics = match &opts.metrics_addr {
        Some(addr) => {
            let pool = Arc::clone(&pool);
            let stats = Arc::clone(&stats);
            Some(serve_metrics(
                addr,
                Arc::new(move || router_samples(&pool, &stats)),
            )?)
        }
        None => None,
    };

    let health = {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        let every = opts.health_every;
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                for slot in 0..pool.len() {
                    let (state, addr, generation) = {
                        let sl = pool.lock_slot(slot);
                        (sl.state, sl.addr, sl.generation)
                    };
                    match state {
                        SlotState::Down => {
                            pool.revive(slot);
                        }
                        SlotState::Up | SlotState::Draining => {
                            if let Some(addr) = addr {
                                // A connect probe: cheap, and decisive
                                // for a killed backend whose listener is
                                // gone.
                                match TcpStream::connect_timeout(&addr, Duration::from_millis(250))
                                {
                                    Ok(s) => drop(s),
                                    Err(_) => pool.mark_down(slot, generation),
                                }
                            }
                        }
                    }
                }
                std::thread::sleep(every);
            }
        })
    };

    let accept = {
        let stop = Arc::clone(&stop);
        let pool = Arc::clone(&pool);
        let stats = Arc::clone(&stats);
        let table = Arc::clone(&table);
        let conns = Arc::clone(&conns);
        let anon_ids = Arc::clone(&anon_ids);
        let max = opts.max_sessions;
        let drop_after = opts.drop_client_after_acks;
        let trace = opts.trace.clone();
        std::thread::spawn(move || {
            let mut accepted = 0u64;
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Some(max) = max {
                    if accepted >= max {
                        break;
                    }
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        accepted += 1;
                        let pool = Arc::clone(&pool);
                        let stats = Arc::clone(&stats);
                        let table = Arc::clone(&table);
                        let anon_ids = Arc::clone(&anon_ids);
                        let trace = trace.clone();
                        let h = std::thread::spawn(move || {
                            handle_conn(
                                stream,
                                &pool,
                                &table,
                                &stats,
                                &anon_ids,
                                drop_after,
                                trace.as_deref(),
                            );
                        });
                        conns.lock().expect("conns lock never poisoned").push(h);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        })
    };

    Ok(RouterHandle {
        local_addr,
        stop,
        pool,
        stats,
        accept: Some(accept),
        health: Some(health),
        conns,
        metrics,
    })
}

// ---- per-connection driver -------------------------------------------------

enum Msg {
    /// A frame from the client.
    Client(u8, Vec<u8>),
    /// The client transport ended (EOF, error, or read timeout).
    ClientGone,
    /// A frame from backend incarnation `inc`.
    Backend(u64, u8, Vec<u8>),
    /// Backend incarnation `inc`'s transport ended.
    BackendGone(u64),
}

fn send_client<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> bool {
    write_frame(w, tag, payload)
        .and_then(|()| w.flush())
        .is_ok()
}

fn client_error<W: Write>(w: &mut W, msg: &str) {
    let _ = write_frame(w, ERROR, msg.as_bytes());
    let _ = w.flush();
}

/// Drives one client connection end to end. Runs on its own thread; all
/// failure modes end in a best-effort ERROR frame, never a panic.
fn handle_conn(
    stream: TcpStream,
    pool: &BackendPool,
    table: &SessionTable,
    stats: &RouterStats,
    anon_ids: &AtomicU64,
    drop_after: Option<u64>,
    trace: Option<&TraceSink>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = match stream.try_clone() {
        Ok(s) => BufWriter::new(s),
        Err(_) => return,
    };

    // Frame 1: SESSION (ticketed, resumable) or HELLO (anonymous
    // passthrough — byte-transparent for existing clients).
    let (key, session, ticketed, resume_from) = match read_frame(&mut reader) {
        Ok(Some((SESSION, payload))) => {
            let ticket = match SessionTicket::decode(&payload) {
                Ok(t) => t,
                Err(e) => return client_error(&mut writer, &format!("bad SESSION ticket: {e}")),
            };
            if ticket.resume {
                match attach_resume(table, ticket.id) {
                    Ok(session) => (mix(ticket.id), session, true, Some(ticket.alarms_received)),
                    Err(msg) => return client_error(&mut writer, &msg),
                }
            } else {
                // Frame 2 must be the HELLO for the new session.
                let hello = match read_frame(&mut reader) {
                    Ok(Some((HELLO, p))) => p,
                    Ok(Some((tag, _))) => {
                        return client_error(
                            &mut writer,
                            &format!("expected HELLO after SESSION, got frame tag {tag}"),
                        );
                    }
                    Ok(None) => return,
                    Err(e) => return client_error(&mut writer, &format!("bad frame: {e}")),
                };
                let session = Arc::new(Mutex::new(SessionBuf::fresh(hello)));
                {
                    let mut map = table.map.lock().expect("table lock never poisoned");
                    if map.contains_key(&ticket.id) {
                        drop(map);
                        return client_error(
                            &mut writer,
                            &format!("session id {} already registered", ticket.id),
                        );
                    }
                    map.insert(ticket.id, Arc::clone(&session));
                }
                (mix(ticket.id), session, true, None)
            }
        }
        Ok(Some((HELLO, hello))) => {
            // Anonymous: no ticket, no ACKs, no resume — pure transparent
            // routing (still gets buffered-replay failover for free).
            let id = anon_ids.fetch_add(1, Ordering::Relaxed);
            let session = Arc::new(Mutex::new(SessionBuf::fresh(hello)));
            (mix(0x0A0A_0A0A ^ id), session, false, None)
        }
        Ok(Some((tag, _))) => {
            return client_error(&mut writer, &format!("expected HELLO, got frame tag {tag}"));
        }
        Ok(None) => return,
        Err(e) => return client_error(&mut writer, &format!("bad first frame: {e}")),
    };

    // Resume preamble: ACK where the replay starts and re-deliver the
    // alarm tail the client missed. If the session already finished
    // while the client was away, serve it entirely from the buffer.
    if let Some(alarms_received) = resume_from {
        stats.resumes.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = trace {
            t.emit(
                "router.resume",
                Some(key),
                vec![("alarms_received", alarms_received.into())],
            );
        }
        let (ack, tail, finished) = {
            let s = lock_session(&session);
            let from = (alarms_received as usize).min(s.alarms.len());
            (
                proto::encode_ack(s.events.len() as u64),
                s.alarms[from..].to_vec(),
                s.done(),
            )
        };
        let mut ok = send_client(&mut writer, ACK, &ack);
        if ok && !tail.is_empty() {
            ok = send_client(&mut writer, ALARMS, &proto::encode_alarms(&tail));
        }
        if !ok {
            detach(&session);
            return;
        }
        if finished {
            finish_from_buffer(&stream, reader, writer, &session, table);
            return;
        }
    }

    drive_session(DriverCtx {
        client_stream: stream,
        reader,
        writer,
        key,
        session,
        ticketed,
        pool,
        table,
        stats,
        drop_after,
        trace,
    });
}

/// Attaches to an existing session for resume, asking a ghost driver to
/// let go if one still owns it.
fn attach_resume(table: &SessionTable, id: u64) -> Result<SessionRef, String> {
    let session = {
        let map = table.map.lock().expect("table lock never poisoned");
        match map.get(&id) {
            Some(s) => Arc::clone(s),
            None => return Err(format!("unknown session id {id}")),
        }
    };
    let deadline = Instant::now() + ATTACH_PATIENCE;
    loop {
        {
            let mut s = lock_session(&session);
            if !s.attached {
                s.attached = true;
                s.takeover = false;
                drop(s);
                return Ok(session);
            }
            s.takeover = true;
        }
        if Instant::now() >= deadline {
            return Err(format!("session busy: id {id} still attached"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn detach(session: &SessionRef) {
    lock_session(session).attached = false;
}

fn shutdown_both(stream: &TcpStream) {
    let _ = stream.shutdown(Shutdown::Both);
}

/// Everything one session driver needs.
struct DriverCtx<'a> {
    client_stream: TcpStream,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    key: u64,
    session: SessionRef,
    ticketed: bool,
    pool: &'a BackendPool,
    table: &'a SessionTable,
    stats: &'a RouterStats,
    drop_after: Option<u64>,
    trace: Option<&'a TraceSink>,
}

/// The driver proper: pumps client frames into the session buffer and
/// backend frames out to the client, failing over across backend
/// incarnations, and going "ghost" (client-less but still driving the
/// backend) when the client transport dies mid-session.
fn drive_session(ctx: DriverCtx<'_>) {
    let DriverCtx {
        client_stream,
        reader,
        mut writer,
        key,
        session,
        ticketed,
        pool,
        table,
        stats,
        drop_after,
        trace,
    } = ctx;

    // The driver inbox. Unbounded by design: the router buffers the
    // whole stream anyway, and a bounded inbox could deadlock the
    // driver↔backend↔reader cycle (driver blocked writing EVENTS, the
    // backend blocked writing ALARMS, the reader blocked enqueueing).
    let (tx, rx) = mpsc::channel::<Msg>();

    let client_reader = {
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut r = reader;
            loop {
                match read_frame(&mut r) {
                    Ok(Some((tag, payload))) => {
                        if tx.send(Msg::Client(tag, payload)).is_err() {
                            return;
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = tx.send(Msg::ClientGone);
                        return;
                    }
                }
            }
        })
    };

    // One fatal-exit macro'd closure would obscure control flow; instead
    // a tiny helper finishes the session on unrecoverable errors.
    let fatal = |writer: &mut BufWriter<TcpStream>, alive: bool, msg: &str| {
        let first = {
            let mut s = lock_session(&session);
            let first = !s.done();
            if s.error.is_none() {
                s.error = Some(msg.as_bytes().to_vec());
            }
            first
        };
        if first {
            stats.sessions.fetch_add(1, Ordering::Relaxed);
        }
        if alive {
            client_error(writer, msg);
        }
        table.forget(&session);
        detach(&session);
    };

    let mut dec = EventDecoder::new();
    let mut client_alive = true;
    let mut acks_sent = 0u64;
    let mut inc = 0u64; // backend incarnation counter (per driver)
    let mut failovers = 0u32;

    'incarnations: loop {
        // Route and connect, patiently: the health checker may be mid-way
        // through reviving the whole fleet.
        let deadline = Instant::now() + ROUTE_PATIENCE;
        let (slot, generation, backend) = loop {
            if let Some((slot, addr, generation)) = pool.route(key) {
                match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                    Ok(s) => break (slot, generation, s),
                    Err(_) => {
                        pool.mark_down(slot, generation);
                        pool.revive(slot);
                    }
                }
            }
            if Instant::now() >= deadline {
                fatal(&mut writer, client_alive, "no live backends");
                shutdown_both(&client_stream);
                let _ = client_reader.join();
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        inc += 1;
        let _ = backend.set_nodelay(true);
        let backend_raw = match backend.try_clone() {
            Ok(s) => s,
            Err(_) => continue 'incarnations,
        };
        let mut bw = BufWriter::new(backend);

        // This incarnation's reader — spawned BEFORE the replay so alarm
        // frames raised mid-replay drain into the inbox instead of
        // filling the socket and deadlocking the replay write.
        {
            let tx = tx.clone();
            let this_inc = inc;
            let r = match backend_raw.try_clone() {
                Ok(s) => s,
                Err(_) => continue 'incarnations,
            };
            std::thread::spawn(move || {
                let mut r = BufReader::new(r);
                loop {
                    match read_frame(&mut r) {
                        Ok(Some((tag, payload))) => {
                            if tx.send(Msg::Backend(this_inc, tag, payload)).is_err() {
                                return;
                            }
                        }
                        Ok(None) | Err(_) => {
                            let _ = tx.send(Msg::BackendGone(this_inc));
                            return;
                        }
                    }
                }
            });
        }

        // Replay the buffered prefix to this incarnation with a fresh
        // encoder (codec state is per-connection on both legs).
        let mut enc = EventEncoder::new();
        let mut end_sent = false;
        let replay_ok = {
            let s = lock_session(&session);
            let mut ok = write_frame(&mut bw, HELLO, &s.hello).is_ok();
            for chunk in s.events.chunks(REPLAY_BATCH) {
                if !ok {
                    break;
                }
                ok = write_frame(&mut bw, EVENTS, &enc.encode_batch(chunk)).is_ok();
            }
            if ok && s.ended {
                ok = write_frame(&mut bw, END, &[]).is_ok();
                end_sent = true;
            }
            ok && bw.flush().is_ok()
        };
        let fail_over = |backend_raw: &TcpStream, failovers: &mut u32| -> bool {
            let _ = backend_raw.shutdown(Shutdown::Both);
            pool.mark_down(slot, generation);
            pool.revive(slot);
            stats.failovers.fetch_add(1, Ordering::Relaxed);
            *failovers += 1;
            if let Some(t) = trace {
                t.emit(
                    "router.failover",
                    Some(key),
                    vec![
                        ("slot", (slot as u64).into()),
                        ("nth", u64::from(*failovers).into()),
                    ],
                );
            }
            *failovers <= MAX_FAILOVERS
        };
        if !replay_ok {
            if fail_over(&backend_raw, &mut failovers) {
                continue 'incarnations;
            }
            fatal(
                &mut writer,
                client_alive,
                "session failed over too many times",
            );
            shutdown_both(&client_stream);
            let _ = client_reader.join();
            return;
        }

        // Alarms this incarnation has reported; the first
        // `alarms.len()` of them are deterministic repeats of the log.
        let mut seen = 0u64;

        loop {
            // A ghost driver (no client) yields to a resuming connection
            // as soon as one asks.
            if !client_alive {
                let hand_over = lock_session(&session).takeover;
                if hand_over {
                    let _ = backend_raw.shutdown(Shutdown::Both);
                    detach(&session);
                    return;
                }
            }
            let wait = if client_alive {
                Duration::from_secs(60)
            } else {
                Duration::from_millis(25)
            };
            let msg = match rx.recv_timeout(wait) {
                Ok(m) => m,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !client_alive {
                        continue; // ghost: just re-check takeover
                    }
                    // 60 s with neither client nor backend frames: the
                    // session is wedged — end it.
                    fatal(&mut writer, client_alive, "router session idle timeout");
                    let _ = backend_raw.shutdown(Shutdown::Both);
                    shutdown_both(&client_stream);
                    let _ = client_reader.join();
                    return;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            };
            match msg {
                Msg::Client(EVENTS, payload) => {
                    let batch = match dec.decode_batch(&payload) {
                        Ok(b) => b,
                        Err(e) => {
                            fatal(&mut writer, client_alive, &format!("bad EVENTS frame: {e}"));
                            let _ = backend_raw.shutdown(Shutdown::Both);
                            shutdown_both(&client_stream);
                            let _ = client_reader.join();
                            return;
                        }
                    };
                    // Append fresh events; silently drop the resume
                    // overlap (seqs already buffered); a gap is fatal.
                    let mut fresh: Vec<TraceInst> = Vec::new();
                    let mut gap = None;
                    {
                        let mut s = lock_session(&session);
                        for t in batch {
                            let n = s.events.len() as u64;
                            if t.seq < n {
                                continue;
                            }
                            if t.seq > n {
                                gap = Some((t.seq, n));
                                break;
                            }
                            s.events.push(t);
                            fresh.push(t);
                        }
                    }
                    if let Some((got, want)) = gap {
                        fatal(
                            &mut writer,
                            client_alive,
                            &format!("event seq gap: got {got}, expected {want}"),
                        );
                        let _ = backend_raw.shutdown(Shutdown::Both);
                        shutdown_both(&client_stream);
                        let _ = client_reader.join();
                        return;
                    }
                    if !fresh.is_empty() {
                        stats
                            .events
                            .fetch_add(fresh.len() as u64, Ordering::Relaxed);
                        let ok = write_frame(&mut bw, EVENTS, &enc.encode_batch(&fresh))
                            .and_then(|()| bw.flush())
                            .is_ok();
                        if !ok {
                            if fail_over(&backend_raw, &mut failovers) {
                                continue 'incarnations;
                            }
                            fatal(
                                &mut writer,
                                client_alive,
                                "session failed over too many times",
                            );
                            shutdown_both(&client_stream);
                            let _ = client_reader.join();
                            return;
                        }
                    }
                    if ticketed && client_alive {
                        let buffered = lock_session(&session).events.len() as u64;
                        if send_client(&mut writer, ACK, &proto::encode_ack(buffered)) {
                            acks_sent += 1;
                            if drop_after == Some(acks_sent) {
                                // Fault injection: sever the client link
                                // abruptly; the session state survives
                                // for resume.
                                shutdown_both(&client_stream);
                            }
                        } else {
                            client_alive = false;
                        }
                    }
                }
                Msg::Client(END, _) => {
                    lock_session(&session).ended = true;
                    if !end_sent {
                        end_sent = true;
                        let ok = write_frame(&mut bw, END, &[])
                            .and_then(|()| bw.flush())
                            .is_ok();
                        if !ok {
                            if fail_over(&backend_raw, &mut failovers) {
                                continue 'incarnations;
                            }
                            fatal(
                                &mut writer,
                                client_alive,
                                "session failed over too many times",
                            );
                            shutdown_both(&client_stream);
                            let _ = client_reader.join();
                            return;
                        }
                    }
                }
                Msg::Client(tag, _) => {
                    fatal(
                        &mut writer,
                        client_alive,
                        &format!("unexpected frame tag {tag}"),
                    );
                    let _ = backend_raw.shutdown(Shutdown::Both);
                    shutdown_both(&client_stream);
                    let _ = client_reader.join();
                    return;
                }
                Msg::ClientGone => {
                    let done = lock_session(&session).done();
                    if done || !ticketed {
                        // Anonymous sessions cannot resume; done sessions
                        // need nothing more from a client.
                        if ticketed {
                            table.forget(&session);
                        }
                        detach(&session);
                        let _ = backend_raw.shutdown(Shutdown::Both);
                        let _ = client_reader.join();
                        return;
                    }
                    // Ticketed and unfinished: go ghost — keep driving
                    // the backend so already-streamed events still yield
                    // their detections; a resume picks the session up.
                    client_alive = false;
                    if let Some(t) = trace {
                        let buffered = lock_session(&session).events.len() as u64;
                        t.emit(
                            "router.ghost",
                            Some(key),
                            vec![("events_buffered", buffered.into())],
                        );
                    }
                }
                Msg::Backend(i, ALARMS, payload) if i == inc => {
                    let ds = match proto::decode_alarms(&payload) {
                        Ok(d) => d,
                        Err(e) => {
                            fatal(
                                &mut writer,
                                client_alive,
                                &format!("backend sent bad ALARMS: {e}"),
                            );
                            let _ = backend_raw.shutdown(Shutdown::Both);
                            shutdown_both(&client_stream);
                            let _ = client_reader.join();
                            return;
                        }
                    };
                    // Deduplicate across failovers: analysis is
                    // deterministic, so a replayed incarnation re-raises
                    // the logged prefix bit-identically; only the tail
                    // past the log is new.
                    let mut fresh: Vec<Detection> = Vec::new();
                    {
                        let mut s = lock_session(&session);
                        for d in ds {
                            seen += 1;
                            if seen > s.alarms.len() as u64 {
                                s.alarms.push(d);
                                fresh.push(d);
                            }
                        }
                    }
                    if !fresh.is_empty()
                        && client_alive
                        && !send_client(&mut writer, ALARMS, &proto::encode_alarms(&fresh))
                    {
                        client_alive = false;
                    }
                }
                Msg::Backend(i, SUMMARY, payload) if i == inc => {
                    lock_session(&session).summary = Some(payload.clone());
                    stats.sessions.fetch_add(1, Ordering::Relaxed);
                    if client_alive && !send_client(&mut writer, SUMMARY, &payload) {
                        client_alive = false;
                    }
                    // The backend is draining toward close; sever our
                    // write side so its drain sees EOF *now* instead of
                    // waiting out its read timeout. A trailing ERROR (if
                    // any) was written before the drain began and still
                    // arrives.
                    let _ = backend_raw.shutdown(Shutdown::Write);
                }
                Msg::Backend(i, ERROR, payload) if i == inc => {
                    let had_summary = {
                        let mut s = lock_session(&session);
                        let had = s.summary.is_some();
                        s.error = Some(payload.clone());
                        had
                    };
                    if !had_summary {
                        stats.sessions.fetch_add(1, Ordering::Relaxed);
                    }
                    if client_alive && !send_client(&mut writer, ERROR, &payload) {
                        client_alive = false;
                    }
                    let _ = backend_raw.shutdown(Shutdown::Write);
                }
                Msg::Backend(i, tag, _) if i == inc => {
                    fatal(
                        &mut writer,
                        client_alive,
                        &format!("backend sent unexpected frame tag {tag}"),
                    );
                    let _ = backend_raw.shutdown(Shutdown::Both);
                    shutdown_both(&client_stream);
                    let _ = client_reader.join();
                    return;
                }
                Msg::Backend(..) => {} // stale incarnation; ignore
                Msg::BackendGone(i) if i == inc => {
                    let done = lock_session(&session).done();
                    if done {
                        finish(
                            &client_stream,
                            writer,
                            client_reader,
                            &session,
                            table,
                            ticketed,
                            client_alive,
                        );
                        return;
                    }
                    // Mid-session death: fail over and replay.
                    if fail_over(&backend_raw, &mut failovers) {
                        continue 'incarnations;
                    }
                    fatal(
                        &mut writer,
                        client_alive,
                        "session failed over too many times",
                    );
                    shutdown_both(&client_stream);
                    let _ = client_reader.join();
                    return;
                }
                Msg::BackendGone(_) => {} // stale incarnation; ignore
            }
        }
    }
}

/// Clean completion: mirror the backend's half-close discipline so the
/// client's final read sees EOF, then drain and close. A ghost driver
/// (client already gone) leaves the finished session in the table so a
/// late resume can still collect everything from the buffer.
fn finish(
    client_stream: &TcpStream,
    mut writer: BufWriter<TcpStream>,
    client_reader: JoinHandle<()>,
    session: &SessionRef,
    table: &SessionTable,
    ticketed: bool,
    client_alive: bool,
) {
    detach(session);
    if !ticketed || client_alive {
        // Delivered (or undeliverable): nothing left to resume.
        table.forget(session);
    }
    let _ = writer.flush();
    let _ = client_stream.shutdown(Shutdown::Write);
    // The reader drains the client's remaining bytes (e.g. the margin
    // the backend never consumed) until EOF and exits.
    let _ = client_reader.join();
    let _ = client_stream.shutdown(Shutdown::Both);
}

/// Serves a resume for a session that finished while the client was
/// away: the preamble already re-sent the alarm tail; deliver the stored
/// terminal frames straight from the buffer — no backend involved.
fn finish_from_buffer(
    client_stream: &TcpStream,
    mut reader: BufReader<TcpStream>,
    mut writer: BufWriter<TcpStream>,
    session: &SessionRef,
    table: &SessionTable,
) {
    let (summary, error) = {
        let s = lock_session(session);
        (s.summary.clone(), s.error.clone())
    };
    if let Some(p) = summary {
        let _ = write_frame(&mut writer, SUMMARY, &p);
    }
    if let Some(p) = error {
        let _ = write_frame(&mut writer, ERROR, &p);
    }
    let _ = writer.flush();
    detach(session);
    table.forget(session);
    let _ = client_stream.shutdown(Shutdown::Write);
    // Swallow whatever the client was still sending (duplicate events,
    // END) until it sees our EOF and closes.
    let _ = std::io::copy(&mut reader, &mut std::io::sink());
    let _ = client_stream.shutdown(Shutdown::Both);
}
