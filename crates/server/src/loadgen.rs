//! The load generator: N concurrent sessions against one service,
//! aggregated into throughput and detection-latency statistics.
//!
//! Parallelism here is across *live sessions*, not pre-expanded jobs: a
//! hand-rolled worker pool (atomic cursor + threads, as in
//! [`fireguard_soc::sweep`]) opens up to `concurrency` simultaneous
//! sessions and keeps opening new ones until `sessions` have completed.

use crate::client::{run_session, SessionOutcome};
use crate::proto::SessionConfig;
use fireguard_trace::TraceInst;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Aggregate outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenOutcome {
    /// Sessions that completed successfully.
    pub ok_sessions: usize,
    /// Sessions that failed (connect/protocol/server errors).
    pub failed_sessions: usize,
    /// Total events streamed across successful sessions.
    pub events: u64,
    /// Total instructions committed server-side.
    pub committed: u64,
    /// Total detections raised.
    pub detections: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Aggregate throughput: events streamed per wall-clock second.
    pub events_per_sec: f64,
    /// Median simulated detection latency (ns) across every alarm.
    pub p50_latency_ns: f64,
    /// 99th-percentile simulated detection latency (ns).
    pub p99_latency_ns: f64,
    /// First failure message, if any (for diagnostics).
    pub first_error: Option<String>,
}

/// Runs `sessions` sessions against `addr`, at most `concurrency` at a
/// time, all streaming the same `events` under the same `cfg`.
pub fn run_loadgen(
    addr: &str,
    cfg: &SessionConfig,
    events: Arc<Vec<TraceInst>>,
    sessions: usize,
    concurrency: usize,
    batch: usize,
) -> LoadgenOutcome {
    let started = Instant::now();
    let cursor = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel::<Result<SessionOutcome, String>>();
    let threads = concurrency.clamp(1, sessions.max(1));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let cursor = Arc::clone(&cursor);
            let tx = tx.clone();
            let events = Arc::clone(&events);
            let cfg = cfg.clone();
            let addr = addr.to_owned();
            std::thread::spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= sessions {
                    break;
                }
                let out =
                    run_session(&addr, &cfg, Arc::clone(&events), batch).map_err(|e| e.to_string());
                if tx.send(out).is_err() {
                    break;
                }
            })
        })
        .collect();
    drop(tx);
    for h in handles {
        let _ = h.join();
    }

    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut events_total = 0u64;
    let mut committed = 0u64;
    let mut detections = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    let mut first_error = None;
    for out in rx {
        match out {
            Ok(o) => {
                ok += 1;
                events_total += o.events_sent;
                committed += o.summary.committed;
                detections += o.summary.detections;
                // True detections only, matching `client`/`trace replay`
                // (RunResult::attack_latencies_ns) so p50/p99 are
                // comparable across the three subcommands.
                latencies.extend(o.alarms.iter().filter(|d| d.attack).map(|d| d.latency_ns));
            }
            Err(e) => {
                failed += 1;
                first_error.get_or_insert(e);
            }
        }
    }
    let wall = started.elapsed();
    let secs = wall.as_secs_f64();
    LoadgenOutcome {
        ok_sessions: ok,
        failed_sessions: failed,
        events: events_total,
        committed,
        detections,
        wall,
        events_per_sec: if secs > 0.0 {
            events_total as f64 / secs
        } else {
            0.0
        },
        p50_latency_ns: percentile_select(&mut latencies, 50.0),
        p99_latency_ns: percentile_select(&mut latencies, 99.0),
        first_error,
    }
}

/// Nearest-rank percentile via `select_nth_unstable` — O(n) instead of a
/// full sort, and value-identical to
/// [`fireguard_soc::report::percentile`] over the sorted slice.
fn percentile_select(latencies: &mut [f64], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * latencies.len() as f64).ceil().max(1.0) as usize;
    let idx = rank.min(latencies.len()) - 1;
    let (_, v, _) = latencies
        .select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("latencies are finite"));
    *v
}

#[cfg(test)]
mod tests {
    use super::percentile_select;
    use fireguard_soc::report::percentile;

    #[test]
    fn selection_matches_full_sort_percentile() {
        // Deterministic pseudo-random latencies (LCG).
        let mut x = 12345u64;
        let mut v: Vec<f64> = (0..257)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as f64
            })
            .collect();
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(percentile_select(&mut v, p), percentile(&sorted, p), "p{p}");
        }
        assert_eq!(percentile_select(&mut [], 50.0), 0.0);
    }
}
