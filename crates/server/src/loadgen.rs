//! The load generator: N concurrent sessions against one service,
//! aggregated into throughput and detection-latency statistics.
//!
//! Parallelism here is across *live sessions*, not pre-expanded jobs: a
//! hand-rolled worker pool (atomic cursor + threads, as in
//! [`fireguard_soc::sweep`]) opens up to `concurrency` simultaneous
//! sessions and keeps opening new ones until the run's exit condition is
//! met — a session count, a soak duration, or both (each is a floor).
//!
//! Latency statistics are bucketed per completion-time window, not
//! computed once over the whole run: a soak that degrades halfway
//! through shows up as a p99 step in the affected buckets instead of
//! being averaged away (the same lesson the sweep reporting learned).

use crate::client::{run_routed_session, run_session, RoutedOptions, SessionOutcome};
use crate::proto::SessionConfig;
use fireguard_telemetry::TraceSink;
use fireguard_trace::TraceInst;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Load-generation shape: how many sessions, how hard, for how long.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Minimum sessions to run (a floor, even when `duration` is set).
    pub sessions: usize,
    /// Maximum concurrent sessions.
    pub concurrency: usize,
    /// Events per EVENTS frame.
    pub batch: usize,
    /// Soak mode: keep opening sessions until this much wall-clock has
    /// elapsed (and the `sessions` floor is met).
    pub duration: Option<Duration>,
    /// Completion-time bucket width for the latency histogram.
    pub bucket: Duration,
    /// `Some(seed)` opens resumable *routed* sessions (ticketed ids
    /// derived from the seed) instead of plain ones — required against a
    /// router under chaos, meaningless against a plain `serve`.
    pub routed: Option<u64>,
    /// Optional structured span sink (`--trace-out`); one span per
    /// session completion.
    pub trace: Option<Arc<TraceSink>>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            sessions: 4,
            concurrency: 4,
            batch: crate::client::DEFAULT_BATCH,
            duration: None,
            bucket: Duration::from_secs(1),
            routed: None,
            trace: None,
        }
    }
}

/// One completion-time window's latency statistics. A session lands in
/// the bucket its *completion* falls into; its detection latencies and
/// wall time are attributed there.
#[derive(Debug, Clone)]
pub struct LatencyBucket {
    /// Window start, as an offset from the run start.
    pub start: Duration,
    /// Sessions completing in this window.
    pub sessions: usize,
    /// True (attack) detections those sessions raised.
    pub detections: u64,
    /// Median simulated detection latency (ns) in this window.
    pub p50_latency_ns: f64,
    /// 99th-percentile simulated detection latency (ns).
    pub p99_latency_ns: f64,
    /// Median session wall time (ms) — the metric that actually moves
    /// when backends die mid-soak (simulated latencies don't).
    pub p50_wall_ms: f64,
    /// 99th-percentile session wall time (ms).
    pub p99_wall_ms: f64,
    /// Successful resumes by sessions completing in this window.
    pub reconnects: u64,
    /// Median router reconnect latency (ms): transport death to the
    /// resumed connection's ACK (0 when no reconnects landed here).
    pub p50_reconnect_ms: f64,
    /// 99th-percentile router reconnect latency (ms).
    pub p99_reconnect_ms: f64,
    /// Generator ring-full stalls reported by sessions in this window.
    pub gen_stalls: u64,
    /// Judge ring-full stalls reported by sessions in this window.
    pub judge_stalls: u64,
    /// Core empty-ring waits reported by sessions in this window.
    pub core_waits: u64,
}

/// Aggregate outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenOutcome {
    /// Sessions that completed successfully.
    pub ok_sessions: usize,
    /// Sessions that failed (connect/protocol/server errors).
    pub failed_sessions: usize,
    /// Total events streamed across successful sessions.
    pub events: u64,
    /// Total instructions committed server-side.
    pub committed: u64,
    /// Total detections raised.
    pub detections: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Aggregate throughput: events streamed per wall-clock second.
    pub events_per_sec: f64,
    /// Median simulated detection latency (ns) across every alarm.
    pub p50_latency_ns: f64,
    /// 99th-percentile simulated detection latency (ns).
    pub p99_latency_ns: f64,
    /// Worker threads the pool actually ran.
    pub workers: usize,
    /// Transport deaths survived via resume (routed mode only).
    pub reconnects: u64,
    /// Median router reconnect latency (ms) across every resume.
    pub p50_reconnect_ms: f64,
    /// 99th-percentile router reconnect latency (ms).
    pub p99_reconnect_ms: f64,
    /// Widest in-session pipeline any server reported (1 = all serial).
    pub pipeline_width: u64,
    /// Total generator ring-full stalls across successful sessions.
    pub gen_stalls: u64,
    /// Total judge ring-full stalls across successful sessions.
    pub judge_stalls: u64,
    /// Total core empty-ring waits across successful sessions.
    pub core_waits: u64,
    /// Per-completion-window latency histogram (empty windows included,
    /// so the series is contiguous from the first to the last completion).
    pub buckets: Vec<LatencyBucket>,
    /// First failure message, if any (for diagnostics).
    pub first_error: Option<String>,
}

/// Runs sessions against `addr` per `opts`, all streaming the same
/// `events` under the same `cfg`.
pub fn run_loadgen(
    addr: &str,
    cfg: &SessionConfig,
    events: Arc<Vec<TraceInst>>,
    opts: &LoadgenOptions,
) -> LoadgenOutcome {
    let started = Instant::now();
    let cursor = Arc::new(AtomicUsize::new(0));
    // (outcome, reconnects survived, per-reconnect recovery latencies ms)
    type SessionResult = Result<(SessionOutcome, u32, Vec<f64>), String>;
    let (tx, rx) = mpsc::channel::<(Duration, SessionResult)>();
    let threads = if opts.duration.is_some() {
        opts.concurrency.max(1)
    } else {
        opts.concurrency.clamp(1, opts.sessions.max(1))
    };
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let cursor = Arc::clone(&cursor);
            let tx = tx.clone();
            let events = Arc::clone(&events);
            let cfg = cfg.clone();
            let addr = addr.to_owned();
            let opts = opts.clone();
            std::thread::spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let more =
                    i < opts.sessions || opts.duration.is_some_and(|d| started.elapsed() < d);
                if !more {
                    break;
                }
                let out: SessionResult = match opts.routed {
                    Some(seed) => run_routed_session(
                        &addr,
                        &cfg,
                        Arc::clone(&events),
                        RoutedOptions {
                            batch: opts.batch,
                            ..RoutedOptions::new(seed.wrapping_add(1 + i as u64))
                        },
                    )
                    .map(|r| {
                        let lats = r
                            .reconnect_latencies
                            .iter()
                            .map(|d| d.as_secs_f64() * 1e3)
                            .collect();
                        (r.outcome, r.reconnects, lats)
                    })
                    .map_err(|e| e.to_string()),
                    None => run_session(&addr, &cfg, Arc::clone(&events), opts.batch)
                        .map(|o| (o, 0, Vec::new()))
                        .map_err(|e| e.to_string()),
                };
                if tx.send((started.elapsed(), out)).is_err() {
                    break;
                }
            })
        })
        .collect();
    drop(tx);
    for h in handles {
        let _ = h.join();
    }

    let mut ok = 0usize;
    let mut failed = 0usize;
    let mut events_total = 0u64;
    let mut committed = 0u64;
    let mut detections = 0u64;
    let mut reconnects = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    let mut reconnect_lats_all: Vec<f64> = Vec::new();
    let mut first_error = None;
    let mut pipeline_width = 1u64;
    let mut gen_stalls = 0u64;
    let mut judge_stalls = 0u64;
    let mut core_waits = 0u64;
    // Per-window accumulators, indexed by completion offset / bucket.
    struct Acc {
        sessions: usize,
        lats: Vec<f64>,
        walls: Vec<f64>,
        reconnects: u64,
        reconnect_lats: Vec<f64>,
        gen_stalls: u64,
        judge_stalls: u64,
        core_waits: u64,
    }
    let bucket = opts.bucket.max(Duration::from_millis(1));
    let mut accs: Vec<Acc> = Vec::new();
    for (offset, out) in rx {
        match out {
            Ok((o, rc, rc_lats)) => {
                ok += 1;
                reconnects += u64::from(rc);
                events_total += o.events_sent;
                committed += o.summary.committed;
                detections += o.summary.detections;
                if let Some(t) = &opts.trace {
                    t.emit(
                        "loadgen.session",
                        None,
                        vec![
                            ("wall_ms", (o.wall.as_secs_f64() * 1e3).into()),
                            ("detections", o.summary.detections.into()),
                            ("reconnects", u64::from(rc).into()),
                        ],
                    );
                }
                // True detections only, matching `client`/`trace replay`
                // (RunResult::attack_latencies_ns) so p50/p99 are
                // comparable across the three subcommands.
                let lats: Vec<f64> = o
                    .alarms
                    .iter()
                    .filter(|d| d.attack)
                    .map(|d| d.latency_ns)
                    .collect();
                let idx = (offset.as_nanos() / bucket.as_nanos()) as usize;
                while accs.len() <= idx {
                    accs.push(Acc {
                        sessions: 0,
                        lats: Vec::new(),
                        walls: Vec::new(),
                        reconnects: 0,
                        reconnect_lats: Vec::new(),
                        gen_stalls: 0,
                        judge_stalls: 0,
                        core_waits: 0,
                    });
                }
                accs[idx].sessions += 1;
                accs[idx].walls.push(o.wall.as_secs_f64() * 1e3);
                accs[idx].lats.extend_from_slice(&lats);
                accs[idx].reconnects += u64::from(rc);
                accs[idx].reconnect_lats.extend_from_slice(&rc_lats);
                // Backpressure tail from the SUMMARY frame: wall-clock
                // scheduling artifacts, attributed to the completion
                // window like everything else about the session.
                pipeline_width = pipeline_width.max(o.summary.pipeline_width.max(1));
                accs[idx].gen_stalls += o.summary.pipeline_gen_stalls;
                accs[idx].judge_stalls += o.summary.pipeline_judge_stalls;
                accs[idx].core_waits += o.summary.pipeline_core_waits;
                gen_stalls += o.summary.pipeline_gen_stalls;
                judge_stalls += o.summary.pipeline_judge_stalls;
                core_waits += o.summary.pipeline_core_waits;
                latencies.extend_from_slice(&lats);
                reconnect_lats_all.extend_from_slice(&rc_lats);
            }
            Err(e) => {
                failed += 1;
                if let Some(t) = &opts.trace {
                    t.emit(
                        "loadgen.session_failed",
                        None,
                        vec![("error", e.as_str().into())],
                    );
                }
                first_error.get_or_insert(e);
            }
        }
    }
    let buckets = accs
        .into_iter()
        .enumerate()
        .map(|(i, mut a)| LatencyBucket {
            start: bucket * i as u32,
            sessions: a.sessions,
            detections: a.lats.len() as u64,
            p50_latency_ns: percentile_select(&mut a.lats, 50.0),
            p99_latency_ns: percentile_select(&mut a.lats, 99.0),
            p50_wall_ms: percentile_select(&mut a.walls, 50.0),
            p99_wall_ms: percentile_select(&mut a.walls, 99.0),
            reconnects: a.reconnects,
            p50_reconnect_ms: percentile_select(&mut a.reconnect_lats, 50.0),
            p99_reconnect_ms: percentile_select(&mut a.reconnect_lats, 99.0),
            gen_stalls: a.gen_stalls,
            judge_stalls: a.judge_stalls,
            core_waits: a.core_waits,
        })
        .collect();
    let wall = started.elapsed();
    let secs = wall.as_secs_f64();
    LoadgenOutcome {
        ok_sessions: ok,
        failed_sessions: failed,
        events: events_total,
        committed,
        detections,
        wall,
        events_per_sec: if secs > 0.0 {
            events_total as f64 / secs
        } else {
            0.0
        },
        p50_latency_ns: percentile_select(&mut latencies, 50.0),
        p99_latency_ns: percentile_select(&mut latencies, 99.0),
        workers: threads,
        reconnects,
        p50_reconnect_ms: percentile_select(&mut reconnect_lats_all, 50.0),
        p99_reconnect_ms: percentile_select(&mut reconnect_lats_all, 99.0),
        pipeline_width,
        gen_stalls,
        judge_stalls,
        core_waits,
        buckets,
        first_error,
    }
}

/// Nearest-rank percentile via `select_nth_unstable` — O(n) instead of a
/// full sort, and value-identical to
/// [`fireguard_soc::report::percentile`] over the sorted slice.
pub(crate) fn percentile_select(latencies: &mut [f64], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * latencies.len() as f64).ceil().max(1.0) as usize;
    let idx = rank.min(latencies.len()) - 1;
    let (_, v, _) = latencies
        .select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("latencies are finite"));
    *v
}

#[cfg(test)]
mod tests {
    use super::percentile_select;
    use fireguard_soc::report::percentile;

    #[test]
    fn selection_matches_full_sort_percentile() {
        // Deterministic pseudo-random latencies (LCG).
        let mut x = 12345u64;
        let mut v: Vec<f64> = (0..257)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as f64
            })
            .collect();
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for p in [1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(percentile_select(&mut v, p), percentile(&sorted, p), "p{p}");
        }
        assert_eq!(percentile_select(&mut [], 50.0), 0.0);
    }
}
