//! The `fireguard-serve` wire protocol: framed messages over TCP.
//!
//! Every message is one **frame**: a 1-byte tag, a varint payload length,
//! and the payload. Client→server tags are [`HELLO`], [`EVENTS`] and
//! [`END`]; server→client tags are [`ALARMS`], [`SUMMARY`] and [`ERROR`].
//!
//! | frame   | direction | payload                                          |
//! |---------|-----------|--------------------------------------------------|
//! | HELLO   | c → s     | protocol version + [`SessionConfig`]             |
//! | EVENTS  | c → s     | an [`EventEncoder`] batch (`varint count ‖ events`) |
//! | END     | c → s     | empty — the commit stream is complete            |
//! | ALARMS  | s → c     | a batch of [`Detection`]s raised since the last   |
//! | SUMMARY | s → c     | the session's final [`Summary`]                  |
//! | ERROR   | s → c     | a UTF-8 message; the session is over             |
//!
//! Event payloads are byte-identical to the batches inside a `.fgt` file
//! (both sides keep a stateful [`EventEncoder`]/`EventDecoder` pair per
//! session), so a recorded trace streams to a live service without
//! re-encoding. All decode failures are [`CodecError`]s — a hostile or
//! broken peer can never panic the service.
//!
//! [`EventEncoder`]: fireguard_trace::codec::EventEncoder

use fireguard_kernels::{KernelId, ProgrammingModel};
use fireguard_soc::report::BottleneckBreakdown;
use fireguard_soc::{
    Detection, EngineConfig, ExperimentConfig, RunResult, MAX_ENGINES, MAX_KERNELS,
};
use fireguard_trace::codec::{put_string, put_uvarint, read_uvarint, CodecError, Cursor};
use fireguard_ucore::IsaxMode;
use std::io::{self, Read, Write};

/// Protocol version 1: the original HELLO (no capability field, verdict
/// nibble semantics — at most [`V1_MAX_KERNELS`] kernels per session).
pub const PROTO_V1: u64 = 1;
/// Protocol version 2: HELLO carries a capability uvarint after the
/// version; sessions may request packet-layout-v2 features.
pub const PROTO_V2: u64 = 2;
/// The newest protocol version this build speaks. A client only *emits*
/// v2 when its config needs a v2 capability; v2 is negotiated, never
/// assumed, so v1 peers interoperate unchanged.
pub const PROTO_VERSION: u64 = PROTO_V2;
/// Capability bit (v2 HELLO): the session uses the layout-v2 8-bit
/// verdict field, lifting the kernel ceiling from [`V1_MAX_KERNELS`] to
/// [`fireguard_soc::MAX_KERNELS`].
pub const CAP_WIDE_VERDICT: u64 = 1 << 0;
/// The v1 kernel ceiling (the packet layout v1 verdict nibble). A HELLO
/// naming more kernels must negotiate [`CAP_WIDE_VERDICT`] via v2.
pub const V1_MAX_KERNELS: usize = 4;
/// Hard bound on any frame payload (4 MiB) — enforced on both sides.
pub const MAX_FRAME: u64 = 1 << 22;

/// Client→server: session configuration (must be the first frame).
pub const HELLO: u8 = 1;
/// Client→server: a batch of encoded commit events.
pub const EVENTS: u8 = 2;
/// Client→server: end of the commit stream.
pub const END: u8 = 3;
/// Client→router: a [`SessionTicket`] naming a resumable session. Only the
/// router tier speaks this frame — when present it precedes HELLO, and a
/// plain `serve` backend answers it with an ERROR frame, never silence.
pub const SESSION: u8 = 4;
/// Client→server, metrics endpoint only: request a counters snapshot.
/// The payload is empty. Spoken to the admin listener (`--metrics-addr`),
/// never to the session port, so the session frame vocabulary is
/// untouched.
pub const STATS: u8 = 5;
/// Server→client: detections raised since the previous ALARMS frame.
pub const ALARMS: u8 = 16;
/// Server→client: the final session summary.
pub const SUMMARY: u8 = 17;
/// Server→client: a fatal session error (UTF-8 message payload).
pub const ERROR: u8 = 18;
/// Router→client: cumulative event acknowledgement for a ticketed session
/// (payload: `uvarint n`, the count of contiguously buffered events — the
/// absolute seq a resumed replay starts from). Never sent on plain HELLO
/// sessions, so existing clients see an unchanged frame vocabulary.
pub const ACK: u8 = 19;
/// Server→client, metrics endpoint only: the STATS reply. The payload is
/// the same Prometheus-style text exposition an HTTP scrape returns, so
/// framed and HTTP consumers parse identical bytes.
pub const STATS_REPLY: u8 = 20;
/// Router→client: the router is over its admission budget and refuses the
/// *fresh* session cleanly (UTF-8 reason payload) instead of dropping the
/// connection. Resume tickets are never answered with BUSY — a session the
/// router already accepted is always allowed back in.
pub const BUSY: u8 = 21;

/// Capability bit (v2 HELLO): every post-handshake frame in **both**
/// directions carries a trailing 4-byte FNV-1a-32 checksum over
/// `tag ‖ LE64 frame-index ‖ payload`, where the frame index counts
/// checksummed frames per direction from 0 on each connection. Binding the
/// index detects duplication, reordering and silent frame loss as well as
/// payload corruption — essential for the stateful event delta codec, where
/// a replayed EVENTS frame would otherwise decode into plausible garbage.
/// ERROR and BUSY frames are exempt (they can precede or outlive the
/// negotiated session) and do not advance the index.
pub const CAP_FRAME_CHECKSUM: u64 = 1 << 1;

/// ERROR payloads with this prefix mark a *transport* failure between a
/// router and its backend (the stream died mid-session), as opposed to a
/// semantic refusal. The router treats them as retryable: it discards the
/// incarnation and fails the session over instead of surfacing the error.
pub const RETRYABLE_ERROR_PREFIX: &str = "stream error: ";

/// Writes one frame (`tag ‖ varint len ‖ payload`).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_frame<W: Write>(w: &mut W, tag: u8, payload: &[u8]) -> io::Result<()> {
    let mut head = vec![tag];
    put_uvarint(&mut head, payload.len() as u64);
    w.write_all(&head)?;
    w.write_all(payload)
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// [`CodecError::Oversized`] beyond [`MAX_FRAME`], [`CodecError::Truncated`]
/// on EOF inside a frame, or the underlying I/O error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>)>, CodecError> {
    let mut tag = [0u8; 1];
    match r.read(&mut tag) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(CodecError::Io(e)),
    }
    let len = read_uvarint(r)?;
    if len > MAX_FRAME {
        return Err(CodecError::Oversized {
            what: "frame",
            len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|_| CodecError::Truncated("frame payload"))?;
    Ok(Some((tag[0], payload)))
}

// ---- checked framing (CAP_FRAME_CHECKSUM) -----------------------------------

// FNV-1a-32 over `tag ‖ LE64 frame-index ‖ payload` — the per-frame
// integrity word appended after the payload when CAP_FRAME_CHECKSUM is
// negotiated.
fn frame_checksum(tag: u8, index: u64, payload: &[u8]) -> u32 {
    const FNV_OFFSET: u32 = 0x811c_9dc5;
    const FNV_PRIME: u32 = 0x0100_0193;
    let mut h = FNV_OFFSET;
    let mut step = |b: u8| {
        h ^= u32::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    };
    step(tag);
    for b in index.to_le_bytes() {
        step(b);
    }
    for &b in payload {
        step(b);
    }
    h
}

// ERROR and BUSY frames are never checksummed: they can be emitted before
// the HELLO that negotiates the capability (ticket refusals, admission
// shedding) and after a session's framing state is already torn down.
fn checksum_exempt(tag: u8) -> bool {
    tag == ERROR || tag == BUSY
}

/// A per-connection framed writer. In *checked* mode (negotiated via
/// [`CAP_FRAME_CHECKSUM`]) every non-exempt frame carries a trailing
/// 4-byte index-bound checksum; in plain mode it writes classic
/// `tag ‖ varint len ‖ payload` frames, byte-identical to [`write_frame`].
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    w: W,
    checked: bool,
    index: u64,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps `w`; `checked` selects checksummed framing.
    pub fn new(w: W, checked: bool) -> Self {
        FrameWriter {
            w,
            checked,
            index: 0,
        }
    }

    /// Switches checksummed framing on/off (used right after the
    /// handshake frames, which always travel plain).
    pub fn set_checked(&mut self, on: bool) {
        self.checked = on;
    }

    /// Writes one frame under the connection's negotiated framing.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        if !self.checked || checksum_exempt(tag) {
            return write_frame(&mut self.w, tag, payload);
        }
        let sum = frame_checksum(tag, self.index, payload);
        let mut head = vec![tag];
        put_uvarint(&mut head, payload.len() as u64);
        self.w.write_all(&head)?;
        self.w.write_all(payload)?;
        self.w.write_all(&sum.to_le_bytes())?;
        self.index += 1;
        Ok(())
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }

    /// The underlying writer (for shutdown/half-close plumbing).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.w
    }
}

/// A per-connection framed reader; the dual of [`FrameWriter`]. In checked
/// mode it verifies the trailing index-bound checksum of every non-exempt
/// frame and fails with [`CodecError::ChecksumMismatch`] on any corruption,
/// duplication, reordering or truncation the wire introduced.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    r: R,
    checked: bool,
    index: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `r`; `checked` selects checksummed framing.
    pub fn new(r: R, checked: bool) -> Self {
        FrameReader {
            r,
            checked,
            index: 0,
        }
    }

    /// Switches checksum verification on/off (used right after the
    /// handshake frames, which always travel plain).
    pub fn set_checked(&mut self, on: bool) {
        self.checked = on;
    }

    /// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
    ///
    /// # Errors
    ///
    /// Everything [`read_frame`] can return, plus
    /// [`CodecError::ChecksumMismatch`] when a checked frame fails
    /// verification and [`CodecError::Truncated`] when the checksum word
    /// itself is cut short.
    pub fn read(&mut self) -> Result<Option<(u8, Vec<u8>)>, CodecError> {
        let Some((tag, payload)) = read_frame(&mut self.r)? else {
            return Ok(None);
        };
        if !self.checked || checksum_exempt(tag) {
            return Ok(Some((tag, payload)));
        }
        let mut sum = [0u8; 4];
        self.r
            .read_exact(&mut sum)
            .map_err(|_| CodecError::Truncated("frame checksum"))?;
        let found = u32::from_le_bytes(sum);
        let expected = frame_checksum(tag, self.index, &payload);
        if found != expected {
            return Err(CodecError::ChecksumMismatch {
                expected: u64::from(expected),
                found: u64::from(found),
            });
        }
        self.index += 1;
        Ok(Some((tag, payload)))
    }

    /// The underlying reader.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.r
    }
}

/// Peeks the capability bits out of a HELLO payload without fully decoding
/// it (tolerant: any malformation reads as "no capabilities"). The router
/// uses this to pick the framing discipline for each leg while forwarding
/// the HELLO bytes verbatim, so backends negotiate identically.
pub fn hello_caps(payload: &[u8]) -> u64 {
    let mut cur = Cursor::new(payload);
    match cur.uvarint("hello version") {
        Ok(v) if v >= PROTO_V2 => cur.uvarint("hello caps").unwrap_or(0),
        _ => 0,
    }
}

// ---- session tickets (router tier) -----------------------------------------

/// The SESSION frame payload: identifies a resumable routed session.
///
/// A router client opens every connection with one of these *before* its
/// HELLO. `resume == false` registers a fresh session under `id`;
/// `resume == true` re-attaches to the buffered state of a session whose
/// transport died, carrying how many alarms the client already holds so
/// the router can re-deliver exactly the missing tail (zero lost, zero
/// duplicated detections).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTicket {
    /// Client-chosen session identity (hashed onto the backend ring).
    pub id: u64,
    /// Re-attach to existing buffered state instead of starting fresh.
    pub resume: bool,
    /// Alarms the client has already received (resume only; the router
    /// re-sends from this index). Ignored when `resume` is false.
    pub alarms_received: u64,
}

impl SessionTicket {
    /// Encodes the SESSION payload
    /// (`uvarint id ‖ u8 resume ‖ [uvarint alarms_received]`).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_uvarint(&mut b, self.id);
        b.push(u8::from(self.resume));
        if self.resume {
            put_uvarint(&mut b, self.alarms_received);
        }
        b
    }

    /// Decodes a SESSION payload.
    ///
    /// # Errors
    ///
    /// Any structural decode failure.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut cur = Cursor::new(payload);
        let id = cur.uvarint("session id")?;
        let resume = match cur.u8("session mode")? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Corrupt("session mode not 0/1")),
        };
        let alarms_received = if resume {
            cur.uvarint("session alarms received")?
        } else {
            0
        };
        if !cur.is_empty() {
            return Err(CodecError::Corrupt("trailing bytes after session ticket"));
        }
        Ok(SessionTicket {
            id,
            resume,
            alarms_received,
        })
    }
}

/// Encodes an ACK payload: `events` is the count of contiguously buffered
/// events (equivalently: the absolute seq the next expected event carries).
pub fn encode_ack(events: u64) -> Vec<u8> {
    let mut b = Vec::new();
    put_uvarint(&mut b, events);
    b
}

/// Decodes an ACK payload.
///
/// # Errors
///
/// Any structural decode failure.
pub fn decode_ack(payload: &[u8]) -> Result<u64, CodecError> {
    let mut cur = Cursor::new(payload);
    let events = cur.uvarint("ack events")?;
    if !cur.is_empty() {
        return Err(CodecError::Corrupt("trailing bytes after ack"));
    }
    Ok(events)
}

// ---- session configuration -------------------------------------------------

/// The per-session experiment negotiation carried by the HELLO frame: the
/// full [`ExperimentConfig`] surface (minus the attack plan, which lives in
/// the event stream itself) plus the pinned baseline-cycle denominator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// Workload label (reporting only — the server never regenerates it).
    pub workload: String,
    /// Trace seed (reporting only).
    pub seed: u64,
    /// Commit budget: the server runs until this many instructions commit.
    pub insts: u64,
    /// Bare-core cycles for the same stream (0 = unknown; slowdown = 1.0).
    pub baseline_cycles: u64,
    /// Kernels and their engine provisioning, in verdict-bit order.
    pub kernels: Vec<(KernelId, EngineConfig)>,
    /// µ-program style.
    pub model: ProgrammingModel,
    /// Event-filter width.
    pub filter_width: usize,
    /// ISAX placement.
    pub isax: IsaxMode,
    /// Mapper width.
    pub mapper_width: usize,
}

// Kernel bytes on the wire are the registry's stable ids
// (`KernelId::wire`): 0 = PMC, 1 = shadow stack, 2 = ASan, 3 = UaF —
// pinned forever for compatibility — with newer registered kernels taking
// the next ids (4 = taint, 5 = MTE). Decoding is registry-driven, so a
// HELLO naming an unregistered id is a clean `CodecError` (the service
// answers with an ERROR frame), never a panic.
fn kernel_from_u8(v: u8) -> Result<KernelId, CodecError> {
    KernelId::from_wire(v).ok_or(CodecError::Corrupt("unknown kernel id"))
}

fn model_to_u8(m: ProgrammingModel) -> u8 {
    match m {
        ProgrammingModel::Conventional => 0,
        ProgrammingModel::Duffs => 1,
        ProgrammingModel::Unrolled => 2,
        ProgrammingModel::Hybrid => 3,
    }
}

fn model_from_u8(v: u8) -> Result<ProgrammingModel, CodecError> {
    Ok(match v {
        0 => ProgrammingModel::Conventional,
        1 => ProgrammingModel::Duffs,
        2 => ProgrammingModel::Unrolled,
        3 => ProgrammingModel::Hybrid,
        _ => return Err(CodecError::Corrupt("unknown programming model")),
    })
}

impl SessionConfig {
    /// Builds a session from an experiment description and its pinned
    /// baseline (e.g. from a `.fgt` header).
    pub fn from_experiment(cfg: &ExperimentConfig, baseline_cycles: u64) -> Self {
        SessionConfig {
            workload: cfg.workload.clone(),
            seed: cfg.seed,
            insts: cfg.insts,
            baseline_cycles,
            kernels: cfg.kernels.clone(),
            model: cfg.model,
            filter_width: cfg.filter_width,
            isax: cfg.isax,
            mapper_width: cfg.mapper_width,
        }
    }

    /// The equivalent in-process experiment (attacks: none — the stream
    /// carries them).
    pub fn to_experiment(&self) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(&self.workload)
            .seed(self.seed)
            .insts(self.insts)
            .model(self.model)
            .filter_width(self.filter_width)
            .isax(self.isax)
            .mapper_width(self.mapper_width);
        cfg.kernels = self.kernels.clone();
        cfg
    }

    /// Validates the structural limits the system constructor asserts, so
    /// a hostile HELLO is refused with an error frame instead of a panic.
    ///
    /// # Errors
    ///
    /// A human-readable refusal reason.
    pub fn validate(&self) -> Result<(), String> {
        if self.insts == 0 {
            return Err("insts must be at least 1".into());
        }
        if self.kernels.is_empty() {
            return Err("at least one kernel is required".into());
        }
        if self.kernels.len() > MAX_KERNELS {
            return Err(format!(
                "{} kernels requested (max {MAX_KERNELS})",
                self.kernels.len()
            ));
        }
        let engines: usize = self
            .kernels
            .iter()
            .map(|(_, e)| match e {
                EngineConfig::Ucores(n) => *n,
                EngineConfig::Ha => 1,
            })
            .sum();
        if engines == 0 || engines > MAX_ENGINES {
            return Err(format!("{engines} engines requested (1..={MAX_ENGINES})"));
        }
        if self
            .kernels
            .iter()
            .any(|(_, e)| matches!(e, EngineConfig::Ucores(0)))
        {
            return Err("a kernel needs at least one µcore".into());
        }
        if self.filter_width == 0 || self.filter_width > 8 {
            return Err(format!("filter width {} (1..=8)", self.filter_width));
        }
        if self.mapper_width == 0 || self.mapper_width > 8 {
            return Err(format!("mapper width {} (1..=8)", self.mapper_width));
        }
        Ok(())
    }

    /// The protocol version this config goes on the wire as: [`PROTO_V1`]
    /// whenever the session fits v1 semantics (so the bytes stay identical
    /// to what historical encoders produced), [`PROTO_V2`] only when a v2
    /// capability is actually needed. v2 is negotiated, never assumed.
    pub fn wire_version(&self) -> u64 {
        if self.kernels.len() > V1_MAX_KERNELS {
            PROTO_V2
        } else {
            PROTO_V1
        }
    }

    /// The capability bits a v2 HELLO for this config carries.
    pub fn caps(&self) -> u64 {
        if self.kernels.len() > V1_MAX_KERNELS {
            CAP_WIDE_VERDICT
        } else {
            0
        }
    }

    /// Encodes the HELLO payload (including the protocol version; a v2
    /// HELLO additionally carries the capability bits right after it).
    ///
    /// Encoding validates first — an out-of-range config (e.g. more
    /// kernels than the verdict field holds) is refused here rather than
    /// silently truncated onto the wire.
    ///
    /// # Errors
    ///
    /// The [`validate`](Self::validate) refusal reason.
    pub fn encode(&self) -> Result<Vec<u8>, String> {
        self.validate()?;
        let mut b = Vec::new();
        let version = self.wire_version();
        put_uvarint(&mut b, version);
        if version >= PROTO_V2 {
            put_uvarint(&mut b, self.caps());
        }
        put_string(&mut b, &self.workload);
        put_uvarint(&mut b, self.seed);
        put_uvarint(&mut b, self.insts);
        put_uvarint(&mut b, self.baseline_cycles);
        b.push(self.kernels.len() as u8);
        for (kind, engine) in &self.kernels {
            b.push(kind.wire());
            // 0 encodes the hardware accelerator; n > 0 encodes n µcores.
            put_uvarint(
                &mut b,
                match engine {
                    EngineConfig::Ha => 0,
                    EngineConfig::Ucores(n) => *n as u64,
                },
            );
        }
        b.push(model_to_u8(self.model));
        put_uvarint(&mut b, self.filter_width as u64);
        b.push(match self.isax {
            IsaxMode::MaStage => 0,
            IsaxMode::PostCommit => 1,
        });
        put_uvarint(&mut b, self.mapper_width as u64);
        Ok(b)
    }

    /// Encodes the HELLO payload with `extra` capability bits OR-ed into
    /// the negotiated set. Any extra bit forces a v2 HELLO (capabilities
    /// only exist in v2); `encode_with_caps(0)` is byte-identical to
    /// [`encode`](Self::encode), so historical v1 wire bytes never move.
    ///
    /// # Errors
    ///
    /// The [`validate`](Self::validate) refusal reason.
    pub fn encode_with_caps(&self, extra: u64) -> Result<Vec<u8>, String> {
        if extra == 0 {
            return self.encode();
        }
        self.validate()?;
        let mut b = Vec::new();
        put_uvarint(&mut b, PROTO_V2);
        put_uvarint(&mut b, self.caps() | extra);
        let tail = self.encode()?;
        let skip = if self.wire_version() >= PROTO_V2 {
            2
        } else {
            1
        };
        b.extend_from_slice(&tail[skip..]);
        Ok(b)
    }

    /// Decodes a HELLO payload (v1 or v2).
    ///
    /// A v1 HELLO implies an empty capability set; a v2 HELLO carries its
    /// capability bits after the version (unknown bits are ignored for
    /// forward compatibility). Either way, a session naming more than
    /// [`V1_MAX_KERNELS`] kernels without [`CAP_WIDE_VERDICT`] negotiated
    /// is refused — a v1 peer can never be handed 8-bit verdict state it
    /// does not understand.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnsupportedVersion`] for a future protocol, or any
    /// structural decode failure.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut cur = Cursor::new(payload);
        let version = cur.uvarint("hello version")?;
        if version != PROTO_V1 && version != PROTO_V2 {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let caps = if version >= PROTO_V2 {
            cur.uvarint("hello caps")?
        } else {
            0
        };
        let workload = cur.string(1024, "hello workload")?;
        let seed = cur.uvarint("hello seed")?;
        let insts = cur.uvarint("hello insts")?;
        let baseline_cycles = cur.uvarint("hello baseline")?;
        let n_kernels = cur.u8("hello kernel count")?;
        if n_kernels as usize > MAX_KERNELS {
            return Err(CodecError::Corrupt("implausible kernel count"));
        }
        if n_kernels as usize > V1_MAX_KERNELS && caps & CAP_WIDE_VERDICT == 0 {
            return Err(CodecError::Corrupt("wide verdict not negotiated"));
        }
        let mut kernels = Vec::with_capacity(n_kernels as usize);
        for _ in 0..n_kernels {
            let kind = kernel_from_u8(cur.u8("hello kernel id")?)?;
            let engines = cur.uvarint("hello engine count")?;
            if engines > 64 {
                return Err(CodecError::Corrupt("implausible engine count"));
            }
            let engine = if engines == 0 {
                EngineConfig::Ha
            } else {
                EngineConfig::Ucores(engines as usize)
            };
            kernels.push((kind, engine));
        }
        let model = model_from_u8(cur.u8("hello model")?)?;
        let filter_width = cur.uvarint("hello filter width")? as usize;
        let isax = match cur.u8("hello isax")? {
            0 => IsaxMode::MaStage,
            1 => IsaxMode::PostCommit,
            _ => return Err(CodecError::Corrupt("unknown isax mode")),
        };
        let mapper_width = cur.uvarint("hello mapper width")? as usize;
        if !cur.is_empty() {
            return Err(CodecError::Corrupt("trailing bytes after hello"));
        }
        Ok(SessionConfig {
            workload,
            seed,
            insts,
            baseline_cycles,
            kernels,
            model,
            filter_width,
            isax,
            mapper_width,
        })
    }
}

// ---- alarms ----------------------------------------------------------------

/// Encodes a batch of detections as an ALARMS payload.
pub fn encode_alarms(detections: &[Detection]) -> Vec<u8> {
    let mut b = Vec::new();
    put_uvarint(&mut b, detections.len() as u64);
    for d in detections {
        put_uvarint(&mut b, d.seq);
        b.extend_from_slice(&d.latency_ns.to_bits().to_le_bytes());
        b.push(u8::from(d.attack));
        put_uvarint(&mut b, d.kernel_slot as u64);
    }
    b
}

/// Decodes an ALARMS payload.
///
/// # Errors
///
/// Any structural decode failure.
pub fn decode_alarms(payload: &[u8]) -> Result<Vec<Detection>, CodecError> {
    let mut cur = Cursor::new(payload);
    let count = cur.uvarint("alarm count")?;
    // Each alarm needs at least 11 payload bytes (seq ≥ 1, latency 8,
    // ground truth 1, slot ≥ 1), so bounding the count by the payload
    // length rejects hostile counts before any allocation.
    if count > payload.len() as u64 / 11 {
        return Err(CodecError::Corrupt("implausible alarm count"));
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let seq = cur.uvarint("alarm seq")?;
        let latency_ns = f64::from_bits(cur.u64le("alarm latency")?);
        let attack = match cur.u8("alarm ground truth")? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Corrupt("alarm ground truth not 0/1")),
        };
        let kernel_slot = cur.uvarint("alarm kernel slot")? as usize;
        out.push(Detection {
            seq,
            latency_ns,
            attack,
            kernel_slot,
        });
    }
    if !cur.is_empty() {
        return Err(CodecError::Corrupt("trailing bytes after alarms"));
    }
    Ok(out)
}

// ---- summary ---------------------------------------------------------------

/// The final SUMMARY frame: every scalar of the session's [`RunResult`]
/// (detections travelled separately, in ALARMS frames, and are summarized
/// here by count).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Instructions committed.
    pub committed: u64,
    /// Fast-domain cycles taken.
    pub cycles: u64,
    /// Baseline cycles the slowdown was computed against.
    pub baseline_cycles: u64,
    /// Main-core slowdown.
    pub slowdown: f64,
    /// Analysis packets produced.
    pub packets: u64,
    /// Packets with no subscriber.
    pub unclaimed_packets: u64,
    /// Stall attribution.
    pub bottlenecks: BottleneckBreakdown,
    /// Total detections raised over the session.
    pub detections: u64,
    /// Stage-pipeline width the server ran this session at (1 = serial).
    pub pipeline_width: u64,
    /// Generator ring-full stalls (spins with the raw ring full).
    pub pipeline_gen_stalls: u64,
    /// Judge ring-full stalls (spins with the judged ring full).
    pub pipeline_judge_stalls: u64,
    /// Core waits on an empty judged ring.
    ///
    /// These four ride as an optional SUMMARY tail: they are wall-clock
    /// artifacts of thread scheduling, so parity suites must never
    /// compare them — everything above this line stays bit-identical at
    /// every width.
    pub pipeline_core_waits: u64,
}

impl Summary {
    /// Summarizes a finished run.
    pub fn from_result(r: &RunResult) -> Self {
        Summary {
            committed: r.committed,
            cycles: r.cycles,
            baseline_cycles: r.baseline_cycles,
            slowdown: r.slowdown,
            packets: r.packets,
            unclaimed_packets: r.unclaimed_packets,
            bottlenecks: r.bottlenecks,
            detections: r.detections.len() as u64,
            pipeline_width: 1,
            pipeline_gen_stalls: 0,
            pipeline_judge_stalls: 0,
            pipeline_core_waits: 0,
        }
    }

    /// Attaches the engine's pipeline backpressure counters, so load
    /// generators can report per-stage ring-full stalls without scraping
    /// the metrics endpoint.
    pub fn with_pipeline_counters(mut self, c: &fireguard_soc::EngineCounters) -> Self {
        self.pipeline_width = c.pipeline_width.max(1);
        self.pipeline_gen_stalls = c.pipeline_gen_stalls;
        self.pipeline_judge_stalls = c.pipeline_judge_stalls;
        self.pipeline_core_waits = c.pipeline_core_waits;
        self
    }

    /// Encodes the SUMMARY payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_uvarint(&mut b, self.committed);
        put_uvarint(&mut b, self.cycles);
        put_uvarint(&mut b, self.baseline_cycles);
        b.extend_from_slice(&self.slowdown.to_bits().to_le_bytes());
        put_uvarint(&mut b, self.packets);
        put_uvarint(&mut b, self.unclaimed_packets);
        put_uvarint(&mut b, self.bottlenecks.filter);
        put_uvarint(&mut b, self.bottlenecks.mapper);
        put_uvarint(&mut b, self.bottlenecks.cdc);
        put_uvarint(&mut b, self.bottlenecks.ucore);
        put_uvarint(&mut b, self.detections);
        // Optional tail (PR10): pipeline width + per-stage backpressure.
        // Decoders accept payloads that end at `detections`, so pre-tail
        // recordings remain readable.
        put_uvarint(&mut b, self.pipeline_width);
        put_uvarint(&mut b, self.pipeline_gen_stalls);
        put_uvarint(&mut b, self.pipeline_judge_stalls);
        put_uvarint(&mut b, self.pipeline_core_waits);
        b
    }

    /// Decodes a SUMMARY payload.
    ///
    /// # Errors
    ///
    /// Any structural decode failure.
    pub fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut cur = Cursor::new(payload);
        let committed = cur.uvarint("summary committed")?;
        let cycles = cur.uvarint("summary cycles")?;
        let baseline_cycles = cur.uvarint("summary baseline")?;
        let slowdown = f64::from_bits(cur.u64le("summary slowdown")?);
        let packets = cur.uvarint("summary packets")?;
        let unclaimed_packets = cur.uvarint("summary unclaimed")?;
        let bottlenecks = BottleneckBreakdown {
            filter: cur.uvarint("summary filter stalls")?,
            mapper: cur.uvarint("summary mapper stalls")?,
            cdc: cur.uvarint("summary cdc stalls")?,
            ucore: cur.uvarint("summary ucore stalls")?,
        };
        let detections = cur.uvarint("summary detections")?;
        // The pipeline tail is optional: a payload ending here decodes
        // with serial defaults (pre-tail peers and journaled frames).
        let (pipeline_width, pipeline_gen_stalls, pipeline_judge_stalls, pipeline_core_waits) =
            if cur.is_empty() {
                (1, 0, 0, 0)
            } else {
                (
                    cur.uvarint("summary pipeline width")?,
                    cur.uvarint("summary gen stalls")?,
                    cur.uvarint("summary judge stalls")?,
                    cur.uvarint("summary core waits")?,
                )
            };
        if !cur.is_empty() {
            return Err(CodecError::Corrupt("trailing bytes after summary"));
        }
        Ok(Summary {
            committed,
            cycles,
            baseline_cycles,
            slowdown,
            packets,
            unclaimed_packets,
            bottlenecks,
            detections,
            pipeline_width,
            pipeline_gen_stalls,
            pipeline_judge_stalls,
            pipeline_core_waits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> SessionConfig {
        SessionConfig {
            workload: "dedup".into(),
            seed: 9,
            insts: 30_000,
            baseline_cycles: 12_345,
            kernels: vec![
                (KernelId::ASAN, EngineConfig::Ucores(4)),
                (KernelId::SHADOW_STACK, EngineConfig::Ha),
            ],
            model: ProgrammingModel::Hybrid,
            filter_width: 4,
            isax: IsaxMode::MaStage,
            mapper_width: 1,
        }
    }

    /// All six registered kernels, one µcore each — a layout-v2 session
    /// that can only travel as a v2 HELLO.
    fn wide_config() -> SessionConfig {
        let mut cfg = sample_config();
        cfg.kernels = fireguard_soc::registry()
            .iter()
            .map(|spec| (spec.id(), EngineConfig::Ucores(1)))
            .collect();
        cfg
    }

    #[test]
    fn hello_round_trips() {
        let cfg = sample_config();
        assert_eq!(SessionConfig::decode(&cfg.encode().unwrap()).unwrap(), cfg);
        cfg.validate().expect("sample config is valid");
    }

    /// Wire-format regression pin: the kernel bytes 0–3 decode to the four
    /// paper kernels **forever**, new kernels extend the sequence without
    /// renumbering, and an unknown id is a clean decode error (which the
    /// service answers with an ERROR frame — see the service tests), never
    /// a hang or panic.
    #[test]
    fn kernel_wire_ids_are_pinned() {
        let expected: &[(u8, &str)] = &[
            (0, "PMC"),
            (1, "Shadow"),
            (2, "Sanitizer"),
            (3, "UaF"),
            (4, "Taint"),
            (5, "MTE"),
        ];
        for &(wire, name) in expected {
            let id = KernelId::from_wire(wire).expect("registered id");
            assert_eq!(id.wire(), wire);
            assert_eq!(id.name(), name, "wire id {wire} renamed/renumbered");
        }
        assert!(matches!(
            kernel_from_u8(6),
            Err(CodecError::Corrupt("unknown kernel id"))
        ));
        assert!(kernel_from_u8(250).is_err());

        // A byte-level HELLO fixture: version 1, workload "x", seed 0,
        // insts 1, baseline 0, one kernel (id byte ‖ 4 µcores), hybrid
        // model, filter width 4, MA-stage ISAX, mapper width 1. Each paper
        // kernel id must decode from these exact bytes.
        for &(wire, _) in expected {
            let payload: Vec<u8> = vec![
                1, // protocol version
                1, b'x', // workload
                0,    // seed
                1,    // insts
                0,    // baseline cycles
                1,    // kernel count
                wire, 4, // kernel id byte + engine count
                3, // hybrid model
                4, // filter width
                0, // MA-stage ISAX
                1, // mapper width
            ];
            let cfg = SessionConfig::decode(&payload)
                .unwrap_or_else(|e| panic!("pinned HELLO bytes for id {wire} broke: {e}"));
            assert_eq!(
                cfg.kernels,
                vec![(KernelId::from_wire(wire).unwrap(), EngineConfig::Ucores(4))]
            );
            // And the encoder reproduces the same kernel byte (offset 7:
            // version ‖ len ‖ "x" ‖ seed ‖ insts ‖ baseline ‖ count) —
            // a ≤4-kernel session re-encodes as byte-identical v1.
            assert_eq!(cfg.encode().unwrap(), payload, "v1 HELLO bytes moved");
            assert_eq!(cfg.encode().unwrap()[7], wire, "kernel id byte moved");
        }

        // The same fixture with an unregistered id byte fails cleanly.
        let mut bad: Vec<u8> = vec![1, 1, b'x', 0, 1, 0, 1, 99, 4, 3, 4, 0, 1];
        assert!(SessionConfig::decode(&bad).is_err());
        bad[7] = 5; // highest registered id still decodes
        assert!(SessionConfig::decode(&bad).is_ok());
    }

    #[test]
    fn new_kernel_sessions_round_trip() {
        for id in [KernelId::TAINT, KernelId::MTE] {
            let mut cfg = sample_config();
            cfg.kernels = vec![(id, EngineConfig::Ucores(4))];
            assert_eq!(SessionConfig::decode(&cfg.encode().unwrap()).unwrap(), cfg);
            cfg.validate().expect("taint/mte sessions validate");
        }
    }

    #[test]
    fn hello_decode_rejects_garbage() {
        assert!(SessionConfig::decode(&[]).is_err());
        assert!(SessionConfig::decode(&[0xFF; 64]).is_err());
        let mut future = sample_config().encode().unwrap();
        future[0] = 9; // protocol version 9
        assert!(matches!(
            SessionConfig::decode(&future),
            Err(CodecError::UnsupportedVersion(9))
        ));
    }

    /// The v1↔v2 negotiation matrix: small sessions stay v1 on the wire,
    /// wide sessions carry the capability bit, and a wide session that
    /// *didn't* negotiate it is refused.
    #[test]
    fn wide_sessions_negotiate_v2() {
        // ≤4 kernels: v1 on the wire, no caps field.
        let small = sample_config();
        assert_eq!(small.wire_version(), PROTO_V1);
        assert_eq!(small.caps(), 0);
        assert_eq!(small.encode().unwrap()[0], PROTO_V1 as u8);

        // >4 kernels: v2 + CAP_WIDE_VERDICT, and it round-trips.
        let wide = wide_config();
        assert_eq!(wide.kernels.len(), 6, "all registered kernels");
        assert_eq!(wide.wire_version(), PROTO_V2);
        assert_eq!(wide.caps(), CAP_WIDE_VERDICT);
        let bytes = wide.encode().unwrap();
        assert_eq!(bytes[0], PROTO_V2 as u8);
        assert_eq!(bytes[1] as u64, CAP_WIDE_VERDICT);
        assert_eq!(SessionConfig::decode(&bytes).unwrap(), wide);
    }

    #[test]
    fn wide_session_without_negotiated_cap_is_refused() {
        // A v2 HELLO whose caps field lacks CAP_WIDE_VERDICT but names
        // more than four kernels: refused, never silently accepted.
        let mut bytes = wide_config().encode().unwrap();
        assert_eq!(bytes[1] as u64, CAP_WIDE_VERDICT);
        bytes[1] = 0;
        assert!(matches!(
            SessionConfig::decode(&bytes),
            Err(CodecError::Corrupt("wide verdict not negotiated"))
        ));

        // A hand-built *v1* HELLO naming five kernels (caps implicitly
        // empty) is refused the same way — a v1 peer cannot smuggle a
        // wide session in.
        let mut v1: Vec<u8> = vec![1, 1, b'x', 0, 1, 0, 5];
        for wire in 0..5u8 {
            v1.push(wire); // kernel id
            v1.push(1); // one µcore
        }
        v1.extend_from_slice(&[3, 4, 0, 1]); // model, filter, isax, mapper
        assert!(matches!(
            SessionConfig::decode(&v1),
            Err(CodecError::Corrupt("wide verdict not negotiated"))
        ));
    }

    #[test]
    fn unknown_v2_capability_bits_are_ignored() {
        // Forward compatibility: a future client may set bits we don't
        // know; the session still decodes on this build.
        let wide = wide_config();
        let mut bytes = wide.encode().unwrap();
        bytes[1] = (CAP_WIDE_VERDICT | (1 << 3)) as u8;
        assert_eq!(SessionConfig::decode(&bytes).unwrap(), wide);
    }

    #[test]
    fn encode_refuses_invalid_configs() {
        // More kernels than the verdict field holds: encode() refuses
        // instead of truncating the count byte onto the wire.
        let mut cfg = sample_config();
        cfg.kernels = vec![(KernelId::PMC, EngineConfig::Ucores(1)); MAX_KERNELS + 1];
        assert!(cfg.encode().is_err());
        let mut cfg = sample_config();
        cfg.insts = 0;
        assert!(cfg.encode().is_err());
    }

    #[test]
    fn validation_catches_structural_limits() {
        let mut cfg = sample_config();
        cfg.kernels.clear();
        assert!(cfg.validate().is_err());
        let mut cfg = sample_config();
        cfg.kernels = vec![(KernelId::ASAN, EngineConfig::Ucores(17))];
        assert!(cfg.validate().is_err());
        let mut cfg = sample_config();
        cfg.insts = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn alarms_round_trip() {
        let ds = vec![
            Detection {
                seq: 7,
                latency_ns: 123.456,
                attack: true,
                kernel_slot: 1,
            },
            Detection {
                seq: 9_000_000,
                latency_ns: 0.25,
                attack: false,
                kernel_slot: 0,
            },
        ];
        let back = decode_alarms(&encode_alarms(&ds)).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn hostile_alarm_count_is_rejected_before_allocation() {
        let mut b = Vec::new();
        put_uvarint(&mut b, 1_000_000); // declares 1M alarms in a 3-byte payload
        assert!(matches!(
            decode_alarms(&b),
            Err(CodecError::Corrupt("implausible alarm count"))
        ));
    }

    #[test]
    fn summary_round_trips_bit_exactly() {
        let s = Summary {
            committed: 30_000,
            cycles: 41_234,
            baseline_cycles: 40_000,
            slowdown: 1.030_85,
            packets: 12_000,
            unclaimed_packets: 0,
            bottlenecks: BottleneckBreakdown {
                filter: 1,
                mapper: 2,
                cdc: 3,
                ucore: 4,
            },
            detections: 17,
            pipeline_width: 3,
            pipeline_gen_stalls: 101,
            pipeline_judge_stalls: 7,
            pipeline_core_waits: 55,
        };
        let back = Summary::decode(&s.encode()).unwrap();
        assert_eq!(back.slowdown.to_bits(), s.slowdown.to_bits());
        assert_eq!(back, s);
    }

    #[test]
    fn summary_without_pipeline_tail_decodes_to_serial_defaults() {
        // A pre-tail SUMMARY payload (ends at `detections`) must still
        // decode: the tail fields come back as width 1, zero stalls.
        let s = Summary {
            committed: 10,
            cycles: 20,
            baseline_cycles: 15,
            slowdown: 1.5,
            packets: 4,
            unclaimed_packets: 0,
            bottlenecks: BottleneckBreakdown::default(),
            detections: 0,
            pipeline_width: 1,
            pipeline_gen_stalls: 0,
            pipeline_judge_stalls: 0,
            pipeline_core_waits: 0,
        };
        let mut bytes = s.encode();
        // The all-default tail is four zero varints: one byte each.
        bytes.truncate(bytes.len() - 4);
        assert_eq!(Summary::decode(&bytes).unwrap(), s);
    }

    #[test]
    fn session_tickets_round_trip() {
        let fresh = SessionTicket {
            id: 0xFEED_BEEF,
            resume: false,
            alarms_received: 0,
        };
        assert_eq!(SessionTicket::decode(&fresh.encode()).unwrap(), fresh);
        let resumed = SessionTicket {
            id: 7,
            resume: true,
            alarms_received: 41,
        };
        assert_eq!(SessionTicket::decode(&resumed.encode()).unwrap(), resumed);
        // A fresh ticket never carries the alarm count on the wire: for
        // the same id, resuming costs exactly the alarm-count varint.
        let fresh7 = SessionTicket {
            resume: false,
            alarms_received: 0,
            ..resumed
        };
        assert_eq!(fresh7.encode().len() + 1, resumed.encode().len());
    }

    #[test]
    fn session_ticket_decode_rejects_garbage() {
        assert!(SessionTicket::decode(&[]).is_err());
        // Mode byte outside 0/1.
        assert!(matches!(
            SessionTicket::decode(&[7, 2]),
            Err(CodecError::Corrupt("session mode not 0/1"))
        ));
        // Trailing bytes after a fresh ticket.
        assert!(matches!(
            SessionTicket::decode(&[7, 0, 9]),
            Err(CodecError::Corrupt("trailing bytes after session ticket"))
        ));
        // Resume without the alarm count.
        assert!(SessionTicket::decode(&[7, 1]).is_err());
    }

    #[test]
    fn acks_round_trip() {
        for n in [0u64, 1, 511, u64::from(u32::MAX) + 7] {
            assert_eq!(decode_ack(&encode_ack(n)).unwrap(), n);
        }
        assert!(decode_ack(&[]).is_err());
        let mut b = encode_ack(3);
        b.push(0);
        assert!(matches!(
            decode_ack(&b),
            Err(CodecError::Corrupt("trailing bytes after ack"))
        ));
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, HELLO, b"abc").unwrap();
        write_frame(&mut buf, END, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), Some((HELLO, b"abc".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((END, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        let mut huge = vec![EVENTS];
        put_uvarint(&mut huge, MAX_FRAME + 1);
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(CodecError::Oversized { .. })
        ));
    }

    #[test]
    fn checked_frames_round_trip_and_plain_mode_matches_classic() {
        // Plain mode: byte-identical to write_frame.
        let mut plain = Vec::new();
        write_frame(&mut plain, EVENTS, b"abc").unwrap();
        let mut fw = FrameWriter::new(Vec::new(), false);
        fw.write(EVENTS, b"abc").unwrap();
        assert_eq!(fw.get_mut().as_slice(), plain.as_slice());

        // Checked mode round-trips through a checked reader.
        let mut fw = FrameWriter::new(Vec::new(), true);
        fw.write(EVENTS, b"abc").unwrap();
        fw.write(END, b"").unwrap();
        let buf = std::mem::take(fw.get_mut());
        let mut fr = FrameReader::new(buf.as_slice(), true);
        assert_eq!(fr.read().unwrap(), Some((EVENTS, b"abc".to_vec())));
        assert_eq!(fr.read().unwrap(), Some((END, Vec::new())));
        assert_eq!(fr.read().unwrap(), None);
    }

    #[test]
    fn checked_reader_detects_corruption_duplication_and_truncation() {
        let mut fw = FrameWriter::new(Vec::new(), true);
        fw.write(EVENTS, b"payload").unwrap();
        let good = std::mem::take(fw.get_mut());

        // Flip one payload byte: checksum mismatch.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        let mut fr = FrameReader::new(bad.as_slice(), true);
        assert!(matches!(
            fr.read(),
            Err(CodecError::ChecksumMismatch { .. })
        ));

        // Duplicate the frame verbatim: the second copy carries the
        // index-0 checksum where index 1 is expected — the delta codec
        // would have decoded it into plausible garbage, the index binding
        // refuses it instead.
        let mut dup = good.clone();
        dup.extend_from_slice(&good);
        let mut fr = FrameReader::new(dup.as_slice(), true);
        assert!(fr.read().unwrap().is_some());
        assert!(matches!(
            fr.read(),
            Err(CodecError::ChecksumMismatch { .. })
        ));

        // Cut the checksum word short: clean truncation error.
        let cut = &good[..good.len() - 2];
        let mut fr = FrameReader::new(cut, true);
        assert!(matches!(fr.read(), Err(CodecError::Truncated(_))));
    }

    #[test]
    fn error_and_busy_frames_are_checksum_exempt() {
        let mut fw = FrameWriter::new(Vec::new(), true);
        fw.write(ERROR, b"nope").unwrap();
        fw.write(BUSY, b"shed").unwrap();
        fw.write(ALARMS, b"x").unwrap();
        let buf = std::mem::take(fw.get_mut());

        // The exempt frames parse with a *plain* reader…
        let mut plain = buf.as_slice();
        assert_eq!(
            read_frame(&mut plain).unwrap(),
            Some((ERROR, b"nope".to_vec()))
        );
        assert_eq!(
            read_frame(&mut plain).unwrap(),
            Some((BUSY, b"shed".to_vec()))
        );

        // …and a checked reader sees all three, with ALARMS carrying
        // frame index 0 (exempt frames do not advance the index).
        let mut fr = FrameReader::new(buf.as_slice(), true);
        assert_eq!(fr.read().unwrap(), Some((ERROR, b"nope".to_vec())));
        assert_eq!(fr.read().unwrap(), Some((BUSY, b"shed".to_vec())));
        assert_eq!(fr.read().unwrap(), Some((ALARMS, b"x".to_vec())));
    }

    #[test]
    fn hello_caps_peeks_without_decoding() {
        let small = sample_config();
        assert_eq!(hello_caps(&small.encode().unwrap()), 0);
        let wide = wide_config();
        assert_eq!(hello_caps(&wide.encode().unwrap()), CAP_WIDE_VERDICT);
        let checked = small.encode_with_caps(CAP_FRAME_CHECKSUM).unwrap();
        assert_eq!(hello_caps(&checked), CAP_FRAME_CHECKSUM);
        // Tolerant on garbage: no capabilities, never an error.
        assert_eq!(hello_caps(&[]), 0);
        assert_eq!(hello_caps(&[0xFF]), 0);
    }

    #[test]
    fn encode_with_caps_forces_v2_and_preserves_the_config() {
        let small = sample_config();
        // Zero extra caps: byte-identical to the classic encoding.
        assert_eq!(small.encode_with_caps(0).unwrap(), small.encode().unwrap());
        // An extra cap forces v2; the config still round-trips (the
        // checksum bit is unknown to decode() and ignored).
        let bytes = small.encode_with_caps(CAP_FRAME_CHECKSUM).unwrap();
        assert_eq!(bytes[0] as u64, PROTO_V2);
        assert_eq!(bytes[1] as u64, CAP_FRAME_CHECKSUM);
        assert_eq!(SessionConfig::decode(&bytes).unwrap(), small);
        // A wide config keeps its own caps alongside the extra one.
        let wide = wide_config();
        let bytes = wide.encode_with_caps(CAP_FRAME_CHECKSUM).unwrap();
        assert_eq!(bytes[1] as u64, CAP_WIDE_VERDICT | CAP_FRAME_CHECKSUM);
        assert_eq!(SessionConfig::decode(&bytes).unwrap(), wide);
    }
}
