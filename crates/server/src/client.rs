//! The client side of a streaming session: connect, negotiate, stream a
//! pre-captured event vector, and collect the online alarms + summary.
//!
//! Sending and receiving run on separate threads (events out, frames in),
//! so a long session can never deadlock on full TCP buffers in both
//! directions: alarms are consumed while events are still being written.

use crate::proto::{
    read_frame, write_frame, FrameReader, FrameWriter, SessionConfig, SessionTicket, Summary, ACK,
    ALARMS, BUSY, CAP_FRAME_CHECKSUM, END, ERROR, EVENTS, HELLO, SESSION, SUMMARY,
};
use fireguard_soc::Detection;
use fireguard_trace::codec::EventEncoder;
use fireguard_trace::{SimRng, TraceInst};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Events per EVENTS frame (amortizes framing without growing latency).
pub const DEFAULT_BATCH: usize = 512;

/// Everything a finished session produced.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Detections streamed online (ALARMS frames), in arrival order.
    pub alarms: Vec<Detection>,
    /// The final session summary.
    pub summary: Summary,
    /// Events streamed to the server.
    pub events_sent: u64,
    /// Wall-clock duration of the whole session.
    pub wall: Duration,
}

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or transport failure.
    Io(std::io::Error),
    /// A frame that would not decode.
    Codec(fireguard_trace::codec::CodecError),
    /// The server refused or aborted the session (ERROR frame).
    Server(String),
    /// The server violated the protocol (e.g. closed before SUMMARY).
    Protocol(String),
    /// The session config failed validation before anything was sent.
    Config(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Codec(e) => write!(f, "codec error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Config(m) => write!(f, "invalid session config: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<fireguard_trace::codec::CodecError> for ClientError {
    fn from(e: fireguard_trace::codec::CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// Runs one complete session against `addr`: HELLO, the full event
/// stream in `batch`-sized frames, END, then collects ALARMS until the
/// SUMMARY arrives.
///
/// # Errors
///
/// Any [`ClientError`]; an ERROR frame from the server maps to
/// [`ClientError::Server`].
pub fn run_session(
    addr: &str,
    cfg: &SessionConfig,
    events: Arc<Vec<TraceInst>>,
    batch: usize,
) -> Result<SessionOutcome, ClientError> {
    // Validate-and-encode before touching the network: a config the
    // server would refuse anyway never opens a connection.
    let hello = cfg.encode().map_err(ClientError::Config)?;

    let started = Instant::now();
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);

    let batch = batch.max(1);
    let events_sent = events.len() as u64;
    let sender = {
        let events = Arc::clone(&events);
        let stream = stream.try_clone()?;
        std::thread::spawn(move || -> Result<(), std::io::Error> {
            let mut w = BufWriter::new(stream);
            write_frame(&mut w, HELLO, &hello)?;
            let mut enc = EventEncoder::new();
            for chunk in events.chunks(batch) {
                write_frame(&mut w, EVENTS, &enc.encode_batch(chunk))?;
            }
            write_frame(&mut w, END, &[])?;
            w.flush()
        })
    };

    let mut alarms = Vec::new();
    let mut summary = None;
    let mut server_error = None;
    loop {
        match read_frame(&mut reader)? {
            Some((ALARMS, payload)) => alarms.extend(crate::proto::decode_alarms(&payload)?),
            Some((SUMMARY, payload)) => {
                summary = Some(Summary::decode(&payload)?);
                // An ERROR frame may still follow a partial summary; poll
                // one more frame so the caller learns the session broke.
                if let Some((ERROR, msg)) = read_frame(&mut reader)? {
                    server_error = Some(String::from_utf8_lossy(&msg).into_owned());
                }
                break;
            }
            Some((ERROR, msg)) => {
                server_error = Some(String::from_utf8_lossy(&msg).into_owned());
                break;
            }
            Some((BUSY, msg)) => {
                // Admission control said no — a clean, deliberate refusal
                // (a router under load, not a broken one).
                server_error = Some(String::from_utf8_lossy(&msg).into_owned());
                break;
            }
            Some((tag, _)) => {
                return Err(ClientError::Protocol(format!("unexpected frame tag {tag}")));
            }
            None => break,
        }
    }
    // The server may stop reading as soon as its commit target is reached,
    // so the sender can legitimately die on a broken pipe — only surface
    // its error if the session as a whole failed. A panicked sender is a
    // session error, not a client-process abort.
    let send_result = match sender.join() {
        Ok(r) => r,
        Err(_) => {
            return Err(ClientError::Protocol(
                "sender thread panicked mid-session".to_owned(),
            ));
        }
    };
    if let Some(msg) = server_error {
        return Err(ClientError::Server(msg));
    }
    let summary = match summary {
        Some(s) => s,
        None => {
            if let Err(e) = send_result {
                return Err(ClientError::Io(e));
            }
            return Err(ClientError::Protocol(
                "connection closed before SUMMARY".to_owned(),
            ));
        }
    };
    Ok(SessionOutcome {
        alarms,
        summary,
        events_sent,
        wall: started.elapsed(),
    })
}

// ---- routed (resumable) sessions -------------------------------------------

/// How a routed session identifies and protects itself.
#[derive(Debug, Clone, Copy)]
pub struct RoutedOptions {
    /// Fleet-unique session id (consistent-hash key at the router).
    pub session_id: u64,
    /// Events per EVENTS frame.
    pub batch: usize,
    /// Reconnect-and-resume attempts before giving up.
    pub max_reconnects: u32,
}

impl RoutedOptions {
    /// Defaults for `session_id`: [`DEFAULT_BATCH`], 8 reconnects.
    pub fn new(session_id: u64) -> Self {
        RoutedOptions {
            session_id,
            batch: DEFAULT_BATCH,
            max_reconnects: 8,
        }
    }
}

/// A finished routed session: the plain outcome plus how bumpy the ride
/// was.
#[derive(Debug, Clone)]
pub struct RoutedOutcome {
    /// The session outcome — alarm-for-alarm identical to what an
    /// uninterrupted direct session would have produced.
    pub outcome: SessionOutcome,
    /// Transport deaths survived by resuming (0 = clean run).
    pub reconnects: u32,
    /// Per-reconnect recovery latency: transport death to the resumed
    /// connection's ACK. One entry per *successful* resume; a resume that
    /// itself died extends the same gap rather than starting a new one.
    pub reconnect_latencies: Vec<Duration>,
}

/// One connection attempt's verdict.
enum Attempt {
    /// SUMMARY (and possibly a trailing ERROR) arrived — terminal.
    Finished(Summary, Option<String>),
    /// The transport died (or the session was momentarily busy); resume.
    Retry,
    /// Load-shed with a BUSY frame *before* the session registered; the
    /// next attempt must be a fresh open, not a resume.
    Shed,
    /// The server refused the session outright — terminal.
    Refused(String),
}

/// Capped exponential backoff with deterministic, seeded jitter: attempt
/// `n` sleeps a uniform draw from `[cap/2, cap]` where
/// `cap = min(5ms << n, 500ms)`. Seeding by `(session_id, attempt)` keeps
/// chaos runs reproducible while decorrelating concurrent sessions (no
/// thundering herd on a router restart).
fn reconnect_backoff(session_id: u64, attempt: u32) -> Duration {
    const BASE_MS: u64 = 5;
    const CAP_MS: u64 = 500;
    let cap = BASE_MS.checked_shl(attempt).unwrap_or(CAP_MS).min(CAP_MS);
    let mut rng =
        SimRng::seed_from_u64(session_id ^ (u64::from(attempt) << 32) ^ 0xBAC0_FF5E_0DE1_A75D);
    Duration::from_millis(rng.range_u64(cap / 2, cap + 1))
}

/// Runs one complete *resumable* session through a router: opens with a
/// [`SessionTicket`], streams events, and — when the transport dies
/// mid-session — reconnects and resumes from the router's last ACK,
/// replaying only the unacknowledged tail. The alarm stream is lossless
/// and duplicate-free across any number of reconnects (the resume ticket
/// reports how many alarms arrived, and the router re-sends the rest).
///
/// Requires a router peer: a plain [`serve`](crate::serve) answers the
/// SESSION frame with an ERROR.
///
/// # Errors
///
/// Any [`ClientError`]; transport failures surface only after
/// `max_reconnects` resumes also failed.
pub fn run_routed_session(
    addr: &str,
    cfg: &SessionConfig,
    events: Arc<Vec<TraceInst>>,
    opts: RoutedOptions,
) -> Result<RoutedOutcome, ClientError> {
    // Routed sessions always negotiate per-frame checksums: the wire
    // between client, router, and backend is exactly where failover and
    // resume make silent corruption most dangerous (a duplicated or
    // damaged delta batch decodes to *plausible* garbage).
    let hello = Arc::new(
        cfg.encode_with_caps(CAP_FRAME_CHECKSUM)
            .map_err(ClientError::Config)?,
    );
    let started = Instant::now();
    let batch = opts.batch.max(1);

    let mut alarms: Vec<Detection> = Vec::new();
    let mut reconnects = 0u32;
    let mut first = true;
    // Recovery-latency clock: set when a transport dies, cleared when a
    // resume's ACK lands — the gap is one reconnect latency sample.
    let mut disconnected_at: Option<Instant> = None;
    let mut reconnect_latencies: Vec<Duration> = Vec::new();
    loop {
        let mut resumed_at = None;
        let attempt = routed_attempt(
            addr,
            &hello,
            &events,
            opts.session_id,
            batch,
            first,
            &mut alarms,
            &mut resumed_at,
        );
        if let (Some(death), Some(ack)) = (disconnected_at, resumed_at) {
            reconnect_latencies.push(ack.saturating_duration_since(death));
            disconnected_at = None;
        }
        match attempt {
            Ok(Attempt::Finished(summary, trailing_error)) => {
                if let Some(msg) = trailing_error {
                    return Err(ClientError::Server(msg));
                }
                return Ok(RoutedOutcome {
                    outcome: SessionOutcome {
                        alarms,
                        summary,
                        events_sent: events.len() as u64,
                        wall: started.elapsed(),
                    },
                    reconnects,
                    reconnect_latencies,
                });
            }
            Ok(Attempt::Refused(msg)) => {
                // A resume the router does not recognize, with nothing
                // delivered yet, means the *registration* was lost on the
                // wire (the opening SESSION+HELLO never survived to the
                // router). Nothing observable happened: start over fresh.
                if !first && alarms.is_empty() && msg.starts_with("unknown session id") {
                    if reconnects >= opts.max_reconnects {
                        return Err(ClientError::Server(msg));
                    }
                    first = true;
                    reconnects += 1;
                    std::thread::sleep(reconnect_backoff(opts.session_id, reconnects));
                    continue;
                }
                return Err(ClientError::Server(msg));
            }
            Ok(Attempt::Shed) => {
                // BUSY arrives before the session registers, so the next
                // attempt must open fresh (`first` stays as it was).
                if reconnects >= opts.max_reconnects {
                    return Err(ClientError::Server(format!(
                        "session {} shed by admission control after {} attempts",
                        opts.session_id, reconnects
                    )));
                }
                reconnects += 1;
                std::thread::sleep(reconnect_backoff(opts.session_id, reconnects));
            }
            Ok(Attempt::Retry) => {
                first = false;
                if reconnects >= opts.max_reconnects {
                    return Err(ClientError::Protocol(format!(
                        "session {} gave up after {} reconnects",
                        opts.session_id, reconnects
                    )));
                }
                reconnects += 1;
                disconnected_at.get_or_insert_with(Instant::now);
                std::thread::sleep(reconnect_backoff(opts.session_id, reconnects));
            }
            Err(e) => {
                // Connect-level failures are retryable too (the router
                // may be briefly unreachable); protocol violations on an
                // open connection are not.
                first = false;
                if reconnects >= opts.max_reconnects {
                    return Err(e);
                }
                reconnects += 1;
                disconnected_at.get_or_insert_with(Instant::now);
                std::thread::sleep(reconnect_backoff(opts.session_id, reconnects));
            }
        }
    }
}

/// One connection's worth of a routed session: ticket, (re)stream, and
/// collect frames until SUMMARY or transport death. `alarms` accumulates
/// across attempts — its length doubles as the resume ticket's
/// `alarms_received`.
#[allow(clippy::too_many_arguments)]
fn routed_attempt(
    addr: &str,
    hello: &Arc<Vec<u8>>,
    events: &Arc<Vec<TraceInst>>,
    session_id: u64,
    batch: usize,
    first: bool,
    alarms: &mut Vec<Detection>,
    resumed_at: &mut Option<Instant>,
) -> Result<Attempt, ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // Everything the router sends after the handshake is checksummed
    // (the routed HELLO always carries CAP_FRAME_CHECKSUM); ERROR and
    // BUSY are exempt by protocol, so pre-handshake refusals still parse.
    let mut reader = FrameReader::new(BufReader::new(stream.try_clone()?), true);

    let ticket = SessionTicket {
        id: session_id,
        resume: !first,
        alarms_received: alarms.len() as u64,
    };

    // Where the (re)play starts: a fresh session streams everything; a
    // resume first hears the router's ACK for what it already buffered.
    let start = if first {
        let mut w = BufWriter::new(stream.try_clone()?);
        write_frame(&mut w, SESSION, &ticket.encode())?;
        write_frame(&mut w, HELLO, hello)?;
        w.flush()?;
        0usize
    } else {
        {
            let mut w = BufWriter::new(stream.try_clone()?);
            write_frame(&mut w, SESSION, &ticket.encode())?;
            w.flush()?;
        }
        match reader.read() {
            Ok(Some((ACK, payload))) => {
                *resumed_at = Some(Instant::now());
                crate::proto::decode_ack(&payload)? as usize
            }
            Ok(Some((ERROR, msg))) => {
                let msg = String::from_utf8_lossy(&msg).into_owned();
                // A ghost driver may still be letting go; that's a
                // timing accident, not a refusal.
                if msg.starts_with("session busy") {
                    return Ok(Attempt::Retry);
                }
                return Ok(Attempt::Refused(msg));
            }
            Ok(Some((BUSY, _))) => return Ok(Attempt::Shed),
            Ok(Some((tag, _))) => {
                return Err(ClientError::Protocol(format!(
                    "expected ACK on resume, got frame tag {tag}"
                )));
            }
            Ok(None) | Err(_) => return Ok(Attempt::Retry),
        }
    };

    // The write side is shared with the sender thread: the terminal
    // delivery ACK (below) must ride the *same* checked writer so the
    // per-connection frame index stays continuous.
    let writer = Arc::new(Mutex::new(FrameWriter::new(
        BufWriter::new(stream.try_clone()?),
        true,
    )));
    let sender = {
        let events = Arc::clone(events);
        let writer = Arc::clone(&writer);
        std::thread::spawn(move || -> Result<(), std::io::Error> {
            // The handshake frames (SESSION, HELLO) were plain; the event
            // stream is checksummed from its first frame.
            let mut enc = EventEncoder::new();
            for chunk in events[start.min(events.len())..].chunks(batch) {
                let bytes = enc.encode_batch(chunk);
                lock_writer(&writer).write(EVENTS, &bytes)?;
            }
            let mut w = lock_writer(&writer);
            w.write(END, &[])?;
            w.flush()
        })
    };

    let verdict = loop {
        match reader.read() {
            Ok(Some((ALARMS, payload))) => alarms.extend(crate::proto::decode_alarms(&payload)?),
            Ok(Some((ACK, payload))) => {
                // Progress bookkeeping only; correctness needs no action.
                let _ = crate::proto::decode_ack(&payload)?;
            }
            Ok(Some((SUMMARY, payload))) => {
                let summary = Summary::decode(&payload)?;
                let trailing = match reader.read() {
                    Ok(Some((ERROR, msg))) => Some(String::from_utf8_lossy(&msg).into_owned()),
                    _ => None,
                };
                break Attempt::Finished(summary, trailing);
            }
            Ok(Some((ERROR, msg))) => {
                break Attempt::Refused(String::from_utf8_lossy(&msg).into_owned());
            }
            Ok(Some((BUSY, _))) => break Attempt::Shed,
            Ok(Some((tag, _))) => {
                let _ = stream.shutdown(std::net::Shutdown::Both);
                let _ = sender.join();
                return Err(ClientError::Protocol(format!("unexpected frame tag {tag}")));
            }
            // EOF or a torn frame (including a checksum mismatch): the
            // transport died — or lied — mid-session.
            Ok(None) | Err(_) => break Attempt::Retry,
        }
    };
    if matches!(verdict, Attempt::Finished(..)) {
        // Terminal delivery ACK: through a faulting wire, the router's
        // successful SUMMARY write proves nothing — it holds the session
        // resumable until this frame confirms the verdict arrived.
        let mut w = lock_writer(&writer);
        let _ = w.write(ACK, &[]).and_then(|()| w.flush());
    }
    // Unblock and collect the sender regardless of how the read side
    // ended; its errors don't matter — the reader's verdict decides.
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = sender.join();
    Ok(verdict)
}

/// Poison-recovering writer lock: a panicked sender must not wedge the
/// session teardown.
fn lock_writer(
    w: &Mutex<FrameWriter<BufWriter<TcpStream>>>,
) -> std::sync::MutexGuard<'_, FrameWriter<BufWriter<TcpStream>>> {
    w.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
