//! The client side of a streaming session: connect, negotiate, stream a
//! pre-captured event vector, and collect the online alarms + summary.
//!
//! Sending and receiving run on separate threads (events out, frames in),
//! so a long session can never deadlock on full TCP buffers in both
//! directions: alarms are consumed while events are still being written.

use crate::proto::{
    read_frame, write_frame, SessionConfig, Summary, ALARMS, END, ERROR, EVENTS, HELLO, SUMMARY,
};
use fireguard_soc::Detection;
use fireguard_trace::codec::EventEncoder;
use fireguard_trace::TraceInst;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Events per EVENTS frame (amortizes framing without growing latency).
pub const DEFAULT_BATCH: usize = 512;

/// Everything a finished session produced.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Detections streamed online (ALARMS frames), in arrival order.
    pub alarms: Vec<Detection>,
    /// The final session summary.
    pub summary: Summary,
    /// Events streamed to the server.
    pub events_sent: u64,
    /// Wall-clock duration of the whole session.
    pub wall: Duration,
}

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or transport failure.
    Io(std::io::Error),
    /// A frame that would not decode.
    Codec(fireguard_trace::codec::CodecError),
    /// The server refused or aborted the session (ERROR frame).
    Server(String),
    /// The server violated the protocol (e.g. closed before SUMMARY).
    Protocol(String),
    /// The session config failed validation before anything was sent.
    Config(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Codec(e) => write!(f, "codec error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Config(m) => write!(f, "invalid session config: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<fireguard_trace::codec::CodecError> for ClientError {
    fn from(e: fireguard_trace::codec::CodecError) -> Self {
        ClientError::Codec(e)
    }
}

/// Runs one complete session against `addr`: HELLO, the full event
/// stream in `batch`-sized frames, END, then collects ALARMS until the
/// SUMMARY arrives.
///
/// # Errors
///
/// Any [`ClientError`]; an ERROR frame from the server maps to
/// [`ClientError::Server`].
pub fn run_session(
    addr: &str,
    cfg: &SessionConfig,
    events: Arc<Vec<TraceInst>>,
    batch: usize,
) -> Result<SessionOutcome, ClientError> {
    // Validate-and-encode before touching the network: a config the
    // server would refuse anyway never opens a connection.
    let hello = cfg.encode().map_err(ClientError::Config)?;

    let started = Instant::now();
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);

    let batch = batch.max(1);
    let events_sent = events.len() as u64;
    let sender = {
        let events = Arc::clone(&events);
        let stream = stream.try_clone()?;
        std::thread::spawn(move || -> Result<(), std::io::Error> {
            let mut w = BufWriter::new(stream);
            write_frame(&mut w, HELLO, &hello)?;
            let mut enc = EventEncoder::new();
            for chunk in events.chunks(batch) {
                write_frame(&mut w, EVENTS, &enc.encode_batch(chunk))?;
            }
            write_frame(&mut w, END, &[])?;
            w.flush()
        })
    };

    let mut alarms = Vec::new();
    let mut summary = None;
    let mut server_error = None;
    loop {
        match read_frame(&mut reader)? {
            Some((ALARMS, payload)) => alarms.extend(crate::proto::decode_alarms(&payload)?),
            Some((SUMMARY, payload)) => {
                summary = Some(Summary::decode(&payload)?);
                // An ERROR frame may still follow a partial summary; poll
                // one more frame so the caller learns the session broke.
                if let Some((ERROR, msg)) = read_frame(&mut reader)? {
                    server_error = Some(String::from_utf8_lossy(&msg).into_owned());
                }
                break;
            }
            Some((ERROR, msg)) => {
                server_error = Some(String::from_utf8_lossy(&msg).into_owned());
                break;
            }
            Some((tag, _)) => {
                return Err(ClientError::Protocol(format!("unexpected frame tag {tag}")));
            }
            None => break,
        }
    }
    // The server may stop reading as soon as its commit target is reached,
    // so the sender can legitimately die on a broken pipe — only surface
    // its error if the session as a whole failed. A panicked sender is a
    // session error, not a client-process abort.
    let send_result = match sender.join() {
        Ok(r) => r,
        Err(_) => {
            return Err(ClientError::Protocol(
                "sender thread panicked mid-session".to_owned(),
            ));
        }
    };
    if let Some(msg) = server_error {
        return Err(ClientError::Server(msg));
    }
    let summary = match summary {
        Some(s) => s,
        None => {
            if let Err(e) = send_result {
                return Err(ClientError::Io(e));
            }
            return Err(ClientError::Protocol(
                "connection closed before SUMMARY".to_owned(),
            ));
        }
    };
    Ok(SessionOutcome {
        alarms,
        summary,
        events_sent,
        wall: started.elapsed(),
    })
}
