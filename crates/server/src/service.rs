//! The threaded TCP service: accept loop, session worker pool, and the
//! per-session analysis pipeline.
//!
//! # Session lifecycle
//!
//! ```text
//! client                                server worker
//!   ── HELLO {SessionConfig} ──────────▶  validate, build FireGuardSystem
//!   ── EVENTS batch ───────────────────▶  decode → bounded event queue
//!   ── EVENTS batch ───────────────────▶        │ (core pulls on demand)
//!   ◀─────────────────────── ALARMS ──  periodic drain of kernel alarms
//!   ── END ────────────────────────────▶  stream exhausts, backlog drains
//!   ◀─────────────────────── SUMMARY ──  final RunResult scalars
//! ```
//!
//! # Backpressure
//!
//! The analysis is *pull-driven*: the simulated core fetches events from a
//! bounded per-session queue that is refilled one frame at a time from the
//! socket. When analysis falls behind, the server simply stops reading, the
//! kernel TCP window closes, and the client's sender blocks — commit-stage
//! backpressure reproduced end-to-end over the wire. In the reverse
//! direction, ALARMS writes block when a slow client stops reading
//! responses, which stalls analysis and therefore also stops event intake;
//! a slow reader throttles exactly its own session.

use crate::metrics::{serve_metrics, MetricsHandle};
use crate::proto::{
    self, hello_caps, FrameReader, FrameWriter, SessionConfig, Summary, ALARMS, CAP_FRAME_CHECKSUM,
    END, ERROR, EVENTS, HELLO, SUMMARY,
};
use fireguard_soc::{try_build_system, Detection};
use fireguard_telemetry::{FleetCounters, Sample, TraceSink};
use fireguard_trace::codec::{EventDecoder, MAX_BATCH_EVENTS};
use fireguard_trace::TraceInst;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often (in fast cycles) a session drains kernel alarms into ALARMS
/// frames. Small enough for online delivery, large enough to amortize the
/// frame overhead.
pub const OBSERVE_EVERY: u64 = 4096;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind (e.g. `127.0.0.1:4780`; port 0 = ephemeral).
    pub addr: String,
    /// Session worker threads (concurrent sessions).
    pub workers: usize,
    /// Accept at most this many sessions, then stop (None = serve forever).
    pub max_sessions: Option<u64>,
    /// Alarm-drain period in fast cycles.
    pub observe_every: u64,
    /// Optional admin metrics endpoint (`--metrics-addr`; port 0 =
    /// ephemeral). Serves the fleet counter snapshot; see
    /// [`crate::metrics`].
    pub metrics_addr: Option<String>,
    /// Optional structured span sink (`--trace-out`); session lifecycle
    /// events are emitted here.
    pub trace: Option<Arc<TraceSink>>,
    /// Per-read silence budget (`--idle-timeout`): a session whose
    /// transport goes this long without producing a byte is reaped with
    /// an ERROR frame — a slowloris client pins no worker.
    pub idle_timeout: Duration,
    /// In-session stage-pipeline width (`--pipeline`; 1 = serial, 0 =
    /// auto-size to the host). Detections, summaries, and counters are
    /// bit-identical at every width — this is a wall-clock knob only.
    pub pipeline: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:4780".to_owned(),
            workers: fireguard_soc::default_workers(),
            max_sessions: None,
            observe_every: OBSERVE_EVERY,
            metrics_addr: None,
            trace: None,
            idle_timeout: Duration::from_secs(30),
            pipeline: 1,
        }
    }
}

/// Renders a [`FleetCounters`] snapshot with the fleet-standard labels:
/// registry canonical kernel names (wire-id indexed) and instruction
/// class names. Both the serve and router metrics endpoints expose
/// exactly this, so `fireguard stats` can aggregate across tiers.
pub fn fleet_samples(fleet: &FleetCounters) -> Vec<Sample> {
    let kernel_names = fireguard_soc::canonical_names();
    let class_names: Vec<&str> = fireguard_trace::InstClass::ALL
        .iter()
        .map(|c| c.name())
        .collect();
    fleet.samples(&kernel_names, &class_names)
}

/// A running service: the accept thread plus its session worker pool.
///
/// Obtained from [`serve`]; the service runs until [`ServerHandle::join`]
/// observes the session budget exhausting, or [`ServerHandle::shutdown`]
/// is called.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    sessions_served: Arc<AtomicU64>,
    live: LiveSessions,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    fleet: Arc<FleetCounters>,
    metrics: Option<MetricsHandle>,
}

/// Duplicated handles of every in-flight session socket, keyed by an
/// accept-order id, so [`ServerHandle::abort`] can sever live sessions.
type LiveSessions = Arc<Mutex<HashMap<u64, TcpStream>>>;

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Sessions fully handled so far.
    pub fn sessions_served(&self) -> u64 {
        self.sessions_served.load(Ordering::Relaxed)
    }

    /// The live fleet counters this service folds session telemetry into.
    pub fn counters(&self) -> &Arc<FleetCounters> {
        &self.fleet
    }

    /// The bound metrics endpoint address, when one was requested.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsHandle::local_addr)
    }

    /// Blocks until the service stops accepting (session budget reached or
    /// [`ServerHandle::shutdown`] from another handle clone-less context)
    /// and every in-flight session finishes.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(m) = self.metrics.take() {
            m.shutdown();
        }
    }

    /// Requests a graceful stop (no new sessions; in-flight sessions
    /// finish) and waits for it.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        self.join();
    }

    /// Kills the service *abruptly*: in-flight sessions have their sockets
    /// severed mid-stream instead of finishing. This is the crash lever
    /// the chaos harness pulls — from a peer's point of view an aborted
    /// backend is indistinguishable from a process that died.
    pub fn abort(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        sever_live(&self.live);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // A connection that was queued but not yet picked up when we
        // severed the map would still be served normally; keep severing
        // until every worker has exited so the kill is decisive.
        while self.workers.iter().any(|h| !h.is_finished()) {
            sever_live(&self.live);
            std::thread::sleep(Duration::from_millis(2));
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(m) = self.metrics.take() {
            m.shutdown();
        }
    }
}

/// Poison-recovering lock: a worker that panicked mid-session must not
/// take the rest of the serve tier down with it — the guarded state
/// (live-session map, connection queue, error slot) stays coherent
/// because every critical section is a single insert/remove/take.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn sever_live(live: &LiveSessions) {
    let streams: Vec<TcpStream> = {
        let mut map = lock_unpoisoned(live);
        map.drain().map(|(_, s)| s).collect()
    };
    for s in streams {
        let _ = s.shutdown(Shutdown::Both);
    }
}

/// Binds `opts.addr` and spawns the accept loop plus `opts.workers`
/// session workers — a hand-rolled pool in the style of
/// [`fireguard_soc::sweep`], except the jobs are *live sessions* arriving
/// over TCP rather than a pre-expanded grid.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(opts: ServeOptions) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&opts.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let stop = Arc::new(AtomicBool::new(false));
    let sessions_served = Arc::new(AtomicU64::new(0));
    let live: LiveSessions = Arc::new(Mutex::new(HashMap::new()));
    let next_session_id = Arc::new(AtomicU64::new(0));
    let fleet = Arc::new(FleetCounters::default());
    let metrics = match &opts.metrics_addr {
        Some(addr) => {
            let fleet = Arc::clone(&fleet);
            Some(serve_metrics(
                addr,
                Arc::new(move || fleet_samples(&fleet)),
            )?)
        }
        None => None,
    };
    let workers = opts.workers.max(1);
    // The connection queue is bounded at the worker count: when every
    // worker is busy and the queue is full, accept itself back-pressures.
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers);
    let rx = Arc::new(Mutex::new(rx));

    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let served = Arc::clone(&sessions_served);
            let live = Arc::clone(&live);
            let next_id = Arc::clone(&next_session_id);
            let observe_every = opts.observe_every;
            let fleet = Arc::clone(&fleet);
            let trace = opts.trace.clone();
            let idle_timeout = opts.idle_timeout.max(Duration::from_millis(10));
            let pipeline = opts.pipeline;
            std::thread::spawn(move || loop {
                let conn = { lock_unpoisoned(&rx).recv() };
                match conn {
                    Ok(stream) => {
                        // Register a duplicated handle so `abort` can sever
                        // this session while it runs.
                        let id = next_id.fetch_add(1, Ordering::Relaxed);
                        if let Ok(dup) = stream.try_clone() {
                            lock_unpoisoned(&live).insert(id, dup);
                        }
                        handle_session(
                            stream,
                            observe_every,
                            idle_timeout,
                            id,
                            pipeline,
                            &fleet,
                            trace.as_deref(),
                        );
                        lock_unpoisoned(&live).remove(&id);
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => break, // accept loop is gone: drain complete
                }
            })
        })
        .collect();

    let accept = {
        let stop = Arc::clone(&stop);
        let max = opts.max_sessions;
        std::thread::spawn(move || {
            let mut accepted = 0u64;
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Some(max) = max {
                    if accepted >= max {
                        break;
                    }
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        accepted += 1;
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            // Dropping `tx` here lets the workers drain the queue and exit.
        })
    };

    Ok(ServerHandle {
        local_addr,
        stop,
        sessions_served,
        live,
        accept: Some(accept),
        workers: worker_handles,
        fleet,
        metrics,
    })
}

/// The bounded, pull-driven event source for one session.
///
/// `next()` refills from the socket one EVENTS frame at a time, so the
/// in-memory queue never exceeds one decoded batch ([`MAX_BATCH_EVENTS`]);
/// everything further back sits in the kernel socket buffer or, once that
/// fills, blocks the client — that *is* the backpressure.
struct SocketEvents {
    reader: FrameReader<BufReader<TcpStream>>,
    decoder: EventDecoder,
    pending: VecDeque<TraceInst>,
    done: bool,
    error: Arc<Mutex<Option<String>>>,
}

impl SocketEvents {
    fn fail(&mut self, msg: String) {
        *lock_unpoisoned(&self.error) = Some(msg);
        self.done = true;
    }
}

impl Iterator for SocketEvents {
    type Item = TraceInst;

    fn next(&mut self) -> Option<TraceInst> {
        loop {
            if let Some(t) = self.pending.pop_front() {
                return Some(t);
            }
            if self.done {
                return None;
            }
            match self.reader.read() {
                Ok(Some((EVENTS, payload))) => match self.decoder.decode_batch(&payload) {
                    Ok(batch) => self.pending.extend(batch),
                    Err(e) => self.fail(format!("bad EVENTS frame: {e}")),
                },
                Ok(Some((END, _))) => self.done = true,
                Ok(Some((tag, _))) => self.fail(format!("unexpected frame tag {tag}")),
                Ok(None) => self.fail("connection closed mid-stream".to_owned()),
                Err(e) => self.fail(format!("frame error: {e}")),
            }
        }
    }
}

fn send_error<W: Write>(w: &mut FrameWriter<W>, msg: &str) {
    let _ = w.write(ERROR, msg.as_bytes());
    let _ = w.flush();
}

/// Runs one complete session on the calling worker thread. All failures
/// are answered with a best-effort ERROR frame; none can take the service
/// down.
fn handle_session(
    stream: TcpStream,
    observe_every: u64,
    idle_timeout: Duration,
    session_id: u64,
    pipeline: u32,
    fleet: &FleetCounters,
    trace: Option<&TraceSink>,
) {
    let _ = stream.set_nodelay(true);
    // A wedged client (no frames, no close, a stalled half-frame) must not
    // pin a worker forever: `idle_timeout` of silence ends the session
    // with an ERROR frame.
    let _ = stream.set_read_timeout(Some(idle_timeout));
    let reader = match stream.try_clone() {
        Ok(s) => FrameReader::new(BufReader::new(s), false),
        Err(_) => return,
    };
    let drain = stream.try_clone();
    let mut writer = FrameWriter::new(BufWriter::new(stream), false);
    session_inner(
        reader,
        &mut writer,
        observe_every,
        session_id,
        pipeline,
        fleet,
        trace,
    );
    let _ = writer.flush();
    // The session may not have consumed the client's whole stream (the
    // capture margin past the commit target stays unread). Closing with
    // unread bytes in the receive buffer raises an RST that can destroy
    // the in-flight SUMMARY, so: half-close our write side (the client's
    // next read sees clean EOF and closes), then drain the remaining
    // client bytes to EOF. Bounded by the read timeout and a byte cap so
    // a hostile trickler cannot hold the worker.
    if let Ok(mut d) = drain {
        let _ = d.shutdown(std::net::Shutdown::Write);
        // The drain only has to outlive the client's close-after-SUMMARY;
        // a few seconds of silence means the peer is gone or hostile
        // either way.
        let _ = d.set_read_timeout(Some(idle_timeout.min(Duration::from_secs(5))));
        let mut buf = [0u8; 8192];
        let mut budget: u64 = 64 << 20;
        loop {
            match std::io::Read::read(&mut d, &mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    budget = budget.saturating_sub(n as u64);
                    if budget == 0 {
                        break;
                    }
                }
            }
        }
    }
}

fn session_inner(
    mut reader: FrameReader<BufReader<TcpStream>>,
    writer: &mut FrameWriter<BufWriter<TcpStream>>,
    observe_every: u64,
    session_id: u64,
    pipeline: u32,
    fleet: &FleetCounters,
    trace: Option<&TraceSink>,
) {
    let hello = match reader.read() {
        Ok(Some((HELLO, payload))) => payload,
        Ok(Some((tag, _))) => {
            return send_error(writer, &format!("expected HELLO, got frame tag {tag}"));
        }
        Ok(None) => return,
        Err(e) => return send_error(writer, &format!("bad first frame: {e}")),
    };
    let cfg = match SessionConfig::decode(&hello) {
        Ok(cfg) => cfg,
        Err(e) => return send_error(writer, &format!("bad HELLO: {e}")),
    };
    if let Err(msg) = cfg.validate() {
        return send_error(writer, &format!("refused session: {msg}"));
    }
    // The HELLO is plain; every frame after it speaks whatever integrity
    // framing the client's capability bits asked for.
    let checked = hello_caps(&hello) & CAP_FRAME_CHECKSUM != 0;
    reader.set_checked(checked);
    writer.set_checked(checked);
    // From here on the session counts: a decoded, validated HELLO started
    // it, and every exit path below is either ok or failed.
    fleet.sessions_started.fetch_add(1, Ordering::Relaxed);
    if let Some(t) = trace {
        t.emit(
            "session.hello",
            Some(session_id),
            vec![
                ("workload", cfg.workload.as_str().into()),
                ("insts", cfg.insts.into()),
                ("kernels", (cfg.kernels.len() as u64).into()),
            ],
        );
    }
    let fail = |msg: &str| {
        fleet.sessions_failed.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = trace {
            t.emit(
                "session.error",
                Some(session_id),
                vec![("error", msg.into())],
            );
        }
    };

    let error = Arc::new(Mutex::new(None));
    let events = SocketEvents {
        reader,
        decoder: EventDecoder::new(),
        pending: VecDeque::with_capacity(MAX_BATCH_EVENTS as usize),
        done: false,
        error: Arc::clone(&error),
    };

    let exp = cfg.to_experiment().pipeline(pipeline);
    // validate() already bounds the config, but the constructor's own
    // capacity check is the final authority — surface its refusal as an
    // ERROR frame too, never a worker panic. The socket source is Send,
    // so a `--pipeline` width beyond 1 runs this session's gen/judge
    // stages on worker threads — same bytes out either way.
    let built = if exp.pipeline == 1 {
        try_build_system(&exp, Box::new(events))
    } else {
        fireguard_soc::try_build_system_send(&exp, Box::new(events))
    };
    let mut sys = match built {
        Ok(sys) => sys,
        Err(e) => {
            let msg = format!("refused session: {e}");
            fail(&msg);
            return send_error(writer, &msg);
        }
    };
    let mut write_err = false;
    let result = sys.run_insts_observed(
        cfg.insts,
        cfg.baseline_cycles,
        observe_every,
        &mut |batch: &[Detection]| {
            if !write_err {
                let ok = writer
                    .write(ALARMS, &proto::encode_alarms(batch))
                    .and_then(|()| writer.flush())
                    .is_ok();
                write_err = !ok;
            }
            if let Some(t) = trace {
                t.emit(
                    "session.alarms",
                    Some(session_id),
                    vec![("count", (batch.len() as u64).into())],
                );
            }
        },
    );

    // Whatever happens next (clean finish, stream error, short stream),
    // the engine ran: fold its counters into the fleet aggregate now.
    fleet.events.fetch_add(result.committed, Ordering::Relaxed);
    fleet
        .alarms
        .fetch_add(result.detections.len() as u64, Ordering::Relaxed);
    let slot_wire: Vec<(usize, u8)> = sys
        .kernel_slots()
        .iter()
        .map(|&(slot, id)| (slot, id.wire()))
        .collect();
    let counters = sys.telemetry();
    fleet.fold_session(&counters, &slot_wire);
    // Every SUMMARY (clean, partial, or broken) carries the session's
    // pipeline backpressure tail so loadgen can histogram stage stalls.
    let summary = Summary::from_result(&result).with_pipeline_counters(&counters);

    let stream_error = lock_unpoisoned(&error).take();
    if let Some(msg) = stream_error {
        // The stream broke before the commit target: report what we had,
        // then the error, so the client knows the summary is partial.
        let _ = writer.write(SUMMARY, &summary.encode());
        let msg = format!("stream error: {msg}");
        fail(&msg);
        return send_error(writer, &msg);
    }
    if result.committed < cfg.insts {
        // A clean END, but short of the negotiated commit budget: the
        // summary is partial and the client must know.
        let _ = writer.write(SUMMARY, &summary.encode());
        let msg = format!(
            "stream ended after {} of {} instructions",
            result.committed, cfg.insts
        );
        fail(&msg);
        return send_error(writer, &msg);
    }
    let _ = writer.write(SUMMARY, &summary.encode());
    fleet.sessions_ok.fetch_add(1, Ordering::Relaxed);
    if let Some(t) = trace {
        t.emit(
            "session.summary",
            Some(session_id),
            vec![
                ("committed", result.committed.into()),
                ("detections", (result.detections.len() as u64).into()),
                ("slowdown", result.slowdown.into()),
            ],
        );
    }
}
