//! Router-tier integration tests: routed == direct == offline parity
//! across every workload, transparent protocol passthrough, session
//! resume under injected transport faults, and fleet administration
//! (drain/restore).

use fireguard_server::chaos::detection_keys;
use fireguard_server::proto::{self, SESSION};
use fireguard_server::{
    route, run_routed_session, run_session, serve, BackendMode, ClientError, RoutedOptions,
    RouterOptions, ServeOptions, SessionConfig,
};
use fireguard_soc::{baseline_cycles, capture_events, run_fireguard, ExperimentConfig, KernelId};
use fireguard_trace::{AttackKind, AttackPlan};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;

fn router_opts() -> RouterOptions {
    RouterOptions {
        backends: BackendMode::Spawn(2),
        backend_workers: 2,
        observe_every: 1024,
        ..RouterOptions::default()
    }
}

fn attack_experiment(workload: &str, insts: u64) -> ExperimentConfig {
    let plan = AttackPlan::campaign(
        &[AttackKind::RetHijack],
        6,
        insts / 10,
        insts.saturating_sub(insts / 5),
        3,
    );
    ExperimentConfig::new(workload)
        .kernel(KernelId::SHADOW_STACK, 4)
        .insts(insts)
        .attacks(plan)
}

/// Per-workload alarm floors for `attack_experiment(w, 5_000)`, measured
/// against the offline engine. Detection is deterministic, so the exact
/// counts are stable: blackscholes and streamcluster stay genuinely
/// silent — their campaign windows land where no return hijack commits —
/// and are pinned at 0; every other workload must reach its measured
/// count. A drift here is a deliberate detection-behavior change, never
/// an accident.
fn alarm_floor(workload: &str) -> usize {
    match workload {
        "blackscholes" => 0,
        "bodytrack" => 4,
        "dedup" => 6,
        "ferret" => 1,
        "fluidanimate" => 4,
        "freqmine" => 4,
        "streamcluster" => 0,
        "swaptions" => 3,
        "x264" => 2,
        other => panic!("no alarm floor recorded for workload {other}"),
    }
}

/// The tentpole parity property over the whole workload suite: for every
/// workload (each with an attack campaign so alarms actually flow), a
/// session routed through the fleet front-end produces detection sets
/// and summaries bit-identical to a direct `serve` session, which in
/// turn is bit-identical to the offline engine. One router (2 spawned
/// backends) and one direct serve live for the whole sweep, so sessions
/// also exercise backend reuse and consistent-hash spread.
#[test]
fn routed_matches_direct_and_offline_for_every_workload() {
    let router = route(router_opts()).expect("router starts");
    let direct = serve(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        observe_every: 1024,
        ..ServeOptions::default()
    })
    .expect("serve starts");
    let routed_addr = router.local_addr().to_string();
    let direct_addr = direct.local_addr().to_string();

    let mut alarmed = 0usize;
    for (i, workload) in fireguard_soc::experiments::workloads().iter().enumerate() {
        let cfg = attack_experiment(workload, 5_000);
        let offline = run_fireguard(&cfg);
        let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
        let events = Arc::new(capture_events(&cfg));
        let session = SessionConfig::from_experiment(&cfg, base);

        let d = run_session(&direct_addr, &session, Arc::clone(&events), 512)
            .unwrap_or_else(|e| panic!("{workload}: direct session failed: {e}"));
        // Anonymous passthrough: the stock client, unchanged, through the
        // router.
        let r = run_session(&routed_addr, &session, Arc::clone(&events), 512)
            .unwrap_or_else(|e| panic!("{workload}: routed session failed: {e}"));
        // Ticketed: the resumable protocol, no faults injected.
        let t = run_routed_session(
            &routed_addr,
            &session,
            Arc::clone(&events),
            RoutedOptions::new(1000 + i as u64),
        )
        .unwrap_or_else(|e| panic!("{workload}: ticketed session failed: {e}"));
        assert_eq!(t.reconnects, 0, "{workload}: no faults, no reconnects");

        let offline_keys = detection_keys(&offline.detections);
        for (label, out) in [("direct", &d), ("routed", &r), ("ticketed", &t.outcome)] {
            assert_eq!(
                detection_keys(&out.alarms),
                offline_keys,
                "{workload}: {label} detections diverge from offline"
            );
            assert_eq!(
                out.summary.committed, offline.committed,
                "{workload} {label}"
            );
            assert_eq!(out.summary.cycles, offline.cycles, "{workload} {label}");
            assert_eq!(out.summary.packets, offline.packets, "{workload} {label}");
            assert_eq!(
                out.summary.slowdown.to_bits(),
                offline.slowdown.to_bits(),
                "{workload} {label}"
            );
            assert_eq!(
                out.summary.detections as usize,
                offline.detections.len(),
                "{workload} {label}"
            );
        }
        let floor = alarm_floor(workload);
        if floor == 0 {
            // Pinned silence: these campaigns genuinely raise nothing at
            // this scale, so any alarm is a behavior change to explain.
            assert!(
                d.alarms.is_empty(),
                "{workload}: expected a silent campaign, got {} alarms",
                d.alarms.len()
            );
        } else {
            assert!(
                d.alarms.len() >= floor,
                "{workload}: only {} alarms, floor is {floor}",
                d.alarms.len()
            );
            alarmed += 1;
        }
    }
    assert_eq!(alarmed, 7, "alarm-floor table drifted from the suite");
    direct.shutdown();
    router.shutdown();
}

/// Injected client-transport faults (the router severs the client link
/// after every 2 ACKs) force repeated resumes; the final alarm stream
/// must still be lossless and duplicate-free, bit-identical to offline.
#[test]
fn resume_survives_injected_transport_faults() {
    let cfg = attack_experiment("ferret", 12_000);
    let offline = run_fireguard(&cfg);
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let events = Arc::new(capture_events(&cfg));
    let session = SessionConfig::from_experiment(&cfg, base);

    let router = route(RouterOptions {
        drop_client_after_acks: Some(2),
        ..router_opts()
    })
    .expect("router starts");
    let addr = router.local_addr().to_string();
    let out = run_routed_session(
        &addr,
        &session,
        Arc::clone(&events),
        RoutedOptions {
            max_reconnects: 64,
            ..RoutedOptions::new(7)
        },
    )
    .expect("session survives the faults");
    assert!(
        out.reconnects > 0,
        "the fault injection must actually trigger resumes"
    );
    assert_eq!(router.resumes(), u64::from(out.reconnects));
    assert_eq!(
        detection_keys(&out.outcome.alarms),
        detection_keys(&offline.detections),
        "alarms after resumes must be lossless and duplicate-free"
    );
    assert_eq!(out.outcome.summary.committed, offline.committed);
    router.shutdown();
}

/// Draining a backend routes new sessions around it; restoring it brings
/// it back. Sessions succeed throughout.
#[test]
fn drain_and_restore_route_around_a_backend() {
    let cfg = attack_experiment("swaptions", 4_000);
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let events = Arc::new(capture_events(&cfg));
    let session = SessionConfig::from_experiment(&cfg, base);

    let router = route(router_opts()).expect("router starts");
    let addr = router.local_addr().to_string();
    assert!(router.drain_backend(0), "slot 0 was up");
    assert!(!router.drain_backend(0), "already draining");
    for i in 0..4u64 {
        let out = run_routed_session(
            &addr,
            &session,
            Arc::clone(&events),
            RoutedOptions::new(50 + i),
        )
        .expect("sessions succeed with one slot draining");
        // The 4-wide core may overshoot the commit target by one burst.
        assert!(out.outcome.summary.committed >= cfg.insts);
    }
    assert!(router.restore_backend(0), "restore succeeds");
    assert!(!router.restore_backend(0), "already up");
    let out = run_routed_session(&addr, &session, events, RoutedOptions::new(99))
        .expect("session succeeds after restore");
    assert!(out.outcome.summary.committed >= cfg.insts);
    router.shutdown();
}

/// Resuming an id the router never saw is a clean refusal, not a hang.
#[test]
fn resuming_an_unknown_session_id_is_refused() {
    let router = route(router_opts()).expect("router starts");
    let addr = router.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let ticket = proto::SessionTicket {
        id: 424242,
        resume: true,
        alarms_received: 0,
    };
    let mut w = stream.try_clone().expect("clone");
    proto::write_frame(&mut w, SESSION, &ticket.encode()).expect("send ticket");
    let mut r = BufReader::new(stream);
    match proto::read_frame(&mut r).expect("a frame comes back") {
        Some((tag, payload)) => {
            assert_eq!(tag, proto::ERROR);
            let msg = String::from_utf8_lossy(&payload).into_owned();
            assert!(
                msg.contains("unknown session id"),
                "unexpected refusal: {msg}"
            );
        }
        None => panic!("connection closed without an ERROR frame"),
    }
    router.shutdown();
}

/// Two live connections claiming the same session id: the second is
/// refused (a fresh SESSION ticket never steals a registered id).
#[test]
fn duplicate_session_ids_are_refused() {
    let router = route(router_opts()).expect("router starts");
    let addr = router.local_addr();

    // Register id 5 and keep the connection open (no events yet).
    let cfg = attack_experiment("ferret", 3_000);
    let session = SessionConfig::from_experiment(&cfg, 0);
    let hello = session.encode().expect("valid config");
    let first = TcpStream::connect(addr).expect("connect");
    let ticket = proto::SessionTicket {
        id: 5,
        resume: false,
        alarms_received: 0,
    };
    let mut w = first.try_clone().expect("clone");
    proto::write_frame(&mut w, SESSION, &ticket.encode()).expect("ticket");
    proto::write_frame(&mut w, proto::HELLO, &hello).expect("hello");
    use std::io::Write as _;
    w.flush().expect("flush");

    // Second connection, same id.
    let second = TcpStream::connect(addr).expect("connect");
    let mut w2 = second.try_clone().expect("clone");
    proto::write_frame(&mut w2, SESSION, &ticket.encode()).expect("ticket");
    proto::write_frame(&mut w2, proto::HELLO, &hello).expect("hello");
    w2.flush().expect("flush");
    let mut r2 = BufReader::new(second);
    // The router may interleave ACKs before the refusal; scan for ERROR.
    let msg = loop {
        match proto::read_frame(&mut r2).expect("frames until refusal") {
            Some((proto::ERROR, payload)) => break String::from_utf8_lossy(&payload).into_owned(),
            Some(_) => continue,
            None => panic!("closed without an ERROR frame"),
        }
    };
    assert!(msg.contains("already registered"), "unexpected: {msg}");
    drop(first);
    router.shutdown();
}

/// A plain `serve` is not a router: the SESSION frame is refused with an
/// ERROR, so a misdirected resumable client fails fast and loudly.
#[test]
fn plain_serve_refuses_ticketed_sessions() {
    let direct = serve(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        observe_every: 1024,
        ..ServeOptions::default()
    })
    .expect("serve starts");
    let cfg = attack_experiment("ferret", 3_000);
    let session = SessionConfig::from_experiment(&cfg, 0);
    let events = Arc::new(capture_events(&cfg));
    let err = run_routed_session(
        &direct.local_addr().to_string(),
        &session,
        events,
        RoutedOptions {
            max_reconnects: 0,
            ..RoutedOptions::new(1)
        },
    )
    .expect_err("a plain serve must refuse the SESSION frame");
    match err {
        ClientError::Server(_) | ClientError::Protocol(_) => {}
        other => panic!("expected a server refusal, got: {other}"),
    }
    direct.shutdown();
}
