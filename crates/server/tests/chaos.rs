//! Chaos regression: a deterministic, seeded kill schedule slaughters
//! backends mid-soak while concurrent sessions stream. Zero sessions may
//! be lost and every surviving detection set must be bit-identical to
//! the offline engine — the "zero lost sessions" contract under fire.
//!
//! Nothing here is keyed to wall-clock time: kills trigger on the
//! router's forwarded-event progress clock, so the schedule (and the
//! test) is reproducible on an arbitrarily loaded machine.

use fireguard_server::chaos::{detection_keys, kill_schedule};
use fireguard_server::{run_chaos, ChaosOptions, SessionConfig};
use fireguard_soc::{baseline_cycles, capture_events, run_fireguard, ExperimentConfig, KernelId};
use fireguard_trace::{AttackKind, AttackPlan};
use std::sync::Arc;

fn campaign(insts: u64) -> ExperimentConfig {
    let plan = AttackPlan::campaign(
        &[AttackKind::RetHijack],
        6,
        insts / 10,
        insts.saturating_sub(insts / 5),
        3,
    );
    ExperimentConfig::new("ferret")
        .kernel(KernelId::SHADOW_STACK, 4)
        .insts(insts)
        .attacks(plan)
}

/// The headline regression: eight concurrent sessions over two backends,
/// four seeded backend kills. Every session completes (zero lost), every
/// detection set is bit-identical to offline, and the schedule actually
/// drew blood (kills > 0, failovers > 0).
#[test]
fn seeded_backend_kills_lose_nothing() {
    let cfg = campaign(8_000);
    let offline = run_fireguard(&cfg);
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let session = SessionConfig::from_experiment(&cfg, base);
    let events = Arc::new(capture_events(&cfg));

    let out = run_chaos(
        &session,
        Arc::clone(&events),
        &ChaosOptions {
            sessions: 8,
            concurrency: 8,
            backends: 2,
            kills: 4,
            seed: 7,
            ..ChaosOptions::default()
        },
    )
    .expect("chaos harness runs");

    assert_eq!(out.lost_sessions, 0, "first error: {:?}", out.first_error);
    assert_eq!(out.ok_sessions, 8);
    assert!(out.kills > 0, "the schedule must actually kill backends");
    assert!(out.failovers > 0, "kills mid-stream must force failovers");
    let expected = detection_keys(&offline.detections);
    for (i, o) in out.outcomes.iter().enumerate() {
        assert_eq!(
            detection_keys(&o.outcome.alarms),
            expected,
            "session {i}: detections diverge from offline after chaos"
        );
        assert_eq!(
            o.outcome.summary.committed, offline.committed,
            "session {i}"
        );
        assert_eq!(
            o.outcome.summary.slowdown.to_bits(),
            offline.slowdown.to_bits(),
            "session {i}"
        );
    }
}

/// Backend kills *and* client-transport faults at once: the router
/// severs each client link after every 3 ACKs, so sessions must resume
/// (reconnects > 0, router resumes > 0) while backends are also dying —
/// and the detections still match offline exactly.
#[test]
fn chaos_with_client_faults_still_loses_nothing() {
    let cfg = campaign(8_000);
    let offline = run_fireguard(&cfg);
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let session = SessionConfig::from_experiment(&cfg, base);
    let events = Arc::new(capture_events(&cfg));

    let out = run_chaos(
        &session,
        Arc::clone(&events),
        &ChaosOptions {
            sessions: 6,
            concurrency: 6,
            backends: 2,
            kills: 2,
            seed: 11,
            drop_client_after_acks: Some(3),
            ..ChaosOptions::default()
        },
    )
    .expect("chaos harness runs");

    assert_eq!(out.lost_sessions, 0, "first error: {:?}", out.first_error);
    assert_eq!(out.ok_sessions, 6);
    assert!(out.resumes > 0, "client faults must force resumes");
    assert!(out.reconnects > 0);
    let expected = detection_keys(&offline.detections);
    for (i, o) in out.outcomes.iter().enumerate() {
        assert_eq!(
            detection_keys(&o.outcome.alarms),
            expected,
            "session {i}: detections diverge after chaos + client faults"
        );
    }
}

/// The kill schedule is a pure function of (seed, kills, backends,
/// volume): same inputs, same schedule; different seed, different
/// schedule; thresholds ascend within the expected volume and every
/// target is a real slot.
#[test]
fn kill_schedule_is_deterministic_and_well_formed() {
    let a = kill_schedule(7, 4, 2, 100_000);
    let b = kill_schedule(7, 4, 2, 100_000);
    assert_eq!(a, b, "same seed, same schedule");
    assert_eq!(a.len(), 4);
    let c = kill_schedule(8, 4, 2, 100_000);
    assert_ne!(a, c, "a different seed must reshuffle the slaughter");

    for schedule in [&a, &c] {
        let mut last = 0;
        for &(threshold, slot) in schedule.iter() {
            assert!(threshold >= last, "thresholds ascend: {schedule:?}");
            assert!(threshold < 100_000, "kills land within the volume");
            assert!(slot < 2, "target is a real slot");
            last = threshold;
        }
    }
}
