//! Hostile-world fault suite: the service and router tiers under wire
//! garbage, corrupted frames, slowloris clients, bounded-memory journal
//! pressure, admission-control sheds, router-process crashes, and the
//! full seeded wire-fault proxy — always with the same pass criterion as
//! the chaos suite: no panics, no lost sessions, and detection sets
//! bit-identical to the offline engine.

use fireguard_server::chaos::detection_keys;
use fireguard_server::proto::{
    self, FrameReader, FrameWriter, SessionTicket, Summary, ACK, ALARMS, BUSY, CAP_FRAME_CHECKSUM,
    END, ERROR, EVENTS, HELLO, MAX_FRAME, SESSION, SUMMARY,
};
use fireguard_server::{
    route, run_chaos, run_routed_session, run_session, serve, BackendMode, ChaosOptions,
    ClientError, Journal, JournalGauges, RoutedOptions, RouterOptions, ServeOptions, SessionConfig,
    WireFaults,
};
use fireguard_soc::{
    baseline_cycles, capture_events, run_fireguard, Detection, ExperimentConfig, KernelId,
};
use fireguard_trace::codec::{put_uvarint, EventEncoder};
use fireguard_trace::{AttackKind, AttackPlan, SimRng, TraceInst};
use proptest::prelude::*;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn router_opts() -> RouterOptions {
    RouterOptions {
        backends: BackendMode::Spawn(2),
        backend_workers: 2,
        observe_every: 1024,
        ..RouterOptions::default()
    }
}

fn attack_experiment(workload: &str, insts: u64) -> ExperimentConfig {
    let plan = AttackPlan::campaign(
        &[AttackKind::RetHijack],
        6,
        insts / 10,
        insts.saturating_sub(insts / 5),
        3,
    );
    ExperimentConfig::new(workload)
        .kernel(KernelId::SHADOW_STACK, 4)
        .insts(insts)
        .attacks(plan)
}

/// Offline reference + wire inputs for one workload, shared per test.
fn fixture(
    workload: &str,
    insts: u64,
) -> (fireguard_soc::RunResult, SessionConfig, Arc<Vec<TraceInst>>) {
    let cfg = attack_experiment(workload, insts);
    let offline = run_fireguard(&cfg);
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let session = SessionConfig::from_experiment(&cfg, base);
    let events = Arc::new(capture_events(&cfg));
    (offline, session, events)
}

// ---- wire garbage ------------------------------------------------------

/// One serve + one router, shared by every fuzz case (and asserted to
/// still work afterwards by `fuzzed_servers_still_complete_good_sessions`).
/// Short idle timeouts so a garbage header that promises a payload which
/// never arrives is reaped quickly instead of wedging a worker.
fn fuzz_addrs() -> &'static (String, String) {
    static ADDRS: OnceLock<(String, String)> = OnceLock::new();
    ADDRS.get_or_init(|| {
        let s = serve(ServeOptions {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            observe_every: 1024,
            idle_timeout: Duration::from_millis(100),
            ..ServeOptions::default()
        })
        .expect("fuzz serve starts");
        let r = route(RouterOptions {
            idle_timeout: Duration::from_millis(100),
            ..router_opts()
        })
        .expect("fuzz router starts");
        let addrs = (s.local_addr().to_string(), r.local_addr().to_string());
        // Leak the handles: the servers live for the whole test binary.
        std::mem::forget(s);
        std::mem::forget(r);
        addrs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes fired at a live serve socket and a live router
    /// socket must never panic or wedge either tier: the connection ends
    /// in a clean ERROR/BUSY frame or a clean close, within the read
    /// timeout. (A panic in a session thread would poison shared state
    /// and show up as a hang or a failed follow-up session.)
    #[test]
    fn garbage_bytes_never_panic_serve_or_router(seed in any::<u64>(), len in 1usize..1200) {
        let (serve_addr, router_addr) = fuzz_addrs();
        let mut rng = SimRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        for addr in [serve_addr.as_str(), router_addr.as_str()] {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
            // The peer may ERROR-and-close mid-write; a broken pipe here
            // is a valid refusal, not a test failure.
            let _ = s.write_all(&bytes);
            let _ = s.shutdown(Shutdown::Write);
            let mut reader = BufReader::new(s);
            // Anything short of a frame (clean close, torn frame) ends
            // the conversation; whole frames must be refusals.
            while let Ok(Some((tag, _))) = proto::read_frame(&mut reader) {
                prop_assert!(
                    tag == ERROR || tag == BUSY || tag == ACK,
                    "garbage drew unexpected frame tag {tag}"
                );
            }
        }
    }
}

/// After (any amount of) fuzzing, the shared fuzz servers still complete
/// an honest session with offline-exact detections — garbage on one
/// connection never corrupts another.
#[test]
fn fuzzed_servers_still_complete_good_sessions() {
    let (serve_addr, router_addr) = fuzz_addrs();
    let (offline, session, events) = fixture("ferret", 4_000);
    let expected = detection_keys(&offline.detections);

    let d = run_session(serve_addr, &session, Arc::clone(&events), 512)
        .expect("direct session survives a fuzzed server");
    assert_eq!(detection_keys(&d.alarms), expected);

    let t = run_routed_session(router_addr, &session, events, RoutedOptions::new(0xF0_0D))
        .expect("ticketed session survives a fuzzed router");
    assert_eq!(detection_keys(&t.outcome.alarms), expected);
    assert_eq!(t.outcome.summary.committed, offline.committed);
}

// ---- mid-session corrupted frames ---------------------------------------

/// A connection that completes its handshake honestly and then turns
/// hostile — an undecodable EVENTS payload, or a frame header promising
/// more than MAX_FRAME — draws a clean ERROR frame and a teardown, on
/// both the serve and the router path. Never a panic, never silence.
#[test]
fn corrupted_and_oversized_frames_get_clean_errors() {
    let (_, session, _) = fixture("ferret", 3_000);
    let hello = session.encode().expect("valid config");
    let s = serve(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        observe_every: 1024,
        idle_timeout: Duration::from_millis(500),
        ..ServeOptions::default()
    })
    .expect("serve starts");
    let r = route(RouterOptions {
        idle_timeout: Duration::from_millis(500),
        ..router_opts()
    })
    .expect("router starts");

    let hostile_payloads: [&[u8]; 2] = [
        &[0xFF; 64],   // undecodable EVENTS batch
        &[0x01, 0x02], // truncated batch header
    ];
    for (who, addr) in [
        ("serve", s.local_addr().to_string()),
        ("router", r.local_addr().to_string()),
    ] {
        eprintln!("=== target {who} at {addr}");
        for payload in hostile_payloads {
            eprintln!("  case: payload len {}", payload.len());
            assert_error_after_hello(&addr, &hello, |w| proto::write_frame(w, EVENTS, payload));
        }
        // An oversized frame header: tag + a length past MAX_FRAME. The
        // reader must reject the header without trying to buffer it.
        eprintln!("  case: oversized header");
        assert_error_after_hello(&addr, &hello, |w| {
            let mut head = vec![EVENTS];
            put_uvarint(&mut head, MAX_FRAME + 1);
            w.write_all(&head)
        });
    }
}

/// Sends a valid HELLO then `hostile` bytes; asserts the peer answers
/// with an ERROR frame and then closes.
fn assert_error_after_hello<F>(addr: &str, hello: &[u8], hostile: F)
where
    F: FnOnce(&mut BufWriter<TcpStream>) -> std::io::Result<()>,
{
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut w = BufWriter::new(s.try_clone().expect("clone"));
    proto::write_frame(&mut w, HELLO, hello).expect("hello");
    hostile(&mut w).expect("hostile bytes sent");
    w.flush().expect("flush");
    let mut reader = BufReader::new(s);
    let mut saw_error = false;
    loop {
        match proto::read_frame(&mut reader) {
            Ok(Some((ERROR, msg))) => {
                assert!(!msg.is_empty(), "{addr}: ERROR frame carries a reason");
                saw_error = true;
            }
            Ok(Some(_)) => {} // ACKs and alarms racing the teardown
            Ok(None) | Err(_) => break,
        }
    }
    assert!(saw_error, "{addr}: hostile frame must draw a clean ERROR");
}

/// Checksummed framing catches in-flight corruption the length framing
/// can't: a ticketed client's EVENTS frame with one flipped payload byte
/// is severed *quietly* (no ERROR — the damage proves nothing about who
/// lied), the session survives as a ghost, and an honest resume then
/// completes with offline-exact detections.
#[test]
fn corrupted_checked_frame_is_severed_then_resume_completes() {
    let (offline, session, events) = fixture("dedup", 5_000);
    let router = route(router_opts()).expect("router starts");
    let addr = router.local_addr().to_string();
    let hello = session
        .encode_with_caps(CAP_FRAME_CHECKSUM)
        .expect("valid config");

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    {
        let mut w = BufWriter::new(stream.try_clone().expect("clone"));
        let ticket = SessionTicket {
            id: 777,
            resume: false,
            alarms_received: 0,
        };
        proto::write_frame(&mut w, SESSION, &ticket.encode()).expect("ticket");
        proto::write_frame(&mut w, HELLO, &hello).expect("hello");
        w.flush().expect("flush");
    }
    // Render a correctly-checksummed first EVENTS frame (index 0), then
    // flip one payload byte so the trailing sum no longer matches.
    let payload = EventEncoder::new().encode_batch(&events[..256]);
    let mut raw = Vec::new();
    {
        let mut fw = FrameWriter::new(&mut raw, true);
        fw.write(EVENTS, &payload).expect("render frame");
        fw.flush().expect("flush");
    }
    raw[16] ^= 0xFF;
    stream.write_all(&raw).expect("send corrupted frame");

    // Ticketed wire damage severs without a verdict: EOF, no ERROR.
    let mut reader = FrameReader::new(BufReader::new(stream.try_clone().expect("clone")), true);
    match reader.read() {
        Ok(None) | Err(_) => {}
        Ok(Some((tag, _))) => panic!("expected a quiet sever, got frame tag {tag}"),
    }

    // The honest resume replays from the (empty) journal and completes.
    let mut alarms = Vec::new();
    let summary = manual_resume(&addr, 777, &mut alarms, &events, 512);
    assert_eq!(
        detection_keys(&alarms),
        detection_keys(&offline.detections),
        "detections after corruption + resume diverge from offline"
    );
    assert_eq!(summary.committed, offline.committed);
    assert_eq!(summary.slowdown.to_bits(), offline.slowdown.to_bits());
    assert!(
        router.resumes() >= 1,
        "the sever must be healed by a resume"
    );
}

/// Hand-rolled SESSION-ticket resume: ACK tells us where the buffered
/// prefix ends; we re-send the rest (freshly delta-encoded) and collect
/// the verdict. Checked framing throughout — the session's HELLO
/// negotiated CAP_FRAME_CHECKSUM.
fn manual_resume(
    addr: &str,
    id: u64,
    alarms: &mut Vec<Detection>,
    events: &[TraceInst],
    batch: usize,
) -> Summary {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut reader = FrameReader::new(BufReader::new(stream.try_clone().expect("clone")), true);
    {
        let mut w = BufWriter::new(stream.try_clone().expect("clone"));
        let ticket = SessionTicket {
            id,
            resume: true,
            alarms_received: alarms.len() as u64,
        };
        proto::write_frame(&mut w, SESSION, &ticket.encode()).expect("ticket");
        w.flush().expect("flush");
    }
    let start = match reader.read().expect("resume preamble") {
        Some((ACK, p)) => proto::decode_ack(&p).expect("ack decodes") as usize,
        other => panic!("expected ACK on resume, got {other:?}"),
    };
    assert!(start <= events.len(), "ACK within the stream");
    let mut w = FrameWriter::new(BufWriter::new(stream), true);
    let mut enc = EventEncoder::new();
    for chunk in events[start..].chunks(batch) {
        w.write(EVENTS, &enc.encode_batch(chunk)).expect("events");
    }
    w.write(END, &[]).expect("end");
    w.flush().expect("flush");
    let summary = loop {
        match reader.read().expect("verdict stream") {
            Some((ALARMS, p)) => {
                alarms.extend(proto::decode_alarms(&p).expect("alarms decode"));
            }
            Some((ACK, _)) => {}
            Some((SUMMARY, p)) => break Summary::decode(&p).expect("summary decodes"),
            Some((ERROR, m)) => panic!("resume errored: {}", String::from_utf8_lossy(&m)),
            other => panic!("unexpected frame {other:?}"),
        }
    };
    // Terminal delivery ACK, like the real client: the router holds the
    // session resumable until the verdict is confirmed received.
    let _ = w.write(ACK, &[]).and_then(|()| w.flush());
    summary
}

// ---- slowloris ----------------------------------------------------------

/// A client that connects and then says nothing is reaped after the
/// idle timeout, and the worker it was wedging serves the next honest
/// session. `workers: 1` makes the proof airtight: the good session can
/// only complete if the slowloris was evicted.
#[test]
fn slowloris_is_reaped_and_the_worker_freed() {
    let (offline, session, events) = fixture("x264", 3_000);
    let s = serve(ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        observe_every: 1024,
        idle_timeout: Duration::from_millis(200),
        ..ServeOptions::default()
    })
    .expect("serve starts");
    let addr = s.local_addr().to_string();

    let idle = TcpStream::connect(&addr).expect("slowloris connects");
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");

    let out = run_session(&addr, &session, events, 512)
        .expect("honest session completes once the slowloris is reaped");
    assert_eq!(
        detection_keys(&out.alarms),
        detection_keys(&offline.detections)
    );

    // The silent connection itself was torn down (ERROR or EOF).
    let mut reader = BufReader::new(idle);
    loop {
        match proto::read_frame(&mut reader) {
            Ok(Some((ERROR, _))) => {}
            Ok(Some((tag, _))) => panic!("slowloris got unexpected frame tag {tag}"),
            Ok(None) | Err(_) => break,
        }
    }
}

/// The router's client leg reaps silent connections the same way.
#[test]
fn router_reaps_silent_connections() {
    let router = route(RouterOptions {
        idle_timeout: Duration::from_millis(200),
        ..router_opts()
    })
    .expect("router starts");
    let idle = TcpStream::connect(router.local_addr()).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut reader = BufReader::new(idle);
    loop {
        match proto::read_frame(&mut reader) {
            Ok(Some((ERROR, _))) => {}
            Ok(Some((tag, _))) => panic!("unexpected frame tag {tag}"),
            Ok(None) | Err(_) => break, // reaped
        }
    }
}

// ---- bounded-memory journals ---------------------------------------------

/// The bounded-memory contract over the whole workload suite: with a
/// 64-event RAM tail, a ~5000-event session is ≥ 75× the tail, so the
/// journal *must* spill to disk — and with the router severing the
/// client link every 2 ACKs, every session also resumes off that
/// spilled state. Detections stay bit-identical to offline throughout.
#[test]
fn journal_spill_plus_resume_holds_parity_for_every_workload() {
    let router = route(RouterOptions {
        journal_tail: 64,
        drop_client_after_acks: Some(2),
        ..router_opts()
    })
    .expect("router starts");
    let addr = router.local_addr().to_string();

    for (i, workload) in fireguard_soc::experiments::workloads().iter().enumerate() {
        let (offline, session, events) = fixture(workload, 5_000);
        let out = run_routed_session(
            &addr,
            &session,
            events,
            RoutedOptions {
                max_reconnects: 64,
                ..RoutedOptions::new(5_000 + i as u64)
            },
        )
        .unwrap_or_else(|e| panic!("{workload}: session under journal pressure failed: {e}"));
        assert!(
            out.reconnects > 0,
            "{workload}: client faults must force resumes"
        );
        assert_eq!(
            detection_keys(&out.outcome.alarms),
            detection_keys(&offline.detections),
            "{workload}: detections diverge under journal spill + resume"
        );
        assert_eq!(
            out.outcome.summary.committed, offline.committed,
            "{workload}"
        );
        assert_eq!(
            out.outcome.summary.slowdown.to_bits(),
            offline.slowdown.to_bits(),
            "{workload}"
        );
    }
    assert!(
        router.events_spilled() > 0,
        "a 64-event tail under ~5000-event sessions must spill to disk"
    );
}

// ---- admission control ----------------------------------------------------

/// Over the live-session budget, fresh sessions — ticketed and anonymous
/// alike — are refused with a clean BUSY frame, which both client state
/// machines surface as a server-side refusal (never a protocol error or
/// a hang). The shed counter records every refusal.
#[test]
fn admission_control_sheds_fresh_sessions_with_busy() {
    let (_, session, events) = fixture("swaptions", 2_000);
    let router = route(RouterOptions {
        max_live_sessions: Some(0),
        ..router_opts()
    })
    .expect("router starts");
    let addr = router.local_addr().to_string();

    let err = run_routed_session(
        &addr,
        &session,
        Arc::clone(&events),
        RoutedOptions {
            max_reconnects: 2,
            ..RoutedOptions::new(9)
        },
    )
    .expect_err("a zero-budget router must shed the session");
    match err {
        ClientError::Server(msg) => assert!(
            msg.contains("shed by admission control"),
            "unexpected shed message: {msg}"
        ),
        other => panic!("expected a server refusal, got {other:?}"),
    }

    let err = run_session(&addr, &session, events, 512)
        .expect_err("anonymous fresh sessions are shed too");
    match err {
        ClientError::Server(msg) => {
            assert!(msg.contains("busy"), "unexpected BUSY reason: {msg}");
        }
        other => panic!("expected a server refusal, got {other:?}"),
    }

    assert!(router.sessions_shed() >= 2, "every refusal is counted");
}

// ---- router-process crash recovery -----------------------------------------

/// A router process crash (simulated exactly as `kill -9` leaves the
/// disk: a durable journal with a recorded HELLO and a spilled event
/// prefix, no terminal record) is recoverable: a new router started with
/// `resume_journals` rebuilds the session from the sidecar, ACKs the
/// spilled prefix, replays it to a fresh backend, and the resumed client
/// finishes with offline-exact detections.
#[test]
fn crashed_router_journals_are_recovered_by_resume_journals() {
    let (offline, session, events) = fixture("bodytrack", 5_000);
    let dir = std::env::temp_dir().join(format!("fg-faults-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The crashed router's legacy: 500 events journaled with a 64-event
    // tail, so 448 made it to disk and the RAM tail died with the process.
    let hello = session
        .encode_with_caps(CAP_FRAME_CHECKSUM)
        .expect("valid config");
    const PUSHED: usize = 500;
    let spilled = {
        let mut j =
            Journal::open("4242", 64, Some(&dir), JournalGauges::default()).expect("journal opens");
        j.record_hello(&hello).expect("hello recorded");
        for &e in &events[..PUSHED] {
            j.push(e).expect("push");
        }
        let spilled = j.spilled();
        assert!(spilled > 0, "the prefix must have hit the disk");
        drop(j); // durable + non-terminal: files stay behind
        spilled
    };

    let router = route(RouterOptions {
        journal_dir: Some(dir.clone()),
        resume_journals: true,
        journal_tail: 64,
        ..router_opts()
    })
    .expect("recovering router starts");
    let addr = router.local_addr().to_string();

    let mut alarms = Vec::new();
    let summary = manual_resume(&addr, 4242, &mut alarms, &events, 512);
    assert_eq!(
        detection_keys(&alarms),
        detection_keys(&offline.detections),
        "post-crash resume diverges from offline"
    );
    assert_eq!(summary.committed, offline.committed);
    assert_eq!(summary.cycles, offline.cycles);
    assert_eq!(summary.slowdown.to_bits(), offline.slowdown.to_bits());
    let _ = spilled; // the resume ACK asserted `start <= events`; the
                     // journal's own unit tests pin start == spilled.
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- the network lies: chaos-net ------------------------------------------

/// The full hostile world, per workload: backends die on the seeded kill
/// schedule while the netem proxy drops, delays, duplicates, truncates,
/// corrupts, and disconnects frames in both directions — and the
/// 64-event journal tail keeps every failover replay disk-backed. Zero
/// sessions lost, every detection set bit-identical to offline, across
/// all nine workloads.
#[test]
fn chaos_net_soak_loses_nothing_for_every_workload() {
    let mut total_faults = 0u64;
    for (i, workload) in fireguard_soc::experiments::workloads().iter().enumerate() {
        let (offline, session, events) = fixture(workload, 4_000);
        let out = run_chaos(
            &session,
            events,
            &ChaosOptions {
                sessions: 2,
                concurrency: 2,
                batch: 128,
                backends: 2,
                kills: 2,
                seed: 7 + i as u64,
                journal_tail: 64,
                wire_faults: Some(WireFaults {
                    fault_every: 6,
                    max_delay_ms: 2,
                }),
                ..ChaosOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{workload}: chaos-net setup failed: {e}"));

        assert_eq!(
            out.lost_sessions, 0,
            "{workload}: lost sessions under chaos-net; first error: {:?}",
            out.first_error
        );
        assert_eq!(out.ok_sessions, 2, "{workload}");
        assert!(
            out.wire_faults > 0,
            "{workload}: the proxy must actually inject faults"
        );
        total_faults += out.wire_faults;
        let expected = detection_keys(&offline.detections);
        for (s, o) in out.outcomes.iter().enumerate() {
            assert_eq!(
                detection_keys(&o.outcome.alarms),
                expected,
                "{workload} session {s}: detections diverge under chaos-net"
            );
            assert_eq!(o.outcome.summary.committed, offline.committed);
            assert_eq!(
                o.outcome.summary.slowdown.to_bits(),
                offline.slowdown.to_bits()
            );
        }
    }
    assert!(
        total_faults > 9,
        "the soak must have seen real wire pressure"
    );
}
