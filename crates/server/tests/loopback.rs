//! End-to-end loopback tests: a live `fireguard-server` must report
//! exactly what the equivalent offline `run_fireguard` run reports.

use fireguard_server::{
    run_loadgen, run_session, serve, ClientError, LoadgenOptions, ServeOptions, SessionConfig,
};
use fireguard_soc::{baseline_cycles, capture_events, run_fireguard, ExperimentConfig, KernelId};
use fireguard_trace::{AttackKind, AttackPlan};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

/// Hand-encodes a HELLO in the *v1* wire shape, bypassing the library
/// encoder's validation — for playing a legacy (or hostile) client
/// against the server. Assumes the hybrid-model/MA-stage defaults the
/// loopback configs here use.
fn raw_hello(cfg: &SessionConfig) -> Vec<u8> {
    use fireguard_trace::codec::{put_string, put_uvarint};
    let mut b = Vec::new();
    put_uvarint(&mut b, 1); // protocol v1: no capability field
    put_string(&mut b, &cfg.workload);
    put_uvarint(&mut b, cfg.seed);
    put_uvarint(&mut b, cfg.insts);
    put_uvarint(&mut b, cfg.baseline_cycles);
    b.push(cfg.kernels.len() as u8);
    for (kind, engine) in &cfg.kernels {
        b.push(kind.wire());
        put_uvarint(
            &mut b,
            match engine {
                fireguard_soc::EngineConfig::Ha => 0,
                fireguard_soc::EngineConfig::Ucores(n) => *n as u64,
            },
        );
    }
    b.push(3); // hybrid model
    put_uvarint(&mut b, cfg.filter_width as u64);
    b.push(0); // MA-stage ISAX
    put_uvarint(&mut b, cfg.mapper_width as u64);
    b
}

fn loopback_opts(workers: usize, max_sessions: Option<u64>) -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        max_sessions,
        observe_every: 1024,
        ..ServeOptions::default()
    }
}

fn attack_experiment(insts: u64) -> ExperimentConfig {
    let plan = AttackPlan::campaign(
        &[AttackKind::RetHijack],
        6,
        insts / 10,
        insts.saturating_sub(insts / 5),
        3,
    );
    ExperimentConfig::new("ferret")
        .kernel(KernelId::SHADOW_STACK, 4)
        .insts(insts)
        .attacks(plan)
}

#[test]
fn served_session_matches_offline_run() {
    let cfg = attack_experiment(12_000);
    let offline = run_fireguard(&cfg);
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let events = Arc::new(capture_events(&cfg));

    let handle = serve(loopback_opts(2, None)).expect("bind loopback");
    let addr = handle.local_addr().to_string();
    let session = SessionConfig::from_experiment(&cfg, base);
    let out = run_session(&addr, &session, Arc::clone(&events), 512).expect("session succeeds");
    handle.shutdown();

    // The wire adds transport, not semantics: every scalar matches the
    // offline run, and the online alarms are the offline detections.
    assert_eq!(out.summary.committed, offline.committed);
    assert_eq!(out.summary.cycles, offline.cycles);
    assert_eq!(out.summary.packets, offline.packets);
    assert_eq!(out.summary.baseline_cycles, offline.baseline_cycles);
    assert_eq!(out.summary.slowdown.to_bits(), offline.slowdown.to_bits());
    assert_eq!(out.summary.detections as usize, offline.detections.len());
    assert_eq!(out.alarms.len(), offline.detections.len());
    assert!(!out.alarms.is_empty(), "the campaign raises alarms");

    let mut served: Vec<(u64, u64)> = out
        .alarms
        .iter()
        .map(|d| (d.seq, d.latency_ns.to_bits()))
        .collect();
    let mut off: Vec<(u64, u64)> = offline
        .detections
        .iter()
        .map(|d| (d.seq, d.latency_ns.to_bits()))
        .collect();
    served.sort_unstable();
    off.sort_unstable();
    assert_eq!(served, off, "served alarms == offline detections");
}

/// The generality contract over the wire: every registered kernel —
/// including the post-paper taint and MTE plugins — negotiates a session
/// by registry id and reports exactly the offline result.
#[test]
fn served_sessions_match_offline_for_new_kernels() {
    let handle = serve(loopback_opts(2, None)).expect("bind loopback");
    let addr = handle.local_addr().to_string();
    for (id, attack, insts) in [
        // Taint sources fire from the first I/O-window access; UaF-style
        // attacks need the workload's first frees (dedup's allocation
        // lifetime is ~30k instructions), so MTE runs a longer stream.
        (KernelId::TAINT, AttackKind::BoundsViolation, 10_000u64),
        (KernelId::MTE, AttackKind::UseAfterFree, 26_000),
    ] {
        let plan = AttackPlan::campaign(&[attack], 8, insts * 6 / 10, insts - insts / 10, 3);
        let cfg = ExperimentConfig::new("dedup")
            .kernel(id, 4)
            .insts(insts)
            .attacks(plan);
        let offline = run_fireguard(&cfg);
        let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
        let events = Arc::new(capture_events(&cfg));
        let session = SessionConfig::from_experiment(&cfg, base);
        let out = run_session(&addr, &session, events, 512).expect("session succeeds");
        assert_eq!(out.summary.committed, offline.committed, "{id}");
        assert_eq!(out.summary.cycles, offline.cycles, "{id}");
        assert_eq!(out.summary.packets, offline.packets, "{id}");
        assert_eq!(out.summary.detections as usize, offline.detections.len());
        assert!(
            !out.alarms.is_empty(),
            "{id}: the campaign must raise alarms over the wire"
        );
    }
    handle.shutdown();
}

/// A HELLO naming an unregistered kernel id gets a clean ERROR frame —
/// never a hang or a panic — and the service survives to serve the next
/// session (the satellite wire-compatibility contract).
#[test]
fn unknown_kernel_id_in_hello_gets_an_error_frame() {
    let handle = serve(loopback_opts(1, None)).expect("bind loopback");
    let addr = handle.local_addr();

    // A structurally valid HELLO whose kernel byte is unregistered (99).
    let good = SessionConfig::from_experiment(
        &ExperimentConfig::new("swaptions")
            .kernel(KernelId::PMC, 4)
            .insts(2_000),
        0,
    );
    let mut payload = good.encode().expect("valid config encodes");
    // Kernel id byte offset: version ‖ len ‖ workload ‖ seed ‖ insts ‖
    // baseline ‖ count — for "swaptions"/seed 42/insts 2000/baseline 0
    // the varints are 1+1+9+1+2+1+1 bytes, so the id byte is at 16.
    // Derive it robustly instead: the byte equal to PMC's wire id right
    // after the kernel-count byte (count 1).
    let at = payload
        .windows(2)
        .position(|w| w == [1, KernelId::PMC.wire()])
        .expect("count ‖ kernel-id bytes present")
        + 1;
    payload[at] = 99;
    let mut s = TcpStream::connect(addr).unwrap();
    fireguard_server::proto::write_frame(&mut s, fireguard_server::proto::HELLO, &payload).unwrap();
    let (tag, msg) = fireguard_server::proto::read_frame(&mut s)
        .unwrap()
        .expect("server answers, not hangs");
    assert_eq!(tag, fireguard_server::proto::ERROR);
    assert!(
        String::from_utf8_lossy(&msg).contains("unknown kernel id"),
        "got: {}",
        String::from_utf8_lossy(&msg)
    );
    drop(s);

    // Service still healthy.
    let events = Arc::new(capture_events(
        &ExperimentConfig::new("swaptions")
            .kernel(KernelId::PMC, 4)
            .insts(2_000),
    ));
    let out = run_session(&addr.to_string(), &good, events, 512).expect("healthy session");
    // The 4-wide core may overshoot the commit target by up to a burst.
    assert!(out.summary.committed >= 2_000 && out.summary.committed < 2_004);
    handle.shutdown();
}

#[test]
fn concurrent_sessions_are_isolated_and_deterministic() {
    let cfg = attack_experiment(5_000);
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let events = Arc::new(capture_events(&cfg));
    let session = SessionConfig::from_experiment(&cfg, base);

    let handle = serve(loopback_opts(4, None)).expect("bind loopback");
    let addr = handle.local_addr().to_string();

    let outcomes: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let session = session.clone();
            let events = Arc::clone(&events);
            std::thread::spawn(move || run_session(&addr, &session, events, 256))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("no panic").expect("session succeeds"))
        .collect();
    handle.shutdown();

    let first = &outcomes[0].summary;
    for o in &outcomes[1..] {
        assert_eq!(o.summary, *first, "identical sessions, identical results");
    }
}

#[test]
fn loadgen_aggregates_across_sessions() {
    let cfg = attack_experiment(4_000);
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let events = Arc::new(capture_events(&cfg));
    let session = SessionConfig::from_experiment(&cfg, base);

    let handle = serve(loopback_opts(2, None)).expect("bind loopback");
    let addr = handle.local_addr().to_string();
    let agg = run_loadgen(
        &addr,
        &session,
        Arc::clone(&events),
        &LoadgenOptions {
            sessions: 4,
            concurrency: 2,
            batch: 512,
            ..LoadgenOptions::default()
        },
    );
    handle.shutdown();

    assert_eq!(agg.ok_sessions, 4, "first error: {:?}", agg.first_error);
    assert_eq!(agg.failed_sessions, 0);
    assert_eq!(agg.events, 4 * events.len() as u64);
    assert!(agg.committed >= 4 * 4_000);
    assert!(agg.events_per_sec > 0.0);
    assert!(agg.detections > 0);
    assert!(agg.p99_latency_ns >= agg.p50_latency_ns);
    assert!(agg.p50_latency_ns > 0.0);
    assert_eq!(agg.workers, 2, "pool shape is surfaced");
    assert_eq!(agg.reconnects, 0);
    let bucketed: usize = agg.buckets.iter().map(|b| b.sessions).sum();
    assert_eq!(bucketed, 4, "every session lands in a completion bucket");
}

#[test]
fn malformed_hello_gets_an_error_frame_not_a_crash() {
    let handle = serve(loopback_opts(1, None)).expect("bind loopback");
    let addr = handle.local_addr();

    // Garbage HELLO payload.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&[fireguard_server::proto::HELLO, 4, 0xFF, 0xFF, 0xFF, 0xFF])
        .unwrap();
    s.flush().unwrap();
    let frame = fireguard_server::proto::read_frame(&mut s).unwrap();
    let (tag, msg) = frame.expect("server answers");
    assert_eq!(tag, fireguard_server::proto::ERROR);
    assert!(!msg.is_empty());
    drop(s); // close promptly so the single worker is free again

    // A structurally valid HELLO that violates provisioning limits.
    let mut cfg = SessionConfig::from_experiment(
        &ExperimentConfig::new("swaptions").kernel(KernelId::PMC, 4),
        0,
    );
    cfg.kernels = vec![(KernelId::PMC, fireguard_soc::EngineConfig::Ucores(40))];
    // The client-side encoder refuses this config, so build the hostile
    // HELLO bytes by hand — the *server* must refuse it too.
    let mut s = TcpStream::connect(addr).unwrap();
    fireguard_server::proto::write_frame(&mut s, fireguard_server::proto::HELLO, &raw_hello(&cfg))
        .unwrap();
    let (tag, msg) = fireguard_server::proto::read_frame(&mut s)
        .unwrap()
        .expect("server answers");
    assert_eq!(tag, fireguard_server::proto::ERROR);
    assert!(String::from_utf8_lossy(&msg).contains("refused"));
    drop(s);

    // The service is still alive after both abuses.
    let exp = ExperimentConfig::new("swaptions")
        .kernel(KernelId::PMC, 2)
        .insts(3_000);
    let events = Arc::new(capture_events(&exp));
    let good = SessionConfig::from_experiment(&exp, 0);
    let out = run_session(&addr.to_string(), &good, events, 512).expect("healthy session");
    assert_eq!(out.summary.committed, 3_000);
    handle.shutdown();
}

#[test]
fn truncated_stream_yields_partial_summary_and_error() {
    let handle = serve(loopback_opts(1, None)).expect("bind loopback");
    let addr = handle.local_addr();

    let exp = ExperimentConfig::new("swaptions")
        .kernel(KernelId::PMC, 2)
        .insts(50_000);
    // Only 2 000 of the 50 000 committed instructions ever arrive, then
    // the client ends the stream: the server must answer with a partial
    // summary and an ERROR, not hang.
    let events: Vec<_> = exp.trace().take(2_000).collect();
    let session = SessionConfig::from_experiment(&exp, 0);
    let err = run_session(&addr.to_string(), &session, Arc::new(events), 512)
        .expect_err("partial stream is an error");
    match err {
        ClientError::Server(msg) => assert!(msg.contains("stream"), "got: {msg}"),
        other => panic!("expected a server error, got {other:?}"),
    }
    handle.shutdown();
}

/// The v1×v2 compatibility matrix, client side up: a legacy client that
/// speaks only protocol v1 (hand-built HELLO bytes, no capability field)
/// gets a complete session from the v2 server, and for a ≤4-kernel
/// config the library encoder still emits those exact v1 bytes.
#[test]
fn v1_hello_client_still_gets_a_full_session() {
    use fireguard_server::proto::{read_frame, write_frame, ALARMS, END, EVENTS, HELLO, SUMMARY};

    let exp = ExperimentConfig::new("swaptions")
        .kernel(KernelId::PMC, 2)
        .insts(3_000);
    let events = capture_events(&exp);
    let session = SessionConfig::from_experiment(&exp, 0);
    let payload = raw_hello(&session);
    assert_eq!(payload[0], 1, "hand-built HELLO is protocol v1");
    assert_eq!(
        session.encode().expect("valid config encodes"),
        payload,
        "small sessions still encode as byte-identical v1"
    );

    let handle = serve(loopback_opts(1, None)).expect("bind loopback");
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    write_frame(&mut s, HELLO, &payload).unwrap();
    let mut enc = fireguard_trace::codec::EventEncoder::new();
    for chunk in events.chunks(512) {
        write_frame(&mut s, EVENTS, &enc.encode_batch(chunk)).unwrap();
    }
    write_frame(&mut s, END, &[]).unwrap();
    s.flush().unwrap();

    let summary = loop {
        match read_frame(&mut s).unwrap() {
            Some((ALARMS, _)) => {}
            Some((SUMMARY, payload)) => {
                break fireguard_server::Summary::decode(&payload).unwrap();
            }
            Some((tag, msg)) => {
                panic!("frame {tag}: {}", String::from_utf8_lossy(&msg));
            }
            None => panic!("connection closed before SUMMARY"),
        }
    };
    assert!(summary.committed >= 3_000, "v1 session ran to completion");
    drop(s);
    handle.shutdown();
}

/// The tentpole end-to-end proof over the wire: all six registered
/// kernels in one session — verdict bits 0..=5, beyond the v1 nibble —
/// negotiate a v2 HELLO and report exactly the offline result, including
/// alarms attributed to the high (≥4) verdict slots.
#[test]
fn six_kernel_session_matches_offline_run() {
    let plan = AttackPlan::campaign(
        &[
            AttackKind::RetHijack,
            AttackKind::UseAfterFree,
            AttackKind::BoundsViolation,
        ],
        9,
        15_600,
        23_400,
        3,
    );
    let mut cfg = ExperimentConfig::new("dedup").insts(26_000).attacks(plan);
    for spec in fireguard_soc::registry() {
        cfg = cfg.kernel(spec.id(), 2);
    }
    assert_eq!(cfg.kernels.len(), 6, "every registered kernel rides along");

    let offline = run_fireguard(&cfg);
    let base = baseline_cycles(&cfg.workload, cfg.seed, cfg.insts);
    let events = Arc::new(capture_events(&cfg));
    let session = SessionConfig::from_experiment(&cfg, base);
    assert_eq!(session.wire_version(), fireguard_server::PROTO_V2);

    let handle = serve(loopback_opts(2, None)).expect("bind loopback");
    let out = run_session(
        &handle.local_addr().to_string(),
        &session,
        Arc::clone(&events),
        512,
    )
    .expect("wide session succeeds");
    handle.shutdown();

    assert_eq!(out.summary.committed, offline.committed);
    assert_eq!(out.summary.cycles, offline.cycles);
    assert_eq!(out.summary.packets, offline.packets);
    assert_eq!(out.summary.slowdown.to_bits(), offline.slowdown.to_bits());
    assert_eq!(out.summary.detections as usize, offline.detections.len());

    let mut served: Vec<(u64, usize)> = out.alarms.iter().map(|d| (d.seq, d.kernel_slot)).collect();
    let mut off: Vec<(u64, usize)> = offline
        .detections
        .iter()
        .map(|d| (d.seq, d.kernel_slot))
        .collect();
    served.sort_unstable();
    off.sort_unstable();
    assert_eq!(served, off, "per-kernel verdict slots match offline");
    assert!(
        out.alarms.iter().any(|d| d.kernel_slot >= 4),
        "a verdict slot beyond the v1 nibble raised alarms over the wire"
    );
}

/// Hostile capacity abuse: a HELLO naming more kernels than the verdict
/// field holds — or a wide session without the negotiated capability —
/// gets an ERROR frame, never a worker panic, and the service survives.
#[test]
fn oversized_hello_gets_an_error_frame() {
    use fireguard_server::proto::{read_frame, write_frame, ERROR, HELLO};

    let handle = serve(loopback_opts(1, None)).expect("bind loopback");
    let addr = handle.local_addr();
    let base_exp = ExperimentConfig::new("swaptions")
        .kernel(KernelId::PMC, 1)
        .insts(1_000);
    let mut cfg = SessionConfig::from_experiment(&base_exp, 0);

    // Nine kernels: beyond even the 8-bit verdict field.
    cfg.kernels = vec![(KernelId::PMC, fireguard_soc::EngineConfig::Ucores(1)); 9];
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(&mut s, HELLO, &raw_hello(&cfg)).unwrap();
    let (tag, msg) = read_frame(&mut s).unwrap().expect("server answers");
    assert_eq!(tag, ERROR);
    assert!(
        String::from_utf8_lossy(&msg).contains("implausible kernel count"),
        "got: {}",
        String::from_utf8_lossy(&msg)
    );
    drop(s);

    // Five kernels in a v1 HELLO: structurally fine, but the wide-verdict
    // capability was never negotiated.
    cfg.kernels = vec![(KernelId::PMC, fireguard_soc::EngineConfig::Ucores(1)); 5];
    let mut s = TcpStream::connect(addr).unwrap();
    write_frame(&mut s, HELLO, &raw_hello(&cfg)).unwrap();
    let (tag, msg) = read_frame(&mut s).unwrap().expect("server answers");
    assert_eq!(tag, ERROR);
    assert!(
        String::from_utf8_lossy(&msg).contains("wide verdict not negotiated"),
        "got: {}",
        String::from_utf8_lossy(&msg)
    );
    drop(s);

    // The service is still alive.
    let events = Arc::new(capture_events(&base_exp));
    let good = SessionConfig::from_experiment(&base_exp, 0);
    let out = run_session(&addr.to_string(), &good, events, 512).expect("healthy session");
    assert!(out.summary.committed >= 1_000);
    handle.shutdown();
}

#[test]
fn max_sessions_budget_stops_the_service() {
    let exp = ExperimentConfig::new("swaptions")
        .kernel(KernelId::PMC, 2)
        .insts(2_000);
    let events = Arc::new(capture_events(&exp));
    let session = SessionConfig::from_experiment(&exp, 0);

    let handle = serve(loopback_opts(2, Some(2))).expect("bind loopback");
    let addr = handle.local_addr().to_string();
    for _ in 0..2 {
        run_session(&addr, &session, Arc::clone(&events), 512).expect("session succeeds");
    }
    // The budget is spent: join returns on its own.
    handle.join();
}
