//! Property tests for the router's two load-bearing mechanisms: the
//! consistent-hash ring (placement balance and minimal remap on loss)
//! and resume-from-seq (an ack at count `k` means replay restarts at
//! event `k` with zero lost and zero duplicated events).

use fireguard_server::{Ring, DEFAULT_REPLICAS};
use fireguard_soc::{capture_events, ExperimentConfig, KernelId};
use fireguard_trace::{AttackKind, AttackPlan, EventDecoder, EventEncoder, TraceInst};
use proptest::prelude::*;
use std::sync::OnceLock;

const KEYS: u64 = 4096;

/// A real captured event stream (attack campaign included, so control /
/// heap / attack side-channels are all present), captured once and
/// shared across proptest cases.
fn stream() -> &'static [TraceInst] {
    static EVENTS: OnceLock<Vec<TraceInst>> = OnceLock::new();
    EVENTS.get_or_init(|| {
        let insts = 3_000u64;
        let plan = AttackPlan::campaign(
            &[AttackKind::RetHijack],
            4,
            insts / 10,
            insts.saturating_sub(insts / 5),
            3,
        );
        let cfg = ExperimentConfig::new("ferret")
            .kernel(KernelId::SHADOW_STACK, 4)
            .insts(insts)
            .attacks(plan);
        capture_events(&cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Placement balance: over any contiguous window of `KEYS` session
    /// ids, every slot of an `n`-backend ring receives a sane share —
    /// no slot starves below a quarter of the ideal `1/n`, none hoards
    /// more than triple it. (64 virtual points per slot keep per-slot
    /// shares within a few tens of percent of ideal; the bounds here
    /// are deliberately loose so the property is about shape, not the
    /// exact hash constants.)
    #[test]
    fn ring_spreads_keys_across_all_slots(n in 1..=8usize, base in any::<u64>()) {
        let ring = Ring::new(n, DEFAULT_REPLICAS);
        let mut counts = vec![0u64; n];
        for i in 0..KEYS {
            counts[ring.route_all_up(base.wrapping_add(i))] += 1;
        }
        let ideal = KEYS / n as u64;
        for (slot, &c) in counts.iter().enumerate() {
            prop_assert!(
                c >= ideal / 4,
                "slot {slot}/{n} starves: {c} of {KEYS} keys (ideal {ideal})"
            );
            prop_assert!(
                c <= ideal * 3,
                "slot {slot}/{n} hoards: {c} of {KEYS} keys (ideal {ideal})"
            );
        }
    }

    /// Minimal disruption on a single loss: keys whose owner survives
    /// never move (exact, not statistical), every remapped key lands on
    /// a live slot, and the remapped fraction is the dead slot's share —
    /// bounded by 3/n, far below the 1/1 a modulo hash would remap.
    #[test]
    fn single_loss_remaps_only_the_dead_slots_share(
        n in 2..=8usize,
        dead_pick in any::<u64>(),
        base in any::<u64>(),
    ) {
        let ring = Ring::new(n, DEFAULT_REPLICAS);
        let dead = (dead_pick % n as u64) as usize;
        let mut moved = 0u64;
        for i in 0..KEYS {
            let key = base.wrapping_add(i);
            let home = ring.route_all_up(key);
            let rerouted = ring
                .route(key, |s| s != dead)
                .expect("n >= 2 leaves a live slot");
            prop_assert!(rerouted != dead, "key routed to the dead slot");
            if home == dead {
                moved += 1;
            } else {
                prop_assert_eq!(
                    rerouted, home,
                    "key {} moved although its owner survives", key
                );
            }
        }
        prop_assert!(
            moved <= KEYS * 3 / n as u64,
            "losing 1 of {n} slots remapped {moved}/{KEYS} keys"
        );
    }

    /// Routing is a pure function of (key, liveness): repeated lookups
    /// agree, and reviving the dead slot restores the original placement
    /// for every key (arc positions are stable for the life of the pool).
    #[test]
    fn revival_restores_original_placement(n in 2..=8usize, key in any::<u64>()) {
        let ring = Ring::new(n, DEFAULT_REPLICAS);
        let home = ring.route_all_up(key);
        let rerouted = ring.route(key, |s| s != home).expect("a live slot exists");
        prop_assert_ne!(rerouted, home);
        prop_assert_eq!(ring.route_all_up(key), home, "revival restores placement");
    }

    /// Resume-from-seq roundtrip: a session acked at event count `k`
    /// replays `events[k..]` through a *fresh* encoder/decoder pair (a
    /// new TCP connection or backend incarnation has no codec history).
    /// The decoded tail must be exactly the original tail — first seq
    /// `k`, nothing lost, nothing duplicated — for any ack point and any
    /// batching of the replay.
    #[test]
    fn resume_from_any_ack_point_loses_and_duplicates_nothing(
        k_pick in any::<u64>(),
        batch in 1..700usize,
    ) {
        let events = stream();
        let k = (k_pick % (events.len() as u64 + 1)) as usize;

        // The original connection: encode and decode the acked prefix so
        // both sides hold real mid-stream codec state, then lose it.
        let mut enc = EventEncoder::new();
        let mut dec = EventDecoder::new();
        let prefix = dec
            .decode_batch(&enc.encode_batch(&events[..k]))
            .expect("prefix decodes");
        prop_assert_eq!(prefix.as_slice(), &events[..k]);
        prop_assert_eq!(dec.next_seq(), k as u64);

        // The resumed connection: the old codec state is lost with the
        // connection — fresh encoder and decoder, replay starts at
        // exactly the acked count.
        let mut enc = EventEncoder::new();
        let mut dec = EventDecoder::new();
        let mut replayed: Vec<TraceInst> = Vec::with_capacity(events.len() - k);
        for chunk in events[k..].chunks(batch) {
            replayed.extend(
                dec.decode_batch(&enc.encode_batch(chunk))
                    .expect("replay chunk decodes"),
            );
        }
        prop_assert_eq!(replayed.as_slice(), &events[k..]);
        if let Some(first) = replayed.first() {
            prop_assert_eq!(first.seq, k as u64, "replay starts at the acked count");
        }
        prop_assert_eq!(
            dec.next_seq(),
            events.len() as u64,
            "decoder lands on the stream end"
        );
        // Seqs are strictly consecutive: no duplicate can hide in the tail.
        for (off, ev) in replayed.iter().enumerate() {
            prop_assert_eq!(ev.seq, (k + off) as u64);
        }
    }
}
