//! Figure 7(b): combining safeguards — the dominant kernel dominates.
//!
//! Thin shim over [`fireguard_bench::figures`]; the `fireguard` CLI runs
//! the same driver (with `--jobs`/`--format` control on top).

fn main() {
    fireguard_bench::figures::run_bin("fig7b");
}
