//! Figure 7(b): combining safeguards — the dominant kernel dominates, but
//! slowdowns do not multiply.

use fireguard_bench::{fmt_slowdown, geomean_slowdown, insts, per_workload, print_header, SEED};
use fireguard_kernels::KernelKind::{Asan, Pmc, ShadowStack, Uaf};
use fireguard_soc::{run_fireguard, ExperimentConfig};

fn main() {
    let n = insts();
    println!("Figure 7(b): slowdown with combined safeguards (geomean over PARSEC)");
    println!("(4 ucores per kernel; SS as HA in the three-kernel deployments)\n");

    let combos: Vec<(&str, Vec<(fireguard_kernels::KernelKind, bool)>)> = vec![
        ("SS+PMC", vec![(ShadowStack, false), (Pmc, false)]),
        ("AS+PMC", vec![(Asan, false), (Pmc, false)]),
        ("UaF+PMC", vec![(Uaf, false), (Pmc, false)]),
        ("UaF+AS", vec![(Uaf, false), (Asan, false)]),
        ("SS+AS", vec![(ShadowStack, false), (Asan, false)]),
        (
            "SS+PMC+AS",
            vec![(ShadowStack, true), (Pmc, false), (Asan, false)],
        ),
        (
            "SS+PMC+UaF",
            vec![(ShadowStack, true), (Pmc, false), (Uaf, false)],
        ),
    ];

    print_header(&["combination", "geomean"], &[14, 10]);
    for (name, kernels) in combos {
        let ks = kernels.clone();
        let rows = per_workload(move |w| {
            let mut cfg = ExperimentConfig::new(w).insts(n).seed(SEED);
            for (kind, as_ha) in &ks {
                cfg = if *as_ha {
                    cfg.kernel_ha(*kind)
                } else {
                    cfg.kernel(*kind, 4)
                };
            }
            run_fireguard(&cfg)
        });
        println!("{name:>14} {:>10}", fmt_slowdown(geomean_slowdown(&rows)));
    }
    println!("\npaper: pairs track the heavier member (e.g. SS+PMC ~1.03, AS-bearing combos ~1.4); slowdowns do not multiply");
}
