//! Figure 11: programming models (PMC on 4 µcores).

use fireguard_bench::{fmt_slowdown, geomean_of, insts, per_workload, print_header, SEED};
use fireguard_kernels::{KernelKind, ProgrammingModel};
use fireguard_soc::{run_fireguard, ExperimentConfig};

fn main() {
    let n = insts();
    println!("Figure 11: slowdown of programming models (4-ucore PMC)\n");
    print_header(
        &["workload", "Conven.", "Duff's", "Unroll", "Hybrid"],
        &[14, 9, 9, 9, 9],
    );
    let rows = per_workload(move |w| {
        ProgrammingModel::ALL
            .iter()
            .map(|&m| {
                run_fireguard(
                    &ExperimentConfig::new(w)
                        .kernel(KernelKind::Pmc, 4)
                        .model(m)
                        .insts(n)
                        .seed(SEED),
                )
                .slowdown
            })
            .collect::<Vec<f64>>()
    });
    let mut per_model: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (w, vals) in &rows {
        print!("{w:>14} ");
        for (i, v) in vals.iter().enumerate() {
            print!("{:>9} ", fmt_slowdown(*v));
            per_model[i].push(*v);
        }
        println!();
    }
    print!("{:>14} ", "geomean");
    for g in &per_model {
        print!("{:>9} ", fmt_slowdown(geomean_of(g)));
    }
    println!();
    println!("\npaper: conventional worst (outliers to 3.7x), Duff's better, unrolling better still, hybrid uniformly best");
}
