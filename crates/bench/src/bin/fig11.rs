//! Figure 11: programming models (PMC on 4 µcores).
//!
//! Thin shim over [`fireguard_bench::figures`]; the `fireguard` CLI runs
//! the same driver (with `--jobs`/`--format` control on top).

fn main() {
    fireguard_bench::figures::run_bin("fig11");
}
