//! Section IV-F: hardware overhead of the 14 nm physical implementation.

use fireguard_area::components;

fn main() {
    let c = components();
    println!("Section IV-F: hardware overhead (Synopsys 14nm generic PDK)\n");
    println!("SoC area:             {:.3} mm2", c.soc_mm2);
    println!("BOOM core:            {:.3} mm2", c.boom_mm2);
    println!("Rocket ucore:         {:.3} mm2", c.rocket_mm2);
    println!("event filter:         {:.3} mm2", c.filter_mm2);
    println!("mapper:               {:.3} mm2", c.mapper_mm2);
    println!(
        "transport total:      {:.3} mm2 = {:.2}% of BOOM, {:.2}% of SoC",
        c.transport_mm2(),
        c.transport_pct_of_boom(),
        c.transport_pct_of_soc()
    );
    let fg = c.fireguard_4ucore_mm2();
    println!(
        "4-ucore FireGuard:    {:.3} mm2 = {:.1}% of BOOM, {:.2}% of SoC",
        fg,
        100.0 * fg / c.boom_mm2,
        100.0 * fg / c.soc_mm2
    );
    println!("\npaper: 2.91 / 1.107 / 0.061 / 0.032 / 0.011 mm2; transport 3.88%/1.48%; FireGuard 25.9%/9.86%");
}
