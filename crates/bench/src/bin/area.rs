//! Section IV-F: hardware overhead of the 14 nm physical implementation.
//!
//! Thin shim over [`fireguard_bench::figures`]; the `fireguard` CLI runs
//! the same driver (with `--jobs`/`--format` control on top).

fn main() {
    fireguard_bench::figures::run_bin("area");
}
