//! Figure 7(a): FireGuard vs software techniques, per PARSEC workload.
//!
//! Thin shim over [`fireguard_bench::figures`]; `fireguard fig7a` runs the
//! same driver (with `--jobs`/`--format` control on top).

fn main() {
    fireguard_bench::figures::run_bin("fig7a");
}
