//! Figure 7(a): FireGuard vs software techniques, per PARSEC workload.
//!
//! Columns mirror the paper's legend: each kernel on 4 µcores, HA variants
//! for PMC and the shadow stack, and the LLVM software baselines.

use fireguard_bench::{fmt_slowdown, geomean_of, insts, per_workload, print_header, SEED};
use fireguard_kernels::{KernelKind, SoftwareScheme};
use fireguard_soc::{run_fireguard, run_software, ExperimentConfig};

fn main() {
    let n = insts();
    println!("Figure 7(a): slowdown running PARSEC with each safeguard");
    println!("(FireGuard kernels on 4 ucores; HA = hardware accelerator)\n");

    let rows = per_workload(move |w| {
        let fg = |kind: KernelKind| {
            run_fireguard(&ExperimentConfig::new(w).kernel(kind, 4).insts(n).seed(SEED)).slowdown
        };
        let ha = |kind: KernelKind| {
            run_fireguard(&ExperimentConfig::new(w).kernel_ha(kind).insts(n).seed(SEED)).slowdown
        };
        let sw = |scheme| run_software(scheme, w, SEED, n);
        [
            fg(KernelKind::Pmc),
            ha(KernelKind::Pmc),
            fg(KernelKind::ShadowStack),
            ha(KernelKind::ShadowStack),
            sw(SoftwareScheme::ShadowStackAArch64),
            fg(KernelKind::Asan),
            sw(SoftwareScheme::AsanAArch64),
            sw(SoftwareScheme::AsanX86),
            fg(KernelKind::Uaf),
            sw(SoftwareScheme::DangSanX86),
        ]
    });

    let cols = [
        "workload", "PMC.4u", "PMC.HA", "SS.4u", "SS.HA", "SS.sw", "SAN.4u", "SAN.arm", "SAN.x86",
        "UaF.4u", "DangSan",
    ];
    let widths = [14, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8];
    print_header(&cols, &widths);
    let mut geos = vec![Vec::new(); 10];
    for (w, vals) in &rows {
        print!("{w:>14} ");
        for (i, v) in vals.iter().enumerate() {
            print!("{:>8} ", fmt_slowdown(*v));
            geos[i].push(*v);
        }
        println!();
    }
    print!("{:>14} ", "geomean");
    for g in &geos {
        print!("{:>8} ", fmt_slowdown(geomean_of(g)));
    }
    println!();
    println!("\npaper (geomean): PMC.4u 1.025  SS.4u 1.021  SS.sw 1.079  SAN.4u 1.39  SAN.arm 2.635  SAN.x86 1.915  UaF.4u 1.42  HA ~1.00");
}
