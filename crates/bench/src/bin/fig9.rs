//! Figure 9: cumulative bottlenecks vs event-filter width
//! (AddressSanitizer on 4 µcores).

use fireguard_bench::{fmt_slowdown, geomean_slowdown, insts, per_workload, print_header, SEED};
use fireguard_kernels::KernelKind;
use fireguard_soc::{run_fireguard, ExperimentConfig};

fn main() {
    let n = insts();
    println!("Figure 9: bottleneck decomposition vs filter width (Sanitizer, 4 ucores)\n");
    print_header(
        &["width", "geomean", "filter%", "mapper%", "cdc%", "ucores%"],
        &[6, 9, 9, 9, 9, 9],
    );
    for width in [4usize, 2, 1] {
        let rows = per_workload(move |w| {
            run_fireguard(
                &ExperimentConfig::new(w)
                    .kernel(KernelKind::Asan, 4)
                    .filter_width(width)
                    .insts(n)
                    .seed(SEED),
            )
        });
        let geo = geomean_slowdown(&rows);
        let mut sums = [0u64; 4];
        let mut cycles = 0u64;
        for (_, r) in &rows {
            sums[0] += r.bottlenecks.filter;
            sums[1] += r.bottlenecks.mapper;
            sums[2] += r.bottlenecks.cdc;
            sums[3] += r.bottlenecks.ucore;
            cycles += r.cycles;
        }
        let pct = |x: u64| 100.0 * x as f64 / cycles as f64;
        println!(
            "{width:>6} {:>9} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            fmt_slowdown(geo),
            pct(sums[0]),
            pct(sums[1]),
            pct(sums[2]),
            pct(sums[3]),
        );
        // Per-workload bars (the figure's x-axis).
        for (w, r) in &rows {
            let p = |x: u64| 100.0 * x as f64 / r.cycles as f64;
            println!(
                "       {w:>14} {:>7} f={:>5.2}% m={:>5.2}% c={:>5.2}% u={:>5.2}%",
                fmt_slowdown(r.slowdown),
                p(r.bottlenecks.filter),
                p(r.bottlenecks.mapper),
                p(r.bottlenecks.cdc),
                p(r.bottlenecks.ucore),
            );
        }
    }
    println!("\npaper: a 4-wide filter keeps up with commit; narrowing to 2 adds ~16% geomean overhead and to 1 adds ~34%, with the filter bar dominating the added stall time");
}
