//! Table III: feasibility of FireGuard in commercial SoCs.

use fireguard_area::table3;

fn main() {
    println!("Table III: feasibility of FireGuard in commercial SoCs\n");
    println!(
        "{:>12} {:>11} {:>6} {:>6} {:>9} {:>9} {:>5} {:>7} {:>9} {:>8} {:>10} {:>8}",
        "core",
        "soc",
        "freq",
        "tech",
        "area",
        "area@14",
        "ipc",
        "thr",
        "#ucores",
        "mm2/core",
        "%/core",
        "%/soc"
    );
    println!("{}", "-".repeat(110));
    for r in table3() {
        println!(
            "{:>12} {:>11} {:>5.1}G {:>6} {:>8.2} {:>9.2} {:>5.2} {:>7.2} {:>9} {:>8.3} {:>9.2}% {:>7.2}%",
            r.core.name,
            r.core.soc,
            r.core.freq_ghz,
            r.core.tech,
            r.core.area_native_mm2,
            r.core.area_14nm_mm2,
            r.core.ipc,
            r.norm_throughput,
            r.ucores,
            r.overhead_mm2,
            r.pct_of_core,
            r.pct_of_soc,
        );
    }
    println!("\npaper: BOOM 4u/25.9%/9.86%; FireStorm 12u/3.6%/0.47%; Cortex-A76 5u/9.6%/0.57%; AlderLake-S 13u/3.8%/0.99%");
}
