//! Design-choice ablation (paper §III-D): MA-stage vs post-commit ISAX.
//!
//! Thin shim over [`fireguard_bench::figures`]; the `fireguard` CLI runs
//! the same driver (with `--jobs`/`--format` control on top).

fn main() {
    fireguard_bench::figures::run_bin("isax_ablation");
}
