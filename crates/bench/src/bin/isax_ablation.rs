//! Design-choice ablation (paper §III-D): the MA-stage ISAX interface vs
//! stock Rocket's post-commit placement (3–13 cycles per custom op).

use fireguard_bench::{fmt_slowdown, geomean_slowdown, insts, per_workload, print_header, SEED};
use fireguard_kernels::KernelKind;
use fireguard_soc::{run_fireguard, ExperimentConfig};
use fireguard_ucore::IsaxMode;

fn main() {
    let n = insts();
    println!("ISAX placement ablation (Sanitizer, 4 ucores)\n");
    print_header(&["interface", "geomean"], &[12, 9]);
    for (mode, name) in [
        (IsaxMode::MaStage, "MA-stage"),
        (IsaxMode::PostCommit, "post-commit"),
    ] {
        let rows = per_workload(move |w| {
            run_fireguard(
                &ExperimentConfig::new(w)
                    .kernel(KernelKind::Asan, 4)
                    .isax(mode)
                    .insts(n)
                    .seed(SEED),
            )
        });
        println!("{name:>12} {:>9}", fmt_slowdown(geomean_slowdown(&rows)));
    }
    println!("\npaper: Rocket's post-commit interface caused enough hazards to motivate the MA-stage redesign");
}
