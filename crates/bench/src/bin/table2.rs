//! Table II: the hardware configuration this reproduction models.
//!
//! Thin shim over [`fireguard_bench::figures`]; the `fireguard` CLI runs
//! the same driver (with `--jobs`/`--format` control on top).

fn main() {
    fireguard_bench::figures::run_bin("table2");
}
