//! Table II: the hardware configuration this reproduction models.

use fireguard_boom::BoomConfig;
use fireguard_core::FilterConfig;
use fireguard_ucore::UcoreConfig;

fn main() {
    let b = BoomConfig::default();
    let f = FilterConfig::default();
    let u = UcoreConfig::default();
    println!("Table II: modelled hardware configuration\n");
    println!(
        "Main core: {}-wide OoO SonicBOOM @ {:.1} GHz",
        b.commit_width,
        b.clock_hz / 1e9
    );
    println!(
        "  {}-entry ROB, {}-entry IQ, {}-entry LDQ/STQ, {} Int/FP phys regs",
        b.rob_entries, b.iq_entries, b.ldq_entries, b.int_prf
    );
    println!(
        "  {} Int ALUs, {} FP/Mul/Div, {} MEM, {} Jump, {} CSR",
        b.int_alus, b.fp_units, b.mem_units, b.jump_units, b.csr_units
    );
    println!("  TAGE (6 tables, 2-64b history), 256-entry BTB, 32-entry RAS");
    println!(
        "  L1I/L1D 32KB 8-way ({} MSHRs), L2 512KB, LLC 4MB, DDR3 model",
        b.dmem.l1_mshrs
    );
    println!(
        "\nFireGuard: {}-wide filter, {}-entry FIFOs",
        f.width, f.fifo_depth
    );
    println!("  mapper: scalar allocator + per-engine 8-entry CDC, fabric @1.6GHz");
    println!(
        "Analysis engine: in-order Rocket ucore @ {:.1} GHz, {}-entry message queues, 4KB 2-way L1",
        u.clock_hz / 1e9,
        u.input_capacity
    );
}
