//! Figure 8: detection latency while using 4 µcores (unit: ns).

use fireguard_bench::{insts, per_workload, print_header, SEED};
use fireguard_kernels::KernelKind;
use fireguard_soc::report::percentile;
use fireguard_soc::{run_fireguard, ExperimentConfig};
use fireguard_trace::{AttackKind, AttackPlan};

fn main() {
    let n = insts();
    println!("Figure 8: detection latency distribution, 4 ucores per kernel (ns)\n");
    let kernels = [
        (KernelKind::ShadowStack, AttackKind::RetHijack, "Shadow"),
        (KernelKind::Asan, AttackKind::OutOfBounds, "Sanitizer"),
        (KernelKind::Uaf, AttackKind::UseAfterFree, "UaF"),
        (KernelKind::Pmc, AttackKind::BoundsViolation, "PMC"),
    ];
    print_header(
        &["workload", "kernel", "n", "min", "p50", "p90", "max"],
        &[14, 10, 4, 8, 8, 8, 9],
    );
    for (kind, attack, label) in kernels {
        let rows = per_workload(move |w| {
            let plan = AttackPlan::campaign(&[attack], 60, n / 10, n - n / 10, 7);
            let cfg = ExperimentConfig::new(w)
                .kernel(kind, 4)
                .insts(n)
                .seed(SEED)
                .attacks(plan);
            run_fireguard(&cfg).attack_latencies_ns()
        });
        for (w, lats) in rows {
            if lats.is_empty() {
                println!("{w:>14} {label:>10} {:>4} (no attacks materialised)", 0);
                continue;
            }
            println!(
                "{w:>14} {label:>10} {:>4} {:>8.0} {:>8.0} {:>8.0} {:>9.0}",
                lats.len(),
                lats[0],
                percentile(&lats, 50.0),
                percentile(&lats, 90.0),
                lats[lats.len() - 1],
            );
        }
    }
    println!("\npaper: PMC <50ns; Shadow worst-case 220ns (x264); Sanitizer median <200ns with tails >2000ns; UaF in between");
}
