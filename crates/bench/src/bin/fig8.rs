//! Figure 8: detection latency while using 4 µcores (unit: ns).
//!
//! Thin shim over [`fireguard_bench::figures`]; the `fireguard` CLI runs
//! the same driver (with `--jobs`/`--format` control on top).

fn main() {
    fireguard_bench::figures::run_bin("fig8");
}
