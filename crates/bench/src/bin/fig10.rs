//! Figure 10: slowdown vs number of µcores, one panel per kernel.

use fireguard_bench::{fmt_slowdown, geomean_of, insts, per_workload, print_header, SEED};
use fireguard_kernels::KernelKind;
use fireguard_soc::{run_fireguard, ExperimentConfig};

fn main() {
    let n = insts();
    let panels = [
        (KernelKind::Pmc, "(a) PMC", vec![2usize, 4, 6]),
        (KernelKind::ShadowStack, "(b) Shadow Stack", vec![2, 4, 6]),
        (
            KernelKind::Asan,
            "(c) Address Sanitizer",
            vec![2, 4, 6, 8, 12],
        ),
        (KernelKind::Uaf, "(d) Use-After-Free", vec![2, 4, 6, 8, 12]),
    ];
    for (kind, title, counts) in panels {
        println!("\nFigure 10{title}: slowdown vs ucore count");
        let mut cols: Vec<String> = vec!["workload".into()];
        cols.extend(counts.iter().map(|c| format!("{c}u")));
        let widths: Vec<usize> = std::iter::once(14)
            .chain(counts.iter().map(|_| 8))
            .collect();
        let colrefs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        print_header(&colrefs, &widths);
        let counts2 = counts.clone();
        let rows = per_workload(move |w| {
            counts2
                .iter()
                .map(|&c| {
                    run_fireguard(&ExperimentConfig::new(w).kernel(kind, c).insts(n).seed(SEED))
                        .slowdown
                })
                .collect::<Vec<f64>>()
        });
        let mut per_count: Vec<Vec<f64>> = vec![Vec::new(); counts.len()];
        for (w, vals) in &rows {
            print!("{w:>14} ");
            for (i, v) in vals.iter().enumerate() {
                print!("{:>8} ", fmt_slowdown(*v));
                per_count[i].push(*v);
            }
            println!();
        }
        print!("{:>14} ", "geomean");
        for g in &per_count {
            print!("{:>8} ", fmt_slowdown(geomean_of(g)));
        }
        println!();
    }
    println!("\npaper: PMC 20%@2u -> 2%@4u; SS 7.3%@2u -> 2.1%@4u -> 0.4%@6u; Sanitizer 86%@2u with bodytrack/dedup/x264 >100%, x264 still 58.9%@12u; UaF heaviest, geomean 1.16x@12u with dedup flat");
}
