//! Figure 10: slowdown vs number of µcores, one panel per kernel.
//!
//! Thin shim over [`fireguard_bench::figures`]; the `fireguard` CLI runs
//! the same driver (with `--jobs`/`--format` control on top).

fn main() {
    fireguard_bench::figures::run_bin("fig10");
}
