//! Design-choice ablation (paper footnote 5): the scalar mapper vs a
//! superscalar mapper with duplicated channels and Scheduling Engines.

use fireguard_bench::{fmt_slowdown, geomean_slowdown, insts, per_workload, print_header, SEED};
use fireguard_kernels::KernelKind;
use fireguard_soc::{run_fireguard, ExperimentConfig};

fn main() {
    let n = insts();
    println!("Mapper-width ablation (PMC on 1 HA — isolates the transport)\n");
    print_header(&["mapper", "geomean", "x264"], &[8, 9, 8]);
    for width in [1usize, 2, 4] {
        let rows = per_workload(move |w| {
            run_fireguard(
                &ExperimentConfig::new(w)
                    .kernel_ha(KernelKind::Pmc)
                    .mapper_width(width)
                    .insts(n)
                    .seed(SEED),
            )
        });
        let x264 = rows
            .iter()
            .find(|(w, _)| *w == "x264")
            .map(|(_, r)| r.slowdown)
            .unwrap();
        println!(
            "{width:>8} {:>9} {:>8}",
            fmt_slowdown(geomean_slowdown(&rows)),
            fmt_slowdown(x264)
        );
    }
    println!("\npaper (footnote 5): the scalar mapper rarely impedes a 4-wide BOOM (<0.5%); a superscalar mapper would serve wider cores");
}
