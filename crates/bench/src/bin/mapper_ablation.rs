//! Design-choice ablation (paper footnote 5): scalar vs superscalar mapper.
//!
//! Thin shim over [`fireguard_bench::figures`]; the `fireguard` CLI runs
//! the same driver (with `--jobs`/`--format` control on top).

fn main() {
    fireguard_bench::figures::run_bin("mapper_ablation");
}
