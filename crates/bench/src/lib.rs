//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Every binary honours two environment variables:
//!
//! * `FG_INSTS` — instructions per run (default 120 000);
//! * `FG_QUICK` — when set, drops to 30 000 instructions for smoke runs.

use fireguard_soc::report::geomean;
use fireguard_soc::RunResult;

/// Instructions per simulation run (see crate docs for the env overrides).
pub fn insts() -> u64 {
    if std::env::var_os("FG_QUICK").is_some() {
        return 30_000;
    }
    std::env::var("FG_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000)
}

/// The standard seed used across figures (deterministic reproduction).
pub const SEED: u64 = 42;

/// Prints a header row followed by a separator.
pub fn print_header(cols: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$} ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Formats a slowdown for a table cell.
pub fn fmt_slowdown(s: f64) -> String {
    format!("{s:.3}")
}

/// Runs the same experiment over every workload in parallel threads,
/// returning `(workload, T)` pairs in PARSEC order.
pub fn per_workload<T, F>(f: F) -> Vec<(&'static str, T)>
where
    T: Send + 'static,
    F: Fn(&'static str) -> T + Send + Sync + 'static,
{
    let f = std::sync::Arc::new(f);
    let handles: Vec<_> = fireguard_soc::experiments::workloads()
        .into_iter()
        .map(|w| {
            let f = std::sync::Arc::clone(&f);
            std::thread::spawn(move || (w, f(w)))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect()
}

/// Geomean of the slowdowns in a per-workload result set.
pub fn geomean_slowdown(rows: &[(&str, RunResult)]) -> f64 {
    geomean(&rows.iter().map(|(_, r)| r.slowdown).collect::<Vec<_>>())
}

/// Geomean over plain numbers.
pub fn geomean_of(xs: &[f64]) -> f64 {
    geomean(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insts_respects_quick_env() {
        // Only checks the default path deterministically.
        if std::env::var_os("FG_QUICK").is_none() && std::env::var("FG_INSTS").is_err() {
            assert_eq!(insts(), 120_000);
        }
    }

    #[test]
    fn per_workload_covers_all_nine() {
        let rows = per_workload(|w| w.len());
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].0, "blackscholes");
        assert_eq!(rows[8].0, "x264");
    }
}
