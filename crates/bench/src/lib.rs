//! Shared harness for the figure/table reproduction: environment-variable
//! configuration plus the [`figures`] drivers that both the legacy
//! per-figure binaries and the unified `fireguard` CLI dispatch into.
//!
//! Every entry point honours three environment variables:
//!
//! * `FG_INSTS` — instructions per run (default 120 000); an unparseable
//!   value is ignored with a warning on stderr;
//! * `FG_QUICK` — when set, drops to 30 000 instructions for smoke runs
//!   (takes precedence over `FG_INSTS`);
//! * `FG_JOBS` — worker threads for the sweep engine (default: available
//!   parallelism; see [`fireguard_soc::sweep::default_workers`]).
//!
//! The CLI's `--insts`, `--quick`, and `--jobs` flags override all three.

#![warn(missing_docs)]

pub mod figures;
pub mod perf;

/// Instructions for a smoke (`FG_QUICK`) run.
pub const QUICK_INSTS: u64 = 30_000;

/// Default instructions per simulation run.
pub const DEFAULT_INSTS: u64 = 120_000;

/// The standard seed used across figures (deterministic reproduction).
pub const SEED: u64 = 42;

/// Parses an `FG_INSTS` value; `Err` carries a stderr-ready warning.
///
/// Pure helper behind [`insts`], split out for testability (mirrors the
/// vendored proptest crate's `PROPTEST_SEED` handling).
pub fn parse_insts(raw: &str) -> Result<u64, String> {
    match raw.trim().parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "ignoring unparseable FG_INSTS={raw:?} (expected a positive integer); \
             using the default of {DEFAULT_INSTS}"
        )),
    }
}

/// Instructions per simulation run (see the crate docs for the env knobs).
///
/// An `FG_INSTS` value that does not parse as a positive integer is
/// ignored with a warning on stderr rather than silently dropped.
pub fn insts() -> u64 {
    if std::env::var_os("FG_QUICK").is_some() {
        return QUICK_INSTS;
    }
    match std::env::var("FG_INSTS") {
        Ok(raw) => match parse_insts(&raw) {
            Ok(n) => n,
            Err(msg) => {
                eprintln!("warning: {msg}");
                DEFAULT_INSTS
            }
        },
        Err(std::env::VarError::NotPresent) => DEFAULT_INSTS,
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!(
                "warning: ignoring non-unicode FG_INSTS; using the default of {DEFAULT_INSTS}"
            );
            DEFAULT_INSTS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insts_respects_quick_env() {
        // Only checks the default path deterministically.
        if std::env::var_os("FG_QUICK").is_none() && std::env::var("FG_INSTS").is_err() {
            assert_eq!(insts(), DEFAULT_INSTS);
        }
    }

    #[test]
    fn insts_parse_accepts_positive_integers() {
        assert_eq!(parse_insts("2000"), Ok(2000));
        assert_eq!(parse_insts(" 42 "), Ok(42));
    }

    #[test]
    fn insts_parse_rejects_junk_with_a_warning() {
        for bad in ["", "0", "-5", "12k", "1e6", "banana"] {
            let err = parse_insts(bad).expect_err(bad);
            assert!(err.contains("FG_INSTS"), "warning names the variable");
            assert!(err.contains("120000") || err.contains(bad));
        }
    }
}
