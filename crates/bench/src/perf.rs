//! The `fireguard bench` performance harness.
//!
//! Every PR must make a hot path *measurably* faster, which needs an
//! instrument: this module defines a small registry of end-to-end and
//! component throughput scenarios, times them with warmup/sample control,
//! counts heap allocations through [`CountingAllocator`], and renders the
//! results as a standard [`Report`] plus a machine-readable JSON baseline
//! (`BENCH_*.json`) that CI diffs against to catch regressions.
//!
//! Scenario metrics:
//!
//! * `events/s` — trace events processed per wall-clock second (the
//!   primary regression-gated figure of merit);
//! * `cycles/s` — simulated fast-domain cycles per second, where the
//!   scenario runs a cycle-accurate model;
//! * `ns/event` — the inverse of `events/s`, for intuition;
//! * `allocs/event` — heap allocations per event in the measured region.
//!   The `steady-state` scenario must stay at (amortised) zero: the cycle
//!   loop is not allowed to allocate per event once warm.
//!
//! Timing is wall-clock and therefore machine-dependent; the committed
//! baseline records the numbers for the reference container, and the
//! regression gate ([`check_against`]) allows 10 % of noise before
//! failing. Event *counts* and simulated cycles are deterministic.

use crate::figures::{find, FigOpts};
use fireguard_soc::{
    build_system_auto, capture_events, Cell, ExperimentConfig, KernelId, Report, Table,
};
use fireguard_trace::codec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---- counting allocator ----------------------------------------------------

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed global allocator that counts allocations.
///
/// The `fireguard` binary (and this crate's alloc-contract test) install it
/// with `#[global_allocator]`; the only overhead is one relaxed atomic
/// increment per allocation, so it stays enabled in release builds and the
/// bench harness can report `allocs/event` for free.
pub struct CountingAllocator;

// SAFETY: delegates allocation verbatim to `System`; the counter has no
// effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations observed so far (0 until a [`CountingAllocator`] is
/// installed as the global allocator).
pub fn allocations() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

// ---- harness ---------------------------------------------------------------

/// Knobs for one bench invocation.
#[derive(Debug, Clone)]
pub struct PerfOpts {
    /// Instructions per simulation run.
    pub insts: u64,
    /// Trace seed.
    pub seed: u64,
    /// Sweep workers for the end-to-end figure scenario.
    pub workers: usize,
    /// Untimed runs before sampling.
    pub warmup: usize,
    /// Timed samples (the best one is reported).
    pub samples: usize,
    /// In-session stage-pipeline width (1 = serial, 0 = auto-size to the
    /// host). Event counts and cycles are bit-identical at every width;
    /// only wall clock moves.
    pub pipeline: u32,
}

impl PerfOpts {
    /// Defaults mirroring the figure drivers: environment-driven insts and
    /// seed, one warmup run, three samples.
    pub fn from_env() -> PerfOpts {
        let f = FigOpts::from_env();
        PerfOpts {
            insts: f.insts,
            seed: f.seed,
            workers: f.workers,
            warmup: 1,
            samples: 3,
            pipeline: f.pipeline,
        }
    }
}

/// The host CPU count recorded in baselines: a 1-CPU container cannot
/// show stage-parallel speedups, so every `BENCH_*.json` carries the
/// parallelism the numbers were measured under.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One timed scenario outcome.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Registry name.
    pub name: &'static str,
    /// Events processed per sample.
    pub events: u64,
    /// Simulated fast-domain cycles per sample (0 when not applicable).
    pub cycles: u64,
    /// Best-sample wall time, seconds.
    pub secs: f64,
    /// Heap allocations in the best sample's measured region.
    pub allocs: u64,
}

impl ScenarioResult {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs.max(1e-12)
    }

    /// Simulated cycles per wall-clock second (0 when not applicable).
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.secs.max(1e-12)
    }

    /// Nanoseconds per event.
    pub fn ns_per_event(&self) -> f64 {
        self.secs * 1e9 / self.events.max(1) as f64
    }

    /// Heap allocations per event.
    pub fn allocs_per_event(&self) -> f64 {
        self.allocs as f64 / self.events.max(1) as f64
    }
}

/// Times `f` under `opts`' warmup/sample policy and returns the best
/// (fastest) sample. `f` must perform the *whole* measured region — any
/// setup it should exclude belongs outside, captured by its closure.
fn best_of(opts: &PerfOpts, mut f: impl FnMut() -> (u64, u64)) -> (u64, u64, f64, u64) {
    for _ in 0..opts.warmup {
        let _ = f();
    }
    let mut best: Option<(u64, u64, f64, u64)> = None;
    for _ in 0..opts.samples.max(1) {
        let allocs0 = allocations();
        let t0 = Instant::now();
        let (events, cycles) = f();
        let secs = t0.elapsed().as_secs_f64();
        let allocs = allocations() - allocs0;
        if best.is_none() || secs < best.as_ref().expect("just checked").2 {
            best = Some((events, cycles, secs, allocs));
        }
    }
    best.expect("at least one sample")
}

/// One registry entry.
pub struct Scenario {
    /// CLI name (`--scenario` filter).
    pub name: &'static str,
    /// One-line description for the report.
    pub summary: &'static str,
    /// The driver.
    pub run: fn(&PerfOpts) -> ScenarioResult,
}

/// The bench registry, in report order.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "fig7a",
        summary: "end-to-end fig7a grid (90 workload x kernel jobs)",
        run: bench_fig7a,
    },
    Scenario {
        name: "e2e-asan",
        summary: "one full system: dedup, Sanitizer on 4 ucores",
        run: bench_e2e_asan,
    },
    Scenario {
        name: "e2e-pmc-ha",
        summary: "one full system: x264, PMC on a hardware accelerator",
        run: bench_e2e_pmc_ha,
    },
    Scenario {
        name: "e2e-taint",
        summary: "one full system: dedup, DIFT taint tracker on 4 ucores",
        run: bench_e2e_taint,
    },
    Scenario {
        name: "e2e-mte",
        summary: "one full system: dedup, MTE lock-and-key on 4 ucores",
        run: bench_e2e_mte,
    },
    Scenario {
        name: "e2e-all",
        summary: "one full system: dedup, all registered kernels at once",
        run: bench_e2e_all,
    },
    Scenario {
        name: "steady-state",
        summary: "warm cycle loop (swaptions, PMC x 4u); must not allocate",
        run: bench_steady_state,
    },
    Scenario {
        name: "gen",
        summary: "raw trace generation (dedup profile)",
        run: bench_gen,
    },
    Scenario {
        name: "core",
        summary: "bare OoO core, no FireGuard (swaptions)",
        run: bench_core,
    },
    Scenario {
        name: "codec",
        summary: ".fgt encode + decode round trip",
        run: bench_codec,
    },
    Scenario {
        name: "loopback",
        summary: "served session over TCP loopback",
        run: bench_loopback,
    },
    Scenario {
        name: "routed",
        summary: "ticketed session through the router tier (2 backends)",
        run: bench_routed,
    },
];

/// Looks up a scenario by name.
pub fn find_scenario(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

// ---- scenarios -------------------------------------------------------------

/// The fig7a figure is 10 runs per workload over 9 workloads; its nominal
/// event count (the regression denominator) is the commit budget times the
/// job count. Software-instrumented jobs execute *more* instructions than
/// the budget, so the reported events/s is a conservative floor.
pub const FIG7A_JOBS: u64 = 90;

fn bench_fig7a(o: &PerfOpts) -> ScenarioResult {
    let fig = find("fig7a").expect("fig7a is registered");
    let opts = FigOpts {
        insts: o.insts,
        seed: o.seed,
        workers: o.workers,
        pipeline: o.pipeline,
    };
    let (events, cycles, secs, allocs) = best_of(o, || {
        let report = (fig.run)(&opts);
        assert!(!report.blocks.is_empty());
        (FIG7A_JOBS * o.insts, 0)
    });
    ScenarioResult {
        name: "fig7a",
        events,
        cycles,
        secs,
        allocs,
    }
}

fn e2e(name: &'static str, o: &PerfOpts, cfg: ExperimentConfig) -> ScenarioResult {
    let cfg = cfg.pipeline(o.pipeline);
    let (events, cycles, secs, allocs) = best_of(o, || {
        let mut sys = build_system_auto(&cfg);
        let r = sys.run_insts(cfg.insts, 0);
        (r.committed, r.cycles)
    });
    ScenarioResult {
        name,
        events,
        cycles,
        secs,
        allocs,
    }
}

fn bench_e2e_asan(o: &PerfOpts) -> ScenarioResult {
    e2e(
        "e2e-asan",
        o,
        ExperimentConfig::new("dedup")
            .kernel(KernelId::ASAN, 4)
            .insts(o.insts)
            .seed(o.seed),
    )
}

fn bench_e2e_pmc_ha(o: &PerfOpts) -> ScenarioResult {
    e2e(
        "e2e-pmc-ha",
        o,
        ExperimentConfig::new("x264")
            .kernel_ha(KernelId::PMC)
            .insts(o.insts)
            .seed(o.seed),
    )
}

fn bench_e2e_taint(o: &PerfOpts) -> ScenarioResult {
    e2e(
        "e2e-taint",
        o,
        ExperimentConfig::new("dedup")
            .kernel(KernelId::TAINT, 4)
            .insts(o.insts)
            .seed(o.seed),
    )
}

fn bench_e2e_mte(o: &PerfOpts) -> ScenarioResult {
    e2e(
        "e2e-mte",
        o,
        ExperimentConfig::new("dedup")
            .kernel(KernelId::MTE, 4)
            .insts(o.insts)
            .seed(o.seed),
    )
}

/// Every registered kernel in one system — the packet-layout-v2 wide
/// deployment (verdict bits past the old nibble live), two µcores each.
fn bench_e2e_all(o: &PerfOpts) -> ScenarioResult {
    let mut cfg = ExperimentConfig::new("dedup").insts(o.insts).seed(o.seed);
    for spec in fireguard_soc::registry() {
        cfg = cfg.kernel(spec.id(), 2);
    }
    e2e("e2e-all", o, cfg)
}

fn bench_steady_state(o: &PerfOpts) -> ScenarioResult {
    // Setup *outside* the measured region: build the system and run it past
    // its warm-up transient (queue growth, cache fills, free-list churn),
    // then time a continued run. This is the region the zero-alloc
    // contract covers.
    let cfg = ExperimentConfig::new("swaptions")
        .kernel(KernelId::PMC, 4)
        .insts(o.insts)
        .seed(o.seed)
        .pipeline(o.pipeline);
    let mut sys = build_system_auto(&cfg);
    let warm = (o.insts / 2).max(1);
    let _ = sys.run_insts(warm, 0);
    let mut target = warm;
    let (events, cycles, secs, allocs) = best_of(o, || {
        let before = sys.core_stats().committed;
        let cycles_before = sys.core_stats().cycles;
        target += o.insts;
        let r = sys.run_insts(target, 0);
        (r.committed - before, r.cycles - cycles_before)
    });
    ScenarioResult {
        name: "steady-state",
        events,
        cycles,
        secs,
        allocs,
    }
}

/// Micro-scenarios repeat their kernel so the measured region is long
/// enough (~10 ms at the quick budget) for wall-clock noise to average
/// out; `events` scales with the repetitions, so events/s is unaffected.
const MICRO_REPEATS: u64 = 4;

fn bench_gen(o: &PerfOpts) -> ScenarioResult {
    use fireguard_trace::{TraceGenerator, WorkloadProfile};
    let profile = WorkloadProfile::parsec("dedup").expect("known workload");
    let (events, cycles, secs, allocs) = best_of(o, || {
        let mut sum = 0u64;
        let mut n = 0u64;
        for rep in 0..MICRO_REPEATS {
            let g = TraceGenerator::new(profile.clone(), o.seed + rep);
            for t in g.take(o.insts as usize) {
                sum = sum.wrapping_add(t.pc);
                n += 1;
            }
        }
        std::hint::black_box(sum);
        (n, 0)
    });
    ScenarioResult {
        name: "gen",
        events,
        cycles,
        secs,
        allocs,
    }
}

fn bench_core(o: &PerfOpts) -> ScenarioResult {
    use fireguard_boom::{BoomConfig, Core, NullSink};
    use fireguard_trace::{TraceGenerator, WorkloadProfile};
    let profile = WorkloadProfile::parsec("swaptions").expect("known workload");
    let (events, cycles, secs, allocs) = best_of(o, || {
        let trace = TraceGenerator::new(profile.clone(), o.seed);
        let mut core = Core::new(BoomConfig::default(), trace);
        let stats = core.run_insts(o.insts, &mut NullSink);
        (stats.committed, stats.cycles)
    });
    ScenarioResult {
        name: "core",
        events,
        cycles,
        secs,
        allocs,
    }
}

fn bench_codec(o: &PerfOpts) -> ScenarioResult {
    let cfg = ExperimentConfig::new("dedup").insts(o.insts).seed(o.seed);
    let events = capture_events(&cfg);
    let meta = codec::TraceMeta {
        workload: "dedup".to_owned(),
        seed: o.seed,
        insts: o.insts,
        baseline_cycles: 0,
        events: events.len() as u64,
    };
    let (n, cycles, secs, allocs) = best_of(o, || {
        let mut n = 0u64;
        for _ in 0..MICRO_REPEATS {
            let mut buf = Vec::with_capacity(events.len() * 10);
            codec::write_trace(&mut buf, &meta, &events).expect("encode");
            let (_, decoded) = codec::read_trace(&mut buf.as_slice()).expect("decode");
            assert_eq!(decoded.len(), events.len());
            n += events.len() as u64;
        }
        (n, 0)
    });
    ScenarioResult {
        name: "codec",
        events: n,
        cycles,
        secs,
        allocs,
    }
}

fn bench_loopback(o: &PerfOpts) -> ScenarioResult {
    use fireguard_server::{run_session, serve, ServeOptions, SessionConfig};
    let cfg = ExperimentConfig::new("swaptions")
        .kernel(KernelId::PMC, 4)
        .insts(o.insts)
        .seed(o.seed);
    let events = Arc::new(capture_events(&cfg));
    let session = SessionConfig::from_experiment(&cfg, 0);
    let handle = serve(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        max_sessions: Some((o.warmup + o.samples.max(1)) as u64),
        ..ServeOptions::default()
    })
    .expect("loopback bind");
    let addr = handle.local_addr().to_string();
    let (events_n, cycles, secs, allocs) = best_of(o, || {
        let out = run_session(&addr, &session, Arc::clone(&events), 512).expect("loopback session");
        (out.events_sent, out.summary.cycles)
    });
    handle.join();
    ScenarioResult {
        name: "loopback",
        events: events_n,
        cycles,
        secs,
        allocs,
    }
}

/// The loopback scenario with the fleet front-end in the path: measures
/// what the router's decode → buffer → re-encode hop costs relative to
/// `loopback` (the two share a workload and client batch size on
/// purpose). Sessions are ticketed, so the full resumable protocol —
/// SESSION handshake, event buffering, ACK frames — is on the clock.
fn bench_routed(o: &PerfOpts) -> ScenarioResult {
    use fireguard_server::{
        route, run_routed_session, RoutedOptions, RouterOptions, SessionConfig,
    };
    use std::sync::atomic::{AtomicU64, Ordering};
    let cfg = ExperimentConfig::new("swaptions")
        .kernel(KernelId::PMC, 4)
        .insts(o.insts)
        .seed(o.seed);
    let events = Arc::new(capture_events(&cfg));
    let session = SessionConfig::from_experiment(&cfg, 0);
    let handle = route(RouterOptions {
        backend_workers: 1,
        max_sessions: Some((o.warmup + o.samples.max(1)) as u64),
        ..RouterOptions::default()
    })
    .expect("router bind");
    let addr = handle.local_addr().to_string();
    let next_id = AtomicU64::new(1);
    let (events_n, cycles, secs, allocs) = best_of(o, || {
        let id = next_id.fetch_add(1, Ordering::Relaxed);
        let out = run_routed_session(&addr, &session, Arc::clone(&events), RoutedOptions::new(id))
            .expect("routed session");
        (events.len() as u64, out.outcome.summary.cycles)
    });
    handle.join();
    ScenarioResult {
        name: "routed",
        events: events_n,
        cycles,
        secs,
        allocs,
    }
}

// ---- reporting -------------------------------------------------------------

/// Runs the selected scenarios (all of them when `names` is empty).
///
/// # Errors
///
/// Returns a message naming any unknown scenario.
pub fn run_scenarios(opts: &PerfOpts, names: &[String]) -> Result<Vec<ScenarioResult>, String> {
    let selected: Vec<&Scenario> = if names.is_empty() {
        SCENARIOS.iter().collect()
    } else {
        names
            .iter()
            .map(|n| {
                find_scenario(n).ok_or_else(|| {
                    format!(
                        "unknown bench scenario {n:?} (expected one of: {})",
                        SCENARIOS
                            .iter()
                            .map(|s| s.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
            })
            .collect::<Result<_, _>>()?
    };
    Ok(selected.iter().map(|s| (s.run)(opts)).collect())
}

/// The shared throughput cells (`events/s` at integer precision,
/// `ns/event` at 1 decimal) — also used by the loadgen report so service
/// and simulator numbers read identically.
pub fn throughput_cells(events_per_sec: f64, ns_per_event: f64) -> [Cell; 2] {
    [
        Cell::Float {
            v: events_per_sec,
            prec: 0,
        },
        Cell::Float {
            v: ns_per_event,
            prec: 1,
        },
    ]
}

/// Renders results (optionally with a baseline for speedup columns).
pub fn report(
    opts: &PerfOpts,
    results: &[ScenarioResult],
    baseline: Option<&[(String, f64)]>,
) -> Report {
    let mut r = Report::new();
    r.text(format!(
        "fireguard bench: {} insts, seed {}, {} warmup + {} samples (best), {} workers, \
         pipeline {} on {} host cpus",
        opts.insts,
        opts.seed,
        opts.warmup,
        opts.samples,
        opts.workers,
        opts.pipeline,
        host_cpus()
    ));
    r.blank();
    let mut t = Table::new(&[
        ("scenario", 13),
        ("events", 10),
        ("wall_ms", 9),
        ("events/s", 12),
        ("cycles/s", 12),
        ("ns/event", 9),
        ("allocs/event", 13),
        ("vs_baseline", 12),
    ]);
    for res in results {
        let base = baseline.and_then(|b| {
            b.iter()
                .find(|(n, _)| n == res.name)
                .map(|&(_, eps)| res.events_per_sec() / eps.max(1e-12))
        });
        let [eps, nspe] = throughput_cells(res.events_per_sec(), res.ns_per_event());
        t.row(vec![
            Cell::Str(res.name.to_owned()),
            Cell::Int(res.events as i64),
            Cell::Float {
                v: res.secs * 1e3,
                prec: 1,
            },
            eps,
            if res.cycles == 0 {
                Cell::Missing
            } else {
                Cell::Float {
                    v: res.cycles_per_sec(),
                    prec: 0,
                }
            },
            nspe,
            Cell::Float {
                v: res.allocs_per_event(),
                prec: 4,
            },
            match base {
                Some(x) => Cell::Float { v: x, prec: 2 },
                None => Cell::Missing,
            },
        ]);
    }
    r.table(t);
    r
}

// ---- profile ---------------------------------------------------------------

/// `fireguard bench --profile`: stage-level cycle attribution.
///
/// Times a ladder of nested measured regions over one workload (dedup,
/// Sanitizer on 4 µcores) — trace generation alone, the bare OoO core
/// consuming that trace, and the full FireGuard system — and attributes
/// the ns/event deltas to the stage each rung adds. The filter/kernel
/// split of the FireGuard overhead is an *estimate*: wall clock cannot
/// observe the two inside one run, so the overhead is apportioned by the
/// relative work volumes the engine counters record (filter packets vs
/// µ-instructions retired). The `.fgt` codec rung is a separate path
/// (record/replay), listed for context, not part of the end-to-end sum.
pub fn profile_report(o: &PerfOpts) -> Report {
    use fireguard_boom::{BoomConfig, Core, NullSink};
    use fireguard_soc::experiments::run_fireguard_telemetry;
    use fireguard_trace::{TraceGenerator, WorkloadProfile};

    let cfg = ExperimentConfig::new("dedup")
        .kernel(KernelId::ASAN, 4)
        .insts(o.insts)
        .seed(o.seed);
    let profile = WorkloadProfile::parsec("dedup").expect("known workload");

    // Rung 1: trace generation alone.
    let (gen_events, _, gen_secs, _) = best_of(o, || {
        let mut sum = 0u64;
        let mut n = 0u64;
        let g = TraceGenerator::new(profile.clone(), o.seed);
        for t in g.take(o.insts as usize) {
            sum = sum.wrapping_add(t.pc);
            n += 1;
        }
        std::hint::black_box(sum);
        (n, 0)
    });
    // Rung 2: the bare OoO core consuming the same trace.
    let (core_events, _, core_secs, _) = best_of(o, || {
        let trace = TraceGenerator::new(profile.clone(), o.seed);
        let mut core = Core::new(BoomConfig::default(), trace);
        let stats = core.run_insts(o.insts, &mut NullSink);
        (stats.committed, stats.cycles)
    });
    // Rung 3: the full system, with the engine counters sampled.
    let mut snap = None;
    let (e2e_events, e2e_cycles, e2e_secs, _) = best_of(o, || {
        let (run, counters, _slots) = run_fireguard_telemetry(&cfg);
        let out = (run.committed, run.cycles);
        snap = Some((run, counters));
        out
    });
    let (run, counters) = snap.expect("at least one sample ran");
    // Side rung: the .fgt codec round trip.
    let codec_res = bench_codec(o);

    let nspe = |secs: f64, events: u64| secs * 1e9 / events.max(1) as f64;
    let gen_ns = nspe(gen_secs, gen_events);
    let core_ns = nspe(core_secs, core_events);
    let e2e_ns = nspe(e2e_secs, e2e_events);
    let core_attr = (core_ns - gen_ns).max(0.0);
    let overhead_ns = (e2e_ns - core_ns).max(0.0);
    // Work-volume split: the filter touches every emitted packet once and
    // the kernels execute retired µ-instructions; both are unit-cost
    // proxies, so their ratio apportions the unobservable boundary.
    let filter_w = counters.packets as f64;
    let kernel_w = counters.ucore_retired as f64;
    let total_w = (filter_w + kernel_w).max(1.0);
    let filter_attr = overhead_ns * filter_w / total_w;
    let kernel_attr = overhead_ns * kernel_w / total_w;

    let mut r = Report::new();
    r.text(format!(
        "fireguard bench --profile: {} insts, seed {}, {} warmup + {} samples (best); \
         dedup, Sanitizer on 4 ucores",
        o.insts, o.seed, o.warmup, o.samples
    ));
    r.text(format!(
        "end-to-end: {} events in {:.1} ms ({:.1} ns/event), {} simulated cycles, \
         slowdown {:.3}; filter/kernel split estimated by work volume",
        e2e_events,
        e2e_secs * 1e3,
        e2e_ns,
        e2e_cycles,
        run.slowdown
    ));
    r.blank();
    let mut t = Table::new(&[
        ("stage", 8),
        ("events", 10),
        ("wall_ms", 9),
        ("ns/event", 9),
        ("attr_ns/event", 14),
        ("share%", 7),
    ]);
    let pct = |attr: f64| Cell::Float {
        v: 100.0 * attr / e2e_ns.max(1e-12),
        prec: 1,
    };
    let f1 = |v: f64| Cell::Float { v, prec: 1 };
    let ms = |secs: f64| Cell::Float {
        v: secs * 1e3,
        prec: 1,
    };
    t.row(vec![
        Cell::Str("gen".into()),
        Cell::Int(gen_events as i64),
        ms(gen_secs),
        f1(gen_ns),
        f1(gen_ns),
        pct(gen_ns),
    ]);
    t.row(vec![
        Cell::Str("core".into()),
        Cell::Int(core_events as i64),
        ms(core_secs),
        f1(core_ns),
        f1(core_attr),
        pct(core_attr),
    ]);
    t.row(vec![
        Cell::Str("filter".into()),
        Cell::Int(counters.packets as i64),
        Cell::Missing,
        Cell::Missing,
        f1(filter_attr),
        pct(filter_attr),
    ]);
    t.row(vec![
        Cell::Str("kernel".into()),
        Cell::Int(counters.ucore_retired as i64),
        Cell::Missing,
        Cell::Missing,
        f1(kernel_attr),
        pct(kernel_attr),
    ]);
    t.row(vec![
        Cell::Str("codec".into()),
        Cell::Int(codec_res.events as i64),
        ms(codec_res.secs),
        f1(codec_res.ns_per_event()),
        Cell::Missing,
        Cell::Missing,
    ]);
    r.table(t);

    // The engine counters the e2e rung sampled, plus the simulator's own
    // stall attribution, so the wall-clock table above can be sanity
    // checked against simulated-time behavior.
    r.blank();
    r.text("engine counters (e2e rung):");
    let mut c = Table::new(&[("counter", 26), ("value", 14)]);
    let int = |v: u64| Cell::Int(v as i64);
    let rate = |hit: u64, miss: u64| Cell::Float {
        v: hit as f64 / (hit + miss).max(1) as f64,
        prec: 4,
    };
    for (name, cell) in [
        ("slow_edges", int(counters.slow_edges)),
        ("packets", int(counters.packets)),
        ("placeholders", int(counters.placeholders)),
        ("offers", int(counters.offers)),
        ("refusals", int(counters.refusals)),
        ("filter_ring_hwm", int(counters.filter_ring_hwm)),
        ("cdc_hwm", int(counters.cdc_hwm)),
        (
            "mean_mapper_occupancy",
            Cell::Float {
                v: counters.mapper_occupancy_sum as f64 / counters.slow_edges.max(1) as f64,
                prec: 3,
            },
        ),
        ("ucore_retired", int(counters.ucore_retired)),
        ("ucore_idle_cycles", int(counters.ucore_idle_cycles)),
        ("ucore_parks", int(counters.ucore_parks)),
        ("ucore_wakes", int(counters.ucore_wakes)),
        ("noc_flits", int(counters.noc_flits)),
        ("noc_hops", int(counters.noc_hops)),
        ("noc_queue_cycles", int(counters.noc_queue_cycles)),
        (
            "cache_hit_rate",
            rate(counters.cache_hits, counters.cache_misses),
        ),
        ("tlb_hit_rate", rate(counters.tlb_hits, counters.tlb_misses)),
        ("stall_filter_cycles", int(run.bottlenecks.filter)),
        ("stall_mapper_cycles", int(run.bottlenecks.mapper)),
        ("stall_cdc_cycles", int(run.bottlenecks.cdc)),
        ("stall_ucore_cycles", int(run.bottlenecks.ucore)),
    ] {
        c.row(vec![Cell::Str(name.into()), cell]);
    }
    r.table(c);
    r
}

// ---- JSON baseline ---------------------------------------------------------

/// Recording protocol embedded in every committed `BENCH_*.json`, so a
/// baseline is interpretable without the commit that recorded it. Absolute
/// events/s are host-dependent (the `--check` gate compares ratios and
/// annotates pipeline/host_cpus mismatches); within one file all scenarios
/// share one host, one build and the settings in the header.
const METHODOLOGY: &str = "median of --samples runs after --warmup warmup runs, one process, \
workers/pipeline as recorded per scenario; fig7a memoizes the software-baseline simulation per \
(scheme, workload, seed, insts) exactly like the process-wide bare-core baseline cache; \
absolute events/s are host-dependent - gate on ratios, not raw numbers";

/// Serialises results as the committed `BENCH_*.json` format (one scenario
/// object per line, so line-oriented tools and [`parse_baseline`] stay
/// trivial). `baseline` carries the pre-optimization events/s measured in
/// this same harness, embedded for the record.
pub fn to_json(
    opts: &PerfOpts,
    results: &[ScenarioResult],
    baseline: Option<&[(String, f64)]>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"methodology\": \"{METHODOLOGY}\",\n"));
    s.push_str(&format!(
        "  \"schema\": 1,\n  \"insts\": {},\n  \"seed\": {},\n  \"warmup\": {},\n  \"samples\": {},\n  \"workers\": {},\n  \"pipeline\": {},\n  \"host_cpus\": {},\n",
        opts.insts,
        opts.seed,
        opts.warmup,
        opts.samples,
        opts.workers,
        opts.pipeline,
        host_cpus()
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        let base = baseline.and_then(|b| b.iter().find(|(n, _)| n == r.name));
        s.push_str(&format!(
            "    {{\"name\":\"{}\",\"events\":{},\"cycles\":{},\"wall_secs\":{:.6},\"events_per_sec\":{:.1},\"cycles_per_sec\":{:.1},\"ns_per_event\":{:.2},\"allocs\":{},\"allocs_per_event\":{:.5},\"pipeline\":{},\"host_cpus\":{}",
            r.name,
            r.events,
            r.cycles,
            r.secs,
            r.events_per_sec(),
            r.cycles_per_sec(),
            r.ns_per_event(),
            r.allocs,
            r.allocs_per_event(),
            opts.pipeline,
            host_cpus(),
        ));
        if let Some((_, eps)) = base {
            s.push_str(&format!(
                ",\"baseline_events_per_sec\":{:.1},\"speedup\":{:.3}",
                eps,
                r.events_per_sec() / eps.max(1e-12)
            ));
        }
        s.push('}');
        if i + 1 < results.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `(name, events_per_sec)` pairs from a `BENCH_*.json` file
/// written by [`to_json`] (line-oriented scan; no JSON parser needed).
pub fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(at) = line.find("\"name\":\"") else {
            continue;
        };
        let rest = &line[at + 8..];
        let Some(end) = rest.find('"') else { continue };
        let name = rest[..end].to_owned();
        let Some(at) = line.find("\"events_per_sec\":") else {
            continue;
        };
        let rest = &line[at + 17..];
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// Extracts the `(pipeline, host_cpus)` a `BENCH_*.json` baseline was
/// recorded under, or `None` for baselines that predate the fields.
/// Comparing wall-clock numbers across hosts or pipeline widths is
/// legitimate but must be *visible*, never silent — the caller prints a
/// note when these differ from the current run's.
pub fn parse_host_meta(json: &str) -> Option<(u32, usize)> {
    let field = |name: &str| -> Option<u64> {
        let key = format!("\"{name}\":");
        let at = json.find(&key)?;
        let rest = &json[at + key.len()..];
        let num: String = rest
            .chars()
            .skip_while(|c| *c == ' ')
            .take_while(char::is_ascii_digit)
            .collect();
        num.parse().ok()
    };
    Some((field("pipeline")? as u32, field("host_cpus")? as usize))
}

/// The fractional events/s regression the CI gate tolerates (noise floor).
pub const REGRESSION_TOLERANCE: f64 = 0.10;

/// Allocations per event above which the steady-state cycle loop is
/// considered to have regressed its zero-alloc contract (amortised slack
/// for the rare table resize).
pub const STEADY_STATE_ALLOC_BUDGET: f64 = 0.001;

/// Compares `results` against a parsed baseline: any scenario more than
/// [`REGRESSION_TOLERANCE`] slower fails, as does a `steady-state` run
/// that allocates per event.
///
/// # Errors
///
/// Returns one message per violated contract, joined with newlines.
pub fn check_against(results: &[ScenarioResult], baseline: &[(String, f64)]) -> Result<(), String> {
    let mut problems = Vec::new();
    for r in results {
        match baseline.iter().find(|(n, _)| n == r.name) {
            Some((_, base)) => {
                let ratio = r.events_per_sec() / base.max(1e-12);
                if ratio < 1.0 - REGRESSION_TOLERANCE {
                    problems.push(format!(
                        "{}: events/s regressed to {:.0} ({:.1}% of the {:.0} baseline)",
                        r.name,
                        r.events_per_sec(),
                        ratio * 100.0,
                        base
                    ));
                }
            }
            // A gated scenario the baseline does not know is an error,
            // not a silent pass — otherwise a renamed scenario or a
            // subset-regenerated baseline would leave it ungated.
            None => problems.push(format!(
                "{}: scenario missing from the baseline file (regenerate it with --out)",
                r.name
            )),
        }
        if r.name == "steady-state" && r.allocs_per_event() > STEADY_STATE_ALLOC_BUDGET {
            problems.push(format!(
                "steady-state: {} allocations over {} events breaks the zero-alloc cycle-loop contract",
                r.allocs, r.events
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PerfOpts {
        PerfOpts {
            insts: 1_000,
            seed: 42,
            workers: 1,
            warmup: 0,
            samples: 1,
            pipeline: 1,
        }
    }

    #[test]
    fn json_round_trips_events_per_sec() {
        let results = vec![ScenarioResult {
            name: "gen",
            events: 1000,
            cycles: 0,
            secs: 0.002,
            allocs: 5,
        }];
        let json = to_json(&tiny(), &results, None);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "gen");
        assert!((parsed[0].1 - 500_000.0).abs() < 1.0, "{}", parsed[0].1);
    }

    #[test]
    fn check_flags_regressions_and_tolerates_noise() {
        let mk = |secs| ScenarioResult {
            name: "gen",
            events: 1000,
            cycles: 0,
            secs,
            allocs: 0,
        };
        let baseline = vec![("gen".to_owned(), 1_000_000.0)];
        assert!(check_against(&[mk(0.00105)], &baseline).is_ok(), "5% noise");
        let err = check_against(&[mk(0.002)], &baseline).expect_err("2x slower");
        assert!(err.contains("regressed"));
        let err = check_against(&[mk(0.001)], &[]).expect_err("unknown scenario");
        assert!(err.contains("missing from the baseline"));
    }

    #[test]
    fn check_enforces_steady_state_alloc_contract() {
        let r = ScenarioResult {
            name: "steady-state",
            events: 100,
            cycles: 100,
            secs: 0.001,
            allocs: 50,
        };
        let err = check_against(&[r], &[]).expect_err("allocating loop");
        assert!(err.contains("zero-alloc"));
    }

    #[test]
    fn scenario_registry_resolves() {
        assert!(find_scenario("fig7a").is_some());
        assert!(find_scenario("steady-state").is_some());
        assert!(find_scenario("e2e-taint").is_some());
        assert!(find_scenario("e2e-mte").is_some());
        assert!(find_scenario("e2e-all").is_some());
        assert!(find_scenario("nope").is_none());
    }

    #[test]
    fn new_kernel_scenarios_run_at_a_tiny_budget() {
        for name in ["e2e-taint", "e2e-mte", "e2e-all"] {
            let r = (find_scenario(name).unwrap().run)(&tiny());
            assert!(r.events >= 1_000, "{name}: {} events", r.events);
            assert!(r.cycles > 0, "{name} simulates cycles");
        }
    }

    #[test]
    fn gen_scenario_runs_and_counts_events() {
        let r = bench_gen(&tiny());
        assert_eq!(r.events, 1_000 * MICRO_REPEATS);
        assert!(r.secs > 0.0);
        assert!(r.events_per_sec() > 0.0);
    }

    #[test]
    fn codec_scenario_round_trips() {
        let r = bench_codec(&tiny());
        assert!(r.events >= 1_000);
    }
}
