//! Figure/table drivers: every plot and table in the paper's evaluation,
//! as pure functions from [`FigOpts`] to a [`Report`].
//!
//! Each driver expands its experiment grid into independent [`JobSpec`]s,
//! shards them across the [`fireguard_soc::sweep`] worker pool, and
//! assembles the results into a structured report. The legacy per-figure
//! binaries (`fig7a` … `mapper_ablation`) and the unified `fireguard` CLI
//! both dispatch through the [`FIGURES`] registry, so their output is
//! byte-identical by construction — and independent of the worker count,
//! because the sweep engine re-orders results by job index.

use fireguard_boom::BoomConfig;
use fireguard_core::FilterConfig;
use fireguard_kernels::{KernelId, ProgrammingModel, SoftwareScheme};
use fireguard_soc::experiments::workloads;
use fireguard_soc::report::{geomean, percentile};
use fireguard_soc::sweep::{run_jobs, JobOutput, JobSpec};
use fireguard_soc::{Cell, ExperimentConfig, Report, RunResult, Table};
use fireguard_trace::{AttackKind, AttackPlan};
use fireguard_ucore::{IsaxMode, UcoreConfig};

// The paper's four kernels, as registry ids (local aliases keep the
// figure grids readable).
const PMC: KernelId = KernelId::PMC;
const SHADOW_STACK: KernelId = KernelId::SHADOW_STACK;
const ASAN: KernelId = KernelId::ASAN;
const UAF: KernelId = KernelId::UAF;

/// Options shared by every figure driver.
#[derive(Debug, Clone)]
pub struct FigOpts {
    /// Instructions per simulation run.
    pub insts: u64,
    /// Trace seed.
    pub seed: u64,
    /// Worker threads for the sweep engine.
    pub workers: usize,
    /// In-session stage-pipeline width (1 = serial, 0 = auto-size to the
    /// host). Results are bit-identical at every width.
    pub pipeline: u32,
}

impl FigOpts {
    /// Reads the environment configuration (`FG_INSTS`, `FG_QUICK`,
    /// `FG_JOBS`, `FG_PIPELINE`) exactly as the legacy binaries do.
    pub fn from_env() -> FigOpts {
        FigOpts {
            insts: crate::insts(),
            seed: crate::SEED,
            workers: fireguard_soc::default_workers(),
            pipeline: std::env::var("FG_PIPELINE")
                .ok()
                .and_then(|v| {
                    if v.eq_ignore_ascii_case("auto") {
                        Some(0)
                    } else {
                        v.parse().ok()
                    }
                })
                .unwrap_or(1),
        }
    }
}

/// One entry in the figure registry.
pub struct Figure {
    /// Canonical CLI subcommand name (kebab-case).
    pub name: &'static str,
    /// Legacy binary name (snake_case; equals `name` for most figures).
    pub bin: &'static str,
    /// One-line description for `fireguard list`.
    pub summary: &'static str,
    /// The driver.
    pub run: fn(&FigOpts) -> Report,
}

/// Every figure and table of the paper's evaluation, in paper order.
pub const FIGURES: &[Figure] = &[
    Figure {
        name: "fig7a",
        bin: "fig7a",
        summary: "slowdown vs software techniques, per PARSEC workload",
        run: fig7a,
    },
    Figure {
        name: "fig7b",
        bin: "fig7b",
        summary: "slowdown with combined safeguards",
        run: fig7b,
    },
    Figure {
        name: "fig8",
        bin: "fig8",
        summary: "detection latency distributions under attack campaigns",
        run: fig8,
    },
    Figure {
        name: "fig9",
        bin: "fig9",
        summary: "bottleneck breakdown vs event-filter width",
        run: fig9,
    },
    Figure {
        name: "fig10",
        bin: "fig10",
        summary: "slowdown vs ucore count, per kernel",
        run: fig10,
    },
    Figure {
        name: "fig11",
        bin: "fig11",
        summary: "programming-model comparison (conventional/Duff's/unroll/hybrid)",
        run: fig11,
    },
    Figure {
        name: "table2",
        bin: "table2",
        summary: "modelled hardware configuration",
        run: table2,
    },
    Figure {
        name: "table3",
        bin: "table3",
        summary: "feasibility of FireGuard in commercial SoCs",
        run: table3,
    },
    Figure {
        name: "area",
        bin: "area",
        summary: "hardware overhead of the 14nm physical implementation",
        run: area,
    },
    Figure {
        name: "isax-ablation",
        bin: "isax_ablation",
        summary: "MA-stage vs post-commit ISAX placement ablation",
        run: isax_ablation,
    },
    Figure {
        name: "mapper-ablation",
        bin: "mapper_ablation",
        summary: "scalar vs superscalar mapper ablation",
        run: mapper_ablation,
    },
];

/// Looks a figure up by CLI name or legacy binary name.
pub fn find(name: &str) -> Option<&'static Figure> {
    FIGURES.iter().find(|f| f.name == name || f.bin == name)
}

/// Entry point for the legacy per-figure binaries: read the environment,
/// run the named figure, and print it human-formatted to stdout.
///
/// # Panics
///
/// Panics if `bin` is not in the registry or stdout writing fails.
pub fn run_bin(bin: &str) {
    let fig = find(bin).unwrap_or_else(|| panic!("unknown figure binary {bin:?}"));
    let report = (fig.run)(&FigOpts::from_env());
    let stdout = std::io::stdout();
    fireguard_soc::render(&report, fireguard_soc::Format::Human, &mut stdout.lock())
        .expect("writing the report to stdout failed");
}

fn fg(o: &FigOpts, w: &str, kind: KernelId, ucores: usize) -> JobSpec {
    JobSpec::FireGuard(
        ExperimentConfig::new(w)
            .kernel(kind, ucores)
            .insts(o.insts)
            .seed(o.seed)
            .pipeline(o.pipeline),
    )
}

fn ha(o: &FigOpts, w: &str, kind: KernelId) -> JobSpec {
    JobSpec::FireGuard(
        ExperimentConfig::new(w)
            .kernel_ha(kind)
            .insts(o.insts)
            .seed(o.seed)
            .pipeline(o.pipeline),
    )
}

fn sw(o: &FigOpts, w: &str, scheme: SoftwareScheme) -> JobSpec {
    JobSpec::Software {
        scheme,
        workload: w.to_owned(),
        seed: o.seed,
        insts: o.insts,
    }
}

/// Figure 7(a): FireGuard vs software techniques, per PARSEC workload.
fn fig7a(o: &FigOpts) -> Report {
    let ws = workloads();
    let mut jobs = Vec::new();
    for &w in &ws {
        jobs.extend([
            fg(o, w, PMC, 4),
            ha(o, w, PMC),
            fg(o, w, SHADOW_STACK, 4),
            ha(o, w, SHADOW_STACK),
            sw(o, w, SoftwareScheme::ShadowStackAArch64),
            fg(o, w, ASAN, 4),
            sw(o, w, SoftwareScheme::AsanAArch64),
            sw(o, w, SoftwareScheme::AsanX86),
            fg(o, w, UAF, 4),
            sw(o, w, SoftwareScheme::DangSanX86),
        ]);
    }
    let outs = run_jobs(jobs, o.workers);

    let mut r = Report::new();
    r.text("Figure 7(a): slowdown running PARSEC with each safeguard");
    r.text("(FireGuard kernels on 4 ucores; HA = hardware accelerator)");
    r.blank();
    let mut t = Table::new(&[
        ("workload", 14),
        ("PMC.4u", 8),
        ("PMC.HA", 8),
        ("SS.4u", 8),
        ("SS.HA", 8),
        ("SS.sw", 8),
        ("SAN.4u", 8),
        ("SAN.arm", 8),
        ("SAN.x86", 8),
        ("UaF.4u", 8),
        ("DangSan", 8),
    ]);
    let mut geos = vec![Vec::new(); 10];
    for (wi, &w) in ws.iter().enumerate() {
        let mut cells = vec![Cell::Str(w.to_owned())];
        for (i, out) in outs[wi * 10..(wi + 1) * 10].iter().enumerate() {
            let v = out.slowdown();
            geos[i].push(v);
            cells.push(Cell::slowdown(v));
        }
        t.row(cells);
    }
    let mut cells = vec![Cell::Str("geomean".to_owned())];
    cells.extend(geos.iter().map(|g| Cell::slowdown(geomean(g))));
    t.row(cells);
    r.table(t);
    r.blank();
    r.text("paper (geomean): PMC.4u 1.025  SS.4u 1.021  SS.sw 1.079  SAN.4u 1.39  SAN.arm 2.635  SAN.x86 1.915  UaF.4u 1.42  HA ~1.00");
    r
}

/// Figure 7(b): combining safeguards — the dominant kernel dominates.
fn fig7b(o: &FigOpts) -> Report {
    type Combo = (&'static str, &'static [(KernelId, bool)]);
    const COMBOS: &[Combo] = &[
        ("SS+PMC", &[(SHADOW_STACK, false), (PMC, false)]),
        ("AS+PMC", &[(ASAN, false), (PMC, false)]),
        ("UaF+PMC", &[(UAF, false), (PMC, false)]),
        ("UaF+AS", &[(UAF, false), (ASAN, false)]),
        ("SS+AS", &[(SHADOW_STACK, false), (ASAN, false)]),
        (
            "SS+PMC+AS",
            &[(SHADOW_STACK, true), (PMC, false), (ASAN, false)],
        ),
        (
            "SS+PMC+UaF",
            &[(SHADOW_STACK, true), (PMC, false), (UAF, false)],
        ),
    ];
    let ws = workloads();
    let mut jobs = Vec::new();
    for (_, kernels) in COMBOS {
        for &w in &ws {
            let mut cfg = ExperimentConfig::new(w)
                .insts(o.insts)
                .seed(o.seed)
                .pipeline(o.pipeline);
            for (kind, as_ha) in *kernels {
                cfg = if *as_ha {
                    cfg.kernel_ha(*kind)
                } else {
                    cfg.kernel(*kind, 4)
                };
            }
            jobs.push(JobSpec::FireGuard(cfg));
        }
    }
    let outs = run_jobs(jobs, o.workers);

    let mut r = Report::new();
    r.text("Figure 7(b): slowdown with combined safeguards (geomean over PARSEC)");
    r.text("(4 ucores per kernel; SS as HA in the three-kernel deployments)");
    r.blank();
    let mut t = Table::new(&[("combination", 14), ("geomean", 10)]);
    for (ci, (name, _)) in COMBOS.iter().enumerate() {
        let slice = &outs[ci * ws.len()..(ci + 1) * ws.len()];
        let geo = geomean(&slice.iter().map(JobOutput::slowdown).collect::<Vec<_>>());
        t.row(vec![Cell::Str((*name).to_owned()), Cell::slowdown(geo)]);
    }
    r.table(t);
    r.blank();
    r.text("paper: pairs track the heavier member (e.g. SS+PMC ~1.03, AS-bearing combos ~1.4); slowdowns do not multiply");
    r
}

/// Figure 8: detection latency while using 4 µcores (unit: ns).
fn fig8(o: &FigOpts) -> Report {
    let n = o.insts;
    let kernels = [
        (SHADOW_STACK, AttackKind::RetHijack, "Shadow"),
        (ASAN, AttackKind::OutOfBounds, "Sanitizer"),
        (UAF, AttackKind::UseAfterFree, "UaF"),
        (PMC, AttackKind::BoundsViolation, "PMC"),
    ];
    let ws = workloads();
    let mut jobs = Vec::new();
    for (kind, attack, _) in kernels {
        for &w in &ws {
            let plan = AttackPlan::campaign(&[attack], 60, n / 10, n - n / 10, 7);
            jobs.push(JobSpec::FireGuard(
                ExperimentConfig::new(w)
                    .kernel(kind, 4)
                    .insts(n)
                    .seed(o.seed)
                    .pipeline(o.pipeline)
                    .attacks(plan),
            ));
        }
    }
    let outs = run_jobs(jobs, o.workers);

    let mut r = Report::new();
    r.text("Figure 8: detection latency distribution, 4 ucores per kernel (ns)");
    r.blank();
    let mut t = Table::new(&[
        ("workload", 14),
        ("kernel", 10),
        ("n", 4),
        ("min", 8),
        ("p50", 8),
        ("p90", 8),
        ("max", 9),
    ]);
    for (ki, (_, _, label)) in kernels.iter().enumerate() {
        for (wi, &w) in ws.iter().enumerate() {
            let lats = outs[ki * ws.len() + wi]
                .clone()
                .into_run()
                .attack_latencies_ns();
            let mut cells = vec![
                Cell::Str(w.to_owned()),
                Cell::Str((*label).to_owned()),
                Cell::Int(lats.len() as i64),
            ];
            if lats.is_empty() {
                cells.extend((0..4).map(|_| Cell::Missing));
            } else {
                for v in [
                    lats[0],
                    percentile(&lats, 50.0),
                    percentile(&lats, 90.0),
                    lats[lats.len() - 1],
                ] {
                    cells.push(Cell::Float { v, prec: 0 });
                }
            }
            t.row(cells);
        }
    }
    r.table(t);
    r.blank();
    r.text("paper: PMC <50ns; Shadow worst-case 220ns (x264); Sanitizer median <200ns with tails >2000ns; UaF in between");
    r
}

/// Figure 9: cumulative bottlenecks vs event-filter width.
fn fig9(o: &FigOpts) -> Report {
    const WIDTHS: [usize; 3] = [4, 2, 1];
    let ws = workloads();
    let mut jobs = Vec::new();
    for width in WIDTHS {
        for &w in &ws {
            jobs.push(JobSpec::FireGuard(
                ExperimentConfig::new(w)
                    .kernel(ASAN, 4)
                    .filter_width(width)
                    .insts(o.insts)
                    .seed(o.seed)
                    .pipeline(o.pipeline),
            ));
        }
    }
    let outs = run_jobs(jobs, o.workers);
    let runs: Vec<RunResult> = outs.into_iter().map(JobOutput::into_run).collect();

    let mut r = Report::new();
    r.text("Figure 9: bottleneck decomposition vs filter width (Sanitizer, 4 ucores)");
    r.blank();
    let mut summary = Table::new(&[
        ("width", 6),
        ("geomean", 9),
        ("filter%", 9),
        ("mapper%", 9),
        ("cdc%", 9),
        ("ucores%", 9),
    ]);
    for (i, width) in WIDTHS.iter().enumerate() {
        let slice = &runs[i * ws.len()..(i + 1) * ws.len()];
        let geo = geomean(&slice.iter().map(|r| r.slowdown).collect::<Vec<_>>());
        let cycles: u64 = slice.iter().map(|r| r.cycles).sum();
        let pct = |x: u64| Cell::Float {
            v: 100.0 * x as f64 / cycles as f64,
            prec: 2,
        };
        summary.row(vec![
            Cell::Int(*width as i64),
            Cell::slowdown(geo),
            pct(slice.iter().map(|r| r.bottlenecks.filter).sum()),
            pct(slice.iter().map(|r| r.bottlenecks.mapper).sum()),
            pct(slice.iter().map(|r| r.bottlenecks.cdc).sum()),
            pct(slice.iter().map(|r| r.bottlenecks.ucore).sum()),
        ]);
    }
    r.table(summary);
    for (i, width) in WIDTHS.iter().enumerate() {
        r.blank();
        r.text(format!("filter width {width}: per-workload breakdown"));
        let mut t = Table::new(&[
            ("workload", 14),
            ("slowdown", 9),
            ("filter%", 9),
            ("mapper%", 9),
            ("cdc%", 9),
            ("ucores%", 9),
        ]);
        for (wi, &w) in ws.iter().enumerate() {
            let run = &runs[i * ws.len() + wi];
            let pct = |x: u64| Cell::Float {
                v: 100.0 * x as f64 / run.cycles as f64,
                prec: 2,
            };
            t.row(vec![
                Cell::Str(w.to_owned()),
                Cell::slowdown(run.slowdown),
                pct(run.bottlenecks.filter),
                pct(run.bottlenecks.mapper),
                pct(run.bottlenecks.cdc),
                pct(run.bottlenecks.ucore),
            ]);
        }
        r.table(t);
    }
    r.blank();
    r.text("paper: a 4-wide filter keeps up with commit; narrowing to 2 adds ~16% geomean overhead and to 1 adds ~34%, with the filter bar dominating the added stall time");
    r
}

/// Figure 10: slowdown vs number of µcores, one panel per kernel.
fn fig10(o: &FigOpts) -> Report {
    type Panel = (KernelId, &'static str, &'static [usize]);
    const PANELS: [Panel; 4] = [
        (PMC, "(a) PMC", &[2, 4, 6]),
        (SHADOW_STACK, "(b) Shadow Stack", &[2, 4, 6]),
        (ASAN, "(c) Address Sanitizer", &[2, 4, 6, 8, 12]),
        (UAF, "(d) Use-After-Free", &[2, 4, 6, 8, 12]),
    ];
    let ws = workloads();
    // One flat batch across all four panels maximises pool utilisation.
    let mut jobs = Vec::new();
    let mut spans = Vec::new();
    for (kind, _, counts) in PANELS {
        spans.push(jobs.len());
        for &w in &ws {
            for &c in counts {
                jobs.push(fg(o, w, kind, c));
            }
        }
    }
    let outs = run_jobs(jobs, o.workers);

    let mut r = Report::new();
    for (pi, (_, title, counts)) in PANELS.iter().enumerate() {
        r.blank();
        r.text(format!("Figure 10{title}: slowdown vs ucore count"));
        let mut cols: Vec<(String, usize)> = vec![("workload".to_owned(), 14)];
        cols.extend(counts.iter().map(|c| (format!("{c}u"), 8)));
        let colrefs: Vec<(&str, usize)> = cols.iter().map(|(n, w)| (n.as_str(), *w)).collect();
        let mut t = Table::new(&colrefs);
        let mut per_count = vec![Vec::new(); counts.len()];
        for (wi, &w) in ws.iter().enumerate() {
            let mut cells = vec![Cell::Str(w.to_owned())];
            for ci in 0..counts.len() {
                let v = outs[spans[pi] + wi * counts.len() + ci].slowdown();
                per_count[ci].push(v);
                cells.push(Cell::slowdown(v));
            }
            t.row(cells);
        }
        let mut cells = vec![Cell::Str("geomean".to_owned())];
        cells.extend(per_count.iter().map(|g| Cell::slowdown(geomean(g))));
        t.row(cells);
        r.table(t);
    }
    r.blank();
    r.text("paper: PMC 20%@2u -> 2%@4u; SS 7.3%@2u -> 2.1%@4u -> 0.4%@6u; Sanitizer 86%@2u with bodytrack/dedup/x264 >100%, x264 still 58.9%@12u; UaF heaviest, geomean 1.16x@12u with dedup flat");
    r
}

/// Figure 11: programming models (PMC on 4 µcores).
fn fig11(o: &FigOpts) -> Report {
    let ws = workloads();
    let mut jobs = Vec::new();
    for &w in &ws {
        for &m in ProgrammingModel::ALL.iter() {
            jobs.push(JobSpec::FireGuard(
                ExperimentConfig::new(w)
                    .kernel(PMC, 4)
                    .model(m)
                    .insts(o.insts)
                    .seed(o.seed)
                    .pipeline(o.pipeline),
            ));
        }
    }
    let outs = run_jobs(jobs, o.workers);

    let mut r = Report::new();
    r.text("Figure 11: slowdown of programming models (4-ucore PMC)");
    r.blank();
    let mut t = Table::new(&[
        ("workload", 14),
        ("Conven.", 9),
        ("Duff's", 9),
        ("Unroll", 9),
        ("Hybrid", 9),
    ]);
    let n_models = ProgrammingModel::ALL.len();
    let mut per_model = vec![Vec::new(); n_models];
    for (wi, &w) in ws.iter().enumerate() {
        let mut cells = vec![Cell::Str(w.to_owned())];
        for mi in 0..n_models {
            let v = outs[wi * n_models + mi].slowdown();
            per_model[mi].push(v);
            cells.push(Cell::slowdown(v));
        }
        t.row(cells);
    }
    let mut cells = vec![Cell::Str("geomean".to_owned())];
    cells.extend(per_model.iter().map(|g| Cell::slowdown(geomean(g))));
    t.row(cells);
    r.table(t);
    r.blank();
    r.text("paper: conventional worst (outliers to 3.7x), Duff's better, unrolling better still, hybrid uniformly best");
    r
}

/// Table II: the hardware configuration this reproduction models.
fn table2(_o: &FigOpts) -> Report {
    let b = BoomConfig::default();
    let f = FilterConfig::default();
    let u = UcoreConfig::default();
    let mut r = Report::new();
    r.text("Table II: modelled hardware configuration");
    r.blank();
    r.text(format!(
        "Main core: {}-wide OoO SonicBOOM @ {:.1} GHz",
        b.commit_width,
        b.clock_hz / 1e9
    ));
    r.text(format!(
        "  {}-entry ROB, {}-entry IQ, {}-entry LDQ/STQ, {} Int/FP phys regs",
        b.rob_entries, b.iq_entries, b.ldq_entries, b.int_prf
    ));
    r.text(format!(
        "  {} Int ALUs, {} FP/Mul/Div, {} MEM, {} Jump, {} CSR",
        b.int_alus, b.fp_units, b.mem_units, b.jump_units, b.csr_units
    ));
    r.text("  TAGE (6 tables, 2-64b history), 256-entry BTB, 32-entry RAS");
    r.text(format!(
        "  L1I/L1D 32KB 8-way ({} MSHRs), L2 512KB, LLC 4MB, DDR3 model",
        b.dmem.l1_mshrs
    ));
    r.blank();
    r.text(format!(
        "FireGuard: {}-wide filter, {}-entry FIFOs",
        f.width, f.fifo_depth
    ));
    r.text("  mapper: scalar allocator + per-engine 8-entry CDC, fabric @1.6GHz");
    r.text(format!(
        "Analysis engine: in-order Rocket ucore @ {:.1} GHz, {}-entry message queues, 4KB 2-way L1",
        u.clock_hz / 1e9,
        u.input_capacity
    ));
    r
}

/// Table III: feasibility of FireGuard in commercial SoCs.
fn table3(_o: &FigOpts) -> Report {
    let mut r = Report::new();
    r.text("Table III: feasibility of FireGuard in commercial SoCs");
    r.blank();
    let mut t = Table::new(&[
        ("core", 12),
        ("soc", 11),
        ("freq", 6),
        ("tech", 6),
        ("area", 9),
        ("area@14", 9),
        ("ipc", 5),
        ("thr", 7),
        ("#ucores", 9),
        ("mm2/core", 8),
        ("%/core", 10),
        ("%/soc", 8),
    ]);
    for row in fireguard_area::table3() {
        t.row(vec![
            Cell::Str(row.core.name.to_owned()),
            Cell::Str(row.core.soc.to_owned()),
            Cell::Str(format!("{:.1}G", row.core.freq_ghz)),
            Cell::Str(row.core.tech.to_owned()),
            Cell::Float {
                v: row.core.area_native_mm2,
                prec: 2,
            },
            Cell::Float {
                v: row.core.area_14nm_mm2,
                prec: 2,
            },
            Cell::Float {
                v: row.core.ipc,
                prec: 2,
            },
            Cell::Float {
                v: row.norm_throughput,
                prec: 2,
            },
            Cell::Int(row.ucores as i64),
            Cell::Float {
                v: row.overhead_mm2,
                prec: 3,
            },
            Cell::Str(format!("{:.2}%", row.pct_of_core)),
            Cell::Str(format!("{:.2}%", row.pct_of_soc)),
        ]);
    }
    r.table(t);
    r.blank();
    r.text("paper: BOOM 4u/25.9%/9.86%; FireStorm 12u/3.6%/0.47%; Cortex-A76 5u/9.6%/0.57%; AlderLake-S 13u/3.8%/0.99%");
    r
}

/// Section IV-F: hardware overhead of the 14 nm physical implementation.
fn area(_o: &FigOpts) -> Report {
    let c = fireguard_area::components();
    let mut r = Report::new();
    r.text("Section IV-F: hardware overhead (Synopsys 14nm generic PDK)");
    r.blank();
    r.text(format!("SoC area:             {:.3} mm2", c.soc_mm2));
    r.text(format!("BOOM core:            {:.3} mm2", c.boom_mm2));
    r.text(format!("Rocket ucore:         {:.3} mm2", c.rocket_mm2));
    r.text(format!("event filter:         {:.3} mm2", c.filter_mm2));
    r.text(format!("mapper:               {:.3} mm2", c.mapper_mm2));
    r.text(format!(
        "transport total:      {:.3} mm2 = {:.2}% of BOOM, {:.2}% of SoC",
        c.transport_mm2(),
        c.transport_pct_of_boom(),
        c.transport_pct_of_soc()
    ));
    let fg_mm2 = c.fireguard_4ucore_mm2();
    r.text(format!(
        "4-ucore FireGuard:    {:.3} mm2 = {:.1}% of BOOM, {:.2}% of SoC",
        fg_mm2,
        100.0 * fg_mm2 / c.boom_mm2,
        100.0 * fg_mm2 / c.soc_mm2
    ));
    r.blank();
    r.text("paper: 2.91 / 1.107 / 0.061 / 0.032 / 0.011 mm2; transport 3.88%/1.48%; FireGuard 25.9%/9.86%");
    r
}

/// Design-choice ablation (paper §III-D): MA-stage vs post-commit ISAX.
fn isax_ablation(o: &FigOpts) -> Report {
    const MODES: [(IsaxMode, &str); 2] = [
        (IsaxMode::MaStage, "MA-stage"),
        (IsaxMode::PostCommit, "post-commit"),
    ];
    let ws = workloads();
    let mut jobs = Vec::new();
    for (mode, _) in MODES {
        for &w in &ws {
            jobs.push(JobSpec::FireGuard(
                ExperimentConfig::new(w)
                    .kernel(ASAN, 4)
                    .isax(mode)
                    .insts(o.insts)
                    .seed(o.seed)
                    .pipeline(o.pipeline),
            ));
        }
    }
    let outs = run_jobs(jobs, o.workers);

    let mut r = Report::new();
    r.text("ISAX placement ablation (Sanitizer, 4 ucores)");
    r.blank();
    let mut t = Table::new(&[("interface", 12), ("geomean", 9)]);
    for (mi, (_, name)) in MODES.iter().enumerate() {
        let slice = &outs[mi * ws.len()..(mi + 1) * ws.len()];
        let geo = geomean(&slice.iter().map(JobOutput::slowdown).collect::<Vec<_>>());
        t.row(vec![Cell::Str((*name).to_owned()), Cell::slowdown(geo)]);
    }
    r.table(t);
    r.blank();
    r.text("paper: Rocket's post-commit interface caused enough hazards to motivate the MA-stage redesign");
    r
}

/// Design-choice ablation (paper footnote 5): scalar vs superscalar mapper.
fn mapper_ablation(o: &FigOpts) -> Report {
    const WIDTHS: [usize; 3] = [1, 2, 4];
    let ws = workloads();
    let mut jobs = Vec::new();
    for width in WIDTHS {
        for &w in &ws {
            jobs.push(JobSpec::FireGuard(
                ExperimentConfig::new(w)
                    .kernel_ha(PMC)
                    .mapper_width(width)
                    .insts(o.insts)
                    .seed(o.seed)
                    .pipeline(o.pipeline),
            ));
        }
    }
    let outs = run_jobs(jobs, o.workers);

    let mut r = Report::new();
    r.text("Mapper-width ablation (PMC on 1 HA — isolates the transport)");
    r.blank();
    let mut t = Table::new(&[("mapper", 8), ("geomean", 9), ("x264", 8)]);
    for (i, width) in WIDTHS.iter().enumerate() {
        let slice = &outs[i * ws.len()..(i + 1) * ws.len()];
        let geo = geomean(&slice.iter().map(JobOutput::slowdown).collect::<Vec<_>>());
        let x264 = ws
            .iter()
            .position(|&w| w == "x264")
            .map(|wi| slice[wi].slowdown())
            .expect("x264 is a PARSEC workload");
        t.row(vec![
            Cell::Int(*width as i64),
            Cell::slowdown(geo),
            Cell::slowdown(x264),
        ]);
    }
    r.table(t);
    r.blank();
    r.text("paper (footnote 5): the scalar mapper rarely impedes a 4-wide BOOM (<0.5%); a superscalar mapper would serve wider cores");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireguard_soc::{render_to_string, Format};

    fn quick() -> FigOpts {
        FigOpts {
            insts: 2_000,
            seed: crate::SEED,
            workers: 4,
            pipeline: 1,
        }
    }

    #[test]
    fn registry_covers_all_eleven_figures() {
        assert_eq!(FIGURES.len(), 11);
        assert!(find("fig7a").is_some());
        assert!(find("isax-ablation").is_some(), "kebab CLI name resolves");
        assert!(find("isax_ablation").is_some(), "legacy bin name resolves");
        assert!(find("fig99").is_none());
    }

    #[test]
    fn static_reports_have_content() {
        for name in ["table2", "table3", "area"] {
            let fig = find(name).unwrap();
            let s = render_to_string(&(fig.run)(&quick()), Format::Human);
            assert!(s.lines().count() >= 3, "{name} too short:\n{s}");
        }
    }

    #[test]
    fn fig7a_worker_count_does_not_change_bytes() {
        let seq = render_to_string(
            &fig7a(&FigOpts {
                workers: 1,
                ..quick()
            }),
            Format::Human,
        );
        let par = render_to_string(
            &fig7a(&FigOpts {
                workers: 4,
                ..quick()
            }),
            Format::Human,
        );
        assert_eq!(seq, par, "parallel sweep must be byte-identical");
        assert!(seq.contains("geomean"));
    }
}
