//! Criterion microbenchmarks for FireGuard's building blocks.
//!
//! These complement the figure binaries (`src/bin/fig*.rs`): where the
//! binaries reproduce the paper's *results*, these measure the simulator's
//! own component throughputs, so regressions in the models are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use fireguard_boom::{BoomConfig, Core, NullSink};
use fireguard_core::{groups, DpSel, EventFilter, FilterConfig};
use fireguard_isa::InstClass;
use fireguard_kernels::{KernelId, ProgrammingModel};
use fireguard_noc::Mesh;
use fireguard_soc::{run_fireguard, ExperimentConfig};
use fireguard_trace::{TraceGenerator, WorkloadProfile};
use fireguard_ucore::{NullBackend, QueueEntry, Ucore, UcoreConfig};
use std::hint::black_box;

fn bench_event_filter(c: &mut Criterion) {
    let trace: Vec<_> = TraceGenerator::new(WorkloadProfile::parsec("x264").unwrap(), 1)
        .take(4096)
        .collect();
    c.bench_function("filter_offer_and_arbiter_4wide", |b| {
        b.iter(|| {
            let mut f = EventFilter::new(FilterConfig::default());
            f.subscribe(InstClass::Load, groups::MEM, DpSel::LSQ);
            f.subscribe(InstClass::Store, groups::MEM, DpSel::LSQ);
            let mut out = 0u64;
            for (i, t) in trace.iter().enumerate() {
                let now = (i / 4 + 1) as u64;
                let _ = f.offer(now, i % 4, t);
                if let Some(p) = f.arbiter_pop() {
                    out ^= p.meta.seq;
                }
            }
            black_box(out)
        })
    });
}

fn bench_tage(c: &mut Criterion) {
    c.bench_function("tage_predict_update_1k", |b| {
        let mut t = fireguard_boom::Tage::new();
        b.iter(|| {
            for i in 0..1000u64 {
                let pc = 0x1000 + (i % 64) * 4;
                t.update(pc, i % 7 != 0);
            }
            black_box(t.mispredict_rate())
        })
    });
}

fn bench_boom_ipc(c: &mut Criterion) {
    c.bench_function("boom_10k_insts_x264", |b| {
        b.iter(|| {
            let trace = TraceGenerator::new(WorkloadProfile::parsec("x264").unwrap(), 3);
            let mut core = Core::new(BoomConfig::default(), trace);
            black_box(core.run_insts(10_000, &mut NullSink).cycles)
        })
    });
}

fn bench_ucore_kernel(c: &mut Criterion) {
    c.bench_function("ucore_asan_1k_packets", |b| {
        b.iter(|| {
            let k =
                fireguard_kernels::GuardianKernel::new(KernelId::ASAN, 0, ProgrammingModel::Hybrid);
            let mut u = Ucore::new(UcoreConfig::default(), k.program());
            let mut be = k.engine_backend();
            let mut done = 0u64;
            let mut t = 0;
            while done < 1000 {
                for _ in 0..8 {
                    let _ = u
                        .input_mut()
                        .push(QueueEntry::from_bits((done as u128) << 6));
                }
                t += 64;
                u.advance(t, be.as_mut());
                done = u.stats().packets;
            }
            black_box(u.now())
        })
    });
}

fn bench_noc(c: &mut Criterion) {
    c.bench_function("mesh_4x4_1k_sends", |b| {
        b.iter(|| {
            let mut m = Mesh::new(4, 4);
            let mut acc = 0u64;
            for i in 0..1000u64 {
                let a = m.node_for_engine((i % 16) as usize);
                let z = m.node_for_engine(((i * 7) % 16) as usize);
                acc ^= m.send(a, z, i);
            }
            black_box(acc)
        })
    });
}

fn bench_ucore_microbench(c: &mut Criterion) {
    c.bench_function("ucore_alu_loop_10k", |b| {
        b.iter(|| {
            let mut asm = fireguard_ucore::Asm::new();
            for _ in 0..100 {
                asm.addi(1, 1, 1);
            }
            asm.halt();
            let mut u = Ucore::new(UcoreConfig::default(), asm.assemble());
            u.advance(10_000, &mut NullBackend);
            black_box(u.now())
        })
    });
}

fn bench_trace_codec(c: &mut Criterion) {
    use fireguard_trace::codec::{EventDecoder, EventEncoder};
    let events: Vec<_> = TraceGenerator::new(WorkloadProfile::parsec("x264").unwrap(), 5)
        .take(16_384)
        .collect();
    c.bench_function("codec_encode_16k_events", |b| {
        b.iter(|| {
            let mut enc = EventEncoder::new();
            let mut total = 0usize;
            for chunk in events.chunks(4096) {
                total += enc.encode_batch(chunk).len();
            }
            black_box(total)
        })
    });
    let batches: Vec<Vec<u8>> = {
        let mut enc = EventEncoder::new();
        events.chunks(4096).map(|c| enc.encode_batch(c)).collect()
    };
    c.bench_function("codec_decode_16k_events", |b| {
        b.iter(|| {
            let mut dec = EventDecoder::new();
            let mut n = 0usize;
            for payload in &batches {
                n += dec.decode_batch(payload).expect("valid batch").len();
            }
            black_box(n)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("fireguard_asan_4u_10k_insts", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig::new("swaptions")
                .kernel(KernelId::ASAN, 4)
                .insts(10_000);
            black_box(run_fireguard(&cfg).cycles)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_filter,
    bench_tage,
    bench_boom_ipc,
    bench_ucore_kernel,
    bench_noc,
    bench_ucore_microbench,
    bench_trace_codec,
    bench_end_to_end
);
criterion_main!(benches);
