//! Smoke + parity tests for the figure/table binaries.
//!
//! Each binary's full experiment takes minutes; these run the *same code
//! paths* end-to-end at a tiny instruction budget (`FG_INSTS=2000`) so a
//! plain `cargo test` catches panics, bad table plumbing, and experiment
//! wiring regressions in every binary without the full workloads.
//!
//! Beyond not crashing, every binary's stdout must be **byte-identical**
//! to rendering the corresponding [`fireguard_bench::figures`] driver
//! in-process: the binaries are thin shims over the figure registry, and
//! this is what lets the `fireguard` CLI (which renders through the same
//! registry) guarantee output parity with the legacy binaries.
//!
//! Cargo builds the bins automatically because the test references them via
//! the `CARGO_BIN_EXE_<name>` environment variables.

use fireguard_bench::figures::{find, FigOpts};
use fireguard_bench::SEED;
use fireguard_soc::{render_to_string, Format};
use std::process::Command;

const SMOKE_INSTS: u64 = 2000;

fn smoke(name: &str, bin_path: &str) {
    let out = Command::new(bin_path)
        .env("FG_INSTS", SMOKE_INSTS.to_string())
        .env_remove("FG_QUICK")
        .env_remove("FG_JOBS")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin_path}: {e}"));
    assert!(
        out.status.success(),
        "{bin_path} exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.lines().count() >= 3,
        "{bin_path} produced suspiciously little output:\n{stdout}"
    );

    // Parity: the binary must print exactly what the registry driver
    // renders in-process (workers do not matter; sweeps are re-ordered).
    let fig = find(name).unwrap_or_else(|| panic!("{name} not in the figure registry"));
    let opts = FigOpts {
        insts: SMOKE_INSTS,
        seed: SEED,
        workers: 4,
        pipeline: 1,
    };
    let expected = render_to_string(&(fig.run)(&opts), Format::Human);
    assert_eq!(
        stdout, expected,
        "{bin_path} diverged from the in-process figure driver"
    );
}

macro_rules! smoke_tests {
    ($($name:ident => $env:literal),+ $(,)?) => {$(
        #[test]
        fn $name() {
            smoke(stringify!($name).trim_end_matches("_smokes"), env!($env));
        }
    )+};
}

smoke_tests! {
    fig7a_smokes => "CARGO_BIN_EXE_fig7a",
    fig7b_smokes => "CARGO_BIN_EXE_fig7b",
    fig8_smokes => "CARGO_BIN_EXE_fig8",
    fig9_smokes => "CARGO_BIN_EXE_fig9",
    fig10_smokes => "CARGO_BIN_EXE_fig10",
    fig11_smokes => "CARGO_BIN_EXE_fig11",
    table2_smokes => "CARGO_BIN_EXE_table2",
    table3_smokes => "CARGO_BIN_EXE_table3",
    area_smokes => "CARGO_BIN_EXE_area",
    isax_ablation_smokes => "CARGO_BIN_EXE_isax_ablation",
    mapper_ablation_smokes => "CARGO_BIN_EXE_mapper_ablation",
}
