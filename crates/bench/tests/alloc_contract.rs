//! The zero-alloc cycle-loop contract, enforced by `cargo test`.
//!
//! PR 4's hot-path overhaul made the steady-state simulation loop
//! allocation-free: once a system is warm (ring buffers sized, caches and
//! free lists populated), committing further instructions must not touch
//! the heap. `fireguard bench` asserts this at runtime through its
//! counting allocator; this test pins the same contract in the test
//! suite, with the counting allocator installed as this binary's global
//! allocator.

use fireguard_bench::perf::{allocations, CountingAllocator, STEADY_STATE_ALLOC_BUDGET};
use fireguard_soc::{build_system, ExperimentConfig, KernelId};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn warm_cycle_loop_does_not_allocate() {
    let insts = 20_000u64;
    let cfg = ExperimentConfig::new("swaptions")
        .kernel(KernelId::PMC, 4)
        .insts(insts)
        .seed(42);
    let mut sys = build_system(&cfg, cfg.trace());
    // Warm-up: queue growth, cache fills, allocator churn all happen here.
    let _ = sys.run_insts(insts / 2, 0);

    let before = allocations();
    let r = sys.run_insts(insts, 0);
    let allocs = allocations() - before;

    assert!(r.committed >= insts, "run completed: {}", r.committed);
    let per_event = allocs as f64 / (insts / 2) as f64;
    assert!(
        per_event <= STEADY_STATE_ALLOC_BUDGET,
        "steady-state cycle loop allocated: {allocs} allocations over {} events \
         ({per_event:.5}/event, budget {STEADY_STATE_ALLOC_BUDGET})",
        insts / 2
    );
}
