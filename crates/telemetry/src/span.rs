//! Ring-buffered structured span events, emitted as jsonl.
//!
//! A [`TraceSink`] is shared (`Arc`) across the threads of a service —
//! accept loops, session workers, health checkers — and records
//! [`SpanEvent`]s into a bounded in-memory ring. When opened with
//! [`TraceSink::to_file`] each event is also appended to the file as one
//! JSON line, so `--trace-out` yields a complete session timeline:
//! HELLO→END lifecycle, per-batch progress, failovers, resumes.
//!
//! Timestamps are microseconds since sink creation — wall-clock enough
//! to order a timeline, while keeping the *simulation* contract intact:
//! nothing here feeds back into any deterministic output.

use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Events the ring retains (oldest evicted first). File output is
/// unbounded; the ring is for in-process inspection and tests.
const RING_CAPACITY: usize = 4096;

/// A span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldVal {
    /// Unsigned counter/identifier.
    U64(u64),
    /// Floating-point measurement.
    F64(f64),
    /// Free-form text.
    Str(String),
}

impl From<u64> for FieldVal {
    fn from(v: u64) -> Self {
        FieldVal::U64(v)
    }
}

impl From<f64> for FieldVal {
    fn from(v: f64) -> Self {
        FieldVal::F64(v)
    }
}

impl From<&str> for FieldVal {
    fn from(v: &str) -> Self {
        FieldVal::Str(v.to_owned())
    }
}

impl From<String> for FieldVal {
    fn from(v: String) -> Self {
        FieldVal::Str(v)
    }
}

/// One structured span event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Microseconds since the sink was created.
    pub t_us: u64,
    /// Span name (e.g. `hello`, `alarms`, `failover`).
    pub span: &'static str,
    /// Session id, when the event belongs to one.
    pub session: Option<u64>,
    /// Additional fields, in emission order.
    pub fields: Vec<(&'static str, FieldVal)>,
}

impl SpanEvent {
    /// The event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"type\":\"span\",\"t_us\":{},\"span\":", self.t_us);
        json_string(&mut out, self.span);
        if let Some(id) = self.session {
            out.push_str(&format!(",\"session\":{id}"));
        }
        for (k, v) in &self.fields {
            out.push(',');
            json_string(&mut out, k);
            out.push(':');
            match v {
                FieldVal::U64(n) => out.push_str(&n.to_string()),
                FieldVal::F64(f) if f.is_finite() => out.push_str(&format!("{f}")),
                FieldVal::F64(_) => out.push_str("null"),
                FieldVal::Str(s) => json_string(&mut out, s),
            }
        }
        out.push('}');
        out
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct SinkState {
    ring: VecDeque<SpanEvent>,
    out: Option<BufWriter<std::fs::File>>,
}

/// A shared, thread-safe span-event sink.
pub struct TraceSink {
    start: Instant,
    state: Mutex<SinkState>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("TraceSink")
            .field("events", &state.ring.len())
            .field("file", &state.out.is_some())
            .finish()
    }
}

impl TraceSink {
    /// An in-memory sink (ring buffer only) — used by tests and as the
    /// default when no `--trace-out` is given but spans are still wanted.
    pub fn memory() -> Arc<TraceSink> {
        Arc::new(TraceSink {
            start: Instant::now(),
            state: Mutex::new(SinkState {
                ring: VecDeque::with_capacity(64),
                out: None,
            }),
        })
    }

    /// A sink that also appends each event to `path` as jsonl.
    ///
    /// # Errors
    ///
    /// File creation errors.
    pub fn to_file(path: &str) -> std::io::Result<Arc<TraceSink>> {
        let file = std::fs::File::create(path)?;
        Ok(Arc::new(TraceSink {
            start: Instant::now(),
            state: Mutex::new(SinkState {
                ring: VecDeque::with_capacity(64),
                out: Some(BufWriter::new(file)),
            }),
        }))
    }

    /// Microseconds since sink creation (the span timestamp base).
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Records a span event; writes it through to the file, if any.
    pub fn emit(
        &self,
        span: &'static str,
        session: Option<u64>,
        fields: Vec<(&'static str, FieldVal)>,
    ) {
        let ev = SpanEvent {
            t_us: self.now_us(),
            span,
            session,
            fields,
        };
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(w) = state.out.as_mut() {
            let _ = writeln!(w, "{}", ev.to_json());
            let _ = w.flush();
        }
        if state.ring.len() == RING_CAPACITY {
            state.ring.pop_front();
        }
        state.ring.push_back(ev);
    }

    /// A snapshot of the retained ring (oldest first).
    pub fn events(&self) -> Vec<SpanEvent> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.ring.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_encode_as_one_json_line() {
        let sink = TraceSink::memory();
        sink.emit(
            "hello",
            Some(7),
            vec![("events", 100u64.into()), ("workload", "ferret".into())],
        );
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        let line = evs[0].to_json();
        assert!(line.starts_with("{\"type\":\"span\",\"t_us\":"));
        assert!(line.contains("\"span\":\"hello\""));
        assert!(line.contains("\"session\":7"));
        assert!(line.contains("\"events\":100"));
        assert!(line.contains("\"workload\":\"ferret\""));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn ring_is_bounded() {
        let sink = TraceSink::memory();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            sink.emit("tick", Some(i), vec![]);
        }
        let evs = sink.events();
        assert_eq!(evs.len(), RING_CAPACITY);
        assert_eq!(evs[0].session, Some(10), "oldest events evicted");
    }

    #[test]
    fn strings_are_escaped() {
        let ev = SpanEvent {
            t_us: 1,
            span: "err",
            session: None,
            fields: vec![("msg", "a\"b\\c\nd".into())],
        };
        assert_eq!(
            ev.to_json(),
            "{\"type\":\"span\",\"t_us\":1,\"span\":\"err\",\"msg\":\"a\\\"b\\\\c\\nd\"}"
        );
    }
}
