//! The FireGuard observability plane.
//!
//! Three deliberately dependency-free building blocks, shared by every
//! layer from the SoC up to the fleet router:
//!
//! - [`EngineCounters`]: plain-`u64` tallies of one simulated system's
//!   activity (packets by kernel/class/verdict, queue high-water marks,
//!   µcore park/wake cycles, NoC flits, cache/TLB hits). The SoC only
//!   *writes* them — increments on the hot path, occupancy samples at
//!   slow-domain edges — so the simulation's observable behavior is
//!   independent of whether anyone ever reads a counter. That is the
//!   whole determinism argument: counters are write-only state outside
//!   the simulation's data flow, checked by the digest/replay suite.
//! - [`FleetCounters`]: relaxed-atomic service-level aggregation, folded
//!   per completed session, scraped by the metrics plane.
//! - [`Sample`] + [`render_exposition`]/[`parse_exposition`]: the
//!   Prometheus-style text wire format of the metrics endpoint, and
//!   [`TraceSink`]/[`SpanEvent`]: ring-buffered structured span events
//!   emitted as jsonl (`--trace-out`).
//!
//! Counter *names* are not invented here: per-kernel series are labeled
//! with whatever the kernel registry declares (see
//! `KernelSpec::cli_names`), passed in by the caller, so new kernels
//! appear in the exposition without touching this crate.

mod counters;
mod expo;
mod span;

pub use counters::{EngineCounters, FleetCounters, KernelTally, MAX_CLASSES, MAX_KERNEL_SLOTS};
pub use expo::{parse_exposition, render_exposition, Sample};
pub use span::{FieldVal, SpanEvent, TraceSink};
