//! Engine- and fleet-level counter state.

use crate::expo::Sample;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Kernel slots a single packet stream can carry (the packet verdict
/// field is 8 bits wide; `fireguard_soc::MAX_KERNELS` is derived from the
/// same layout constant).
pub const MAX_KERNEL_SLOTS: usize = 8;

/// Instruction classes tallied per packet (15 in the ISA today; one spare
/// so the array never needs resizing for a new class).
pub const MAX_CLASSES: usize = 16;

/// One simulated system's activity tallies.
///
/// Every field is a plain `u64` the simulation *writes* and never reads:
/// per-event increments on the hot path (a handful of adds per committed
/// instruction) and occupancy samples at slow-domain edges. Reading a
/// snapshot therefore cannot perturb the simulation, which is what keeps
/// the packet digests and `.fgt` replay parity bit-for-bit identical with
/// telemetry enabled.
///
/// Slot-indexed arrays (`kernel_*`) use the kernel's *verdict bit* as the
/// index — the same slot numbering as `Detection::kernel_slot` — so a
/// caller with the deployment's `(slot, kernel)` map can relabel them by
/// registry name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Slow-domain edges processed (the sampling clock).
    pub slow_edges: u64,
    /// Valid packets the event filter emitted.
    pub packets: u64,
    /// Invalid placeholders the filter emitted.
    pub placeholders: u64,
    /// Commit-path offers observed.
    pub offers: u64,
    /// Offers refused (commit stalled).
    pub refusals: u64,
    /// Valid packets by instruction class (`InstClass` order).
    pub class_packets: [u64; MAX_CLASSES],
    /// Valid packets routed toward each kernel slot's engine group.
    pub kernel_packets: [u64; MAX_KERNEL_SLOTS],
    /// Packets carrying a set verdict bit for each kernel slot.
    pub kernel_verdicts: [u64; MAX_KERNEL_SLOTS],
    /// Alarms each kernel slot's engines raised.
    pub kernel_alarms: [u64; MAX_KERNEL_SLOTS],
    /// High-water mark of packets buffered across the filter FIFOs.
    pub filter_ring_hwm: u64,
    /// High-water mark of any single CDC queue's occupancy.
    pub cdc_hwm: u64,
    /// Sum over slow edges of total mapper-downstream (CDC) occupancy;
    /// divide by `slow_edges` for the mean.
    pub mapper_occupancy_sum: u64,
    /// µcore park transitions (running → stalled on empty input).
    pub ucore_parks: u64,
    /// µcore wake transitions (stalled → retiring again).
    pub ucore_wakes: u64,
    /// Total µcore cycles spent parked/idle.
    pub ucore_idle_cycles: u64,
    /// Total µ-instructions retired across all engines.
    pub ucore_retired: u64,
    /// µcore data-memory accesses.
    pub ucore_mem_accesses: u64,
    /// Inter-checker NoC flits injected.
    pub noc_flits: u64,
    /// Total NoC hops traversed.
    pub noc_hops: u64,
    /// Total NoC queueing cycles.
    pub noc_queue_cycles: u64,
    /// µcore L1 data-cache hits.
    pub cache_hits: u64,
    /// µcore L1 data-cache misses.
    pub cache_misses: u64,
    /// µcore data-TLB hits.
    pub tlb_hits: u64,
    /// µcore data-TLB misses.
    pub tlb_misses: u64,
    /// Effective in-session pipeline width (1 = serial judging).
    pub pipeline_width: u64,
    /// Generation-stage stalls: gen→judge ring full (spin iterations).
    pub pipeline_gen_stalls: u64,
    /// Judging-stage stalls: judge→core ring full (spin iterations).
    pub pipeline_judge_stalls: u64,
    /// Core-side waits: judged-batch ring empty (spin iterations).
    pub pipeline_core_waits: u64,
    /// Judged batches handed across the final ring.
    pub pipeline_batches: u64,
}

impl EngineCounters {
    /// Folds `other` into `self`: sums for totals, `max` for the
    /// high-water marks.
    pub fn merge(&mut self, other: &EngineCounters) {
        self.slow_edges += other.slow_edges;
        self.packets += other.packets;
        self.placeholders += other.placeholders;
        self.offers += other.offers;
        self.refusals += other.refusals;
        for (a, b) in self.class_packets.iter_mut().zip(other.class_packets) {
            *a += b;
        }
        for (a, b) in self.kernel_packets.iter_mut().zip(other.kernel_packets) {
            *a += b;
        }
        for (a, b) in self.kernel_verdicts.iter_mut().zip(other.kernel_verdicts) {
            *a += b;
        }
        for (a, b) in self.kernel_alarms.iter_mut().zip(other.kernel_alarms) {
            *a += b;
        }
        self.filter_ring_hwm = self.filter_ring_hwm.max(other.filter_ring_hwm);
        self.cdc_hwm = self.cdc_hwm.max(other.cdc_hwm);
        self.mapper_occupancy_sum += other.mapper_occupancy_sum;
        self.ucore_parks += other.ucore_parks;
        self.ucore_wakes += other.ucore_wakes;
        self.ucore_idle_cycles += other.ucore_idle_cycles;
        self.ucore_retired += other.ucore_retired;
        self.ucore_mem_accesses += other.ucore_mem_accesses;
        self.noc_flits += other.noc_flits;
        self.noc_hops += other.noc_hops;
        self.noc_queue_cycles += other.noc_queue_cycles;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.tlb_hits += other.tlb_hits;
        self.tlb_misses += other.tlb_misses;
        self.pipeline_width = self.pipeline_width.max(other.pipeline_width);
        self.pipeline_gen_stalls += other.pipeline_gen_stalls;
        self.pipeline_judge_stalls += other.pipeline_judge_stalls;
        self.pipeline_core_waits += other.pipeline_core_waits;
        self.pipeline_batches += other.pipeline_batches;
    }

    /// Renders the counters as named samples. `kernels` maps occupied
    /// slots to their registry-declared label; `classes` names the
    /// instruction classes (`InstClass::ALL` order). Zero-valued
    /// per-class series are elided to keep expositions small; per-kernel
    /// series are always emitted for every deployed slot so a silent
    /// kernel is visible as an explicit zero.
    pub fn samples(&self, kernels: &[(usize, &str)], classes: &[&str]) -> Vec<Sample> {
        let mut out = vec![
            Sample::new("fireguard_slow_edges_total", self.slow_edges),
            Sample::new("fireguard_packets_total", self.packets),
            Sample::new("fireguard_placeholders_total", self.placeholders),
            Sample::new("fireguard_offers_total", self.offers),
            Sample::new("fireguard_refusals_total", self.refusals),
            Sample::new("fireguard_filter_ring_hwm", self.filter_ring_hwm),
            Sample::new("fireguard_cdc_hwm", self.cdc_hwm),
            Sample::new("fireguard_mapper_occupancy_sum", self.mapper_occupancy_sum),
            Sample::new("fireguard_ucore_parks_total", self.ucore_parks),
            Sample::new("fireguard_ucore_wakes_total", self.ucore_wakes),
            Sample::new("fireguard_ucore_idle_cycles_total", self.ucore_idle_cycles),
            Sample::new("fireguard_ucore_retired_total", self.ucore_retired),
            Sample::new(
                "fireguard_ucore_mem_accesses_total",
                self.ucore_mem_accesses,
            ),
            Sample::new("fireguard_noc_flits_total", self.noc_flits),
            Sample::new("fireguard_noc_hops_total", self.noc_hops),
            Sample::new("fireguard_noc_queue_cycles_total", self.noc_queue_cycles),
            Sample::new("fireguard_cache_hits_total", self.cache_hits),
            Sample::new("fireguard_cache_misses_total", self.cache_misses),
            Sample::new("fireguard_tlb_hits_total", self.tlb_hits),
            Sample::new("fireguard_tlb_misses_total", self.tlb_misses),
            Sample::new("fireguard_pipeline_width", self.pipeline_width),
            Sample::new(
                "fireguard_pipeline_gen_stalls_total",
                self.pipeline_gen_stalls,
            ),
            Sample::new(
                "fireguard_pipeline_judge_stalls_total",
                self.pipeline_judge_stalls,
            ),
            Sample::new(
                "fireguard_pipeline_core_waits_total",
                self.pipeline_core_waits,
            ),
            Sample::new("fireguard_pipeline_batches_total", self.pipeline_batches),
        ];
        for (i, name) in classes.iter().enumerate().take(MAX_CLASSES) {
            if self.class_packets[i] != 0 {
                out.push(
                    Sample::new("fireguard_class_packets_total", self.class_packets[i])
                        .label("class", name),
                );
            }
        }
        for &(slot, name) in kernels {
            if slot >= MAX_KERNEL_SLOTS {
                continue;
            }
            out.push(
                Sample::new("fireguard_kernel_packets_total", self.kernel_packets[slot])
                    .label("kernel", name),
            );
            out.push(
                Sample::new(
                    "fireguard_kernel_verdicts_total",
                    self.kernel_verdicts[slot],
                )
                .label("kernel", name),
            );
            out.push(
                Sample::new("fireguard_kernel_alarms_total", self.kernel_alarms[slot])
                    .label("kernel", name),
            );
        }
        out
    }
}

/// Per-kernel fleet tallies, indexed by the kernel's *wire id* (stable
/// across sessions, unlike the per-deployment slot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTally {
    /// Packets routed toward this kernel's engines.
    pub packets: u64,
    /// Packets carrying this kernel's verdict bit.
    pub verdicts: u64,
    /// Alarms this kernel raised.
    pub alarms: u64,
}

/// Service-level counters shared across session worker threads.
///
/// The per-frame counters are relaxed atomics (incremented on the
/// protocol path); the per-session engine aggregate is folded under a
/// mutex once per *completed* session, which is control-plane territory.
#[derive(Debug, Default)]
pub struct FleetCounters {
    /// Sessions accepted (HELLO decoded).
    pub sessions_started: AtomicU64,
    /// Sessions that ran to a SUMMARY.
    pub sessions_ok: AtomicU64,
    /// Sessions that terminated in an error.
    pub sessions_failed: AtomicU64,
    /// Trace events received over the wire.
    pub events: AtomicU64,
    /// Alarms streamed to clients.
    pub alarms: AtomicU64,
    agg: Mutex<FleetAgg>,
}

#[derive(Debug, Default)]
struct FleetAgg {
    engine: EngineCounters,
    kernels: [KernelTally; MAX_KERNEL_SLOTS],
}

impl FleetCounters {
    /// Folds one completed session's engine counters into the aggregate.
    /// `slot_wire` maps each deployed verdict slot to the kernel's wire
    /// id, so fleet tallies stay per-kernel even when deployments differ.
    pub fn fold_session(&self, counters: &EngineCounters, slot_wire: &[(usize, u8)]) {
        let mut agg = self.agg.lock().unwrap_or_else(|e| e.into_inner());
        agg.engine.merge(counters);
        for &(slot, wire) in slot_wire {
            if slot >= MAX_KERNEL_SLOTS || (wire as usize) >= MAX_KERNEL_SLOTS {
                continue;
            }
            let t = &mut agg.kernels[wire as usize];
            t.packets += counters.kernel_packets[slot];
            t.verdicts += counters.kernel_verdicts[slot];
            t.alarms += counters.kernel_alarms[slot];
        }
    }

    /// The folded engine aggregate and per-wire-id kernel tallies.
    pub fn engine_snapshot(&self) -> (EngineCounters, [KernelTally; MAX_KERNEL_SLOTS]) {
        let agg = self.agg.lock().unwrap_or_else(|e| e.into_inner());
        (agg.engine, agg.kernels)
    }

    /// Renders the service counters as samples. `kernel_names[wire_id]`
    /// labels the per-kernel series (callers pass the registry's
    /// canonical names) and `class_names` the per-class series; per-kernel
    /// series are emitted only for kernels that saw traffic, so a scrape
    /// of an idle fleet stays small.
    pub fn samples(&self, kernel_names: &[&str], class_names: &[&str]) -> Vec<Sample> {
        let (engine, kernels) = self.engine_snapshot();
        let mut out = vec![
            Sample::new(
                "fireguard_sessions_started_total",
                self.sessions_started.load(Ordering::Relaxed),
            ),
            Sample::new(
                "fireguard_sessions_completed_total",
                self.sessions_ok.load(Ordering::Relaxed),
            ),
            Sample::new(
                "fireguard_sessions_failed_total",
                self.sessions_failed.load(Ordering::Relaxed),
            ),
            Sample::new(
                "fireguard_events_total",
                self.events.load(Ordering::Relaxed),
            ),
            Sample::new(
                "fireguard_alarms_total",
                self.alarms.load(Ordering::Relaxed),
            ),
        ];
        // The engine aggregate, minus its slot-indexed kernel arrays
        // (replaced below by the stable wire-id tallies).
        out.extend(engine.samples(&[], class_names));
        for (wire, t) in kernels.iter().enumerate() {
            if t.packets == 0 && t.verdicts == 0 && t.alarms == 0 {
                continue;
            }
            let name = kernel_names.get(wire).copied().unwrap_or("unknown");
            out.push(
                Sample::new("fireguard_kernel_packets_total", t.packets).label("kernel", name),
            );
            out.push(
                Sample::new("fireguard_kernel_verdicts_total", t.verdicts).label("kernel", name),
            );
            out.push(Sample::new("fireguard_kernel_alarms_total", t.alarms).label("kernel", name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_totals_and_maxes_hwms() {
        let mut a = EngineCounters {
            packets: 3,
            filter_ring_hwm: 5,
            ..EngineCounters::default()
        };
        a.kernel_packets[1] = 2;
        let mut b = EngineCounters {
            packets: 4,
            filter_ring_hwm: 2,
            ..EngineCounters::default()
        };
        b.kernel_packets[1] = 7;
        a.merge(&b);
        assert_eq!(a.packets, 7);
        assert_eq!(a.filter_ring_hwm, 5);
        assert_eq!(a.kernel_packets[1], 9);
    }

    #[test]
    fn fold_session_relabels_slots_by_wire_id() {
        let fleet = FleetCounters::default();
        let mut c = EngineCounters::default();
        c.kernel_packets[0] = 10;
        c.kernel_alarms[0] = 2;
        // Slot 0 hosts the kernel with wire id 5.
        fleet.fold_session(&c, &[(0, 5)]);
        fleet.fold_session(&c, &[(0, 5)]);
        let (engine, kernels) = fleet.engine_snapshot();
        assert_eq!(engine.kernel_packets[0], 20);
        assert_eq!(kernels[5].packets, 20);
        assert_eq!(kernels[5].alarms, 4);
        assert_eq!(kernels[0], KernelTally::default());
    }

    #[test]
    fn samples_label_kernels_and_elide_silent_wire_ids() {
        let fleet = FleetCounters::default();
        let mut c = EngineCounters::default();
        c.kernel_packets[0] = 1;
        fleet.fold_session(&c, &[(0, 2)]);
        let names = ["pmc", "ss", "asan", "uaf", "taint", "mte"];
        let samples = fleet.samples(&names, &[]);
        let kernel_rows: Vec<_> = samples
            .iter()
            .filter(|s| s.name == "fireguard_kernel_packets_total")
            .collect();
        assert_eq!(kernel_rows.len(), 1);
        assert_eq!(
            kernel_rows[0].labels,
            vec![("kernel".into(), "asan".into())]
        );
    }
}
