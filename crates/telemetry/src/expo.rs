//! The metrics-endpoint wire format: a Prometheus-style text exposition.
//!
//! One sample per line — `name{label="value",...} number` — with a
//! `# TYPE name counter` comment the first time each metric name appears.
//! The renderer and parser round-trip exactly (modulo `# TYPE` lines), so
//! `fireguard stats` and the CI smoke test consume the same bytes a
//! Prometheus scraper would.

/// One metric sample: a name, optional labels, and a value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (e.g. `fireguard_packets_total`).
    pub name: String,
    /// Label pairs, in emission order.
    pub labels: Vec<(String, String)>,
    /// The value. Counters are integral but the wire format is numeric.
    pub value: f64,
}

impl Sample {
    /// A label-free sample.
    pub fn new(name: &str, value: u64) -> Self {
        Sample {
            name: name.to_owned(),
            labels: Vec::new(),
            value: value as f64,
        }
    }

    /// Adds a label pair (builder-style).
    #[must_use]
    pub fn label(mut self, key: &str, value: &str) -> Self {
        self.labels.push((key.to_owned(), value.to_owned()));
        self
    }

    /// The value rounded to an integer counter reading.
    pub fn count(&self) -> u64 {
        self.value.round().max(0.0) as u64
    }

    /// The value of the label `key`, if present.
    pub fn label_value(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Renders samples in exposition order, emitting a `# TYPE` header the
/// first time each metric name appears (consecutive same-name samples
/// share one header; the callers group by construction).
pub fn render_exposition(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for s in samples {
        if s.name != last_name {
            out.push_str("# TYPE ");
            out.push_str(&s.name);
            out.push_str(" counter\n");
            last_name = &s.name;
        }
        out.push_str(&s.name);
        if !s.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in s.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => out.push_str("\\\\"),
                        '"' => out.push_str("\\\""),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            out.push('}');
        }
        out.push(' ');
        if s.value.fract() == 0.0 && s.value.abs() < 1e15 {
            out.push_str(&format!("{}", s.value as i64));
        } else {
            out.push_str(&format!("{}", s.value));
        }
        out.push('\n');
    }
    out
}

/// Parses a text exposition back into samples. Comment (`#`) and blank
/// lines are skipped; any other malformed line is an error naming the
/// offending content, because a scrape that half-parses silently would
/// poison fleet aggregation.
///
/// # Errors
///
/// A description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("bad exposition line {line:?}: {e}"))?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> Result<Sample, String> {
    let (head, value) = match line.rfind('}') {
        // Labeled: everything after the closing brace is the value.
        Some(end) => {
            let value = line[end + 1..].trim();
            (&line[..=end], value)
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let name = it.next().ok_or("empty line")?;
            let value = it.next().ok_or("missing value")?.trim();
            (name, value)
        }
    };
    let value: f64 = value
        .parse()
        .map_err(|_| format!("unparseable value {value:?}"))?;
    let (name, labels) = match head.find('{') {
        Some(open) => {
            let name = &head[..open];
            let body = head
                .strip_suffix('}')
                .ok_or("unterminated label set")?
                .get(open + 1..)
                .ok_or("unterminated label set")?;
            (name, parse_labels(body)?)
        }
        None => (head, Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim().to_owned();
        let after = rest[eq + 1..]
            .trim_start()
            .strip_prefix('"')
            .ok_or("unquoted label value")?;
        // Scan for the closing quote, honoring backslash escapes.
        let mut value = String::new();
        let mut chars = after.char_indices();
        let close = loop {
            let (i, c) = chars.next().ok_or("unterminated label value")?;
            match c {
                '"' => break i,
                '\\' => match chars.next().ok_or("dangling escape")?.1 {
                    'n' => value.push('\n'),
                    c => value.push(c),
                },
                c => value.push(c),
            }
        };
        labels.push((key, value));
        rest = after[close + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let samples = vec![
            Sample::new("fireguard_packets_total", 42),
            Sample::new("fireguard_kernel_packets_total", 7).label("kernel", "asan"),
            Sample::new("fireguard_kernel_packets_total", 9)
                .label("kernel", "ss")
                .label("backend", "1"),
        ];
        let text = render_exposition(&samples);
        assert!(text.contains("# TYPE fireguard_packets_total counter"));
        assert!(text.contains("fireguard_kernel_packets_total{kernel=\"asan\"} 7"));
        let parsed = parse_exposition(&text).expect("round-trip");
        assert_eq!(parsed, samples);
    }

    #[test]
    fn escapes_survive_the_round_trip() {
        let samples = vec![Sample::new("m", 1).label("k", "a\"b\\c\nd")];
        let parsed = parse_exposition(&render_exposition(&samples)).expect("parses");
        assert_eq!(parsed, samples);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_exposition("name_only").is_err());
        assert!(parse_exposition("metric{k=\"v\" 3").is_err());
        assert!(parse_exposition("metric nope").is_err());
        assert!(parse_exposition("bad name 3").is_err());
        assert!(parse_exposition("# a comment\n\n").unwrap().is_empty());
    }
}
