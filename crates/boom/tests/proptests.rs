//! Property-based tests for the OoO core model: structural conservation
//! laws that must hold for any workload, seed or sink behaviour.

use fireguard_boom::{BoomConfig, CommitSink, Core, NullSink, ThrottleSink};
use fireguard_trace::{TraceGenerator, TraceInst, WorkloadProfile, PARSEC_WORKLOADS};
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = WorkloadProfile> {
    (0..PARSEC_WORKLOADS.len()).prop_map(|i| PARSEC_WORKLOADS[i].clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Commit is exactly program order for any workload/seed/throttle: the
    /// paper's whole frontend depends on it (commit order = packet order).
    #[test]
    fn commit_order_is_program_order(w in workload(), seed in 0u64..100_000, period in prop_oneof![Just(0u64), 2u64..7]) {
        struct Check {
            inner: ThrottleSink,
            last: Option<u64>,
        }
        impl CommitSink for Check {
            fn offer(&mut self, now: u64, slot: usize, inst: &TraceInst) -> bool {
                let ok = self.inner.offer(now, slot, inst);
                if ok {
                    if let Some(l) = self.last {
                        assert_eq!(inst.seq, l + 1, "commit skipped or reordered");
                    }
                    self.last = Some(inst.seq);
                }
                ok
            }
        }
        let mut sink = Check { inner: ThrottleSink::new(period), last: None };
        let trace = TraceGenerator::new(w, seed);
        let mut core = Core::new(BoomConfig::default(), trace);
        let stats = core.run_insts(8_000, &mut sink);
        prop_assert_eq!(stats.committed, sink.last.unwrap() + 1);
    }

    /// IPC is bounded by every relevant structural width.
    #[test]
    fn ipc_respects_structural_bounds(w in workload(), seed in 0u64..100_000) {
        let trace = TraceGenerator::new(w, seed);
        let mut core = Core::new(BoomConfig::default(), trace);
        let stats = core.run_insts(8_000, &mut NullSink);
        prop_assert!(stats.ipc() <= 4.0 + 1e-9, "commit width is 4");
        prop_assert!(stats.ipc() > 0.05, "forward progress");
    }

    /// Cycle counts are a pure function of (config, workload, seed, sink).
    #[test]
    fn timing_determinism(w in workload(), seed in 0u64..100_000) {
        let run = |w: WorkloadProfile| {
            let mut core = Core::new(BoomConfig::default(), TraceGenerator::new(w, seed));
            core.run_insts(5_000, &mut NullSink).cycles
        };
        prop_assert_eq!(run(w.clone()), run(w));
    }

    /// Back-pressure only ever adds cycles, never removes them.
    #[test]
    fn throttling_is_monotone(w in workload(), seed in 0u64..100_000) {
        let run = |period| {
            let mut sink = ThrottleSink::new(period);
            let mut core = Core::new(BoomConfig::default(), TraceGenerator::new(w.clone(), seed));
            core.run_insts(5_000, &mut sink).cycles
        };
        let free = run(0);
        let throttled = run(2);
        prop_assert!(throttled >= free, "refusals cannot make the core faster");
    }
}
