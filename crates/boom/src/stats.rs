//! Main-core performance counters.

/// Why commit (or the whole pipeline) failed to make progress in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallKind {
    /// The commit sink (FireGuard's forwarding channel) refused an offer.
    CommitBackpressure,
    /// ROB full at dispatch.
    RobFull,
    /// Issue queue full at dispatch.
    IqFull,
    /// Load queue full at dispatch.
    LdqFull,
    /// Store queue full at dispatch.
    StqFull,
    /// No free physical register at rename.
    PrfFull,
    /// Front end had nothing to deliver (redirect/I-cache refill).
    FrontendEmpty,
}

impl StallKind {
    /// All kinds, for report iteration.
    pub const ALL: [StallKind; 7] = [
        StallKind::CommitBackpressure,
        StallKind::RobFull,
        StallKind::IqFull,
        StallKind::LdqFull,
        StallKind::StqFull,
        StallKind::PrfFull,
        StallKind::FrontendEmpty,
    ];

    /// Dense index for table storage.
    pub fn index(self) -> usize {
        match self {
            StallKind::CommitBackpressure => 0,
            StallKind::RobFull => 1,
            StallKind::IqFull => 2,
            StallKind::LdqFull => 3,
            StallKind::StqFull => 4,
            StallKind::PrfFull => 5,
            StallKind::FrontendEmpty => 6,
        }
    }

    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            StallKind::CommitBackpressure => "commit-backpressure",
            StallKind::RobFull => "rob-full",
            StallKind::IqFull => "iq-full",
            StallKind::LdqFull => "ldq-full",
            StallKind::StqFull => "stq-full",
            StallKind::PrfFull => "prf-full",
            StallKind::FrontendEmpty => "frontend-empty",
        }
    }
}

impl std::fmt::Display for StallKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Mispredicted control transfers (front-end redirects).
    pub mispredicts: u64,
    /// L1I line misses during fetch.
    pub icache_misses: u64,
    /// Per-kind stall cycles (a cycle may be charged to one kind only).
    pub stall_cycles: [u64; 7],
    /// Cycles in which at least one instruction committed.
    pub commit_active_cycles: u64,
    /// Issue opportunities lost to stolen PRF read ports (Fig. 2 contention).
    pub prf_port_conflicts: u64,
}

impl CoreStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Stall cycles charged to `kind`.
    pub fn stalls(&self, kind: StallKind) -> u64 {
        self.stall_cycles[kind.index()]
    }

    /// Records a stall cycle of `kind`.
    pub fn add_stall(&mut self, kind: StallKind) {
        self.stall_cycles[kind.index()] += 1;
    }

    /// Misprediction rate over committed branches (plus indirect redirects).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn stall_indexing_is_dense_and_unique() {
        let mut seen = [false; 7];
        for k in StallKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn add_stall_accumulates() {
        let mut s = CoreStats::default();
        s.add_stall(StallKind::CommitBackpressure);
        s.add_stall(StallKind::CommitBackpressure);
        s.add_stall(StallKind::RobFull);
        assert_eq!(s.stalls(StallKind::CommitBackpressure), 2);
        assert_eq!(s.stalls(StallKind::RobFull), 1);
        assert_eq!(s.stalls(StallKind::IqFull), 0);
    }
}
