//! Main-core configuration (paper Table II).

use fireguard_mem::{HierarchyConfig, TlbConfig};

/// Configuration of the modelled SonicBOOM core.
///
/// Defaults reproduce Table II of the paper: a 4-wide out-of-order core at
/// 3.2 GHz with a 128-entry ROB, 96-entry issue queue, 32-entry LDQ/STQ and
/// 128 integer + 128 FP physical registers.
#[derive(Debug, Clone, Copy)]
pub struct BoomConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub decode_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle (FireGuard's filter matches this).
    pub commit_width: usize,
    /// Reorder-buffer capacity.
    pub rob_entries: usize,
    /// Unified issue-queue capacity.
    pub iq_entries: usize,
    /// Load-queue capacity.
    pub ldq_entries: usize,
    /// Store-queue capacity.
    pub stq_entries: usize,
    /// Integer physical registers.
    pub int_prf: usize,
    /// Floating-point physical registers.
    pub fp_prf: usize,
    /// Integer PRF read ports (shared with FireGuard's forwarding channel).
    pub prf_read_ports: usize,
    /// Integer ALUs.
    pub int_alus: usize,
    /// FP/multiply/divide units (Table II: one shared).
    pub fp_units: usize,
    /// Memory (load/store) units.
    pub mem_units: usize,
    /// Jump units.
    pub jump_units: usize,
    /// CSR units.
    pub csr_units: usize,
    /// Fetch-buffer depth.
    pub fetch_buffer: usize,
    /// Cycles to refill the front-end after a resolved misprediction.
    pub redirect_penalty: u64,
    /// Data-side cache hierarchy.
    pub dmem: HierarchyConfig,
    /// Data TLB configuration.
    pub dtlb: TlbConfig,
    /// L1I miss penalty (code fits in L2; see crate docs).
    pub icache_miss_penalty: u64,
    /// Core clock in Hz (3.2 GHz), used to convert cycles to wall time.
    pub clock_hz: f64,
}

impl Default for BoomConfig {
    fn default() -> Self {
        BoomConfig {
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 128,
            iq_entries: 96,
            ldq_entries: 32,
            stq_entries: 32,
            int_prf: 128,
            fp_prf: 128,
            prf_read_ports: 8,
            int_alus: 2,
            fp_units: 1,
            mem_units: 2,
            jump_units: 1,
            csr_units: 1,
            fetch_buffer: 16,
            redirect_penalty: 3,
            dmem: HierarchyConfig::main_core(),
            dtlb: TlbConfig::main_core(),
            icache_miss_penalty: 14,
            clock_hz: 3.2e9,
        }
    }
}

impl BoomConfig {
    /// Nanoseconds per core cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1e9 / self.clock_hz
    }

    /// Validates structural parameters.
    ///
    /// # Panics
    ///
    /// Panics if any width or capacity is zero, or widths exceed capacities.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.commit_width > 0);
        assert!(self.decode_width > 0 && self.issue_width > 0);
        assert!(self.rob_entries >= self.commit_width);
        assert!(self.iq_entries > 0);
        assert!(self.ldq_entries > 0 && self.stq_entries > 0);
        assert!(
            self.int_prf > 32,
            "need free regs beyond architectural state"
        );
        assert!(self.prf_read_ports >= 2);
        assert!(self.int_alus + self.fp_units + self.mem_units > 0);
        assert!(self.fetch_buffer >= self.fetch_width);
        assert!(self.clock_hz > 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let c = BoomConfig::default();
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.iq_entries, 96);
        assert_eq!(c.ldq_entries, 32);
        assert_eq!(c.stq_entries, 32);
        assert_eq!(c.int_prf, 128);
        assert_eq!(c.int_alus, 2);
        assert_eq!(c.mem_units, 2);
        assert_eq!(c.fp_units, 1);
        assert_eq!(c.jump_units, 1);
        assert_eq!(c.csr_units, 1);
        c.validate();
    }

    #[test]
    fn ns_per_cycle_at_3_2ghz() {
        let c = BoomConfig::default();
        assert!((c.ns_per_cycle() - 0.3125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "free regs")]
    fn too_few_phys_regs_rejected() {
        let c = BoomConfig {
            int_prf: 32,
            ..BoomConfig::default()
        };
        c.validate();
    }
}
