//! Cycle-level model of a 4-wide out-of-order superscalar main core.
//!
//! This crate substitutes for the SonicBOOM RTL the paper modifies: a
//! trace-driven, deterministic model with the Table-II microarchitecture —
//! 128-entry ROB, 96-entry issue queue, 32-entry LDQ/STQ, 128 physical
//! registers, 2 integer ALUs, 1 FP/mul/div unit, 2 memory units, 1 jump
//! unit, 1 CSR unit, a TAGE branch predictor with BTB and RAS, and the
//! Table-II cache hierarchy.
//!
//! FireGuard attaches at the commit stage through the [`CommitSink`] trait:
//! the sink observes every retired instruction (the paper's data-forwarding
//! channel), may refuse an instruction (back-pressure, which stalls commit),
//! and may steal PRF read ports for the following cycle (the Fig. 2
//! contention when the forwarding channel preempts a read controller).
//!
//! # Examples
//!
//! ```
//! use fireguard_boom::{BoomConfig, Core, NullSink};
//! use fireguard_trace::{TraceGenerator, WorkloadProfile};
//!
//! let trace = TraceGenerator::new(WorkloadProfile::parsec("swaptions").unwrap(), 1);
//! let mut core = Core::new(BoomConfig::default(), trace);
//! let mut sink = NullSink;
//! let stats = core.run_insts(20_000, &mut sink);
//! assert!(stats.ipc() > 0.5 && stats.ipc() <= 4.0);
//! ```

pub mod config;
pub mod core;
pub mod predictor;
pub mod sink;
pub mod stats;

pub use crate::core::Core;
pub use config::BoomConfig;
pub use predictor::{Btb, FrontendPredictor, MispredictKind, Ras, Tage};
pub use sink::{CommitSink, NullSink, ThrottleSink};
pub use stats::{CoreStats, StallKind};
