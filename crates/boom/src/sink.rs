//! The commit-stage attachment point for FireGuard.
//!
//! The paper's data-forwarding channel hooks the ROB's commit paths
//! (Fig. 2 a), observing every retired instruction. The channel can
//! back-pressure commit when a mini-filter FIFO is full, and it preempts PRF
//! read controllers in the cycle after a commit whose operand data was
//! selected (Fig. 2 b–d), delaying issuing instructions that wanted the same
//! port.
//!
//! [`CommitSink`] abstracts that interface so the core model can run bare
//! (a [`NullSink`]) or with any FireGuard frontend attached.

use fireguard_trace::TraceInst;

/// Observer of the main core's commit stage.
pub trait CommitSink {
    /// Offers the instruction retiring on commit path `slot` at fast-clock
    /// cycle `now`. Returning `false` refuses it: the core stalls commit
    /// this cycle and will re-offer the same instruction later.
    fn offer(&mut self, now: u64, slot: usize, inst: &TraceInst) -> bool;

    /// Number of integer-PRF read ports the forwarding channel preempts at
    /// cycle `now` (Fig. 2's "added contention"). Called once per cycle
    /// before issue.
    fn prf_ports_stolen(&mut self, now: u64) -> usize {
        let _ = now;
        0
    }
}

/// A sink that accepts everything and steals nothing — the baseline core.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl CommitSink for NullSink {
    fn offer(&mut self, _now: u64, _slot: usize, _inst: &TraceInst) -> bool {
        true
    }
}

/// A sink that refuses every `period`-th offer — used in tests and failure
/// injection to exercise commit back-pressure deterministically.
#[derive(Debug, Clone, Default)]
pub struct ThrottleSink {
    /// Refuse one offer out of every `period` (0 disables refusal).
    pub period: u64,
    offers: u64,
    refusals: u64,
}

impl ThrottleSink {
    /// Creates a sink refusing every `period`-th offer.
    pub fn new(period: u64) -> Self {
        ThrottleSink {
            period,
            offers: 0,
            refusals: 0,
        }
    }

    /// Offers seen.
    pub fn offers(&self) -> u64 {
        self.offers
    }

    /// Offers refused.
    pub fn refusals(&self) -> u64 {
        self.refusals
    }
}

impl CommitSink for ThrottleSink {
    fn offer(&mut self, _now: u64, _slot: usize, _inst: &TraceInst) -> bool {
        self.offers += 1;
        if self.period != 0 && self.offers % self.period == 0 {
            self.refusals += 1;
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireguard_isa::Instruction;

    fn inst() -> TraceInst {
        TraceInst {
            seq: 0,
            pc: 0x1000,
            inst: Instruction::nop(),
            class: Instruction::nop().class(),
            mem_addr: None,
            control: None,
            heap: None,
            attack: None,
        }
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        for i in 0..100 {
            assert!(s.offer(i, (i % 4) as usize, &inst()));
        }
        assert_eq!(s.prf_ports_stolen(0), 0);
    }

    #[test]
    fn throttle_sink_refuses_periodically() {
        let mut s = ThrottleSink::new(3);
        let results: Vec<bool> = (0..9).map(|i| s.offer(i, 0, &inst())).collect();
        assert_eq!(
            results,
            [true, true, false, true, true, false, true, true, false]
        );
        assert_eq!(s.refusals(), 3);
    }

    #[test]
    fn throttle_period_zero_never_refuses() {
        let mut s = ThrottleSink::new(0);
        assert!((0..50).all(|i| s.offer(i, 0, &inst())));
    }
}
