//! The trace-driven out-of-order pipeline model.
//!
//! One [`Core::step`] models one 3.2 GHz core cycle with the classic stage
//! ordering (commit → issue/execute → dispatch/rename → fetch), so that
//! structural resources (ROB, IQ, LDQ/STQ, physical registers, functional
//! units, PRF read ports) constrain flow exactly one cycle at a time.
//!
//! The model is *trace-driven*: instructions come from a
//! [`fireguard_trace::TraceGenerator`] which resolves all outcomes
//! (branch directions, targets, memory addresses). Mispredictions therefore
//! cannot fetch wrong-path instructions; they are modelled as fetch stalls
//! from the mispredicted instruction's fetch until its resolution at
//! execute plus a redirect penalty — the standard trace-driven
//! approximation.

use crate::config::BoomConfig;
use crate::predictor::{FrontendPredictor, MispredictKind};
use crate::sink::CommitSink;
use crate::stats::{CoreStats, StallKind};
use fireguard_isa::InstClass;
use fireguard_mem::{Cache, MemoryHierarchy, Tlb};
use fireguard_trace::TraceInst;
use std::collections::VecDeque;

const NOT_READY: u64 = u64::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Dispatched, waiting in the issue queue.
    Waiting,
    /// Issued; completes at `ready_at`.
    Executing,
}

/// Scan-hot projection of a `Waiting` ROB entry (see `Core::waiting_q`).
///
/// Dispatch runs *after* issue within a cycle, so an entry is always at
/// least one cycle old by its first scan — no dispatch-cycle eligibility
/// field is needed.
#[derive(Debug, Clone, Copy)]
struct WaitEntry {
    /// All-time push position; `abs - pops` is the live ROB index.
    abs: u64,
    /// Renamed sources, as in `RobEntry::srcs`.
    srcs: [Option<(bool, u16)>; 2],
    /// Instruction class (functional-unit selection).
    class: InstClass,
}

#[derive(Debug, Clone)]
struct RobEntry {
    t: TraceInst,
    state: EntryState,
    ready_at: u64,
    /// Renamed destination and the mapping it replaced (freed at commit).
    /// The renamed *sources* and dispatch cycle live in the issue stage's
    /// compact `WaitEntry` instead — they are dead once an entry issues.
    dest: Option<(bool, u16)>,
    old_phys: Option<(bool, u16)>,
    mispredicted: bool,
}

/// The out-of-order core model. Generic over the input trace iterator.
pub struct Core<T> {
    cfg: BoomConfig,
    trace: T,
    pending_fetch: Option<TraceInst>,
    trace_done: bool,
    now: u64,

    pred: FrontendPredictor,
    icache: Cache,
    last_fetch_line: u64,
    fetch_buf: VecDeque<TraceInst>,
    fetch_blocked_until: u64,
    /// Sequence number of an in-flight mispredicted control transfer that
    /// fetch is waiting on.
    redirect_wait: Option<u64>,

    rat_int: [u16; 32],
    rat_fp: [u16; 32],
    free_int: Vec<u16>,
    free_fp: Vec<u16>,
    ready_int: Vec<u64>,
    ready_fp: Vec<u64>,

    rob: VecDeque<RobEntry>,
    iq_len: usize,
    /// All-time count of entries popped off the ROB front; `abs - pops`
    /// maps a stored absolute position back to a live ROB index.
    pops: u64,
    /// The `Waiting` entries, oldest first, with the scan-hot fields
    /// copied inline (~24 bytes each). The issue stage walks this compact
    /// array instead of scanning the whole ROB: the executing majority and
    /// the 150-byte entries are never touched until something actually
    /// issues, and in-place compaction keeps program order, so issue
    /// decisions are identical to a full scan.
    waiting_q: Vec<WaitEntry>,
    ldq_used: usize,
    stq_used: usize,

    dmem: MemoryHierarchy,
    dtlb: Tlb,

    stats: CoreStats,
}

impl<T: Iterator<Item = TraceInst>> Core<T> {
    /// Builds a core over `trace` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`BoomConfig::validate`].
    pub fn new(cfg: BoomConfig, trace: T) -> Self {
        cfg.validate();
        let free_int: Vec<u16> = (32..cfg.int_prf as u16).collect();
        let free_fp: Vec<u16> = (32..cfg.fp_prf as u16).collect();
        let ready_int = vec![0; cfg.int_prf];
        let ready_fp = vec![0; cfg.fp_prf];
        let mut rat_int = [0u16; 32];
        let mut rat_fp = [0u16; 32];
        for (i, (ri, rf)) in rat_int.iter_mut().zip(rat_fp.iter_mut()).enumerate() {
            *ri = i as u16;
            *rf = i as u16;
        }
        Core {
            icache: Cache::new(fireguard_mem::CacheConfig::new(32 * 1024, 8, 64)),
            dmem: MemoryHierarchy::new(cfg.dmem),
            dtlb: Tlb::new(cfg.dtlb),
            cfg,
            trace,
            pending_fetch: None,
            trace_done: false,
            now: 0,
            pred: FrontendPredictor::new(),
            last_fetch_line: u64::MAX,
            fetch_buf: VecDeque::new(),
            fetch_blocked_until: 0,
            redirect_wait: None,
            rat_int,
            rat_fp,
            free_int,
            free_fp,
            ready_int,
            ready_fp,
            rob: VecDeque::new(),
            iq_len: 0,
            pops: 0,
            waiting_q: Vec::new(),
            ldq_used: 0,
            stq_used: 0,
            stats: CoreStats::default(),
        }
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &BoomConfig {
        &self.cfg
    }

    /// True once the trace is exhausted and the pipeline has drained.
    pub fn is_drained(&self) -> bool {
        self.trace_done
            && self.pending_fetch.is_none()
            && self.fetch_buf.is_empty()
            && self.rob.is_empty()
    }

    /// Advances the model by one core cycle.
    pub fn step<S: CommitSink>(&mut self, sink: &mut S) {
        let stolen = sink.prf_ports_stolen(self.now);
        self.commit(sink);
        self.issue(stolen);
        self.dispatch();
        self.fetch();
        self.now += 1;
        self.stats.cycles += 1;
    }

    /// Runs until `n` instructions commit (or the trace drains), returning
    /// a snapshot of the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline makes no progress for an implausible number of
    /// cycles (a deadlock, which would be a simulator bug or a sink that
    /// refuses everything forever).
    pub fn run_insts<S: CommitSink>(&mut self, n: u64, sink: &mut S) -> CoreStats {
        let target = self.stats.committed + n;
        let mut last_progress = (self.now, self.stats.committed);
        while self.stats.committed < target && !self.is_drained() {
            self.step(sink);
            if self.stats.committed > last_progress.1 {
                last_progress = (self.now, self.stats.committed);
            } else {
                assert!(
                    self.now - last_progress.0 < 2_000_000,
                    "no commit progress for 2M cycles: wedged at seq {} cycle {}",
                    last_progress.1,
                    self.now
                );
            }
        }
        self.stats.clone()
    }

    /// Runs for `n` cycles.
    pub fn run_cycles<S: CommitSink>(&mut self, n: u64, sink: &mut S) -> CoreStats {
        for _ in 0..n {
            if self.is_drained() {
                break;
            }
            self.step(sink);
        }
        self.stats.clone()
    }

    // ---- commit -------------------------------------------------------------

    fn commit<S: CommitSink>(&mut self, sink: &mut S) {
        let mut committed_this_cycle = 0;
        for slot in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            let done = head.state == EntryState::Executing && head.ready_at <= self.now;
            if !done {
                break;
            }
            if !sink.offer(self.now, slot, &head.t) {
                self.stats.add_stall(StallKind::CommitBackpressure);
                break;
            }
            let head = self.rob.pop_front().expect("head exists");
            self.pops += 1;
            if let Some((fp, old)) = head.old_phys {
                if fp {
                    self.free_fp.push(old);
                } else {
                    self.free_int.push(old);
                }
            }
            match head.t.class {
                InstClass::Load => self.ldq_used -= 1,
                InstClass::Store => self.stq_used -= 1,
                InstClass::Amo => {
                    self.ldq_used -= 1;
                    self.stq_used -= 1;
                }
                InstClass::Branch => self.stats.branches += 1,
                _ => {}
            }
            if head.mispredicted {
                self.stats.mispredicts += 1;
            }
            self.stats.committed += 1;
            committed_this_cycle += 1;
        }
        if committed_this_cycle > 0 {
            self.stats.commit_active_cycles += 1;
        }
    }

    // ---- issue / execute ------------------------------------------------------

    fn exec_latency(&mut self, t: &TraceInst) -> u64 {
        match t.class {
            InstClass::IntAlu | InstClass::Jump | InstClass::Call | InstClass::Ret => 1,
            InstClass::Branch | InstClass::IndirectJump => 1,
            InstClass::IntMul => 3,
            InstClass::IntDiv => 20,
            InstClass::FpAlu => 4,
            InstClass::Csr => 3,
            InstClass::Fence | InstClass::System => 1,
            InstClass::Load => {
                let addr = t.mem_addr.unwrap_or(0);
                let tlb = self.dtlb.access(addr);
                let mem = self.dmem.access(self.now, addr, false);
                tlb + mem.latency
            }
            InstClass::Store => {
                // Address generation only; the write drains via the store
                // buffer. The cache access still updates tag state and MSHR
                // occupancy (write-allocate traffic).
                let addr = t.mem_addr.unwrap_or(0);
                let tlb = self.dtlb.access(addr);
                let _ = self.dmem.access(self.now, addr, true);
                1 + tlb
            }
            InstClass::Amo => {
                let addr = t.mem_addr.unwrap_or(0);
                let tlb = self.dtlb.access(addr);
                let mem = self.dmem.access(self.now, addr, true);
                tlb + mem.latency + 2
            }
        }
    }

    fn issue(&mut self, ports_stolen: usize) {
        let mut issued = 0;
        let mut alu = self.cfg.int_alus;
        let mut fpu = self.cfg.fp_units;
        let mut mem = self.cfg.mem_units;
        let mut jmp = self.cfg.jump_units;
        let mut csr = self.cfg.csr_units;
        let mut int_ports = self.cfg.prf_read_ports.saturating_sub(ports_stolen);
        let mut port_conflict_seen = false;

        // Walk only the waiting entries (oldest first — the same order the
        // full ROB scan examined them), compacting the survivors in
        // place. The compaction only writes once entries start shifting
        // (after the first issue of the pass), and once the issue width
        // is spent the unexamined tail shifts down in one bulk move —
        // behaviourally identical to the old scan's early break.
        let mut kept = 0usize;
        macro_rules! keep {
            ($w:expr, $cursor:expr) => {{
                if kept != $cursor {
                    self.waiting_q[kept] = $w;
                }
                kept += 1;
                continue;
            }};
        }
        for cursor in 0..self.waiting_q.len() {
            if issued == self.cfg.issue_width {
                if kept != cursor {
                    self.waiting_q.copy_within(cursor.., kept);
                }
                kept += self.waiting_q.len() - cursor;
                break;
            }
            let w = self.waiting_q[cursor];
            // Operand readiness.
            let src_ready = |s: Option<(bool, u16)>| match s {
                None => true,
                Some((true, p)) => self.ready_fp[p as usize] <= self.now,
                Some((false, p)) => self.ready_int[p as usize] <= self.now,
            };
            if !(src_ready(w.srcs[0]) && src_ready(w.srcs[1])) {
                keep!(w, cursor);
            }
            // Functional-unit availability.
            let unit = match w.class {
                InstClass::IntAlu => &mut alu,
                InstClass::IntMul | InstClass::IntDiv | InstClass::FpAlu => &mut fpu,
                InstClass::Load | InstClass::Store | InstClass::Amo => &mut mem,
                InstClass::Branch
                | InstClass::Jump
                | InstClass::IndirectJump
                | InstClass::Call
                | InstClass::Ret => &mut jmp,
                InstClass::Csr => &mut csr,
                InstClass::Fence | InstClass::System => &mut alu,
            };
            if *unit == 0 {
                keep!(w, cursor);
            }
            let idx = (w.abs - self.pops) as usize;
            debug_assert_eq!(
                self.rob[idx].state,
                EntryState::Waiting,
                "waiting_q is in sync"
            );
            // Integer PRF read ports (FireGuard can have stolen some). The
            // oldest instruction is exempt: the forwarding channel only ever
            // borrows a port for a single cycle, so the head can always
            // issue — this guarantees forward progress under any sink.
            let int_reads = w.srcs.iter().flatten().filter(|&&(fp, _)| !fp).count();
            if idx != 0 && int_reads > int_ports {
                if ports_stolen > 0 && !port_conflict_seen {
                    self.stats.prf_port_conflicts += 1;
                    port_conflict_seen = true;
                }
                keep!(w, cursor);
            }
            *unit -= 1;
            int_ports = int_ports.saturating_sub(int_reads);
            issued += 1;

            let t = self.rob[idx].t;
            let lat = self.exec_latency(&t);
            let ready_at = self.now + lat;
            let e = &mut self.rob[idx];
            e.state = EntryState::Executing;
            e.ready_at = ready_at;
            self.iq_len -= 1;
            if let Some((fp, p)) = e.dest {
                if fp {
                    self.ready_fp[p as usize] = ready_at;
                } else {
                    self.ready_int[p as usize] = ready_at;
                }
            }
            // A resolving misprediction schedules the front-end redirect.
            if e.mispredicted && self.redirect_wait == Some(e.t.seq) {
                self.redirect_wait = None;
                self.fetch_blocked_until = self
                    .fetch_blocked_until
                    .max(ready_at + self.cfg.redirect_penalty);
            }
        }
        self.waiting_q.truncate(kept);
    }

    // ---- dispatch / rename -------------------------------------------------------

    fn dispatch(&mut self) {
        let mut dispatched = 0;
        while dispatched < self.cfg.decode_width {
            if self.fetch_buf.is_empty() {
                if dispatched == 0 {
                    self.stats.add_stall(StallKind::FrontendEmpty);
                }
                break;
            }
            if self.rob.len() == self.cfg.rob_entries {
                if dispatched == 0 {
                    self.stats.add_stall(StallKind::RobFull);
                }
                break;
            }
            if self.iq_len == self.cfg.iq_entries {
                if dispatched == 0 {
                    self.stats.add_stall(StallKind::IqFull);
                }
                break;
            }
            let t = *self.fetch_buf.front().expect("checked non-empty");
            match t.class {
                InstClass::Load if self.ldq_used == self.cfg.ldq_entries => {
                    if dispatched == 0 {
                        self.stats.add_stall(StallKind::LdqFull);
                    }
                    break;
                }
                InstClass::Store if self.stq_used == self.cfg.stq_entries => {
                    if dispatched == 0 {
                        self.stats.add_stall(StallKind::StqFull);
                    }
                    break;
                }
                InstClass::Amo
                    if self.ldq_used == self.cfg.ldq_entries
                        || self.stq_used == self.cfg.stq_entries =>
                {
                    if dispatched == 0 {
                        self.stats.add_stall(StallKind::LdqFull);
                    }
                    break;
                }
                _ => {}
            }
            let is_fp_op = t.class == InstClass::FpAlu;
            let needs_dest = t.inst.dest().is_some();
            if needs_dest {
                let free = if is_fp_op {
                    &self.free_fp
                } else {
                    &self.free_int
                };
                if free.is_empty() {
                    if dispatched == 0 {
                        self.stats.add_stall(StallKind::PrfFull);
                    }
                    break;
                }
            }

            // All structural checks passed: consume and rename (reusing
            // the copy peeked for the structural checks above).
            self.fetch_buf.pop_front().expect("checked non-empty");
            let mut srcs: [Option<(bool, u16)>; 2] = [None, None];
            for (i, s) in t.inst.sources().into_iter().enumerate() {
                if let Some(a) = s {
                    let fp = is_fp_op;
                    let phys = if fp {
                        self.rat_fp[a.index() as usize]
                    } else {
                        self.rat_int[a.index() as usize]
                    };
                    srcs[i] = Some((fp, phys));
                }
            }
            let mut dest = None;
            let mut old_phys = None;
            if let Some(d) = t.inst.dest() {
                let fp = is_fp_op;
                let (rat, free, ready) = if fp {
                    (&mut self.rat_fp, &mut self.free_fp, &mut self.ready_fp)
                } else {
                    (&mut self.rat_int, &mut self.free_int, &mut self.ready_int)
                };
                let new = free.pop().expect("checked free list");
                old_phys = Some((fp, rat[d.index() as usize]));
                rat[d.index() as usize] = new;
                ready[new as usize] = NOT_READY;
                dest = Some((fp, new));
            }
            match t.class {
                InstClass::Load => self.ldq_used += 1,
                InstClass::Store => self.stq_used += 1,
                InstClass::Amo => {
                    self.ldq_used += 1;
                    self.stq_used += 1;
                }
                _ => {}
            }
            let mispredicted = self.redirect_pending_for(t.seq);
            self.rob.push_back(RobEntry {
                t,
                state: EntryState::Waiting,
                ready_at: 0,
                dest,
                old_phys,
                mispredicted,
            });
            self.waiting_q.push(WaitEntry {
                abs: self.pops + (self.rob.len() - 1) as u64,
                srcs,
                class: t.class,
            });
            self.iq_len += 1;
            dispatched += 1;
        }
    }

    fn redirect_pending_for(&self, seq: u64) -> bool {
        self.redirect_wait == Some(seq)
    }

    // ---- fetch ------------------------------------------------------------------

    fn next_trace_inst(&mut self) -> Option<TraceInst> {
        if let Some(t) = self.pending_fetch.take() {
            return Some(t);
        }
        match self.trace.next() {
            Some(t) => Some(t),
            None => {
                self.trace_done = true;
                None
            }
        }
    }

    fn fetch(&mut self) {
        if self.redirect_wait.is_some() || self.now < self.fetch_blocked_until {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_buf.len() >= self.cfg.fetch_buffer {
                break;
            }
            let Some(t) = self.next_trace_inst() else {
                break;
            };
            // I-cache: one line check per line transition.
            let line = t.pc & !63;
            if line != self.last_fetch_line {
                self.last_fetch_line = line;
                if !self.icache.access(t.pc, false) {
                    self.stats.icache_misses += 1;
                    self.fetch_blocked_until = self.now + self.cfg.icache_miss_penalty;
                    self.pending_fetch = Some(t);
                    return;
                }
            }
            let mispredict = match (t.class.is_control_flow(), t.control) {
                (true, Some(cf)) => self.pred.observe(t.pc, t.class, cf.taken, cf.target),
                _ => MispredictKind::None,
            };
            let taken_transfer = t.control.map(|c| c.taken).unwrap_or(false);
            let seq = t.seq;
            self.fetch_buf.push_back(t);
            match mispredict {
                MispredictKind::ExecuteRedirect => {
                    self.redirect_wait = Some(seq);
                    return;
                }
                MispredictKind::DecodeBubble => {
                    // The decoder extracts the target and redirects with a
                    // short fixed bubble; no execute-time resolution needed.
                    self.fetch_blocked_until = self.now + 2;
                    return;
                }
                MispredictKind::None => {}
            }
            if taken_transfer {
                // A fetch group ends at a taken control transfer.
                break;
            }
        }
    }
}

impl<T: Iterator<Item = TraceInst>> std::fmt::Debug for Core<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("now", &self.now)
            .field("committed", &self.stats.committed)
            .field("rob_occupancy", &self.rob.len())
            .field("trace_done", &self.trace_done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{NullSink, ThrottleSink};
    use fireguard_trace::{TraceGenerator, WorkloadProfile};

    fn core_for(name: &str, seed: u64) -> Core<TraceGenerator> {
        let t = TraceGenerator::new(WorkloadProfile::parsec(name).unwrap(), seed);
        Core::new(BoomConfig::default(), t)
    }

    #[test]
    fn ipc_is_plausible_for_all_workloads() {
        for w in fireguard_trace::PARSEC_WORKLOADS {
            let t = TraceGenerator::new(w.clone(), 5);
            let mut c = Core::new(BoomConfig::default(), t);
            let stats = c.run_insts(30_000, &mut NullSink);
            let ipc = stats.ipc();
            assert!(
                ipc > 0.3 && ipc <= 4.0,
                "{}: implausible IPC {ipc:.2}",
                w.name
            );
        }
    }

    #[test]
    fn deterministic_cycle_counts() {
        let run = || {
            let mut c = core_for("ferret", 9);
            c.run_insts(20_000, &mut NullSink).cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn commit_is_in_program_order() {
        struct OrderCheck {
            last: Option<u64>,
        }
        impl CommitSink for OrderCheck {
            fn offer(&mut self, _now: u64, _slot: usize, inst: &TraceInst) -> bool {
                if let Some(last) = self.last {
                    assert_eq!(inst.seq, last + 1, "commit order must be program order");
                }
                self.last = Some(inst.seq);
                true
            }
        }
        let mut c = core_for("bodytrack", 3);
        let mut sink = OrderCheck { last: None };
        c.run_insts(20_000, &mut sink);
        assert!(sink.last.unwrap() >= 19_999);
    }

    #[test]
    fn commit_slots_respect_width() {
        struct SlotCheck;
        impl CommitSink for SlotCheck {
            fn offer(&mut self, _now: u64, slot: usize, _inst: &TraceInst) -> bool {
                assert!(slot < 4);
                true
            }
        }
        core_for("swaptions", 4).run_insts(10_000, &mut SlotCheck);
    }

    #[test]
    fn backpressure_slows_the_core() {
        let base = core_for("x264", 7).run_insts(20_000, &mut NullSink);
        let mut throttle = ThrottleSink::new(2); // refuse every other offer
        let slow = core_for("x264", 7).run_insts(20_000, &mut throttle);
        assert!(
            slow.cycles as f64 > base.cycles as f64 * 1.1,
            "refusing half the offers must slow commit: {} vs {}",
            slow.cycles,
            base.cycles
        );
        assert!(slow.stalls(StallKind::CommitBackpressure) > 0);
    }

    #[test]
    fn stolen_prf_ports_cost_performance() {
        struct StealSink(usize);
        impl CommitSink for StealSink {
            fn offer(&mut self, _now: u64, _slot: usize, _inst: &TraceInst) -> bool {
                true
            }
            fn prf_ports_stolen(&mut self, _now: u64) -> usize {
                self.0
            }
        }
        let base = core_for("x264", 11).run_insts(30_000, &mut StealSink(0));
        let steal = core_for("x264", 11).run_insts(30_000, &mut StealSink(6));
        assert!(
            steal.cycles > base.cycles,
            "losing 6 of 8 read ports must hurt: {} vs {}",
            steal.cycles,
            base.cycles
        );
        assert!(steal.prf_port_conflicts > 0);
    }

    #[test]
    fn branch_mispredict_rate_is_sane() {
        let mut c = core_for("streamcluster", 13);
        let stats = c.run_insts(50_000, &mut NullSink);
        let rate = stats.mispredict_rate();
        assert!(
            rate < 0.25,
            "predictable workload shouldn't exceed 25% redirects/branch: {rate:.3}"
        );
        assert!(stats.branches > 1_000);
    }

    #[test]
    fn x264_has_higher_ipc_than_freqmine() {
        // x264's looser dependency chains should out-run freqmine's
        // branch-heavy, tighter code on the same machine.
        let x = core_for("x264", 17).run_insts(40_000, &mut NullSink);
        let f = core_for("freqmine", 17).run_insts(40_000, &mut NullSink);
        assert!(
            x.ipc() > f.ipc(),
            "x264 {:.2} vs freqmine {:.2}",
            x.ipc(),
            f.ipc()
        );
    }

    #[test]
    fn finite_trace_drains_completely() {
        let t = TraceGenerator::new(WorkloadProfile::parsec("swaptions").unwrap(), 19);
        let finite: Vec<TraceInst> = t.take(5000).collect();
        let mut c = Core::new(BoomConfig::default(), finite.into_iter());
        let stats = c.run_insts(1_000_000, &mut NullSink);
        assert_eq!(stats.committed, 5000);
        assert!(c.is_drained());
    }

    #[test]
    fn narrower_commit_width_lowers_ipc() {
        let narrow_cfg = BoomConfig {
            commit_width: 1,
            ..BoomConfig::default()
        };
        let t = TraceGenerator::new(WorkloadProfile::parsec("x264").unwrap(), 23);
        let mut narrow = Core::new(narrow_cfg, t);
        let n = narrow.run_insts(20_000, &mut NullSink);
        let wide = core_for("x264", 23).run_insts(20_000, &mut NullSink);
        assert!(n.ipc() <= 1.0 + 1e-9);
        assert!(wide.ipc() > n.ipc());
    }

    #[test]
    fn larger_prf_than_default_scoreboard_works() {
        // Regression: the ready scoreboards were once hardcoded to 128
        // entries, panicking as soon as a bigger PRF handed out preg >= 128.
        let cfg = BoomConfig {
            int_prf: 256,
            fp_prf: 192,
            ..BoomConfig::default()
        };
        let trace = TraceGenerator::new(WorkloadProfile::parsec("x264").unwrap(), 7);
        let mut c = Core::new(cfg, trace);
        let stats = c.run_insts(20_000, &mut NullSink);
        assert!(stats.committed >= 20_000);
    }

    #[test]
    fn phys_registers_are_conserved() {
        let mut c = core_for("dedup", 29);
        c.run_insts(30_000, &mut NullSink);
        // Drain what's in flight.
        for _ in 0..10_000 {
            if c.rob.is_empty() {
                break;
            }
            c.step(&mut NullSink);
        }
        assert_eq!(
            c.free_int.len()
                + 32
                + c.rob
                    .iter()
                    .filter(|e| matches!(e.dest, Some((false, _))))
                    .count(),
            c.cfg.int_prf,
            "integer free list + architectural + in-flight must equal PRF size"
        );
    }
}
