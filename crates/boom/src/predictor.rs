//! Front-end branch prediction: TAGE direction predictor, BTB, and RAS.
//!
//! Table II specifies the TAGE algorithm with a 256-entry BTB, a 32-entry
//! return-address stack, and 6 tagged tables with history lengths from 2 to
//! 64 bits. This module implements a standard TAGE (base bimodal table plus
//! N tagged components with geometrically increasing history, provider/
//! alternate selection, usefulness counters and allocation on mispredict).

use fireguard_isa::InstClass;

/// History lengths of the six tagged tables (geometric 2…64, per Table II).
pub const TAGE_HISTORIES: [usize; 6] = [2, 4, 8, 16, 32, 64];

const TAGE_TABLE_BITS: usize = 10; // 1024 entries per tagged table
const TAGE_TAG_BITS: usize = 9;
const BIMODAL_BITS: usize = 12; // 4096-entry base predictor

#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    ctr: i8,    // 3-bit signed counter, taken if >= 0
    useful: u8, // 2-bit usefulness
}

/// The TAGE direction predictor.
#[derive(Debug, Clone)]
pub struct Tage {
    bimodal: Vec<i8>,
    tables: Vec<Vec<TageEntry>>,
    /// Global direction history, most recent outcome in bit 0.
    ghist: u128,
    predictions: u64,
    mispredictions: u64,
    alloc_tick: u64,
}

impl Default for Tage {
    fn default() -> Self {
        Self::new()
    }
}

impl Tage {
    /// Builds an empty predictor (weakly not-taken everywhere).
    pub fn new() -> Self {
        Tage {
            bimodal: vec![0; 1 << BIMODAL_BITS],
            tables: TAGE_HISTORIES
                .iter()
                .map(|_| vec![TageEntry::default(); 1 << TAGE_TABLE_BITS])
                .collect(),
            ghist: 0,
            predictions: 0,
            mispredictions: 0,
            alloc_tick: 0,
        }
    }

    fn fold_history(&self, bits: usize, out_bits: usize) -> u64 {
        // XOR-fold `bits` of global history down to `out_bits`.
        let mut h = self.ghist & ((1u128 << bits) - 1);
        let mut folded: u64 = 0;
        while h != 0 {
            folded ^= (h as u64) & ((1 << out_bits) - 1);
            h >>= out_bits;
        }
        folded
    }

    fn index(&self, pc: u64, table: usize) -> usize {
        let hist = self.fold_history(TAGE_HISTORIES[table], TAGE_TABLE_BITS);
        let mixed = (pc >> 2)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17 + table as u32);
        ((mixed ^ hist) as usize) & ((1 << TAGE_TABLE_BITS) - 1)
    }

    fn tag(&self, pc: u64, table: usize) -> u16 {
        let hist = self.fold_history(TAGE_HISTORIES[table], TAGE_TAG_BITS);
        let mixed = (pc >> 2)
            .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            .rotate_left(29 + 2 * table as u32);
        ((mixed >> 7) ^ hist) as u16 & ((1 << TAGE_TAG_BITS) - 1)
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & ((1 << BIMODAL_BITS) - 1)
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.provider(pc)
            .map(|(t, i)| self.tables[t][i].ctr >= 0)
            .unwrap_or_else(|| self.bimodal[self.bimodal_index(pc)] >= 0)
    }

    /// Finds the longest-history matching component, if any.
    fn provider(&self, pc: u64) -> Option<(usize, usize)> {
        (0..self.tables.len()).rev().find_map(|t| {
            let i = self.index(pc, t);
            (self.tables[t][i].tag == self.tag(pc, t)).then_some((t, i))
        })
    }

    /// Updates the predictor with the resolved outcome and advances
    /// history; returns the direction it *would have predicted*, so
    /// callers get prediction and training from one table walk.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        self.predictions += 1;
        // The history-folded index/tag pairs are pure functions of
        // `(ghist, pc)`, both fixed for the whole update; hash once and
        // share across prediction, provider update, and allocation (the
        // old code re-derived them up to three times per branch).
        let mut keys = [(0usize, 0u16); TAGE_HISTORIES.len()];
        for (t, key) in keys.iter_mut().enumerate() {
            *key = (self.index(pc, t), self.tag(pc, t));
        }
        let provider = (0..self.tables.len())
            .rev()
            .find(|&t| self.tables[t][keys[t].0].tag == keys[t].1);
        let predicted = match provider {
            Some(t) => self.tables[t][keys[t].0].ctr >= 0,
            None => self.bimodal[self.bimodal_index(pc)] >= 0,
        };
        let correct = predicted == taken;
        if !correct {
            self.mispredictions += 1;
        }

        match provider {
            Some(t) => {
                let e = &mut self.tables[t][keys[t].0];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                if correct {
                    e.useful = (e.useful + 1).min(3);
                } else if e.useful > 0 {
                    e.useful -= 1;
                }
                // Allocate in a longer table on a mispredict.
                if !correct && t + 1 < self.tables.len() {
                    self.allocate(&keys, taken, t + 1);
                }
            }
            None => {
                let bi = self.bimodal_index(pc);
                let c = &mut self.bimodal[bi];
                *c = (*c + if taken { 1 } else { -1 }).clamp(-2, 1);
                if !correct {
                    self.allocate(&keys, taken, 0);
                }
            }
        }

        self.ghist = (self.ghist << 1) | u128::from(taken);
        predicted
    }

    fn allocate(&mut self, keys: &[(usize, u16); TAGE_HISTORIES.len()], taken: bool, from: usize) {
        self.alloc_tick = self.alloc_tick.wrapping_add(1);
        // Try tables from `from` upward; take the first non-useful slot.
        for (t, &(i, tag)) in keys.iter().enumerate().skip(from) {
            let e = &mut self.tables[t][i];
            if e.useful == 0 {
                *e = TageEntry {
                    tag,
                    ctr: if taken { 0 } else { -1 },
                    useful: 0,
                };
                return;
            }
        }
        // All candidates useful: age one pseudo-randomly (deterministic).
        let t = from + (self.alloc_tick as usize % (self.tables.len() - from));
        let e = &mut self.tables[t][keys[t].0];
        e.useful = e.useful.saturating_sub(1);
    }

    /// Records a non-conditional control transfer in the history (taken).
    pub fn note_unconditional(&mut self) {
        self.ghist = (self.ghist << 1) | 1;
    }

    /// Fraction of mispredicted conditional branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Conditional branches predicted so far.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }
}

/// A direct-mapped branch-target buffer (256 entries, Table II).
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc, target)
}

impl Default for Btb {
    fn default() -> Self {
        Self::new(256)
    }
}

impl Btb {
    /// Builds a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        Btb {
            entries: vec![None; entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Looks up the predicted target for `pc`.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.entries[i] = Some((pc, target));
    }
}

/// A return-address stack (32 entries, Table II), overwriting on overflow.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u64>,
    capacity: usize,
}

impl Default for Ras {
    fn default() -> Self {
        Self::new(32)
    }
}

impl Ras {
    /// Builds a RAS holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Ras {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes a return address (a call was fetched).
    pub fn push(&mut self, ret_addr: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0); // overflow drops the oldest
        }
        self.stack.push(ret_addr);
    }

    /// Pops the predicted return target (a return was fetched).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

/// Outcome of comparing a front-end prediction with the resolved transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MispredictKind {
    /// Prediction was correct; fetch continues unhindered.
    None,
    /// A direct jump/call missed the BTB (or a taken branch's target was
    /// unknown): the decoder extracts the target from the instruction bits
    /// and redirects with a small fixed bubble.
    DecodeBubble,
    /// The transfer can only be resolved at execute (wrong direction on a
    /// conditional branch, wrong RAS/indirect target): fetch stalls until
    /// resolution plus the redirect penalty.
    ExecuteRedirect,
}

/// The combined front end: TAGE + BTB + RAS.
#[derive(Debug, Clone, Default)]
pub struct FrontendPredictor {
    /// Direction predictor.
    pub tage: Tage,
    /// Target buffer.
    pub btb: Btb,
    /// Return-address stack.
    pub ras: Ras,
}

impl FrontendPredictor {
    /// Creates the Table II front end.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicts and *speculatively updates* stack state for the control
    /// instruction at `pc`, then classifies the actual outcome
    /// `(taken, target)` against the prediction, updating all structures.
    ///
    /// The model folds predict and train into one call because the
    /// trace-driven core resolves outcomes from the trace; the returned
    /// classification drives the fetch-redirect behaviour.
    pub fn observe(
        &mut self,
        pc: u64,
        class: InstClass,
        taken: bool,
        target: u64,
    ) -> MispredictKind {
        let next_seq = pc + 4;
        match class {
            InstClass::Branch => {
                // One TAGE walk yields both the prediction and the update.
                let target_known = self.btb.lookup(pc) == Some(target);
                let dir_pred = self.tage.update(pc, taken);
                if taken {
                    self.btb.update(pc, target);
                }
                if dir_pred != taken {
                    MispredictKind::ExecuteRedirect
                } else if taken && !target_known {
                    // Direction right but target unknown: the decoder
                    // computes the PC-relative target (B-format immediate).
                    MispredictKind::DecodeBubble
                } else {
                    MispredictKind::None
                }
            }
            InstClass::Jump => {
                let known = self.btb.lookup(pc) == Some(target);
                self.btb.update(pc, target);
                self.tage.note_unconditional();
                if known {
                    MispredictKind::None
                } else {
                    MispredictKind::DecodeBubble
                }
            }
            InstClass::Call => {
                let known = self.btb.lookup(pc) == Some(target);
                self.btb.update(pc, target);
                self.ras.push(next_seq);
                self.tage.note_unconditional();
                if known {
                    MispredictKind::None
                } else {
                    MispredictKind::DecodeBubble
                }
            }
            InstClass::Ret => {
                let predicted = self.ras.pop();
                self.tage.note_unconditional();
                if predicted == Some(target) {
                    MispredictKind::None
                } else {
                    MispredictKind::ExecuteRedirect
                }
            }
            InstClass::IndirectJump => {
                let known = self.btb.lookup(pc) == Some(target);
                self.btb.update(pc, target);
                self.tage.note_unconditional();
                if known {
                    MispredictKind::None
                } else {
                    MispredictKind::ExecuteRedirect
                }
            }
            _ => MispredictKind::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tage_learns_a_strong_bias() {
        let mut t = Tage::new();
        for _ in 0..200 {
            t.update(0x1000, true);
        }
        assert!(t.predict(0x1000));
        // The last updates should be overwhelmingly correct.
        assert!(t.mispredict_rate() < 0.1, "rate {}", t.mispredict_rate());
    }

    #[test]
    fn tage_learns_a_loop_pattern() {
        // Taken 7 times, not-taken once, repeatedly: TAGE should beat a
        // bimodal-only predictor (which would mispredict every exit).
        let mut t = Tage::new();
        let mut wrong = 0;
        let mut total = 0;
        for iter in 0..4000 {
            let taken = iter % 8 != 7;
            if iter >= 2000 {
                total += 1;
                if t.predict(0x2000) != taken {
                    wrong += 1;
                }
            }
            t.update(0x2000, taken);
        }
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.10, "loop exits should be learned: {rate}");
    }

    #[test]
    fn tage_separates_aliased_pcs_by_history() {
        // Two branches with opposite behaviour that share the bimodal slot
        // (0x4000>>2 and 0x8000>>2 both fold to bimodal index 0). The tagged
        // components must still tell them apart. Accuracy is measured at the
        // same history alignment the predictor trains at.
        let mut t = Tage::new();
        let mut correct = 0;
        let mut total = 0;
        for iter in 0..600 {
            if iter >= 300 {
                total += 2;
                correct += usize::from(t.predict(0x4000));
                // peek after the 0x4000 update would shift history; emulate
                // the in-order use: predict, then update, for each branch.
            }
            t.update(0x4000, true);
            if iter >= 300 {
                correct += usize::from(!t.predict(0x8000));
            }
            t.update(0x8000, false);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "opposite-bias branches must separate: {acc}");
    }

    #[test]
    fn btb_round_trip_and_conflict() {
        let mut b = Btb::new(256);
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
        // A conflicting pc (same index, different tag) evicts.
        let conflicting = 0x1000 + 256 * 4;
        b.update(conflicting, 0x3000);
        assert_eq!(b.lookup(0x1000), None);
        assert_eq!(b.lookup(conflicting), Some(0x3000));
    }

    #[test]
    fn ras_predicts_nested_returns() {
        let mut r = Ras::new(32);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn frontend_calls_and_returns_pair_up() {
        let mut f = FrontendPredictor::new();
        // call at 0x1000 -> 0x5000; BTB cold, so decode must redirect.
        assert_eq!(
            f.observe(0x1000, InstClass::Call, true, 0x5000),
            MispredictKind::DecodeBubble
        );
        // matching return predicts correctly via RAS.
        assert_eq!(
            f.observe(0x5000, InstClass::Ret, true, 0x1004),
            MispredictKind::None
        );
        // second call now hits BTB.
        assert_eq!(
            f.observe(0x1000, InstClass::Call, true, 0x5000),
            MispredictKind::None
        );
        // hijacked return target costs a full execute redirect.
        f.observe(0x1000, InstClass::Call, true, 0x5000);
        assert_eq!(
            f.observe(0x5000, InstClass::Ret, true, 0xDEAD),
            MispredictKind::ExecuteRedirect
        );
    }

    #[test]
    fn frontend_branch_learns() {
        let mut f = FrontendPredictor::new();
        let mut last = MispredictKind::ExecuteRedirect;
        for _ in 0..300 {
            last = f.observe(0x9000, InstClass::Branch, true, 0x9100);
        }
        assert_eq!(last, MispredictKind::None);
    }

    #[test]
    fn non_control_classes_never_mispredict() {
        let mut f = FrontendPredictor::new();
        assert_eq!(
            f.observe(0x1, InstClass::Load, false, 0),
            MispredictKind::None
        );
        assert_eq!(
            f.observe(0x1, InstClass::IntAlu, false, 0),
            MispredictKind::None
        );
    }
}
