//! Calibration tool: prints per-workload IPC, packet rate, misprediction
//! rate and stall breakdown on the bare core. Used to keep the synthetic
//! PARSEC profiles at the paper's design points.
use fireguard_boom::{BoomConfig, Core, NullSink, StallKind};
use fireguard_trace::{TraceGenerator, PARSEC_WORKLOADS};

fn main() {
    println!(
        "{:14} {:>5} {:>6} {:>6} {:>6}  stalls",
        "workload", "ipc", "pkt/c", "mispr", "cyc"
    );
    for w in PARSEC_WORKLOADS {
        let t = TraceGenerator::new(w.clone(), 5);
        let mut c = Core::new(BoomConfig::default(), t);
        let s = c.run_insts(60_000, &mut NullSink);
        let pkt = s.ipc() * w.mem_fraction();
        print!(
            "{:14} {:5.2} {:6.3} {:6.3} {:6}  ",
            w.name,
            s.ipc(),
            pkt,
            s.mispredict_rate(),
            s.cycles
        );
        for k in StallKind::ALL {
            if s.stalls(k) > 1000 {
                print!("{}={} ", k.name(), s.stalls(k));
            }
        }
        println!();
    }
}
