//! Property-based tests on cache/TLB/hierarchy invariants.

use fireguard_mem::{Cache, CacheConfig, HierarchyConfig, MemoryHierarchy, Tlb, TlbConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The most recently accessed line is always resident (LRU never
    /// evicts the newest entry).
    #[test]
    fn most_recent_line_is_always_resident(addrs in proptest::collection::vec(0u64..(1 << 20), 1..500)) {
        let mut c = Cache::new(CacheConfig::new(4 * 1024, 2, 64));
        for a in addrs {
            c.access(a, false);
            prop_assert!(c.probe(a), "just-accessed line must be present");
        }
    }

    /// Hits + misses equals accesses, and re-access directly after any
    /// access always hits.
    #[test]
    fn stats_are_consistent(addrs in proptest::collection::vec(0u64..(1 << 18), 1..300)) {
        let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
        let n = addrs.len() as u64;
        for a in addrs {
            c.access(a, a % 3 == 0);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, n);
    }

    /// A working set that fits in the cache converges to all-hits.
    #[test]
    fn resident_working_set_hits(seed in 0u64..1000) {
        let mut c = Cache::new(CacheConfig::new(4 * 1024, 2, 64));
        // 32 lines in a 64-line cache.
        let lines: Vec<u64> = (0..32).map(|i| (seed * 64 + i) * 64).collect();
        for &l in &lines {
            c.access(l, false);
        }
        c.reset_stats();
        for _ in 0..4 {
            for &l in &lines {
                c.access(l, false);
            }
        }
        prop_assert_eq!(c.stats().misses, 0, "resident set must not miss");
    }

    /// TLB: accesses within one page never miss twice in a row.
    #[test]
    fn tlb_page_locality(base in 0u64..(1 << 30), offs in proptest::collection::vec(0u64..4096, 1..50)) {
        let mut t = Tlb::new(TlbConfig::ucore());
        let page = base & !0xFFF;
        t.access(page);
        for o in offs {
            prop_assert_eq!(t.access(page + o), 0, "same page must hit");
        }
    }

    /// Hierarchy latency is monotone in depth: a repeat access is never
    /// slower than the cold access that preceded it.
    #[test]
    fn repeat_access_never_slower(addr in 0u64..(1 << 26)) {
        let mut m = MemoryHierarchy::new(HierarchyConfig::main_core());
        let cold = m.access(0, addr, false);
        let warm = m.access(cold.ready_at + 10, addr, false);
        prop_assert!(warm.latency <= cold.latency);
    }

    /// Determinism: identical access streams produce identical latencies.
    #[test]
    fn hierarchy_is_deterministic(addrs in proptest::collection::vec(0u64..(1 << 22), 1..200)) {
        let run = |addrs: &[u64]| {
            let mut m = MemoryHierarchy::new(HierarchyConfig::ucore());
            addrs
                .iter()
                .enumerate()
                .map(|(i, &a)| m.access(i as u64 * 3, a, false).latency)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&addrs), run(&addrs));
    }
}
