//! A small fully-associative TLB with LRU replacement.
//!
//! The paper attributes AddressSanitizer's worst-case detection latencies to
//! TLB and cache misses co-occurring on many accesses in the same queue
//! (§IV-B); the µcore model therefore needs a TLB whose misses add a
//! page-walk cost on top of the cache miss.

use crate::Cycle;

/// TLB geometry and page-walk cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// Added latency of a page walk on a miss, in cycles.
    pub walk_latency: Cycle,
}

impl TlbConfig {
    /// A µcore-sized TLB: 16 entries, 4 KiB pages, 40-cycle walks.
    pub fn ucore() -> Self {
        TlbConfig {
            entries: 16,
            page_bytes: 4096,
            walk_latency: 40,
        }
    }

    /// A main-core-sized TLB: 64 entries, 4 KiB pages, 60-cycle walks.
    pub fn main_core() -> Self {
        TlbConfig {
            entries: 64,
            page_bytes: 4096,
            walk_latency: 60,
        }
    }
}

/// A fully-associative translation look-aside buffer.
///
/// # Examples
///
/// ```
/// use fireguard_mem::{Tlb, TlbConfig};
/// let mut tlb = Tlb::new(TlbConfig::ucore());
/// assert_eq!(tlb.access(0x1234), 40); // cold miss: page walk
/// assert_eq!(tlb.access(0x1FFF), 0);  // same page: hit
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    entries: Vec<(u64, u64)>, // (vpn, lru_stamp)
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the page size is not a power of two or `entries` is zero.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.page_bytes.is_power_of_two());
        assert!(config.entries > 0);
        Tlb {
            config,
            entries: Vec::with_capacity(config.entries),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `addr`, returning the added latency (0 on hit, the
    /// page-walk latency on miss).
    pub fn access(&mut self, addr: u64) -> Cycle {
        self.stamp += 1;
        let vpn = addr / self.config.page_bytes;
        if let Some(i) = self.entries.iter().position(|(v, _)| *v == vpn) {
            self.entries[i].1 = self.stamp;
            // Move-to-front: page locality makes the next lookup all but
            // free. Entry order is internal — hits are set-membership and
            // eviction picks the minimum stamp — so this changes nothing
            // observable.
            self.entries.swap(0, i);
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() == self.config.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("TLB is non-empty when full");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.stamp));
        self.config.walk_latency
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates all translations and clears statistics.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_entry() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            walk_latency: 40,
        })
    }

    #[test]
    fn hit_within_page() {
        let mut t = two_entry();
        assert_eq!(t.access(0x0000), 40);
        assert_eq!(t.access(0x0FFF), 0);
        assert_eq!(t.access(0x1000), 40, "next page misses");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = two_entry();
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // touch page 0; page 1 is now LRU
        t.access(0x2000); // page 2 evicts page 1
        assert_eq!(t.access(0x0000), 0, "page 0 survives");
        assert_eq!(t.access(0x1000), 40, "page 1 was evicted");
    }

    #[test]
    fn flush_forgets_translations() {
        let mut t = two_entry();
        t.access(0x0000);
        t.flush();
        assert_eq!(t.access(0x0000), 40);
        assert_eq!(t.misses(), 1, "stats were reset");
    }
}
