//! Set-associative cache with true-LRU replacement.

/// Geometry of a cache.
///
/// # Examples
///
/// ```
/// use fireguard_mem::CacheConfig;
/// let l1d = CacheConfig::new(32 * 1024, 8, 64); // Table II: 32 KB, 8-way
/// assert_eq!(l1d.sets(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, if `line_bytes` is not a power of
    /// two, or if the capacity is not divisible into whole sets.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(size_bytes > 0 && ways > 0 && line_bytes > 0);
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let cfg = CacheConfig {
            size_bytes,
            ways,
            line_bytes,
        };
        assert!(
            size_bytes % (ways * line_bytes) == 0 && cfg.sets() > 0,
            "capacity must divide into whole sets"
        );
        assert!(
            cfg.sets().is_power_of_two(),
            "set count must be a power of two"
        );
        cfg
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and allocated).
    pub misses: u64,
    /// Dirty lines evicted (write-back traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses; 0 when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// One tag-array entry, packed to 16 bytes: `tag << 2 | dirty << 1 |
/// valid` plus the LRU stamp. The LLC model alone holds 64Ki lines, so
/// halving the entry size halves the simulator's own cache pressure on
/// every memory-access lookup.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag_flags: u64,
    lru_stamp: u64,
}

impl Line {
    const VALID: u64 = 1;
    const DIRTY: u64 = 2;

    #[inline]
    fn new(tag: u64, dirty: bool, lru_stamp: u64) -> Line {
        Line {
            tag_flags: (tag << 2) | (u64::from(dirty) * Line::DIRTY) | Line::VALID,
            lru_stamp,
        }
    }

    #[inline]
    fn valid(self) -> bool {
        self.tag_flags & Line::VALID != 0
    }

    #[inline]
    fn dirty(self) -> bool {
        self.tag_flags & Line::DIRTY != 0
    }

    /// True when the line is valid and holds `tag`.
    #[inline]
    fn matches(self, tag: u64) -> bool {
        self.tag_flags & !Line::DIRTY == (tag << 2) | Line::VALID
    }
}

/// A set-associative, write-allocate, write-back cache with true LRU.
///
/// The cache tracks tags only (the simulator keeps data functionally
/// elsewhere); [`Cache::access`] reports whether the access hit and updates
/// replacement state.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    stamp: u64,
    stats: CacheStats,
    set_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Builds an empty (all-invalid) cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            lines: vec![
                Line {
                    tag_flags: 0,
                    lru_stamp: 0,
                };
                sets * config.ways
            ],
            stamp: 0,
            stats: CacheStats::default(),
            set_shift: config.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (e.g. after warm-up) without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.set_shift >> self.set_mask.count_ones()
    }

    /// Performs an access: returns `true` on hit. Misses allocate the line
    /// (write-allocate policy) and may evict the LRU way.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.stamp += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.config.ways;
        let ways = &mut self.lines[base..base + self.config.ways];

        if let Some(line) = ways.iter_mut().find(|l| l.matches(tag)) {
            line.lru_stamp = self.stamp;
            line.tag_flags |= u64::from(is_write) * Line::DIRTY;
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        // Victim: an invalid way if present, otherwise the least recently used.
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid() { l.lru_stamp } else { 0 })
            .expect("cache set has at least one way");
        if victim.valid() && victim.dirty() {
            self.stats.writebacks += 1;
        }
        *victim = Line::new(tag, is_write, self.stamp);
        false
    }

    /// Inserts a line without touching hit/miss statistics — used by the
    /// hierarchy's prefetcher. Updates LRU state like a normal fill.
    pub fn fill(&mut self, addr: u64) {
        self.stamp += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.config.ways;
        let ways = &mut self.lines[base..base + self.config.ways];
        if let Some(line) = ways.iter_mut().find(|l| l.matches(tag)) {
            line.lru_stamp = self.stamp;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid() { l.lru_stamp } else { 0 })
            .expect("cache set has at least one way");
        if victim.valid() && victim.dirty() {
            self.stats.writebacks += 1;
        }
        *victim = Line::new(tag, false, self.stamp);
    }

    /// Checks for presence without updating LRU or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.config.ways;
        self.lines[base..base + self.config.ways]
            .iter()
            .any(|l| l.matches(tag))
    }

    /// Invalidates every line (e.g. context switch in failure-injection tests).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.tag_flags = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 64 B lines → 256 B.
        Cache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn geometry_computes_sets() {
        assert_eq!(CacheConfig::new(32 * 1024, 8, 64).sets(), 64);
        assert_eq!(CacheConfig::new(4 * 1024, 2, 64).sets(), 32); // µcore L1
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_line_rejected() {
        let _ = CacheConfig::new(256, 2, 48);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false));
        assert!(c.access(0x1000, false));
        assert!(c.access(0x1038, false), "same 64B line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with addr bits [6]=0: 0x000, 0x080, 0x100 conflict.
        assert!(!c.access(0x000, false));
        assert!(!c.access(0x080, false));
        assert!(c.access(0x000, false)); // touch 0x000 so 0x080 is LRU
        assert!(!c.access(0x100, false)); // evicts 0x080
        assert!(c.access(0x000, false), "0x000 must survive");
        assert!(!c.access(0x080, false), "0x080 must have been evicted");
    }

    #[test]
    fn writeback_counted_only_for_dirty_victims() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x080, false); // clean
        c.access(0x100, false); // evicts dirty 0x000 (LRU)
        assert_eq!(c.stats().writebacks, 1);
        c.access(0x180, false); // evicts clean 0x080
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = tiny();
        c.access(0x000, false);
        let stats = c.stats();
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert_eq!(c.stats(), stats);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = tiny();
        c.access(0x000, true);
        c.flush();
        assert!(!c.probe(0x000));
        assert!(!c.access(0x000, false));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        assert!(!c.access(0x000, false)); // set 0
        assert!(!c.access(0x040, false)); // set 1
        assert!(!c.access(0x080, false)); // set 0
        assert!(!c.access(0x0C0, false)); // set 1
                                          // Both sets now full but nothing evicted yet.
        assert!(c.access(0x000, false));
        assert!(c.access(0x040, false));
    }

    #[test]
    fn miss_ratio_reported() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
