//! A composed L1 → L2 → LLC → DRAM hierarchy returning access latencies.
//!
//! Latencies are expressed in the clock domain of the attached core. The
//! main core (3.2 GHz) and the µcores (1.6 GHz) use different
//! [`HierarchyConfig`] presets derived from Table II.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::mshr::MshrFile;
use crate::Cycle;

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemLevel {
    /// Hit in the first-level cache.
    L1,
    /// Serviced by the unified L2.
    L2,
    /// Serviced by the last-level cache.
    Llc,
    /// Went all the way to DRAM.
    Dram,
}

impl std::fmt::Display for MemLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::Llc => "LLC",
            MemLevel::Dram => "DRAM",
        })
    }
}

/// Per-level hit latencies, in cycles of the attached core's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 hit (load-to-use).
    pub l1_hit: Cycle,
    /// L2 hit (total, from the core).
    pub l2_hit: Cycle,
    /// LLC hit (total, from the core).
    pub llc_hit: Cycle,
    /// DRAM access (total, from the core).
    pub dram: Cycle,
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// First-level cache geometry.
    pub l1: CacheConfig,
    /// Unified L2 geometry; `None` for cores without a private L2 path.
    pub l2: Option<CacheConfig>,
    /// Last-level cache geometry; `None` to go straight to DRAM.
    pub llc: Option<CacheConfig>,
    /// Hit latencies per level.
    pub latency: LatencyConfig,
    /// Enable the next-line prefetcher (fills `line+1` on every L1 miss).
    /// The main core has one; the Rocket µcores do not, which is why their
    /// shadow-memory misses are expensive (the paper's ASan tail latencies).
    pub prefetch: bool,
    /// L1 MSHR count (Table II: 8).
    pub l1_mshrs: usize,
    /// L2 MSHR count (Table II: 12).
    pub l2_mshrs: usize,
    /// Maximum outstanding DRAM requests (Table II: 32).
    pub dram_requests: usize,
}

impl HierarchyConfig {
    /// The main core's data-side hierarchy from Table II: 32 KB 8-way L1D
    /// (8 MSHRs), 512 KB 8-way L2 (12 MSHRs), 4 MB 8-way LLC (8 MSHRs),
    /// 16 GB DDR3 behind a 1 GHz bus, all at 3.2 GHz core cycles.
    pub fn main_core() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(32 * 1024, 8, 64),
            l2: Some(CacheConfig::new(512 * 1024, 8, 64)),
            llc: Some(CacheConfig::new(4 * 1024 * 1024, 8, 64)),
            latency: LatencyConfig {
                l1_hit: 3,
                l2_hit: 14,
                llc_hit: 42,
                dram: 170,
            },
            prefetch: true,
            l1_mshrs: 8,
            l2_mshrs: 12,
            dram_requests: 32,
        }
    }

    /// A µcore's hierarchy from Table II: 4 KB 2-way L1 (I and D), sharing
    /// the SoC L2/memory. Latencies are in 1.6 GHz µcore cycles (i.e. half
    /// the main core's cycle counts for the same wall-clock time).
    pub fn ucore() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(4 * 1024, 2, 64),
            l2: Some(CacheConfig::new(512 * 1024, 8, 64)),
            llc: None,
            latency: LatencyConfig {
                l1_hit: 1,
                l2_hit: 12,
                llc_hit: 24,
                dram: 85,
            },
            prefetch: false,
            l1_mshrs: 2,
            l2_mshrs: 12,
            dram_requests: 32,
        }
    }
}

/// Outcome of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency of the access, including MSHR queueing.
    pub latency: Cycle,
    /// Cycle at which the data is available (`start + latency`).
    pub ready_at: Cycle,
    /// The level that serviced the access.
    pub level: MemLevel,
}

/// A composed cache hierarchy with MSHR-limited miss handling.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Option<Cache>,
    llc: Option<Cache>,
    l1_mshrs: MshrFile,
    l2_mshrs: MshrFile,
    dram_queue: MshrFile,
    accesses: u64,
}

impl MemoryHierarchy {
    /// Builds an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        MemoryHierarchy {
            l1: Cache::new(config.l1),
            l2: config.l2.map(Cache::new),
            llc: config.llc.map(Cache::new),
            l1_mshrs: MshrFile::new(config.l1_mshrs),
            l2_mshrs: MshrFile::new(config.l2_mshrs),
            dram_queue: MshrFile::new(config.dram_requests),
            config,
            accesses: 0,
        }
    }

    /// Performs an access at cycle `now` and returns its latency and level.
    ///
    /// Misses allocate MSHRs; when a level's MSHRs are exhausted the access
    /// queues, which shows up as added latency.
    pub fn access(&mut self, now: Cycle, addr: u64, is_write: bool) -> AccessResult {
        self.accesses += 1;
        let lat = self.config.latency;

        if self.l1.access(addr, is_write) {
            return AccessResult {
                latency: lat.l1_hit,
                ready_at: now + lat.l1_hit,
                level: MemLevel::L1,
            };
        }

        // L1 miss: take an L1 MSHR for the duration of the fill.
        let (level, base_latency) = self.classify_miss(addr, is_write);
        if self.config.prefetch {
            // Degree-4 next-line prefetch: an idealisation of the stride
            // prefetcher real BOOM L1s carry, giving streaming sweeps the
            // ~80% coverage hardware achieves.
            for i in 1..=4u64 {
                let next = (addr & !63) + 64 * i;
                self.l1.fill(next);
                if let Some(l2) = &mut self.l2 {
                    l2.fill(next);
                }
            }
        }
        let occupancy = base_latency;
        let start = self.l1_mshrs.allocate(now, occupancy);
        let mut ready = start + base_latency;

        // Deeper levels consume their own tracking structures.
        match level {
            MemLevel::L2 => {}
            MemLevel::Llc => {
                let s2 = self.l2_mshrs.allocate(start, base_latency - lat.l2_hit);
                ready = ready.max(s2 + base_latency);
            }
            MemLevel::Dram => {
                let s2 = self.l2_mshrs.allocate(start, base_latency - lat.l2_hit);
                let sd = self.dram_queue.allocate(s2, lat.dram - lat.llc_hit);
                ready = ready.max(sd + base_latency);
            }
            MemLevel::L1 => unreachable!("L1 hits return early"),
        }

        AccessResult {
            latency: ready - now,
            ready_at: ready,
            level,
        }
    }

    /// Walks the levels below L1 to find which services the miss.
    fn classify_miss(&mut self, addr: u64, is_write: bool) -> (MemLevel, Cycle) {
        let lat = self.config.latency;
        if let Some(l2) = &mut self.l2 {
            if l2.access(addr, is_write) {
                return (MemLevel::L2, lat.l2_hit);
            }
        }
        if let Some(llc) = &mut self.llc {
            if llc.access(addr, is_write) {
                return (MemLevel::Llc, lat.llc_hit);
            }
        }
        (MemLevel::Dram, lat.dram)
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics, if an L2 is configured.
    pub fn l2_stats(&self) -> Option<CacheStats> {
        self.l2.as_ref().map(|c| c.stats())
    }

    /// Total accesses made.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Cycles lost to full L1 MSHRs (structural stalls).
    pub fn mshr_stall_cycles(&self) -> u64 {
        self.l1_mshrs.stall_cycles()
    }

    /// Invalidates all cached state (statistics included).
    pub fn flush(&mut self) {
        self.l1.flush();
        if let Some(l2) = &mut self.l2 {
            l2.flush();
        }
        if let Some(llc) = &mut self.llc {
            llc.flush();
        }
        self.l1_mshrs.reset();
        self.l2_mshrs.reset();
        self.dram_queue.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering_by_level() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::main_core());
        let dram = m.access(0, 0xA000, false);
        assert_eq!(dram.level, MemLevel::Dram);
        let l1 = m.access(dram.ready_at, 0xA000, false);
        assert_eq!(l1.level, MemLevel::L1);
        assert!(l1.latency < dram.latency);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::main_core());
        // Fill one L1 set (8 ways, 64 sets, 64 B lines → same set every 4 KiB).
        let now = 0;
        for i in 0..9u64 {
            m.access(now + i * 1000, i * 4096, false);
        }
        // First line was evicted from L1 but remains in L2.
        let r = m.access(100_000, 0, false);
        assert_eq!(r.level, MemLevel::L2);
    }

    #[test]
    fn mshr_pressure_adds_latency() {
        let cfg = HierarchyConfig {
            l1_mshrs: 1,
            ..HierarchyConfig::main_core()
        };
        let mut m = MemoryHierarchy::new(cfg);
        let a = m.access(0, 0x0000, false);
        let b = m.access(0, 0x10000, false); // distinct line, same instant
        assert!(b.latency > a.latency, "second miss queues behind one MSHR");
        assert!(m.mshr_stall_cycles() > 0);
    }

    #[test]
    fn writes_allocate_like_reads() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::main_core());
        m.access(0, 0x4000, true);
        let r = m.access(1000, 0x4000, false);
        assert_eq!(r.level, MemLevel::L1);
    }

    #[test]
    fn ucore_preset_has_no_llc() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::ucore());
        let r = m.access(0, 0xDEAD_B000, false);
        // Either L2 services it or DRAM; never Llc.
        assert_ne!(r.level, MemLevel::Llc);
    }

    #[test]
    fn flush_resets_everything() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::main_core());
        m.access(0, 0x4000, false);
        m.flush();
        let r = m.access(0, 0x4000, false);
        assert_eq!(r.level, MemLevel::Dram, "flush forgot the line");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut m = MemoryHierarchy::new(HierarchyConfig::main_core());
            let mut sum = 0u64;
            for i in 0..2000u64 {
                let addr = (i * 2654435761) % (1 << 22);
                sum += m.access(i * 2, addr, i % 3 == 0).latency;
            }
            sum
        };
        assert_eq!(run(), run());
    }
}
