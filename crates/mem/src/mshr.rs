//! Miss Status Holding Register (MSHR) files.
//!
//! Each cache level in Table II has a bounded number of MSHRs (8 for the L1s,
//! 12 for the L2, 8 for the LLC, and the memory controller accepts at most 32
//! outstanding requests). When all MSHRs at a level are busy, a new miss must
//! wait for one to free — a structural stall the bottleneck analysis (Fig. 9)
//! depends on.

use crate::Cycle;

/// A file of `n` MSHRs, each tracked as a busy-until cycle.
///
/// # Examples
///
/// ```
/// use fireguard_mem::MshrFile;
/// let mut mshrs = MshrFile::new(2);
/// assert_eq!(mshrs.allocate(0, 10), 0);  // starts immediately
/// assert_eq!(mshrs.allocate(0, 10), 0);  // second slot free
/// assert_eq!(mshrs.allocate(0, 10), 10); // must wait for a slot
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    busy_until: Vec<Cycle>,
    /// Number of allocations that had to wait for a free slot.
    stalled_allocations: u64,
    /// Total cycles spent waiting for slots.
    stall_cycles: u64,
}

impl MshrFile {
    /// Creates a file of `count` MSHRs, all free.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "an MSHR file needs at least one entry");
        MshrFile {
            busy_until: vec![0; count],
            stalled_allocations: 0,
            stall_cycles: 0,
        }
    }

    /// Number of MSHR entries.
    pub fn capacity(&self) -> usize {
        self.busy_until.len()
    }

    /// Number of entries still busy at `now`.
    pub fn in_flight(&self, now: Cycle) -> usize {
        self.busy_until.iter().filter(|&&t| t > now).count()
    }

    /// Allocates an MSHR for a miss arriving at `now` that will occupy the
    /// entry for `occupancy` cycles, returning the cycle at which the miss
    /// can actually *start* (equal to `now` unless all entries are busy).
    pub fn allocate(&mut self, now: Cycle, occupancy: Cycle) -> Cycle {
        // The entry that frees the earliest is the one the miss will take.
        let slot = self
            .busy_until
            .iter_mut()
            .min()
            .expect("MSHR file is non-empty");
        let start = (*slot).max(now);
        if start > now {
            self.stalled_allocations += 1;
            self.stall_cycles += start - now;
        }
        *slot = start + occupancy;
        start
    }

    /// Allocations that had to wait for a free entry.
    pub fn stalled_allocations(&self) -> u64 {
        self.stalled_allocations
    }

    /// Total cycles allocations spent waiting.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Clears occupancy and statistics.
    pub fn reset(&mut self) {
        self.busy_until.fill(0);
        self.stalled_allocations = 0;
        self.stall_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_fill_slots_then_queue() {
        let mut m = MshrFile::new(3);
        assert_eq!(m.allocate(5, 100), 5);
        assert_eq!(m.allocate(5, 100), 5);
        assert_eq!(m.allocate(5, 100), 5);
        assert_eq!(m.in_flight(5), 3);
        // Fourth must wait until cycle 105.
        assert_eq!(m.allocate(6, 100), 105);
        assert_eq!(m.stalled_allocations(), 1);
        assert_eq!(m.stall_cycles(), 99);
    }

    #[test]
    fn slots_free_over_time() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.allocate(0, 10), 0);
        assert_eq!(m.in_flight(5), 1);
        assert_eq!(m.in_flight(10), 0);
        assert_eq!(m.allocate(10, 10), 10);
    }

    #[test]
    fn earliest_free_slot_is_chosen() {
        let mut m = MshrFile::new(2);
        m.allocate(0, 100); // slot busy until 100
        m.allocate(0, 10); // slot busy until 10
                           // New miss at t=20 should take the slot freed at 10, starting at 20.
        assert_eq!(m.allocate(20, 5), 20);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = MshrFile::new(1);
        m.allocate(0, 50);
        m.allocate(0, 50);
        m.reset();
        assert_eq!(m.in_flight(0), 0);
        assert_eq!(m.stalled_allocations(), 0);
        assert_eq!(m.allocate(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = MshrFile::new(0);
    }
}
