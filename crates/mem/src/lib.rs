//! Memory-system models for the FireGuard simulator.
//!
//! Provides the substrate the paper's evaluation platform assumes (Table II):
//! set-associative write-allocate caches with LRU replacement, MSHR files
//! that bound outstanding misses, a small TLB with page-walk costs, and a
//! composed [`MemoryHierarchy`] (L1 → L2 → LLC → DRAM) that returns access
//! latencies in core cycles.
//!
//! All models are deterministic: the same access stream produces the same
//! latencies, which the cycle-level core models rely on.
//!
//! # Examples
//!
//! ```
//! use fireguard_mem::{MemoryHierarchy, HierarchyConfig};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::main_core());
//! let first = mem.access(0, 0x8000, false); // cold miss goes to DRAM
//! let second = mem.access(first.ready_at, 0x8000, false); // now hits in L1
//! assert!(second.latency < first.latency);
//! ```

pub mod cache;
pub mod hierarchy;
pub mod mshr;
pub mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{AccessResult, HierarchyConfig, LatencyConfig, MemLevel, MemoryHierarchy};
pub use mshr::MshrFile;
pub use tlb::{Tlb, TlbConfig};

/// A cycle count in some clock domain. Plain `u64`, aliased for readability.
pub type Cycle = u64;
