//! End-to-end tests for the `fireguard` binary.
//!
//! The golden anchor is shared with `crates/bench/tests/smoke.rs`: both
//! the legacy per-figure binaries and `fireguard <figure>` must print
//! exactly what the in-process figure driver renders, so the two suites
//! together prove CLI output == legacy-binary output, byte for byte.

use fireguard_bench::figures::{find, FigOpts};
use fireguard_bench::SEED;
use fireguard_soc::{render_to_string, Format};
use std::process::{Command, Output};

const SMOKE_INSTS: u64 = 2000;

fn fireguard(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fireguard"))
        .args(args)
        .env_remove("FG_INSTS")
        .env_remove("FG_QUICK")
        .env_remove("FG_JOBS")
        .output()
        .expect("failed to spawn the fireguard binary")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "fireguard exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn list_names_every_figure() {
    let out = stdout_of(&fireguard(&["list"]));
    for name in [
        "fig7a",
        "fig7b",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "table2",
        "table3",
        "area",
        "isax-ablation",
        "mapper-ablation",
        "sweep",
    ] {
        assert!(out.contains(name), "list output is missing {name}:\n{out}");
    }
}

#[test]
fn figure_subcommand_matches_registry_driver() {
    // The same golden anchor smoke.rs holds the legacy binaries to.
    let out = stdout_of(&fireguard(&["fig7a", "--insts", "2000", "--jobs", "4"]));
    let opts = FigOpts {
        insts: SMOKE_INSTS,
        seed: SEED,
        workers: 2,
        pipeline: 1,
    };
    let expected = render_to_string(&(find("fig7a").unwrap().run)(&opts), Format::Human);
    assert_eq!(out, expected, "CLI fig7a diverged from the figure driver");
}

#[test]
fn static_tables_render() {
    for name in ["table2", "table3", "area"] {
        let out = stdout_of(&fireguard(&[name]));
        assert!(out.lines().count() >= 3, "{name} output too short:\n{out}");
    }
}

#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let base = ["fig7a", "--insts", "2000"];
    let seq = stdout_of(&fireguard(&[&base[..], &["--jobs", "1"]].concat()));
    let par = stdout_of(&fireguard(&[&base[..], &["--jobs", "4"]].concat()));
    assert_eq!(seq, par, "--jobs must not change output bytes");

    let sweep = [
        "sweep",
        "--workloads",
        "swaptions,ferret",
        "--kernel",
        "pmc,ss",
        "--ucores",
        "2,4",
        "--insts",
        "2000",
    ];
    let seq = stdout_of(&fireguard(&[&sweep[..], &["--jobs", "1"]].concat()));
    let par = stdout_of(&fireguard(&[&sweep[..], &["--jobs", "4"]].concat()));
    assert_eq!(seq, par, "sweep --jobs must not change output bytes");
    assert!(seq.contains("swaptions") && seq.contains("Shadow"));
}

#[test]
fn new_kernel_plugins_sweep_through_the_cli() {
    // The registry's post-paper plugins drive the same sweep machinery as
    // the paper kernels, straight from `--kernel` names.
    let sweep = [
        "sweep",
        "--workloads",
        "dedup",
        "--kernel",
        "taint,mte",
        "--ucores",
        "4",
        "--insts",
        "2000",
        "--format",
        "jsonl",
    ];
    let out = stdout_of(&fireguard(&sweep));
    for label in ["\"kernel\":\"Taint\"", "\"kernel\":\"MTE\""] {
        assert!(
            out.contains(label),
            "sweep output is missing {label}:\n{out}"
        );
    }
    let again = stdout_of(&fireguard(&sweep));
    assert_eq!(out, again, "new-kernel sweeps are deterministic");
}

#[test]
fn sweep_kernel_all_deploys_the_full_registry_in_one_system() {
    // `--kernel all` collapses the kernel axis: every registered kernel
    // rides in a single system per workload (the layout-v2 wide-verdict
    // deployment), with the engine split defaulted to fit the fabric.
    let sweep = [
        "sweep",
        "--workloads",
        "dedup",
        "--kernel",
        "all",
        "--insts",
        "2000",
        "--format",
        "jsonl",
        "--jobs",
        "1",
    ];
    let out = stdout_of(&fireguard(&sweep));
    let row = out
        .lines()
        .find(|l| l.contains("\"kernel\""))
        .expect("sweep emitted no data row");
    for spec in fireguard_soc::registry() {
        assert!(
            row.contains(spec.name()),
            "combined sweep row is missing {}:\n{row}",
            spec.name()
        );
    }
    assert_eq!(
        out.lines().filter(|l| l.contains("\"kernel\"")).count(),
        1,
        "combined sweep must produce one system, not one per kernel:\n{out}"
    );
    let again = stdout_of(&fireguard(&sweep));
    assert_eq!(out, again, "combined sweeps are deterministic");

    // An explicit engine split that overflows the fabric is a clean
    // pre-flight error, not a mid-sweep panic.
    let too_big = fireguard(&[
        "sweep",
        "--workloads",
        "dedup",
        "--kernel",
        "all",
        "--ucores",
        "4",
        "--insts",
        "2000",
    ]);
    assert_eq!(too_big.status.code(), Some(2));
    let err = String::from_utf8_lossy(&too_big.stderr);
    assert!(
        err.contains("does not fit") && err.contains("engines requested"),
        "expected a capacity error, got:\n{err}"
    );
}

#[test]
fn list_enumerates_the_kernel_registry() {
    for format in ["human", "jsonl"] {
        let out = stdout_of(&fireguard(&["list", "--format", format]));
        for name in ["pmc", "shadow-stack", "asan", "uaf", "taint", "mte"] {
            assert!(
                out.contains(name),
                "{format} list is missing {name}:\n{out}"
            );
        }
    }
}

#[test]
fn alternative_formats_emit_structured_rows() {
    let jsonl = stdout_of(&fireguard(&[
        "sweep",
        "--workloads",
        "swaptions",
        "--kernel",
        "pmc",
        "--ucores",
        "2",
        "--insts",
        "2000",
        "--format",
        "jsonl",
    ]));
    let row = jsonl
        .lines()
        .find(|l| l.contains("\"type\":\"row\""))
        .expect("jsonl output has a row");
    assert!(
        row.starts_with('{') && row.ends_with('}'),
        "row is a JSON object: {row}"
    );
    assert!(row.contains("\"workload\":\"swaptions\""));
    assert!(row.contains("\"slowdown\":"));

    let csv = stdout_of(&fireguard(&["table3", "--format", "csv"]));
    let header = csv
        .lines()
        .find(|l| l.starts_with("core,"))
        .expect("csv output has a header row");
    assert!(header.contains("#ucores"));
}

#[test]
fn kebab_and_snake_subcommand_names_both_work() {
    let kebab = stdout_of(&fireguard(&["isax-ablation", "--insts", "2000"]));
    let snake = stdout_of(&fireguard(&["isax_ablation", "--insts", "2000"]));
    assert_eq!(kebab, snake);
}

#[test]
fn errors_exit_2_with_a_message() {
    let out = fireguard(&["fig99"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    let out = fireguard(&["sweep", "--kernel", "rowhammer", "--insts", "2000"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown kernel"));

    let out = fireguard(&["fig7a", "--jobs", "0"]);
    assert_eq!(out.status.code(), Some(2));

    // Sweep-only flags on a figure subcommand are rejected, not ignored.
    let out = fireguard(&["fig10", "--ucores", "8,12", "--insts", "2000"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--ucores"));
}

#[test]
fn list_jsonl_is_a_machine_readable_registry() {
    let out = stdout_of(&fireguard(&["list", "--format", "jsonl"]));
    for name in ["fig7a", "table3", "sweep", "serve", "client", "loadgen"] {
        let row = out
            .lines()
            .find(|l| l.contains(&format!("\"name\":\"{name}\"")))
            .unwrap_or_else(|| panic!("no jsonl row for {name}:\n{out}"));
        assert!(row.starts_with('{') && row.ends_with('}'), "row: {row}");
        assert!(row.contains("\"summary\":"), "row: {row}");
    }
    // trace record/replay appear as rows too.
    assert!(out.contains("\"name\":\"trace record\""));
    assert!(out.contains("\"name\":\"trace replay\""));
}

#[test]
fn trace_record_then_replay_is_deterministic() {
    let dir = std::env::temp_dir().join(format!("fgt-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fgt = dir.join("swaptions.fgt");
    let fgt_s = fgt.to_str().unwrap();

    let rec = stdout_of(&fireguard(&[
        "trace",
        "record",
        "--workload",
        "swaptions",
        "--insts",
        "2000",
        "--out",
        fgt_s,
    ]));
    assert!(rec.contains("swaptions"), "record output:\n{rec}");

    let replay = [
        "trace", "replay", "--trace", fgt_s, "--kernel", "pmc", "--ucores", "2", "--format",
        "jsonl",
    ];
    let a = stdout_of(&fireguard(&replay));
    let b = stdout_of(&fireguard(&replay));
    assert_eq!(a, b, "replay must be deterministic");
    assert!(a.contains("\"workload\":\"swaptions\""));
    assert!(a.contains("\"cycles\":"));

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--kernel all` replays every registered kernel in one session — the
/// packet-layout-v2 deployment — and a config that oversubscribes the
/// engine budget is a clean CLI error, not a panic.
#[test]
fn replay_runs_all_registered_kernels_at_once() {
    let dir = std::env::temp_dir().join(format!("fgt-all-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fgt = dir.join("dedup.fgt");
    let fgt_s = fgt.to_str().unwrap();
    stdout_of(&fireguard(&[
        "trace",
        "record",
        "--workload",
        "dedup",
        "--insts",
        "2000",
        "--out",
        fgt_s,
    ]));

    let replay = [
        "trace", "replay", "--trace", fgt_s, "--kernel", "all", "--format", "jsonl",
    ];
    let a = stdout_of(&fireguard(&replay));
    let b = stdout_of(&fireguard(&replay));
    assert_eq!(a, b, "all-kernels replay must be deterministic");
    // The engine label names every registered kernel joined with '+'.
    let names = fireguard_soc::registry()
        .iter()
        .map(|s| s.name())
        .collect::<Vec<_>>()
        .join("+");
    assert!(names.matches('+').count() >= 5, "registry holds 6 kernels");
    for s in fireguard_soc::registry() {
        assert!(a.contains(s.name()), "missing {} in:\n{a}", s.name());
    }

    // Oversubscribed: 6 kernels x 4 µcores = 24 engines > the fabric's 16.
    let out = fireguard(&[
        "trace", "replay", "--trace", fgt_s, "--kernel", "all", "--ucores", "4",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid session config"), "stderr:\n{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_client_loopback_matches_replay() {
    use std::io::BufRead;

    let dir = std::env::temp_dir().join(format!("fgt-loop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fgt = dir.join("ferret.fgt");
    let fgt_s = fgt.to_str().unwrap();
    stdout_of(&fireguard(&[
        "trace",
        "record",
        "--workload",
        "ferret",
        "--insts",
        "2000",
        "--attacks",
        "ret-hijack",
        "--attack-count",
        "4",
        "--attack-start",
        "200",
        "--attack-end",
        "1800",
        "--out",
        fgt_s,
    ]));

    let session_cfg = ["--kernel", "ss", "--ucores", "4", "--format", "jsonl"];
    let replay = stdout_of(&fireguard(
        &[&["trace", "replay", "--trace", fgt_s], &session_cfg[..]].concat(),
    ));
    let replay_row = replay
        .lines()
        .find(|l| l.contains("\"type\":\"row\""))
        .expect("replay emits a row");

    // Start a one-session service on an ephemeral port; it prints the
    // bound address on stdout, then exits once the session budget is spent.
    let mut serve = std::process::Command::new(env!("CARGO_BIN_EXE_fireguard"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--max-sessions",
            "1",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let mut first_line = String::new();
    {
        let out = serve.stdout.as_mut().expect("piped stdout");
        std::io::BufReader::new(out)
            .read_line(&mut first_line)
            .expect("serve announces its address");
    }
    let addr = first_line
        .split_whitespace()
        .find(|w| w.starts_with("127.0.0.1:"))
        .expect("address in announcement")
        .to_owned();

    let client = stdout_of(&fireguard(
        &[
            &["client", "--addr", &addr, "--trace", fgt_s],
            &session_cfg[..],
        ]
        .concat(),
    ));
    let status = serve.wait().expect("serve exits after its session budget");
    assert!(status.success());

    let client_row = client
        .lines()
        .find(|l| l.contains("\"type\":\"row\""))
        .expect("client emits a row");
    // The served session must report the same cycles/packets/detections as
    // the offline replay of the same recording (jsonl rows share keys).
    for key in [
        "\"cycles\":",
        "\"packets\":",
        "\"detections\":",
        "\"slowdown\":",
    ] {
        let field = |row: &str| {
            let at = row.find(key).unwrap_or_else(|| panic!("{key} in {row}"));
            row[at..]
                .chars()
                .take_while(|c| *c != ',' && *c != '}')
                .collect::<String>()
        };
        assert_eq!(field(client_row), field(replay_row), "{key} diverged");
    }
    assert!(
        !client_row.contains("\"detections\":0,"),
        "the campaign must raise detections: {client_row}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_subcommand_errors_are_actionable() {
    let out = fireguard(&["trace"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("record"));

    let out = fireguard(&["trace", "record", "--insts", "2000"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workload"));

    let out = fireguard(&["trace", "replay", "--trace", "/nonexistent.fgt"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));

    // Out-of-scope flags are rejected for the service commands too.
    let out = fireguard(&["serve", "--sessions", "4"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--sessions"));

    // serve has no report output, so --format is rejected, not ignored.
    let out = fireguard(&["serve", "--format", "jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--format"));
}

#[test]
fn help_and_version_exit_0() {
    let help = fireguard(&["--help"]);
    assert_eq!(help.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&help.stdout).contains("SUBCOMMANDS"));
    let version = fireguard(&["--version"]);
    assert_eq!(version.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&version.stdout).starts_with("fireguard "));
}

#[test]
fn unparseable_fg_insts_warns_on_stderr() {
    // The PR-1 PROPTEST_SEED convention: never silently ignore a bad knob.
    let out = Command::new(env!("CARGO_BIN_EXE_fireguard"))
        .args(["table2"])
        .env("FG_INSTS", "banana")
        .env_remove("FG_QUICK")
        .env_remove("FG_JOBS")
        .output()
        .expect("failed to spawn the fireguard binary");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("FG_INSTS") && stderr.contains("banana"),
        "expected an FG_INSTS warning on stderr, got:\n{stderr}"
    );
}
