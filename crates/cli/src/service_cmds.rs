//! Drivers for the streaming subcommands: `trace record`, `trace replay`,
//! `serve`, `router`, `client`, and `loadgen`.
//!
//! Each driver turns parsed flags into library calls (`fireguard-trace`
//! codec, `fireguard-soc` experiments, `fireguard-server` sessions) and
//! renders the outcome as a standard [`Report`], so `--format human|jsonl|
//! csv` works for the service layer exactly as it does for the figures.

use crate::args::Parsed;
use fireguard_server::chaos::detection_keys;
use fireguard_server::{
    netem, run_chaos, run_loadgen, run_session, ChaosOptions, LoadgenOptions, NetemOptions, Sample,
    SessionConfig, TraceSink, WireFaults,
};
use fireguard_soc::report::percentile;
use fireguard_soc::{
    baseline_cycles, capture_events, run_fireguard_events, Cell, EngineConfig, ExperimentConfig,
    KernelId, ProgrammingModel, Report, RunResult, Table, MAX_ENGINES,
};
use fireguard_trace::codec::{self, TraceMeta};
use fireguard_trace::{AttackKind, AttackPlan, TraceInst};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::sync::Arc;

/// Default service address when `--addr` is not given.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4780";

/// Resolves a `--kernel` spelling through the plugin registry. Both the
/// accepted names and the error message come from the registry, so the
/// valid-kernel list can never go stale when a new plugin lands.
pub fn parse_kernel(s: &str) -> Result<KernelId, String> {
    fireguard_soc::parse_kernel_name(s).ok_or_else(|| {
        format!(
            "unknown kernel {:?} (expected one of: {})",
            s.trim(),
            fireguard_soc::canonical_names().join(", ")
        )
    })
}

pub fn parse_model(s: &str) -> Result<ProgrammingModel, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "conventional" => Ok(ProgrammingModel::Conventional),
        "duffs" | "duff" => Ok(ProgrammingModel::Duffs),
        "unrolled" | "unroll" => Ok(ProgrammingModel::Unrolled),
        "hybrid" | "proposed" => Ok(ProgrammingModel::Hybrid),
        other => Err(format!(
            "unknown model {other:?} (expected conventional, duffs, unrolled, or hybrid)"
        )),
    }
}

fn parse_attack_kind(s: &str) -> Result<AttackKind, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "ret-hijack" | "rethijack" | "hijack" => Ok(AttackKind::RetHijack),
        "oob" | "out-of-bounds" => Ok(AttackKind::OutOfBounds),
        "uaf" | "use-after-free" => Ok(AttackKind::UseAfterFree),
        "bounds" | "bounds-violation" => Ok(AttackKind::BoundsViolation),
        other => Err(format!(
            "unknown attack kind {other:?} (expected ret-hijack, oob, uaf, or bounds)"
        )),
    }
}

/// Resolves the `--attacks` campaign flags into an [`AttackPlan`], shared
/// by `trace record` and `sweep`. `None` when `--attacks` was not given.
pub(crate) fn attack_plan(p: &Parsed, insts: u64) -> Result<Option<AttackPlan>, String> {
    let Some(csv) = p.attacks.as_deref() else {
        return Ok(None);
    };
    let kinds = csv
        .split(',')
        .map(parse_attack_kind)
        .collect::<Result<Vec<_>, _>>()?;
    let count = p.attack_count.unwrap_or(50);
    let start = p.attack_start.unwrap_or(insts / 10);
    let end = p.attack_end.unwrap_or(insts);
    if start >= end {
        return Err(format!("empty attack window [{start}, {end})"));
    }
    Ok(Some(AttackPlan::campaign(
        &kinds,
        count,
        start,
        end,
        p.attack_seed.unwrap_or(1),
    )))
}

/// The analysis configuration shared by `trace replay`, `client` and
/// `loadgen`: one or more kernels (comma-separated; `all` = every
/// registered kernel) on µcores or HAs, plus the pipeline knobs.
/// Defaults mirror `sweep` (ASan on 4 µcores, hybrid µ-programs, 4-wide
/// filter, scalar mapper).
fn session_experiment(p: &Parsed, meta: &TraceMeta) -> Result<ExperimentConfig, String> {
    let kinds: Vec<KernelId> = match p.kernels.as_deref() {
        None => vec![KernelId::ASAN],
        Some(csv) if csv.trim().eq_ignore_ascii_case("all") => {
            fireguard_soc::registry().iter().map(|s| s.id()).collect()
        }
        Some(csv) => csv
            .split(',')
            .map(parse_kernel)
            .collect::<Result<Vec<_>, _>>()?,
    };
    let engine =
        match (p.ucores.as_deref(), p.ha) {
            (Some(_), true) => return Err("--ucores and --ha are mutually exclusive".to_owned()),
            (None, true) => EngineConfig::Ha,
            // Without an explicit --ucores, each kernel gets 4 µcores but
            // wide deployments split the engine budget evenly, so
            // `--kernel all` works out of the box.
            (None, false) => EngineConfig::Ucores((MAX_ENGINES / kinds.len()).clamp(1, 4)),
            (Some(s), false) => {
                let n: usize =
                    s.trim().parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("bad --ucores {s:?} (expected a positive integer)")
                    })?;
                EngineConfig::Ucores(n)
            }
        };
    let filter_width = match p.filter_widths.as_deref() {
        None => 4,
        Some(s) => s
            .trim()
            .parse()
            .ok()
            .filter(|&w| w >= 1)
            .ok_or_else(|| format!("bad --filter-width {s:?} (expected a positive integer)"))?,
    };
    let model = match p.models.as_deref() {
        None => ProgrammingModel::Hybrid,
        Some(s) => parse_model(s)?,
    };
    let mut cfg = ExperimentConfig::new(&meta.workload)
        .seed(meta.seed)
        .insts(meta.insts)
        .model(model)
        .filter_width(filter_width)
        .mapper_width(p.mapper_width.unwrap_or(1))
        .pipeline(p.pipeline.unwrap_or(1));
    cfg.kernels = kinds.into_iter().map(|k| (k, engine)).collect();
    // Capacity and structural limits fail here as a clean CLI error — the
    // same validation a served HELLO goes through — never a panic inside
    // the system constructor.
    SessionConfig::from_experiment(&cfg, meta.baseline_cycles)
        .validate()
        .map_err(|e| format!("invalid session config: {e}"))?;
    Ok(cfg)
}

fn read_trace_file(path: &str) -> Result<(TraceMeta, Vec<TraceInst>), String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    codec::read_trace(&mut BufReader::new(f)).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Resolves `--idle-timeout` (seconds, default 30) for serve and router.
fn idle_timeout(p: &Parsed) -> std::time::Duration {
    p.idle_timeout_secs
        .map_or(std::time::Duration::from_secs(30), |s| {
            std::time::Duration::from_secs_f64(s)
        })
}

/// Opens the `--trace-out` span sink, if the flag was given.
fn trace_sink(p: &Parsed) -> Result<Option<Arc<TraceSink>>, String> {
    match p.trace_out.as_deref() {
        None => Ok(None),
        Some(path) => TraceSink::to_file(path)
            .map(Some)
            .map_err(|e| format!("cannot create --trace-out {path}: {e}")),
    }
}

fn engine_label(cfg: &ExperimentConfig) -> String {
    cfg.kernels
        .iter()
        .map(|(k, e)| match e {
            EngineConfig::Ucores(n) => format!("{}x{n}u", k.name()),
            EngineConfig::Ha => format!("{}xHA", k.name()),
        })
        .collect::<Vec<_>>()
        .join("+")
}

/// The one-row session/replay result table shared by `trace replay` and
/// `client`, so the two outputs cannot drift apart. `lats` must already
/// be attack-filtered and sorted ascending.
fn session_table(
    cfg: &ExperimentConfig,
    committed: u64,
    cycles: u64,
    slowdown: f64,
    packets: u64,
    detections: u64,
    lats: &[f64],
) -> Table {
    let lat_cell = |p: f64| {
        if lats.is_empty() {
            Cell::Missing
        } else {
            Cell::Float {
                v: percentile(lats, p),
                prec: 1,
            }
        }
    };
    let mut t = Table::new(&[
        ("workload", 14),
        ("engine", 12),
        ("insts", 9),
        ("cycles", 11),
        ("slowdown", 9),
        ("packets", 10),
        ("detections", 11),
        ("p50_ns", 9),
        ("p99_ns", 9),
    ]);
    t.row(vec![
        Cell::Str(cfg.workload.clone()),
        Cell::Str(engine_label(cfg)),
        Cell::Int(committed as i64),
        Cell::Int(cycles as i64),
        Cell::slowdown(slowdown),
        Cell::Int(packets as i64),
        Cell::Int(detections as i64),
        lat_cell(50.0),
        lat_cell(99.0),
    ]);
    t
}

fn result_table(cfg: &ExperimentConfig, r: &RunResult) -> Table {
    session_table(
        cfg,
        r.committed,
        r.cycles,
        r.slowdown,
        r.packets,
        r.detections.len() as u64,
        &r.attack_latencies_ns(),
    )
}

// ---- trace record ----------------------------------------------------------

pub fn record_report(p: &Parsed, insts: u64, seed: u64) -> Result<Report, String> {
    let workload = p
        .workload
        .as_deref()
        .ok_or("trace record requires --workload <name>")?;
    let known = fireguard_soc::experiments::workloads();
    if !known.contains(&workload) {
        return Err(format!(
            "unknown workload {workload:?} (expected one of: {})",
            known.join(", ")
        ));
    }
    let out_path = p
        .out
        .as_deref()
        .ok_or("trace record requires --out <file>")?;

    let mut cfg = ExperimentConfig::new(workload).seed(seed).insts(insts);
    if let Some(plan) = attack_plan(p, insts)? {
        cfg = cfg.attacks(plan);
    }

    let base = baseline_cycles(workload, seed, insts);
    let events = capture_events(&cfg);
    let meta = TraceMeta {
        workload: workload.to_owned(),
        seed,
        insts,
        baseline_cycles: base,
        events: events.len() as u64,
    };
    let f = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    let mut w = BufWriter::new(f);
    codec::write_trace(&mut w, &meta, &events).map_err(|e| format!("write failed: {e}"))?;
    let bytes = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);

    let mut r = Report::new();
    r.text(format!("recorded {out_path}"));
    r.blank();
    let mut t = Table::new(&[
        ("workload", 14),
        ("seed", 8),
        ("insts", 9),
        ("events", 9),
        ("baseline", 11),
        ("bytes", 10),
        ("B/event", 8),
    ]);
    t.row(vec![
        Cell::Str(workload.to_owned()),
        Cell::Int(seed as i64),
        Cell::Int(insts as i64),
        Cell::Int(events.len() as i64),
        Cell::Int(base as i64),
        Cell::Int(bytes as i64),
        Cell::Float {
            v: bytes as f64 / events.len().max(1) as f64,
            prec: 2,
        },
    ]);
    r.table(t);
    Ok(r)
}

// ---- trace replay ----------------------------------------------------------

pub fn replay_report(p: &Parsed) -> Result<Report, String> {
    let path = p
        .trace_file
        .as_deref()
        .ok_or("trace replay requires --trace <file>")?;
    let (meta, events) = read_trace_file(path)?;
    let cfg = session_experiment(p, &meta)?;
    let result = run_fireguard_events(&cfg, events, meta.baseline_cycles);

    let mut r = Report::new();
    r.text(format!(
        "replay of {path}: {} events, commit budget {}",
        meta.events, meta.insts
    ));
    r.blank();
    r.table(result_table(&cfg, &result));
    Ok(r)
}

// ---- client ----------------------------------------------------------------

pub fn client_report(p: &Parsed) -> Result<Report, String> {
    let path = p
        .trace_file
        .as_deref()
        .ok_or("client requires --trace <file>")?;
    let addr = p.addr.as_deref().unwrap_or(DEFAULT_ADDR);
    let (meta, events) = read_trace_file(path)?;
    let cfg = session_experiment(p, &meta)?;
    let session = SessionConfig::from_experiment(&cfg, meta.baseline_cycles);
    let batch = p.batch.unwrap_or(fireguard_server::DEFAULT_BATCH);
    let trace = trace_sink(p)?;
    let out = run_session(addr, &session, Arc::new(events), batch)
        .map_err(|e| format!("session against {addr} failed: {e}"))?;
    // The client-side timeline entry: one span summarising the session as
    // this end observed it (the server's sink holds the per-batch detail).
    if let Some(sink) = &trace {
        sink.emit(
            "client.session",
            None,
            vec![
                ("addr", addr.into()),
                ("events_sent", out.events_sent.into()),
                ("wall_ms", (out.wall.as_secs_f64() * 1e3).into()),
                ("alarms", (out.alarms.len() as u64).into()),
            ],
        );
    }

    let lats: Vec<f64> = {
        let mut v: Vec<f64> = out
            .alarms
            .iter()
            .filter(|d| d.attack)
            .map(|d| d.latency_ns)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        v
    };
    let mut r = Report::new();
    r.text(format!(
        "session against {addr}: {} events streamed in {:.1} ms",
        out.events_sent,
        out.wall.as_secs_f64() * 1e3
    ));
    r.blank();
    r.table(session_table(
        &cfg,
        out.summary.committed,
        out.summary.cycles,
        out.summary.slowdown,
        out.summary.packets,
        out.summary.detections,
        &lats,
    ));
    Ok(r)
}

// ---- loadgen ---------------------------------------------------------------

pub fn loadgen_report(p: &Parsed) -> Result<Report, String> {
    let path = p
        .trace_file
        .as_deref()
        .ok_or("loadgen requires --trace <file>")?;
    // --chaos-net layers the seeded wire-fault proxy onto the chaos
    // fleet, so the gate asserts parity while the network lies too.
    if p.chaos || p.chaos_net {
        if p.addr.is_some() {
            return Err("--chaos spawns its own router fleet; --addr does not apply".to_owned());
        }
        if p.routed {
            return Err("--routed is implied by --chaos".to_owned());
        }
        return chaos_report(p, path);
    }
    for (flag, set) in [
        ("--backends", p.backends.is_some()),
        ("--backend-workers", p.backend_workers.is_some()),
        ("--kills", p.kills.is_some()),
        ("--fault-every", p.fault_every.is_some()),
        ("--max-delay-ms", p.max_delay_ms.is_some()),
        ("--journal-tail", p.journal_tail.is_some()),
    ] {
        if set {
            return Err(format!("{flag} requires --chaos (the spawned-fleet mode)"));
        }
    }
    let addr = p.addr.as_deref().unwrap_or(DEFAULT_ADDR);
    let sessions = p.sessions.unwrap_or(4);
    let concurrency = p.jobs.unwrap_or_else(fireguard_soc::default_workers);
    let (meta, events) = read_trace_file(path)?;
    let cfg = session_experiment(p, &meta)?;
    let session = SessionConfig::from_experiment(&cfg, meta.baseline_cycles);
    // Whether the recording carries ground-truth attacks, for the
    // zero-alarm warning below (a benign trace is *expected* to be silent).
    let has_attacks = events.iter().any(|e| e.attack.is_some());
    let opts = LoadgenOptions {
        sessions,
        concurrency,
        batch: p.batch.unwrap_or(fireguard_server::DEFAULT_BATCH),
        duration: p.duration_secs.map(std::time::Duration::from_secs_f64),
        bucket: std::time::Duration::from_millis(p.bucket_ms.unwrap_or(1000)),
        routed: p.routed.then(|| p.seed.unwrap_or(42)),
        trace: trace_sink(p)?,
    };
    let agg = run_loadgen(addr, &session, Arc::new(events), &opts);
    if agg.ok_sessions == 0 {
        return Err(format!(
            "all sessions failed: {}",
            agg.first_error.unwrap_or_else(|| "unknown".to_owned())
        ));
    }

    let mut r = Report::new();
    r.text(format!(
        "loadgen against {addr}: {} sessions ({} concurrent), workload {}",
        agg.ok_sessions + agg.failed_sessions,
        agg.workers,
        meta.workload
    ));
    if let Some(e) = &agg.first_error {
        r.text(format!(
            "warning: {} sessions failed; first error: {e}",
            agg.failed_sessions
        ));
    }
    if has_attacks && agg.detections == 0 {
        // The recording injects attacks yet nothing alarmed: either the
        // kernel selection cannot see this attack class, or the campaign
        // window misses every vulnerable commit (the blackscholes/
        // streamcluster shape). Loud, because a silent detector looks
        // identical to a working one in the throughput row.
        r.text(
            "warning: alarms=0 — the recording carries an attack campaign but no \
             session raised a detection (check --kernel against the attack kinds)"
                .to_owned(),
        );
    }
    if p.format == fireguard_soc::Format::Jsonl {
        // Machine-readable runs surface the pool shape (mirrors the
        // sweep's workers= line) so throughput numbers are
        // self-documenting.
        r.text(format!("workers={}", agg.workers));
        r.text(format!(
            "pipeline_width={} gen_stalls={} judge_stalls={} core_waits={}",
            agg.pipeline_width, agg.gen_stalls, agg.judge_stalls, agg.core_waits
        ));
        if opts.routed.is_some() {
            r.text(format!("reconnects={}", agg.reconnects));
            r.text(format!(
                "p50_reconnect_ms={:.3} p99_reconnect_ms={:.3}",
                agg.p50_reconnect_ms, agg.p99_reconnect_ms
            ));
        }
    }
    r.blank();
    // Throughput cells shared with `fireguard bench` (same precision and
    // units), so service and simulator numbers read identically.
    let [eps, nspe] = fireguard_bench::perf::throughput_cells(
        agg.events_per_sec,
        if agg.events_per_sec > 0.0 {
            1e9 / agg.events_per_sec
        } else {
            0.0
        },
    );
    let mut t = Table::new(&[
        ("sessions", 9),
        ("failed", 7),
        ("events", 11),
        ("committed", 11),
        ("wall_ms", 9),
        ("events/s", 12),
        ("ns/event", 9),
        ("detections", 11),
        ("p50_ns", 9),
        ("p99_ns", 9),
    ]);
    t.row(vec![
        Cell::Int(agg.ok_sessions as i64),
        Cell::Int(agg.failed_sessions as i64),
        Cell::Int(agg.events as i64),
        Cell::Int(agg.committed as i64),
        Cell::Float {
            v: agg.wall.as_secs_f64() * 1e3,
            prec: 1,
        },
        eps,
        nspe,
        Cell::Int(agg.detections as i64),
        if agg.detections == 0 {
            Cell::Missing
        } else {
            Cell::Float {
                v: agg.p50_latency_ns,
                prec: 1,
            }
        },
        if agg.detections == 0 {
            Cell::Missing
        } else {
            Cell::Float {
                v: agg.p99_latency_ns,
                prec: 1,
            }
        },
    ]);
    r.table(t);
    if agg.pipeline_width > 1 {
        r.text(format!(
            "pipeline width {}: {} gen stalls, {} judge stalls, {} core waits \
             (ring-full/empty spin cycles, wall-clock only)",
            agg.pipeline_width, agg.gen_stalls, agg.judge_stalls, agg.core_waits
        ));
    }
    if agg.buckets.len() > 1 {
        r.blank();
        r.text(format!(
            "latency histogram ({} ms buckets, by session completion time):",
            opts.bucket.as_millis()
        ));
        r.table(bucket_table(&agg.buckets));
    }
    Ok(r)
}

/// The soak histogram: one row per completion-time window. Reconnect
/// latency (client-observed disconnect → resumed-ACK) rides along per
/// bucket so a soak under churn shows *when* resumes got slow, not just
/// how many happened. Pipeline backpressure stalls (from the SUMMARY
/// tail) ride along the same way: a window whose sessions spent cycles
/// on full rings shows *where* the stage pipeline saturated.
fn bucket_table(buckets: &[fireguard_server::LatencyBucket]) -> Table {
    let mut t = Table::new(&[
        ("bucket_s", 9),
        ("sessions", 9),
        ("detections", 11),
        ("p50_ns", 10),
        ("p99_ns", 10),
        ("p50_wall_ms", 12),
        ("p99_wall_ms", 12),
        ("reconnects", 11),
        ("p50_rec_ms", 11),
        ("p99_rec_ms", 11),
        ("gen_stall", 10),
        ("jdg_stall", 10),
        ("core_wait", 10),
    ]);
    for b in buckets {
        let lat = |v: f64| {
            if b.detections == 0 {
                Cell::Missing
            } else {
                Cell::Float { v, prec: 1 }
            }
        };
        let wall = |v: f64| {
            if b.sessions == 0 {
                Cell::Missing
            } else {
                Cell::Float { v, prec: 1 }
            }
        };
        let rec = |v: f64| {
            if b.reconnects == 0 {
                Cell::Missing
            } else {
                Cell::Float { v, prec: 3 }
            }
        };
        t.row(vec![
            Cell::Float {
                v: b.start.as_secs_f64(),
                prec: 1,
            },
            Cell::Int(b.sessions as i64),
            Cell::Int(b.detections as i64),
            lat(b.p50_latency_ns),
            lat(b.p99_latency_ns),
            wall(b.p50_wall_ms),
            wall(b.p99_wall_ms),
            Cell::Int(b.reconnects as i64),
            rec(b.p50_reconnect_ms),
            rec(b.p99_reconnect_ms),
            Cell::Int(b.gen_stalls as i64),
            Cell::Int(b.judge_stalls as i64),
            Cell::Int(b.core_waits as i64),
        ]);
    }
    t
}

/// `loadgen --chaos`: spawn a router fleet, soak it with resumable
/// sessions while a seeded schedule kills backends, then *assert* the
/// outcome — zero lost sessions and every session's detection set
/// bit-identical to the offline run of the same recording. A violated
/// assertion is a command error (non-zero exit), because this subcommand
/// doubles as the CI chaos gate.
fn chaos_report(p: &Parsed, path: &str) -> Result<Report, String> {
    if !p.chaos_net && (p.fault_every.is_some() || p.max_delay_ms.is_some()) {
        return Err("--fault-every / --max-delay-ms require --chaos-net".to_owned());
    }
    let wire_faults = p.chaos_net.then(|| {
        let d = WireFaults::default();
        WireFaults {
            fault_every: p.fault_every.unwrap_or(d.fault_every),
            max_delay_ms: p.max_delay_ms.unwrap_or(d.max_delay_ms),
        }
    });
    let (meta, events) = read_trace_file(path)?;
    let cfg = session_experiment(p, &meta)?;
    let session = SessionConfig::from_experiment(&cfg, meta.baseline_cycles);
    let opts = ChaosOptions {
        sessions: p.sessions.unwrap_or(8),
        concurrency: p.jobs.unwrap_or(8),
        batch: p.batch.unwrap_or(fireguard_server::DEFAULT_BATCH),
        duration: p.duration_secs.map(std::time::Duration::from_secs_f64),
        backends: p.backends.unwrap_or(2),
        backend_workers: p.backend_workers.unwrap_or(2),
        kills: p.kills.unwrap_or(4),
        seed: p.seed.unwrap_or(7),
        drop_client_after_acks: None,
        observe_every: fireguard_server::OBSERVE_EVERY,
        wire_faults,
        journal_tail: p
            .journal_tail
            .unwrap_or(fireguard_server::DEFAULT_JOURNAL_TAIL),
        trace: trace_sink(p)?,
    };

    // The parity reference: the identical recording through the offline
    // engine (loopback tests pin offline == direct serve, so this is
    // also the direct-run reference).
    let reference = run_fireguard_events(&cfg, events.clone(), meta.baseline_cycles);
    let ref_keys = detection_keys(&reference.detections);

    let out = run_chaos(&session, Arc::new(events), &opts)
        .map_err(|e| format!("chaos setup failed: {e}"))?;
    if out.lost_sessions > 0 {
        return Err(format!(
            "chaos lost {} of {} sessions; first error: {}",
            out.lost_sessions,
            out.lost_sessions + out.ok_sessions,
            out.first_error.unwrap_or_else(|| "unknown".to_owned())
        ));
    }
    for (i, o) in out.outcomes.iter().enumerate() {
        if detection_keys(&o.outcome.alarms) != ref_keys {
            return Err(format!(
                "chaos session {i} diverged: {} alarms vs {} offline \
                 (detections must be bit-identical to a direct run)",
                o.outcome.alarms.len(),
                reference.detections.len()
            ));
        }
    }

    let mut r = Report::new();
    r.text(format!(
        "chaos: router + {} backends, {} sessions, {} kills scheduled (seed {}), workload {}",
        opts.backends, out.ok_sessions, opts.kills, opts.seed, meta.workload
    ));
    if let Some(wf) = opts.wire_faults {
        r.text(format!(
            "chaos-net: seeded wire-fault proxy interposed (fault every ~{} frames, \
             {} faults injected)",
            wf.fault_every, out.wire_faults
        ));
    }
    r.text(format!(
        "zero lost sessions; every detection set bit-identical to the offline run \
         ({} detections each)",
        reference.detections.len()
    ));
    if p.format == fireguard_soc::Format::Jsonl {
        r.text(format!("workers={}", opts.concurrency));
        r.text(format!("backends={}", opts.backends));
        if opts.wire_faults.is_some() {
            r.text(format!("wire_faults={}", out.wire_faults));
        }
    }
    r.blank();
    let mut t = Table::new(&[
        ("sessions", 9),
        ("lost", 5),
        ("kills", 6),
        ("failovers", 10),
        ("resumes", 8),
        ("reconnects", 11),
        ("events", 11),
        ("wall_ms", 9),
        ("detections", 11),
    ]);
    t.row(vec![
        Cell::Int(out.ok_sessions as i64),
        Cell::Int(out.lost_sessions as i64),
        Cell::Int(out.kills as i64),
        Cell::Int(out.failovers as i64),
        Cell::Int(out.resumes as i64),
        Cell::Int(out.reconnects as i64),
        Cell::Int(out.events_forwarded as i64),
        Cell::Float {
            v: out.wall.as_secs_f64() * 1e3,
            prec: 1,
        },
        Cell::Int(
            out.outcomes
                .iter()
                .map(|o| o.outcome.alarms.len() as i64)
                .sum(),
        ),
    ]);
    r.table(t);
    Ok(r)
}

// ---- serve -----------------------------------------------------------------

/// Runs the service in the foreground; returns the process exit code.
pub fn serve_cmd(p: &Parsed) -> i32 {
    if p.format != fireguard_soc::Format::Human {
        // serve prints a plain announcement line, not a Report; honoring
        // the never-silently-ignore contract beats accepting the flag.
        eprintln!("fireguard: serve has no report output; --format does not apply");
        return 2;
    }
    let trace = match trace_sink(p) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fireguard: {e}");
            return 1;
        }
    };
    let opts = fireguard_server::ServeOptions {
        addr: p.addr.clone().unwrap_or_else(|| DEFAULT_ADDR.to_owned()),
        workers: p.workers.unwrap_or_else(fireguard_soc::default_workers),
        max_sessions: p.max_sessions,
        observe_every: fireguard_server::OBSERVE_EVERY,
        metrics_addr: p.metrics_addr.clone(),
        idle_timeout: idle_timeout(p),
        pipeline: p.pipeline.unwrap_or(1),
        trace,
    };
    let workers = opts.workers;
    let handle = match fireguard_server::serve(opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("fireguard: cannot bind: {e}");
            return 1;
        }
    };
    // The bound address goes to stdout (and is flushed) so scripts can
    // start on port 0 and discover the real port.
    println!(
        "fireguard-serve: listening on {} ({workers} workers)",
        handle.local_addr()
    );
    // The metrics endpoint follows the same contract: announce the bound
    // address so a scraper started against port 0 can find it.
    if let Some(m) = handle.metrics_addr() {
        println!("fireguard-serve: metrics on {m}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    0
}

// ---- router ----------------------------------------------------------------

/// Default router address when `--addr` is not given (one past serve's).
pub const DEFAULT_ROUTER_ADDR: &str = "127.0.0.1:4781";

/// Runs the router tier in the foreground; returns the process exit code.
pub fn router_cmd(p: &Parsed) -> i32 {
    if p.format != fireguard_soc::Format::Human {
        eprintln!("fireguard: router has no report output; --format does not apply");
        return 2;
    }
    if p.backends.is_some() && p.backend_addrs.is_some() {
        eprintln!(
            "fireguard: --backends (spawn) and --backend-addrs (extern) are mutually exclusive"
        );
        return 2;
    }
    let backends = match p.backend_addrs.as_deref() {
        Some(csv) => fireguard_server::BackendMode::Extern(
            csv.split(',').map(|s| s.trim().to_owned()).collect(),
        ),
        None => fireguard_server::BackendMode::Spawn(p.backends.unwrap_or(2)),
    };
    let trace = match trace_sink(p) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fireguard: {e}");
            return 1;
        }
    };
    // `--resume-journals <dir>` implies journaling into that directory;
    // naming a *different* `--journal-dir` alongside it would recover
    // into one place while journaling into another — reject the split.
    let journal_dir = match (p.journal_dir.as_deref(), p.resume_journals.as_deref()) {
        (Some(a), Some(b)) if a != b => {
            eprintln!(
                "fireguard: --journal-dir {a} and --resume-journals {b} name \
                 different directories"
            );
            return 2;
        }
        (Some(d), _) | (None, Some(d)) => Some(std::path::PathBuf::from(d)),
        (None, None) => None,
    };
    let defaults = fireguard_server::RouterOptions::default();
    let journal_tail = p.journal_tail.unwrap_or(defaults.journal_tail);
    let opts = fireguard_server::RouterOptions {
        addr: p
            .addr
            .clone()
            .unwrap_or_else(|| DEFAULT_ROUTER_ADDR.to_owned()),
        backends,
        backend_workers: p.backend_workers.unwrap_or(2),
        max_sessions: p.max_sessions,
        metrics_addr: p.metrics_addr.clone(),
        idle_timeout: idle_timeout(p),
        max_live_sessions: p.max_live_sessions,
        max_buffered_bytes: p.max_buffered_mb.map(|mb| mb * (1 << 20)),
        journal_dir,
        resume_journals: p.resume_journals.is_some(),
        journal_tail,
        trace,
        ..defaults
    };
    let handle = match fireguard_server::route(opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("fireguard: cannot start router: {e}");
            return 1;
        }
    };
    // Same script contract as serve: bound address on stdout, flushed.
    println!(
        "fireguard-router: listening on {} ({} backends)",
        handle.local_addr(),
        handle.backends()
    );
    if let Some(m) = handle.metrics_addr() {
        println!("fireguard-router: metrics on {m}");
    }
    for (slot, addr) in handle.backend_addrs().iter().enumerate() {
        match addr {
            Some(a) => println!("fireguard-router: backend {slot} at {a}"),
            None => println!("fireguard-router: backend {slot} down"),
        }
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    0
}

// ---- chaos-net -------------------------------------------------------------

/// Default chaos-net listen address when `--addr` is not given (one past
/// the router's).
pub const DEFAULT_NETEM_ADDR: &str = "127.0.0.1:4782";

/// Runs the seeded wire-fault proxy in the foreground; returns the
/// process exit code. Clients dial this address instead of the upstream
/// router/serve; the proxy relays frames and injects seeded faults
/// (drops, delays, duplicates, truncations, corruptions, disconnects).
pub fn chaos_net_cmd(p: &Parsed) -> i32 {
    if p.format != fireguard_soc::Format::Human {
        eprintln!("fireguard: chaos-net has no report output; --format does not apply");
        return 2;
    }
    let Some(upstream) = p.upstream.clone() else {
        eprintln!("fireguard: chaos-net requires --upstream <host:port> (the honest address)");
        return 2;
    };
    let trace = match trace_sink(p) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fireguard: {e}");
            return 1;
        }
    };
    let defaults = NetemOptions::default();
    let opts = NetemOptions {
        listen: p
            .addr
            .clone()
            .unwrap_or_else(|| DEFAULT_NETEM_ADDR.to_owned()),
        upstream: upstream.clone(),
        seed: p.seed.unwrap_or(defaults.seed),
        fault_every: p.fault_every.unwrap_or(defaults.fault_every),
        max_delay_ms: p.max_delay_ms.unwrap_or(defaults.max_delay_ms),
        trace,
        ..defaults
    };
    let seed = opts.seed;
    let fault_every = opts.fault_every;
    let handle = match netem(opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("fireguard: cannot bind chaos-net proxy: {e}");
            return 1;
        }
    };
    // Same script contract as serve/router: bound address on stdout.
    println!(
        "fireguard-chaos-net: listening on {} -> {upstream} \
         (seed {seed}, fault every ~{fault_every} frames)",
        handle.local_addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    0
}

// ---- stats -----------------------------------------------------------------

/// Sums every sample named `name` in a scrape (across label sets), or
/// `None` when the endpoint does not emit the series at all — so a serve
/// scrape renders `-` for router-only series instead of a fake zero.
fn series_total(samples: &[Sample], name: &str) -> Option<u64> {
    let mut any = false;
    let mut total = 0u64;
    for s in samples.iter().filter(|s| s.name == name) {
        any = true;
        total += s.count();
    }
    any.then_some(total)
}

/// `fireguard stats`: scrape one or more live `--metrics-addr` endpoints
/// (comma-separated in `--addr`; serve and router mix freely) and render
/// per-target health plus the fleet-wide per-kernel packet/verdict/alarm
/// aggregate. A router scrape already folds its spawned backends in
/// (`backend`-labelled series), so scraping a router counts its whole
/// fleet.
pub fn stats_report(p: &Parsed) -> Result<Report, String> {
    let spec = p.addr.as_deref().ok_or(
        "stats requires --addr <host:port[,host:port,...]> naming one or more \
         --metrics-addr endpoints",
    )?;
    let targets: Vec<&str> = spec
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if targets.is_empty() {
        return Err("stats: --addr named no endpoints".to_owned());
    }
    let mut scrapes: Vec<(&str, Vec<Sample>)> = Vec::new();
    for t in &targets {
        let samples =
            fireguard_server::scrape(t).map_err(|e| format!("scrape of {t} failed: {e}"))?;
        scrapes.push((t, samples));
    }
    let series: usize = scrapes.iter().map(|(_, s)| s.len()).sum();

    let mut r = Report::new();
    r.text(format!(
        "stats: {} endpoint{} scraped, {series} series",
        targets.len(),
        if targets.len() == 1 { "" } else { "s" }
    ));
    r.blank();

    // Per-target health: session/event/alarm totals, plus the router-only
    // series where the endpoint emits them.
    let target_col = targets.iter().map(|t| t.len()).max().unwrap_or(0).max(8);
    let mut t = Table::new(&[
        ("target", target_col),
        ("sessions", 9),
        ("completed", 10),
        ("failed", 7),
        ("events", 12),
        ("alarms", 8),
        ("failovers", 10),
        ("resumes", 8),
        ("backends_up", 12),
    ]);
    let opt = |v: Option<u64>| match v {
        Some(n) => Cell::Int(n as i64),
        None => Cell::Missing,
    };
    for (target, samples) in &scrapes {
        t.row(vec![
            Cell::Str((*target).to_owned()),
            opt(series_total(samples, "fireguard_sessions_started_total")),
            opt(series_total(samples, "fireguard_sessions_completed_total")),
            opt(series_total(samples, "fireguard_sessions_failed_total")),
            opt(series_total(samples, "fireguard_events_total")),
            opt(series_total(samples, "fireguard_alarms_total")),
            opt(series_total(samples, "fireguard_router_failovers_total")),
            opt(series_total(samples, "fireguard_router_resumes_total")),
            opt(series_total(samples, "fireguard_router_backends_up")),
        ]);
    }
    r.table(t);

    // The fleet-wide per-kernel aggregate: packets/verdicts/alarms summed
    // over every target and backend label, keyed by the registry's
    // canonical kernel name and presented in registry order.
    let mut tallies: Vec<(String, [u64; 3])> = Vec::new();
    for (_, samples) in &scrapes {
        for s in samples {
            let col = match s.name.as_str() {
                "fireguard_kernel_packets_total" => 0,
                "fireguard_kernel_verdicts_total" => 1,
                "fireguard_kernel_alarms_total" => 2,
                _ => continue,
            };
            let kernel = s.label_value("kernel").unwrap_or("unknown").to_owned();
            match tallies.iter_mut().find(|(k, _)| *k == kernel) {
                Some((_, row)) => row[col] += s.count(),
                None => {
                    let mut row = [0u64; 3];
                    row[col] = s.count();
                    tallies.push((kernel, row));
                }
            }
        }
    }
    let canonical = fireguard_soc::canonical_names();
    tallies.sort_by_key(|(k, _)| {
        canonical
            .iter()
            .position(|c| c == k)
            .unwrap_or(canonical.len())
    });
    r.blank();
    if tallies.is_empty() {
        r.text("no per-kernel traffic yet (run a session, then scrape again)");
    } else {
        r.text("per-kernel fleet aggregate:");
        let kernel_col = tallies
            .iter()
            .map(|(k, _)| k.len())
            .max()
            .unwrap_or(0)
            .max(8);
        let mut k = Table::new(&[
            ("kernel", kernel_col),
            ("packets", 12),
            ("verdicts", 10),
            ("alarms", 8),
        ]);
        for (kernel, [packets, verdicts, alarms]) in &tallies {
            k.row(vec![
                Cell::Str(kernel.clone()),
                Cell::Int(*packets as i64),
                Cell::Int(*verdicts as i64),
                Cell::Int(*alarms as i64),
            ]);
        }
        r.table(k);
    }
    Ok(r)
}
