//! The unified `fireguard` command-line interface.
//!
//! One binary subsumes the 11 per-figure binaries, ad-hoc grid sweeps,
//! and the streaming service layer:
//!
//! ```text
//! fireguard list                         # what can I run?
//! fireguard fig7a --jobs 8               # a paper figure, 8 workers
//! fireguard fig10 --insts 50000 --format csv
//! fireguard sweep --kernel asan --ucores 2,4,8,12 --format jsonl
//! fireguard trace record --workload x264 --out x264.fgt
//! fireguard trace replay --trace x264.fgt --kernel asan --ucores 4
//! fireguard serve --addr 127.0.0.1:4780 --workers 8
//! fireguard client --addr 127.0.0.1:4780 --trace x264.fgt
//! fireguard loadgen --addr 127.0.0.1:4780 --trace x264.fgt --sessions 16
//! ```
//!
//! Flags override the `FG_INSTS` / `FG_QUICK` / `FG_JOBS` environment
//! variables (which keep working for CI and the legacy binaries). Output
//! is byte-identical across `--jobs` values: the sweep engine re-orders
//! results by job index before anything is printed.

use fireguard_bench::figures::{find, FigOpts, FIGURES};
use fireguard_soc::sweep::SweepGrid;
use fireguard_soc::{
    render, run_jobs, Cell, EngineConfig, Format, KernelId, ProgrammingModel, Report, Table,
};

mod args;
mod bench_cmd;
mod service_cmds;

use args::{ArgError, Parsed};
use service_cmds::{parse_kernel, parse_model};

/// Count heap allocations binary-wide so `fireguard bench` can report
/// allocs/event (one relaxed atomic add per allocation; see
/// [`fireguard_bench::perf::CountingAllocator`]).
#[global_allocator]
static ALLOC: fireguard_bench::perf::CountingAllocator = fireguard_bench::perf::CountingAllocator;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&argv));
}

fn run(argv: &[String]) -> i32 {
    let parsed = match args::parse(argv) {
        Ok(p) => p,
        Err(ArgError::Help) => {
            print!("{}", usage());
            return 0;
        }
        Err(ArgError::Version) => {
            println!("fireguard {}", env!("CARGO_PKG_VERSION"));
            return 0;
        }
        Err(ArgError::Bad(msg)) => {
            eprintln!("fireguard: {msg}");
            eprintln!("run `fireguard help` for usage");
            return 2;
        }
    };

    let stray = parsed.out_of_scope_flags();
    if !stray.is_empty() {
        eprintln!(
            "fireguard: {} {} not apply to the {} subcommand",
            stray.join(", "),
            if stray.len() == 1 { "does" } else { "do" },
            parsed.command
        );
        return 2;
    }

    if parsed.command == "serve" {
        return service_cmds::serve_cmd(&parsed);
    }
    if parsed.command == "router" {
        return service_cmds::router_cmd(&parsed);
    }
    if parsed.command == "chaos-net" {
        return service_cmds::chaos_net_cmd(&parsed);
    }
    if parsed.command == "bench" {
        // bench renders its own report: it has side outputs (--out JSON)
        // and a gate (--check) that must set the exit code after printing.
        return bench_cmd::bench_cmd(&parsed);
    }

    let report = match parsed.command.as_str() {
        "list" => Ok(list_report(parsed.format)),
        "sweep" => sweep_report(&parsed),
        "trace record" => {
            let opts = fig_opts(&parsed);
            service_cmds::record_report(&parsed, opts.insts, opts.seed)
        }
        "trace replay" => service_cmds::replay_report(&parsed),
        "client" => service_cmds::client_report(&parsed),
        "loadgen" => service_cmds::loadgen_report(&parsed),
        "stats" => service_cmds::stats_report(&parsed),
        name => match find(name) {
            Some(fig) => Ok((fig.run)(&fig_opts(&parsed))),
            None => {
                eprintln!("fireguard: unknown subcommand {name:?}");
                eprintln!("run `fireguard list` to see the available subcommands");
                return 2;
            }
        },
    };
    let report = match report {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("fireguard: {msg}");
            return 2;
        }
    };

    let stdout = std::io::stdout();
    match render(&report, parsed.format, &mut stdout.lock()) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("fireguard: writing output failed: {e}");
            1
        }
    }
}

/// Resolves figure options: flags beat environment variables.
fn fig_opts(p: &Parsed) -> FigOpts {
    let env = FigOpts::from_env();
    FigOpts {
        insts: p.insts.unwrap_or(if p.quick {
            fireguard_bench::QUICK_INSTS
        } else {
            env.insts
        }),
        seed: p.seed.unwrap_or(env.seed),
        workers: p.jobs.unwrap_or(env.workers),
        pipeline: p.pipeline.unwrap_or(env.pipeline),
    }
}

/// Subcommands beyond the figure registry, for `list` and `usage`.
const EXTRA_COMMANDS: &[(&str, &str)] = &[
    (
        "sweep",
        "ad-hoc grid over workloads × kernels × engines × widths",
    ),
    (
        "trace record",
        "capture a workload×attack stream to a .fgt file",
    ),
    ("trace replay", "re-run a .fgt recording through FireGuard"),
    ("serve", "online streaming analysis service (TCP)"),
    (
        "router",
        "fleet front-end: consistent-hash sessions over N backends",
    ),
    ("client", "stream a .fgt recording to a running service"),
    (
        "loadgen",
        "open N concurrent sessions, report throughput/latency",
    ),
    (
        "chaos-net",
        "seeded wire-fault proxy: interpose lies between client and fleet",
    ),
    (
        "bench",
        "performance scenarios: events/s, allocs/event, regression gate",
    ),
    (
        "stats",
        "scrape live --metrics-addr endpoints, aggregate fleet counters",
    ),
];

fn list_report(format: Format) -> Report {
    let mut r = Report::new();
    if format == Format::Human {
        // The classic human listing, unchanged.
        r.text("fireguard subcommands (paper figures/tables + sweeps + service)");
        r.blank();
        for fig in FIGURES {
            r.text(format!("  {:<16} {}", fig.name, fig.summary));
        }
        for (name, summary) in EXTRA_COMMANDS {
            r.text(format!("  {name:<16} {summary}"));
        }
        r.blank();
        r.text("registered guardian kernels (--kernel):");
        for spec in fireguard_soc::registry() {
            r.text(format!(
                "  {:<16} id {}  {}",
                spec.cli_names()[0],
                spec.id().wire(),
                spec.summary()
            ));
        }
        r.blank();
        r.text("common flags: --insts N  --seed N  --jobs N  --format human|jsonl|csv  --quick");
        return r;
    }
    // Machine-readable registry (one row per driver) for tooling.
    let mut t = Table::new(&[("name", 16), ("summary", 60)]);
    for fig in FIGURES {
        t.row(vec![
            Cell::Str(fig.name.to_owned()),
            Cell::Str(fig.summary.to_owned()),
        ]);
    }
    for (name, summary) in EXTRA_COMMANDS {
        t.row(vec![
            Cell::Str((*name).to_owned()),
            Cell::Str((*summary).to_owned()),
        ]);
    }
    r.table(t);
    // The guardian-kernel registry, one row per plugin (stable wire id,
    // canonical name, aliases, display label).
    let mut k = Table::new(&[
        ("kernel", 14),
        ("id", 4),
        ("label", 11),
        ("aliases", 28),
        ("detects", 10),
        ("summary", 60),
    ]);
    for spec in fireguard_soc::registry() {
        k.row(vec![
            Cell::Str(spec.cli_names()[0].to_owned()),
            Cell::Int(i64::from(spec.id().wire())),
            Cell::Str(spec.name().to_owned()),
            Cell::Str(spec.cli_names().join("|")),
            Cell::Int(spec.detects().len() as i64),
            Cell::Str(spec.summary().to_owned()),
        ]);
    }
    r.table(k);
    r
}

fn sweep_report(p: &Parsed) -> Result<Report, String> {
    let opts = fig_opts(p);
    let workloads: Vec<String> = match p.workloads.as_deref() {
        None | Some("all") => fireguard_soc::experiments::workloads()
            .into_iter()
            .map(str::to_owned)
            .collect(),
        Some(csv) => {
            let known = fireguard_soc::experiments::workloads();
            let ws: Vec<String> = csv.split(',').map(str::to_owned).collect();
            for w in &ws {
                if !known.contains(&w.as_str()) {
                    return Err(format!(
                        "unknown workload {w:?} (expected one of: {})",
                        known.join(", ")
                    ));
                }
            }
            ws
        }
    };
    // `--kernel all` deploys every registered kernel *together* in one
    // system per grid point (the packet-layout-v2 wide-verdict mode);
    // a csv list still sweeps them one system each.
    let (kernels, combined) = match p.kernels.as_deref() {
        None => (vec![KernelId::ASAN], false),
        Some(csv) if csv.eq_ignore_ascii_case("all") => (
            fireguard_soc::registry().iter().map(|s| s.id()).collect(),
            true,
        ),
        Some(csv) => (
            csv.split(',')
                .map(parse_kernel)
                .collect::<Result<Vec<_>, _>>()?,
            false,
        ),
    };
    let mut engines: Vec<EngineConfig> = match p.ucores.as_deref() {
        None if p.ha => Vec::new(),
        None if combined => {
            // Split the fabric evenly so the full registry fits without
            // the user having to do the engine arithmetic.
            vec![EngineConfig::Ucores(
                (fireguard_soc::MAX_ENGINES / kernels.len()).clamp(1, 4),
            )]
        }
        None => vec![EngineConfig::Ucores(4)],
        Some(csv) => csv
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .map(EngineConfig::Ucores)
                    .ok_or_else(|| {
                        format!("bad --ucores entry {s:?} (expected a positive integer)")
                    })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    if p.ha {
        engines.push(EngineConfig::Ha);
    }
    let filter_widths = match p.filter_widths.as_deref() {
        None => vec![4],
        Some(csv) => csv
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| w >= 1)
                    .ok_or_else(|| {
                        format!("bad --filter-width entry {s:?} (expected a positive integer)")
                    })
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let models = match p.models.as_deref() {
        None => vec![ProgrammingModel::Hybrid],
        Some(csv) => csv
            .split(',')
            .map(parse_model)
            .collect::<Result<Vec<_>, _>>()?,
    };

    let grid = SweepGrid {
        workloads,
        kernels,
        combined,
        engines,
        filter_widths,
        models,
        insts: opts.insts,
        seed: opts.seed,
    };
    let mut expanded = grid.expand();
    if expanded.is_empty() {
        return Err("the sweep grid is empty (no engine axis?)".to_owned());
    }
    // `--attacks` runs the same campaign at every grid point, so the
    // detections column shows which configurations actually catch it —
    // silent points are visible in the grid instead of only in loadgen.
    let attacked = service_cmds::attack_plan(p, opts.insts)?;
    if let Some(plan) = &attacked {
        for (_, job) in &mut expanded {
            if let fireguard_soc::JobSpec::FireGuard(cfg) = job {
                cfg.attacks = Some(plan.clone());
            }
        }
    }
    // `--pipeline` applies uniformly across the grid (results are
    // bit-identical at any width, so this only shifts wall-clock time).
    if opts.pipeline != 1 {
        for (_, job) in &mut expanded {
            if let fireguard_soc::JobSpec::FireGuard(cfg) = job {
                cfg.pipeline = opts.pipeline;
            }
        }
    }
    // Pre-flight every deployment against the fabric/packet ceilings so a
    // combined grid that doesn't fit is a clean error, not a panic mid-sweep.
    for (pt, job) in &expanded {
        if let fireguard_soc::JobSpec::FireGuard(cfg) = job {
            fireguard_soc::validate_capacity(&cfg.kernels).map_err(|e| {
                format!(
                    "sweep point {}/{} does not fit: {e} (try a smaller --ucores)",
                    pt.workload,
                    pt.kernel_label()
                )
            })?;
        }
    }
    let (points, jobs): (Vec<_>, Vec<_>) = expanded.into_iter().unzip();
    let outs = run_jobs(jobs, opts.workers);

    let mut r = Report::new();
    r.text(format!(
        "sweep: {} runs ({} insts each, seed {})",
        points.len(),
        opts.insts,
        opts.seed
    ));
    if p.format == Format::Jsonl {
        // Machine-readable runs surface the worker count actually used
        // (FG_JOBS / --jobs / available parallelism) so a 1-CPU container
        // showing no --jobs speedup is self-documenting. Human/CSV output
        // stays byte-identical across worker counts by design.
        r.text(format!("workers={}", opts.workers));
    }
    r.blank();
    // A combined deployment's label is the `+`-join of every kernel name,
    // so size the column to the widest label actually present.
    let kernel_col = points
        .iter()
        .map(|pt| pt.kernel_label().len())
        .max()
        .unwrap_or(0)
        .max(10);
    let mut t = Table::new(&[
        ("workload", 14),
        ("kernel", kernel_col),
        ("engine", 7),
        ("fwidth", 7),
        ("model", 15),
        ("slowdown", 9),
        ("cycles", 12),
        ("packets", 10),
        ("detections", 11),
    ]);
    let mut silent: Vec<String> = Vec::new();
    for (pt, out) in points.iter().zip(outs) {
        let run = out.into_run();
        let detections = run.detections.len();
        if attacked.is_some() && detections == 0 {
            silent.push(format!("{}/{}", pt.workload, pt.kernel_label()));
        }
        t.row(vec![
            Cell::Str(pt.workload.clone()),
            Cell::Str(pt.kernel_label()),
            Cell::Str(pt.engine_label()),
            Cell::Int(pt.filter_width as i64),
            Cell::Str(pt.model.name().to_owned()),
            Cell::slowdown(run.slowdown),
            Cell::Int(run.cycles as i64),
            Cell::Int(run.packets as i64),
            Cell::Int(detections as i64),
        ]);
    }
    r.table(t);
    if !silent.is_empty() {
        r.blank();
        r.text(format!(
            "warning: alarms=0 at {} of {} attacked grid points ({}) — the campaign \
             raised no detection there (check --kernel against the attack kinds)",
            silent.len(),
            points.len(),
            silent.join(", ")
        ));
    }
    Ok(r)
}

fn usage() -> String {
    let mut s = String::from(
        "fireguard — regenerate the FireGuard (DAC 2025) evaluation\n\
         \n\
         USAGE:\n\
         \x20   fireguard <subcommand> [flags]\n\
         \n\
         SUBCOMMANDS:\n",
    );
    for fig in FIGURES {
        s.push_str(&format!("    {:<16} {}\n", fig.name, fig.summary));
    }
    let kernel_names = fireguard_soc::canonical_names().join(", ");
    s.push_str(
        "    sweep            ad-hoc grid sweep (see sweep flags below)\n\
         \x20   trace record     capture a workload×attack stream to a .fgt file\n\
         \x20   trace replay     re-run a .fgt recording through FireGuard\n\
         \x20   serve            online streaming analysis service (TCP)\n\
         \x20   router           fleet front-end: consistent-hash sessions over N backends\n\
         \x20   client           stream a .fgt recording to a running service\n\
         \x20   loadgen          open N concurrent sessions, report throughput/latency\n\
         \x20   chaos-net        seeded wire-fault proxy between clients and the fleet\n\
         \x20   bench            performance scenarios: events/s, allocs/event, regression gate\n\
         \x20   stats            scrape live --metrics-addr endpoints, aggregate fleet counters\n\
         \x20   list             list subcommands as a table (--format jsonl for tooling)\n\
         \x20   help             this message\n\
         \n\
         COMMON FLAGS:\n\
         \x20   --insts <N>      instructions per run (overrides FG_INSTS; default 120000)\n\
         \x20   --quick          30000-instruction smoke run (overrides FG_QUICK)\n\
         \x20   --seed <N>       trace seed (default 42)\n\
         \x20   --jobs <N>       sweep workers / loadgen concurrency (overrides FG_JOBS)\n\
         \x20   --format <F>     human (default), jsonl, or csv\n\
         \x20   --pipeline <W>   in-session stage parallelism: 1 = serial (default),\n\
         \x20                    N = gen/judge worker stages, auto = size to the host\n\
         \x20                    (figures, sweep, trace replay, serve, bench; output\n\
         \x20                    is bit-identical at every width)\n\
         \n\
         SWEEP FLAGS:\n\
         \x20   --workloads <csv|all>   PARSEC workloads (default all)\n",
    );
    // The --kernel list comes from the plugin registry, so usage can never
    // drift from the kernels actually registered.
    s.push_str(&format!(
        "    --kernel <csv|all>      {kernel_names} (default asan;\n\
         \x20                           `all` deploys every kernel in one system)\n"
    ));
    s.push_str(
        "    --ucores <csv>          µcore counts per kernel (default 4)\n\
         \x20   --ha                    also sweep the hardware-accelerator variant\n\
         \x20   --filter-width <csv>    event-filter widths (default 4)\n\
         \x20   --model <csv>           conventional, duffs, unrolled, hybrid (default hybrid)\n\
         \n\
         TRACE / SERVICE FLAGS:\n\
         \x20   --workload <name>       workload to record (trace record)\n\
         \x20   --out <file>            output .fgt path (trace record)\n\
         \x20   --attacks <csv>         ret-hijack, oob, uaf, bounds (trace record, sweep)\n\
         \x20   --attack-count/-start/-end/-seed   campaign shape (trace record, sweep)\n\
         \x20   --trace <file>          .fgt recording (replay/client/loadgen)\n\
         \x20   --addr <host:port>      service address (default 127.0.0.1:4780)\n\
         \x20   --workers <N>           serve: concurrent session workers\n\
         \x20   --max-sessions <N>      serve: exit after N sessions (CI)\n\
         \x20   --sessions <N>          loadgen: total sessions (default 4)\n\
         \x20   --batch <N>             events per frame (default 512)\n\
         \x20   --mapper-width <N>      replay/client/loadgen mapper width\n\
         \n\
         ROUTER / CHAOS FLAGS:\n\
         \x20   --backends <N>          router/chaos: spawned backend slots (default 2)\n\
         \x20   --backend-addrs <csv>   router: route over external serves instead\n\
         \x20   --backend-workers <N>   workers per spawned backend (default 2)\n\
         \x20   --routed                loadgen: resumable ticketed sessions (router peer)\n\
         \x20   --duration <SECS>       loadgen: soak until SECS elapsed (sessions = floor)\n\
         \x20   --bucket-ms <N>         loadgen: latency-histogram window (default 1000)\n\
         \x20   --chaos                 loadgen: spawn a fleet, kill backends, assert parity\n\
         \x20   --kills <N>             chaos: scheduled backend kills (default 4)\n\
         \x20   --chaos-net             loadgen: also interpose the seeded wire-fault proxy\n\
         \x20   --fault-every <N>       chaos-net: mean frames between faults (default 64)\n\
         \x20   --max-delay-ms <N>      chaos-net: delay-fault upper bound (default 5)\n\
         \x20   --upstream <h:p>        chaos-net: the honest address to forward to\n\
         \n\
         ROBUSTNESS FLAGS:\n\
         \x20   --idle-timeout <SECS>   serve/router: reap silent connections (default 30)\n\
         \x20   --journal-dir <DIR>     router: durable session journals + recovery sidecars\n\
         \x20   --resume-journals <DIR> router: recover crashed sessions from DIR at boot\n\
         \x20   --max-live-sessions <N> router: refuse fresh sessions over N live (BUSY)\n\
         \x20   --max-buffered-mb <N>   router: refuse fresh sessions past this journal spill\n\
         \x20   --journal-tail <N>      router/chaos: in-RAM events per session journal (default 4096)\n\
         \n\
         TELEMETRY FLAGS:\n\
         \x20   --metrics-addr <h:p>    serve/router: live metrics endpoint (exposition + STATS)\n\
         \x20   --trace-out <file>      serve/router/client/loadgen: span-event jsonl sink\n\
         \x20   stats --addr <csv>      scrape endpoints, aggregate per-kernel fleet counters\n\
         \x20   bench --profile         stage-level cycle attribution (gen/core/filter/kernel/codec)\n\
         \n\
         BENCH FLAGS:\n\
         \x20   --scenario <csv>        scenario filter (default: all; see bench output)\n\
         \x20   --warmup <N>            untimed runs per scenario (default 1)\n\
         \x20   --samples <N>           timed runs per scenario, best reported (default 3)\n\
         \x20   --out <file>            write a BENCH_*.json machine-readable baseline\n\
         \x20   --baseline <file>       embed a prior BENCH_*.json's events/s for speedups\n\
         \x20   --check <file>          fail on >10% events/s regression vs <file>\n\
         \n\
         Replay/client/loadgen take --kernel <csv|all> with --ucores <N> or --ha\n\
         (each kernel gets its own engines; `all` deploys every registered kernel).\n\
         Output is byte-identical for any --jobs value; parallelism only\n\
         changes wall-clock time.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_and_model_parsers() {
        assert_eq!(parse_kernel("PMC"), Ok(KernelId::PMC));
        assert_eq!(parse_kernel("ss"), Ok(KernelId::SHADOW_STACK));
        assert_eq!(parse_kernel("taint"), Ok(KernelId::TAINT));
        assert_eq!(parse_kernel("mte"), Ok(KernelId::MTE));
        let err = parse_kernel("rowhammer").unwrap_err();
        for name in fireguard_soc::canonical_names() {
            assert!(err.contains(name), "error message omits {name}: {err}");
        }
        assert_eq!(parse_model("hybrid"), Ok(ProgrammingModel::Hybrid));
        assert!(parse_model("jit").is_err());
    }

    #[test]
    fn usage_names_every_figure() {
        let u = usage();
        for fig in FIGURES {
            assert!(u.contains(fig.name), "usage is missing {}", fig.name);
        }
    }

    #[test]
    fn usage_and_list_name_every_registered_kernel() {
        let u = usage();
        for name in fireguard_soc::canonical_names() {
            assert!(u.contains(name), "usage is missing kernel {name}");
        }
        for format in [Format::Human, Format::Jsonl] {
            let rendered = fireguard_soc::render_to_string(&list_report(format), format);
            for name in fireguard_soc::canonical_names() {
                assert!(
                    rendered.contains(name),
                    "{format:?} list is missing kernel {name}:\n{rendered}"
                );
            }
        }
    }
}
