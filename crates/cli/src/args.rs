//! Hand-rolled argument parsing for the `fireguard` CLI.
//!
//! The container is offline-vendored, so no `clap`: a small parser that
//! supports `--flag value` and `--flag=value`, one positional subcommand,
//! and `help`/`--help`/`-h`/`--version` escapes.

use fireguard_soc::Format;
use std::str::FromStr;

/// Parse failure modes.
#[derive(Debug)]
pub enum ArgError {
    /// The user asked for usage text.
    Help,
    /// The user asked for the version.
    Version,
    /// A real error, with a message for stderr.
    Bad(String),
}

/// The parsed command line.
#[derive(Debug)]
pub struct Parsed {
    /// The subcommand (figure name, `sweep`, or `list`).
    pub command: String,
    /// `--insts N` override.
    pub insts: Option<u64>,
    /// `--seed N` override.
    pub seed: Option<u64>,
    /// `--jobs N` override.
    pub jobs: Option<usize>,
    /// `--quick` (30 000-instruction smoke run).
    pub quick: bool,
    /// `--format human|jsonl|csv`.
    pub format: Format,
    /// `--workloads csv|all` (sweep only).
    pub workloads: Option<String>,
    /// `--kernel csv` (sweep only).
    pub kernels: Option<String>,
    /// `--ucores csv` (sweep only).
    pub ucores: Option<String>,
    /// `--ha` (sweep only): include the hardware-accelerator variant.
    pub ha: bool,
    /// `--filter-width csv` (sweep only).
    pub filter_widths: Option<String>,
    /// `--model csv` (sweep only).
    pub models: Option<String>,
}

impl Parsed {
    /// The sweep-only flags the user set, by name — so non-`sweep`
    /// subcommands can reject them instead of silently ignoring them.
    pub fn sweep_only_flags_used(&self) -> Vec<&'static str> {
        let mut used = Vec::new();
        if self.workloads.is_some() {
            used.push("--workloads");
        }
        if self.kernels.is_some() {
            used.push("--kernel");
        }
        if self.ucores.is_some() {
            used.push("--ucores");
        }
        if self.ha {
            used.push("--ha");
        }
        if self.filter_widths.is_some() {
            used.push("--filter-width");
        }
        if self.models.is_some() {
            used.push("--model");
        }
        used
    }
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Parsed, ArgError> {
    let mut p = Parsed {
        command: String::new(),
        insts: None,
        seed: None,
        jobs: None,
        quick: false,
        format: Format::Human,
        workloads: None,
        kernels: None,
        ucores: None,
        ha: false,
        filter_widths: None,
        models: None,
    };
    let mut it = argv.iter().peekable();
    let mut positionals: Vec<&String> = Vec::new();

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "help" | "--help" | "-h" => return Err(ArgError::Help),
            "--version" | "-V" => return Err(ArgError::Version),
            "--quick" => p.quick = true,
            "--ha" => p.ha = true,
            s if s.starts_with("--") => {
                let (name, value) = match s.split_once('=') {
                    Some((n, v)) => (n.to_owned(), v.to_owned()),
                    None => {
                        let v = it
                            .next()
                            .ok_or_else(|| ArgError::Bad(format!("flag {s} expects a value")))?;
                        (s.to_owned(), v.clone())
                    }
                };
                apply_flag(&mut p, &name, &value)?;
            }
            _ => positionals.push(arg),
        }
    }

    match positionals.len() {
        0 => Err(ArgError::Help),
        1 => {
            p.command = positionals[0].clone();
            Ok(p)
        }
        _ => Err(ArgError::Bad(format!(
            "expected one subcommand, got {:?} and {:?}",
            positionals[0], positionals[1]
        ))),
    }
}

fn apply_flag(p: &mut Parsed, name: &str, value: &str) -> Result<(), ArgError> {
    fn num<T: FromStr>(name: &str, value: &str) -> Result<T, ArgError> {
        value
            .parse()
            .map_err(|_| ArgError::Bad(format!("flag {name} expects a number, got {value:?}")))
    }
    match name {
        "--insts" => {
            let n: u64 = num(name, value)?;
            if n == 0 {
                return Err(ArgError::Bad("--insts must be at least 1".to_owned()));
            }
            p.insts = Some(n);
        }
        "--seed" => p.seed = Some(num(name, value)?),
        "--jobs" => {
            let n: usize = num(name, value)?;
            if n == 0 {
                return Err(ArgError::Bad("--jobs must be at least 1".to_owned()));
            }
            p.jobs = Some(n);
        }
        "--format" => p.format = Format::from_str(value).map_err(ArgError::Bad)?,
        "--workloads" => p.workloads = Some(value.to_owned()),
        "--kernel" | "--kernels" => p.kernels = Some(value.to_owned()),
        "--ucores" => p.ucores = Some(value.to_owned()),
        "--filter-width" | "--filter-widths" => p.filter_widths = Some(value.to_owned()),
        "--model" | "--models" => p.models = Some(value.to_owned()),
        other => {
            return Err(ArgError::Bad(format!("unknown flag {other}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let p = parse(&args("fig7a --insts 2000 --jobs 4 --format csv")).unwrap();
        assert_eq!(p.command, "fig7a");
        assert_eq!(p.insts, Some(2000));
        assert_eq!(p.jobs, Some(4));
        assert_eq!(p.format, Format::Csv);
    }

    #[test]
    fn equals_syntax_and_sweep_flags() {
        let p = parse(&args("sweep --kernel=asan,pmc --ucores=2,4 --ha --quick")).unwrap();
        assert_eq!(p.command, "sweep");
        assert_eq!(p.kernels.as_deref(), Some("asan,pmc"));
        assert_eq!(p.ucores.as_deref(), Some("2,4"));
        assert!(p.ha);
        assert!(p.quick);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            parse(&args("fig7a --insts")),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse(&args("fig7a --insts banana")),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse(&args("fig7a --jobs 0")),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse(&args("fig7a --wat 1")),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(parse(&args("a b")), Err(ArgError::Bad(_))));
    }

    #[test]
    fn help_and_version_escapes() {
        assert!(matches!(parse(&args("")), Err(ArgError::Help)));
        assert!(matches!(parse(&args("--help")), Err(ArgError::Help)));
        assert!(matches!(parse(&args("fig7a -h")), Err(ArgError::Help)));
        assert!(matches!(parse(&args("--version")), Err(ArgError::Version)));
    }
}
