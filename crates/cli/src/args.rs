//! Hand-rolled argument parsing for the `fireguard` CLI.
//!
//! The container is offline-vendored, so no `clap`: a small parser that
//! supports `--flag value` and `--flag=value`, one- and two-word
//! subcommands (`fig7a`, `trace record`), and `help`/`--help`/`-h`/
//! `--version` escapes. Every flag has an explicit *scope* — the
//! subcommands it applies to — and out-of-scope flags are rejected with a
//! message, never silently ignored.

use fireguard_soc::Format;
use std::str::FromStr;

/// Parse failure modes.
#[derive(Debug)]
pub enum ArgError {
    /// The user asked for usage text.
    Help,
    /// The user asked for the version.
    Version,
    /// A real error, with a message for stderr.
    Bad(String),
}

/// The parsed command line.
#[derive(Debug, Default)]
pub struct Parsed {
    /// The subcommand (figure name, `sweep`, `list`, `serve`, `client`,
    /// `loadgen`, `trace record`, or `trace replay`).
    pub command: String,
    /// `--insts N` override.
    pub insts: Option<u64>,
    /// `--seed N` override.
    pub seed: Option<u64>,
    /// `--jobs N` override (sweep workers / loadgen concurrency).
    pub jobs: Option<usize>,
    /// `--quick` (30 000-instruction smoke run).
    pub quick: bool,
    /// `--format human|jsonl|csv`.
    pub format: Format,
    /// `--workloads csv|all` (sweep).
    pub workloads: Option<String>,
    /// `--kernel csv` (sweep / replay / client / loadgen).
    pub kernels: Option<String>,
    /// `--ucores csv` (sweep / replay / client / loadgen).
    pub ucores: Option<String>,
    /// `--ha`: include/select the hardware-accelerator variant.
    pub ha: bool,
    /// `--filter-width csv`.
    pub filter_widths: Option<String>,
    /// `--model csv`.
    pub models: Option<String>,
    /// `--mapper-width N` (replay / client / loadgen).
    pub mapper_width: Option<usize>,
    /// `--addr HOST:PORT` (serve / client / loadgen).
    pub addr: Option<String>,
    /// `--workers N` (serve).
    pub workers: Option<usize>,
    /// `--max-sessions N` (serve): stop after N sessions.
    pub max_sessions: Option<u64>,
    /// `--sessions N` (loadgen).
    pub sessions: Option<usize>,
    /// `--out FILE` (trace record).
    pub out: Option<String>,
    /// `--trace FILE` (trace replay / client / loadgen).
    pub trace_file: Option<String>,
    /// `--workload NAME` (trace record).
    pub workload: Option<String>,
    /// `--attacks csv` of attack kinds (trace record).
    pub attacks: Option<String>,
    /// `--attack-count N` (trace record).
    pub attack_count: Option<usize>,
    /// `--attack-start N` (trace record).
    pub attack_start: Option<u64>,
    /// `--attack-end N` (trace record).
    pub attack_end: Option<u64>,
    /// `--attack-seed N` (trace record).
    pub attack_seed: Option<u64>,
    /// `--batch N` events per frame (client / loadgen).
    pub batch: Option<usize>,
    /// `--duration SECS` (loadgen): soak until this much wall-clock.
    pub duration_secs: Option<f64>,
    /// `--bucket-ms N` (loadgen): latency-histogram window width.
    pub bucket_ms: Option<u64>,
    /// `--chaos` (loadgen): spawn a router fleet and kill backends.
    pub chaos: bool,
    /// `--routed` (loadgen): resumable ticketed sessions (router peer).
    pub routed: bool,
    /// `--backends N` (router / loadgen --chaos): spawned backend slots.
    pub backends: Option<usize>,
    /// `--backend-addrs csv` (router): route over external services.
    pub backend_addrs: Option<String>,
    /// `--backend-workers N` (router / loadgen --chaos).
    pub backend_workers: Option<usize>,
    /// `--kills N` (loadgen --chaos): scheduled backend kills.
    pub kills: Option<usize>,
    /// `--warmup N` untimed runs per bench scenario (bench).
    pub warmup: Option<usize>,
    /// `--samples N` timed runs per bench scenario (bench).
    pub samples: Option<usize>,
    /// `--scenario csv` bench scenario filter (bench).
    pub scenarios: Option<String>,
    /// `--baseline FILE`: embed this `BENCH_*.json`'s events/s (bench).
    pub baseline: Option<String>,
    /// `--check FILE`: fail on >10% events/s regression vs FILE (bench).
    pub check: Option<String>,
    /// `--idle-timeout SECS` (serve / router): reap silent connections.
    pub idle_timeout_secs: Option<f64>,
    /// `--journal-dir DIR` (router): durable session journals.
    pub journal_dir: Option<String>,
    /// `--resume-journals DIR` (router): recover crashed sessions from DIR.
    pub resume_journals: Option<String>,
    /// `--max-live-sessions N` (router): shed fresh sessions over this.
    pub max_live_sessions: Option<u64>,
    /// `--max-buffered-mb N` (router): shed when journal spill exceeds this.
    pub max_buffered_mb: Option<u64>,
    /// `--journal-tail N` (router, loadgen --chaos): in-RAM events per
    /// session journal.
    pub journal_tail: Option<usize>,
    /// `--chaos-net` (loadgen): interpose the seeded wire-fault proxy.
    pub chaos_net: bool,
    /// `--fault-every N` (loadgen / chaos-net): mean frames between faults.
    pub fault_every: Option<u64>,
    /// `--max-delay-ms N` (loadgen / chaos-net): delay-fault upper bound.
    pub max_delay_ms: Option<u64>,
    /// `--upstream HOST:PORT` (chaos-net): where the proxy forwards.
    pub upstream: Option<String>,
    /// `--metrics-addr HOST:PORT` (serve / router): live metrics endpoint.
    pub metrics_addr: Option<String>,
    /// `--trace-out FILE` (serve / router / client / loadgen): span jsonl.
    pub trace_out: Option<String>,
    /// `--profile` (bench): stage-level cycle-attribution profile.
    pub profile: bool,
    /// `--pipeline auto|N`: in-session stage-parallelism width (0 = auto).
    pub pipeline: Option<u32>,
    /// Canonical names of every flag that was actually set.
    used: Vec<&'static str>,
}

/// Marker scope for "any figure/table subcommand" (everything that is not
/// one of the named commands below).
const FIG: &str = "<figure>";

const NAMED_COMMANDS: &[&str] = &[
    "sweep",
    "list",
    "serve",
    "router",
    "client",
    "loadgen",
    "chaos-net",
    "bench",
    "stats",
    "trace record",
    "trace replay",
];

/// Flag → the subcommands it applies to.
const FLAG_SCOPES: &[(&str, &[&str])] = &[
    ("--insts", &[FIG, "sweep", "trace record", "bench"]),
    // loadgen: session-id / chaos-schedule seed (routed modes).
    // chaos-net: the per-connection fault-schedule seed.
    (
        "--seed",
        &[
            FIG,
            "sweep",
            "trace record",
            "bench",
            "loadgen",
            "chaos-net",
        ],
    ),
    ("--quick", &[FIG, "sweep", "trace record", "bench"]),
    ("--jobs", &[FIG, "sweep", "loadgen", "bench"]),
    ("--workloads", &["sweep"]),
    ("--kernel", &["sweep", "trace replay", "client", "loadgen"]),
    ("--ucores", &["sweep", "trace replay", "client", "loadgen"]),
    ("--ha", &["sweep", "trace replay", "client", "loadgen"]),
    (
        "--filter-width",
        &["sweep", "trace replay", "client", "loadgen"],
    ),
    ("--model", &["sweep", "trace replay", "client", "loadgen"]),
    ("--mapper-width", &["trace replay", "client", "loadgen"]),
    (
        "--addr",
        &["serve", "router", "client", "loadgen", "stats", "chaos-net"],
    ),
    ("--metrics-addr", &["serve", "router"]),
    (
        "--trace-out",
        &["serve", "router", "client", "loadgen", "chaos-net"],
    ),
    ("--workers", &["serve"]),
    ("--max-sessions", &["serve", "router"]),
    ("--idle-timeout", &["serve", "router"]),
    ("--journal-dir", &["router"]),
    ("--resume-journals", &["router"]),
    ("--max-live-sessions", &["router"]),
    ("--max-buffered-mb", &["router"]),
    ("--journal-tail", &["router", "loadgen"]),
    ("--chaos-net", &["loadgen"]),
    ("--fault-every", &["loadgen", "chaos-net"]),
    ("--max-delay-ms", &["loadgen", "chaos-net"]),
    ("--upstream", &["chaos-net"]),
    ("--sessions", &["loadgen"]),
    ("--duration", &["loadgen"]),
    ("--bucket-ms", &["loadgen"]),
    ("--chaos", &["loadgen"]),
    ("--routed", &["loadgen"]),
    ("--backends", &["router", "loadgen"]),
    ("--backend-addrs", &["router"]),
    ("--backend-workers", &["router", "loadgen"]),
    ("--kills", &["loadgen"]),
    ("--out", &["trace record", "bench"]),
    ("--trace", &["trace replay", "client", "loadgen"]),
    ("--workload", &["trace record"]),
    // sweep: an attack campaign per grid point, so silent workloads are
    // visible in the detections column instead of only in loadgen.
    ("--attacks", &["trace record", "sweep"]),
    ("--attack-count", &["trace record", "sweep"]),
    ("--attack-start", &["trace record", "sweep"]),
    ("--attack-end", &["trace record", "sweep"]),
    ("--attack-seed", &["trace record", "sweep"]),
    ("--batch", &["client", "loadgen"]),
    ("--warmup", &["bench"]),
    ("--samples", &["bench"]),
    ("--scenario", &["bench"]),
    ("--baseline", &["bench"]),
    ("--check", &["bench"]),
    ("--profile", &["bench"]),
    // Results are bit-identical at every width, so the flag is a pure
    // wall-clock knob on every path that runs an engine locally.
    (
        "--pipeline",
        &[FIG, "sweep", "trace replay", "serve", "bench"],
    ),
    // --format applies everywhere.
];

impl Parsed {
    /// The used flags that do not apply to `self.command`, by name — so
    /// commands can reject them instead of silently ignoring them.
    pub fn out_of_scope_flags(&self) -> Vec<&'static str> {
        let cmd = self.command.as_str();
        let is_figure = !NAMED_COMMANDS.contains(&cmd);
        self.used
            .iter()
            .filter(|name| {
                let Some((_, scope)) = FLAG_SCOPES.iter().find(|(n, _)| n == *name) else {
                    return false; // unscoped flags (e.g. --format) apply anywhere
                };
                !scope.iter().any(|s| *s == cmd || (*s == FIG && is_figure))
            })
            .copied()
            .collect()
    }
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Parsed, ArgError> {
    let mut p = Parsed {
        format: Format::Human,
        ..Parsed::default()
    };
    let mut it = argv.iter().peekable();
    let mut positionals: Vec<&String> = Vec::new();

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "help" | "--help" | "-h" => return Err(ArgError::Help),
            "--version" | "-V" => return Err(ArgError::Version),
            "--quick" => {
                p.quick = true;
                p.used.push("--quick");
            }
            "--ha" => {
                p.ha = true;
                p.used.push("--ha");
            }
            "--chaos" => {
                p.chaos = true;
                p.used.push("--chaos");
            }
            "--chaos-net" => {
                p.chaos_net = true;
                p.used.push("--chaos-net");
            }
            "--routed" => {
                p.routed = true;
                p.used.push("--routed");
            }
            "--profile" => {
                p.profile = true;
                p.used.push("--profile");
            }
            s if s.starts_with("--") => {
                let (name, value) = match s.split_once('=') {
                    Some((n, v)) => (n.to_owned(), v.to_owned()),
                    None => {
                        let v = it
                            .next()
                            .ok_or_else(|| ArgError::Bad(format!("flag {s} expects a value")))?;
                        (s.to_owned(), v.clone())
                    }
                };
                apply_flag(&mut p, &name, &value)?;
            }
            _ => positionals.push(arg),
        }
    }

    match positionals.as_slice() {
        [] => Err(ArgError::Help),
        [cmd] if cmd.as_str() == "trace" => Err(ArgError::Bad(
            "trace expects a sub-subcommand: `fireguard trace record` or `fireguard trace replay`"
                .to_owned(),
        )),
        [cmd] => {
            p.command = (*cmd).clone();
            Ok(p)
        }
        [cmd, sub] if cmd.as_str() == "trace" => match sub.as_str() {
            "record" | "replay" => {
                p.command = format!("trace {sub}");
                Ok(p)
            }
            other => Err(ArgError::Bad(format!(
                "unknown trace subcommand {other:?} (expected record or replay)"
            ))),
        },
        [a, b, ..] => Err(ArgError::Bad(format!(
            "expected one subcommand, got {a:?} and {b:?}"
        ))),
    }
}

fn apply_flag(p: &mut Parsed, name: &str, value: &str) -> Result<(), ArgError> {
    fn num<T: FromStr>(name: &str, value: &str) -> Result<T, ArgError> {
        value
            .parse()
            .map_err(|_| ArgError::Bad(format!("flag {name} expects a number, got {value:?}")))
    }
    fn positive(name: &str, value: &str) -> Result<usize, ArgError> {
        let n: usize = num(name, value)?;
        if n == 0 {
            return Err(ArgError::Bad(format!("{name} must be at least 1")));
        }
        Ok(n)
    }
    let canonical = match name {
        "--insts" => {
            let n: u64 = num(name, value)?;
            if n == 0 {
                return Err(ArgError::Bad("--insts must be at least 1".to_owned()));
            }
            p.insts = Some(n);
            "--insts"
        }
        "--seed" => {
            p.seed = Some(num(name, value)?);
            "--seed"
        }
        "--jobs" => {
            p.jobs = Some(positive(name, value)?);
            "--jobs"
        }
        "--format" => {
            p.format = Format::from_str(value).map_err(ArgError::Bad)?;
            return Ok(()); // applies to every subcommand; not scope-tracked
        }
        "--workloads" => {
            p.workloads = Some(value.to_owned());
            "--workloads"
        }
        "--kernel" | "--kernels" => {
            p.kernels = Some(value.to_owned());
            "--kernel"
        }
        "--ucores" => {
            p.ucores = Some(value.to_owned());
            "--ucores"
        }
        "--filter-width" | "--filter-widths" => {
            p.filter_widths = Some(value.to_owned());
            "--filter-width"
        }
        "--model" | "--models" => {
            p.models = Some(value.to_owned());
            "--model"
        }
        "--mapper-width" => {
            p.mapper_width = Some(positive(name, value)?);
            "--mapper-width"
        }
        "--addr" => {
            p.addr = Some(value.to_owned());
            "--addr"
        }
        "--workers" => {
            p.workers = Some(positive(name, value)?);
            "--workers"
        }
        "--max-sessions" => {
            p.max_sessions = Some(num(name, value)?);
            "--max-sessions"
        }
        "--sessions" => {
            p.sessions = Some(positive(name, value)?);
            "--sessions"
        }
        "--out" => {
            p.out = Some(value.to_owned());
            "--out"
        }
        "--trace" => {
            p.trace_file = Some(value.to_owned());
            "--trace"
        }
        "--workload" => {
            p.workload = Some(value.to_owned());
            "--workload"
        }
        "--attacks" => {
            p.attacks = Some(value.to_owned());
            "--attacks"
        }
        "--attack-count" => {
            p.attack_count = Some(positive(name, value)?);
            "--attack-count"
        }
        "--attack-start" => {
            p.attack_start = Some(num(name, value)?);
            "--attack-start"
        }
        "--attack-end" => {
            p.attack_end = Some(num(name, value)?);
            "--attack-end"
        }
        "--attack-seed" => {
            p.attack_seed = Some(num(name, value)?);
            "--attack-seed"
        }
        "--batch" => {
            p.batch = Some(positive(name, value)?);
            "--batch"
        }
        "--duration" => {
            let secs: f64 = num(name, value)?;
            if secs <= 0.0 || !secs.is_finite() {
                return Err(ArgError::Bad(
                    "--duration must be a positive number of seconds".to_owned(),
                ));
            }
            p.duration_secs = Some(secs);
            "--duration"
        }
        "--bucket-ms" => {
            let ms: u64 = num(name, value)?;
            if ms == 0 {
                return Err(ArgError::Bad("--bucket-ms must be at least 1".to_owned()));
            }
            p.bucket_ms = Some(ms);
            "--bucket-ms"
        }
        "--backends" => {
            p.backends = Some(positive(name, value)?);
            "--backends"
        }
        "--backend-addrs" => {
            p.backend_addrs = Some(value.to_owned());
            "--backend-addrs"
        }
        "--backend-workers" => {
            p.backend_workers = Some(positive(name, value)?);
            "--backend-workers"
        }
        "--kills" => {
            p.kills = Some(num(name, value)?);
            "--kills"
        }
        "--warmup" => {
            p.warmup = Some(num(name, value)?);
            "--warmup"
        }
        "--samples" => {
            p.samples = Some(positive(name, value)?);
            "--samples"
        }
        "--scenario" | "--scenarios" => {
            p.scenarios = Some(value.to_owned());
            "--scenario"
        }
        "--baseline" => {
            p.baseline = Some(value.to_owned());
            "--baseline"
        }
        "--check" => {
            p.check = Some(value.to_owned());
            "--check"
        }
        "--idle-timeout" => {
            let secs: f64 = num(name, value)?;
            if secs <= 0.0 || !secs.is_finite() {
                return Err(ArgError::Bad(
                    "--idle-timeout must be a positive number of seconds".to_owned(),
                ));
            }
            p.idle_timeout_secs = Some(secs);
            "--idle-timeout"
        }
        "--journal-dir" => {
            p.journal_dir = Some(value.to_owned());
            "--journal-dir"
        }
        "--resume-journals" => {
            p.resume_journals = Some(value.to_owned());
            "--resume-journals"
        }
        "--max-live-sessions" => {
            p.max_live_sessions = Some(num(name, value)?);
            "--max-live-sessions"
        }
        "--max-buffered-mb" => {
            let mb: u64 = num(name, value)?;
            if mb == 0 {
                return Err(ArgError::Bad(
                    "--max-buffered-mb must be at least 1".to_owned(),
                ));
            }
            p.max_buffered_mb = Some(mb);
            "--max-buffered-mb"
        }
        "--journal-tail" => {
            p.journal_tail = Some(positive(name, value)?);
            "--journal-tail"
        }
        "--fault-every" => {
            p.fault_every = Some(num(name, value)?);
            "--fault-every"
        }
        "--max-delay-ms" => {
            p.max_delay_ms = Some(num(name, value)?);
            "--max-delay-ms"
        }
        "--upstream" => {
            p.upstream = Some(value.to_owned());
            "--upstream"
        }
        "--metrics-addr" => {
            p.metrics_addr = Some(value.to_owned());
            "--metrics-addr"
        }
        "--pipeline" => {
            // `auto` (or 0) sizes the stage pipeline to the host CPU
            // count; N pins the width. Parity holds at every width, so
            // any spelling is safe.
            p.pipeline = Some(if value.eq_ignore_ascii_case("auto") {
                0
            } else {
                num(name, value)?
            });
            "--pipeline"
        }
        "--trace-out" => {
            p.trace_out = Some(value.to_owned());
            "--trace-out"
        }
        other => {
            return Err(ArgError::Bad(format!("unknown flag {other}")));
        }
    };
    p.used.push(canonical);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let p = parse(&args("fig7a --insts 2000 --jobs 4 --format csv")).unwrap();
        assert_eq!(p.command, "fig7a");
        assert_eq!(p.insts, Some(2000));
        assert_eq!(p.jobs, Some(4));
        assert_eq!(p.format, Format::Csv);
        assert!(p.out_of_scope_flags().is_empty());
    }

    #[test]
    fn equals_syntax_and_sweep_flags() {
        let p = parse(&args("sweep --kernel=asan,pmc --ucores=2,4 --ha --quick")).unwrap();
        assert_eq!(p.command, "sweep");
        assert_eq!(p.kernels.as_deref(), Some("asan,pmc"));
        assert_eq!(p.ucores.as_deref(), Some("2,4"));
        assert!(p.ha);
        assert!(p.quick);
        assert!(p.out_of_scope_flags().is_empty());
    }

    #[test]
    fn two_word_trace_subcommands() {
        let p = parse(&args(
            "trace record --workload x264 --out /tmp/x.fgt --insts 2000",
        ))
        .unwrap();
        assert_eq!(p.command, "trace record");
        assert_eq!(p.workload.as_deref(), Some("x264"));
        assert_eq!(p.out.as_deref(), Some("/tmp/x.fgt"));
        assert!(p.out_of_scope_flags().is_empty());

        let p = parse(&args("trace replay --trace /tmp/x.fgt --kernel asan")).unwrap();
        assert_eq!(p.command, "trace replay");
        assert_eq!(p.trace_file.as_deref(), Some("/tmp/x.fgt"));

        assert!(matches!(parse(&args("trace")), Err(ArgError::Bad(_))));
        assert!(matches!(parse(&args("trace rm")), Err(ArgError::Bad(_))));
    }

    #[test]
    fn service_flags_parse() {
        let p = parse(&args(
            "loadgen --addr 127.0.0.1:4780 --sessions 4 --trace t.fgt --batch 256",
        ))
        .unwrap();
        assert_eq!(p.command, "loadgen");
        assert_eq!(p.addr.as_deref(), Some("127.0.0.1:4780"));
        assert_eq!(p.sessions, Some(4));
        assert_eq!(p.batch, Some(256));
        assert!(p.out_of_scope_flags().is_empty());
    }

    #[test]
    fn router_and_chaos_flags_parse() {
        let p = parse(&args(
            "router --addr 127.0.0.1:0 --backends 3 --backend-workers 2 --max-sessions 8",
        ))
        .unwrap();
        assert_eq!(p.command, "router");
        assert_eq!(p.backends, Some(3));
        assert_eq!(p.backend_workers, Some(2));
        assert_eq!(p.max_sessions, Some(8));
        assert!(p.out_of_scope_flags().is_empty());

        let p = parse(&args(
            "loadgen --trace t.fgt --sessions 8 --chaos --kills 4 --duration 2.5 \
             --bucket-ms 250 --seed 11 --backends 2",
        ))
        .unwrap();
        assert!(p.chaos);
        assert_eq!(p.kills, Some(4));
        assert_eq!(p.duration_secs, Some(2.5));
        assert_eq!(p.bucket_ms, Some(250));
        assert_eq!(p.seed, Some(11));
        assert!(p.out_of_scope_flags().is_empty());

        let p = parse(&args("loadgen --trace t.fgt --routed --addr 127.0.0.1:9")).unwrap();
        assert!(p.routed);
        assert!(p.out_of_scope_flags().is_empty());
    }

    #[test]
    fn telemetry_flags_parse_and_have_scopes() {
        let p = parse(&args(
            "serve --addr 127.0.0.1:0 --metrics-addr 127.0.0.1:9900 --trace-out /tmp/s.jsonl",
        ))
        .unwrap();
        assert_eq!(p.metrics_addr.as_deref(), Some("127.0.0.1:9900"));
        assert_eq!(p.trace_out.as_deref(), Some("/tmp/s.jsonl"));
        assert!(p.out_of_scope_flags().is_empty());

        let p = parse(&args("stats --addr 127.0.0.1:9900,127.0.0.1:9901")).unwrap();
        assert_eq!(p.command, "stats");
        assert!(p.out_of_scope_flags().is_empty());

        let p = parse(&args("bench --profile --quick")).unwrap();
        assert!(p.profile);
        assert!(p.out_of_scope_flags().is_empty());

        // --metrics-addr is a serve/router flag; --profile is bench-only.
        let p = parse(&args("client --trace t.fgt --metrics-addr 127.0.0.1:9")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--metrics-addr"]);
        let p = parse(&args("serve --profile")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--profile"]);

        // sweep accepts an attack campaign now; trace-out does not apply.
        let p = parse(&args("sweep --attacks ret-hijack --attack-count 6")).unwrap();
        assert!(p.out_of_scope_flags().is_empty());
        let p = parse(&args("sweep --trace-out /tmp/x.jsonl")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--trace-out"]);
    }

    #[test]
    fn router_flags_have_scopes() {
        let p = parse(&args("serve --backends 2")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--backends"]);
        let p = parse(&args("client --trace t.fgt --chaos")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--chaos"]);
        let p = parse(&args("loadgen --trace t.fgt --backend-addrs a:1")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--backend-addrs"]);
        assert!(matches!(
            parse(&args("loadgen --duration 0")),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse(&args("loadgen --bucket-ms 0")),
            Err(ArgError::Bad(_))
        ));
    }

    #[test]
    fn robustness_flags_parse_and_have_scopes() {
        let p = parse(&args(
            "router --journal-dir /tmp/j --max-live-sessions 64 --max-buffered-mb 128 \
             --journal-tail 4096 --idle-timeout 2.5",
        ))
        .unwrap();
        assert_eq!(p.journal_dir.as_deref(), Some("/tmp/j"));
        assert_eq!(p.max_live_sessions, Some(64));
        assert_eq!(p.max_buffered_mb, Some(128));
        assert_eq!(p.journal_tail, Some(4096));
        assert_eq!(p.idle_timeout_secs, Some(2.5));
        assert!(p.out_of_scope_flags().is_empty());

        let p = parse(&args("router --resume-journals /tmp/j")).unwrap();
        assert_eq!(p.resume_journals.as_deref(), Some("/tmp/j"));
        assert!(p.out_of_scope_flags().is_empty());

        let p = parse(&args(
            "chaos-net --upstream 127.0.0.1:4781 --addr 127.0.0.1:0 \
             --seed 9 --fault-every 32 --max-delay-ms 3",
        ))
        .unwrap();
        assert_eq!(p.command, "chaos-net");
        assert_eq!(p.upstream.as_deref(), Some("127.0.0.1:4781"));
        assert_eq!(p.fault_every, Some(32));
        assert_eq!(p.max_delay_ms, Some(3));
        assert!(p.out_of_scope_flags().is_empty());

        let p = parse(&args(
            "loadgen --trace t.fgt --chaos --chaos-net --fault-every 48",
        ))
        .unwrap();
        assert!(p.chaos && p.chaos_net);
        assert!(p.out_of_scope_flags().is_empty());

        // Journal/admission flags are router-only; --upstream is
        // chaos-net-only; --chaos-net belongs to loadgen.
        let p = parse(&args("serve --journal-dir /tmp/j")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--journal-dir"]);
        let p = parse(&args("serve --max-live-sessions 4")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--max-live-sessions"]);
        let p = parse(&args("loadgen --trace t.fgt --upstream a:1")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--upstream"]);
        let p = parse(&args("client --trace t.fgt --chaos-net")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--chaos-net"]);
        assert!(matches!(
            parse(&args("serve --idle-timeout 0")),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse(&args("router --max-buffered-mb 0")),
            Err(ArgError::Bad(_))
        ));
    }

    #[test]
    fn pipeline_flag_parses_and_has_scopes() {
        let p = parse(&args("fig7a --pipeline 4")).unwrap();
        assert_eq!(p.pipeline, Some(4));
        assert!(p.out_of_scope_flags().is_empty());
        let p = parse(&args("trace replay --trace t.fgt --pipeline auto")).unwrap();
        assert_eq!(p.pipeline, Some(0));
        assert!(p.out_of_scope_flags().is_empty());
        let p = parse(&args("serve --pipeline 1")).unwrap();
        assert!(p.out_of_scope_flags().is_empty());
        let p = parse(&args("bench --pipeline=2 --quick")).unwrap();
        assert_eq!(p.pipeline, Some(2));
        assert!(p.out_of_scope_flags().is_empty());
        // Sessions negotiate their own config over the wire; the client
        // side has no local engine, so the flag does not apply there.
        let p = parse(&args("client --trace t.fgt --pipeline 2")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--pipeline"]);
        assert!(matches!(
            parse(&args("fig7a --pipeline banana")),
            Err(ArgError::Bad(_))
        ));
    }

    #[test]
    fn scope_violations_are_reported() {
        let p = parse(&args("fig10 --ucores 8,12 --insts 2000")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--ucores"]);
        let p = parse(&args("serve --sessions 4")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--sessions"]);
        let p = parse(&args("trace replay --trace t.fgt --insts 5")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--insts"]);
        let p = parse(&args("client --workloads all --trace t.fgt")).unwrap();
        assert_eq!(p.out_of_scope_flags(), vec!["--workloads"]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            parse(&args("fig7a --insts")),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse(&args("fig7a --insts banana")),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse(&args("fig7a --jobs 0")),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(
            parse(&args("fig7a --wat 1")),
            Err(ArgError::Bad(_))
        ));
        assert!(matches!(parse(&args("a b")), Err(ArgError::Bad(_))));
        assert!(matches!(
            parse(&args("loadgen --sessions 0")),
            Err(ArgError::Bad(_))
        ));
    }

    #[test]
    fn help_and_version_escapes() {
        assert!(matches!(parse(&args("")), Err(ArgError::Help)));
        assert!(matches!(parse(&args("--help")), Err(ArgError::Help)));
        assert!(matches!(parse(&args("fig7a -h")), Err(ArgError::Help)));
        assert!(matches!(parse(&args("--version")), Err(ArgError::Version)));
    }
}
