//! The `fireguard bench` subcommand: run the performance-scenario
//! registry, render a report, optionally write a `BENCH_*.json` baseline
//! (`--out`), and optionally gate against a committed one (`--check`).

use crate::args::Parsed;
use fireguard_bench::perf::{self, PerfOpts};
use fireguard_soc::render;

/// Runs `fireguard bench`; returns the process exit code.
pub fn bench_cmd(p: &Parsed) -> i32 {
    let env = PerfOpts::from_env();
    let opts = PerfOpts {
        insts: p.insts.unwrap_or(if p.quick {
            fireguard_bench::QUICK_INSTS
        } else {
            env.insts
        }),
        seed: p.seed.unwrap_or(env.seed),
        workers: p.jobs.unwrap_or(env.workers),
        warmup: p.warmup.unwrap_or(env.warmup),
        samples: p.samples.unwrap_or(env.samples),
        pipeline: p.pipeline.unwrap_or(env.pipeline),
    };
    if p.profile {
        // The profile is a focused stage-attribution report, not a scenario
        // run: the baseline/gate machinery doesn't apply to it.
        for (flag, given) in [
            ("--scenario", p.scenarios.is_some()),
            ("--out", p.out.is_some()),
            ("--baseline", p.baseline.is_some()),
            ("--check", p.check.is_some()),
        ] {
            if given {
                eprintln!("fireguard: {flag} does not combine with bench --profile");
                return 2;
            }
        }
        let report = perf::profile_report(&opts);
        let stdout = std::io::stdout();
        return match render(&report, p.format, &mut stdout.lock()) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("fireguard: writing output failed: {e}");
                1
            }
        };
    }

    let names: Vec<String> = p
        .scenarios
        .as_deref()
        .map(|csv| csv.split(',').map(|s| s.trim().to_owned()).collect())
        .unwrap_or_default();

    let results = match perf::run_scenarios(&opts, &names) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("fireguard: {msg}");
            return 2;
        }
    };

    // Baseline events/s to embed in --out and the speedup column: --baseline
    // takes precedence; otherwise the --check file doubles as the reference.
    let reference = p.baseline.as_deref().or(p.check.as_deref());
    let baseline = match reference {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(json) => {
                let b = perf::parse_baseline(&json);
                if b.is_empty() {
                    eprintln!("fireguard: no scenarios found in {path}");
                    return 2;
                }
                Some(b)
            }
            Err(e) => {
                eprintln!("fireguard: cannot read {path}: {e}");
                return 2;
            }
        },
        None => None,
    };

    let report = perf::report(&opts, &results, baseline.as_deref());
    let stdout = std::io::stdout();
    if let Err(e) = render(&report, p.format, &mut stdout.lock()) {
        eprintln!("fireguard: writing output failed: {e}");
        return 1;
    }

    if let Some(path) = p.out.as_deref() {
        let json = perf::to_json(&opts, &results, baseline.as_deref());
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("fireguard: cannot write {path}: {e}");
            return 1;
        }
        eprintln!("fireguard: wrote {path}");
    }

    if let Some(path) = p.check.as_deref() {
        // The gate always compares against the --check file itself, even
        // when a different --baseline was embedded in the report above.
        let gate = match std::fs::read_to_string(path) {
            Ok(json) => {
                // A baseline recorded at a different pipeline width or on
                // a host with a different CPU count is still a legal gate
                // (events/s tolerates 10% noise), but the comparison must
                // be visible, never silent.
                if let Some((bp, bc)) = perf::parse_host_meta(&json) {
                    if bp != opts.pipeline || bc != perf::host_cpus() {
                        eprintln!(
                            "fireguard: note: {path} was recorded at pipeline {bp} on \
                             {bc} host cpus; this run is pipeline {} on {}",
                            opts.pipeline,
                            perf::host_cpus()
                        );
                    }
                }
                perf::parse_baseline(&json)
            }
            Err(e) => {
                eprintln!("fireguard: cannot read {path}: {e}");
                return 2;
            }
        };
        if let Err(msg) = perf::check_against(&results, &gate) {
            eprintln!("fireguard: bench regression gate FAILED:\n{msg}");
            return 1;
        }
        eprintln!("fireguard: bench regression gate passed");
    }
    0
}
