//! Commit-order kernel semantics (the exact, golden side of each kernel).
//!
//! [`Semantics::judge`] is called once per committed, subscribed
//! instruction, in program order. It updates kernel state (allocations,
//! quarantine, shadow stack, counters, taint, memory tags) and returns
//! whether this instruction violates the kernel's policy — the verdict bit
//! the µ-programs later branch on.
//!
//! Each registered kernel ships its own state machine in its plugin module
//! (see [`crate::plugins`]); this module holds the trait they implement
//! plus the region-tracking helpers the heap-watching kernels share.

use fireguard_trace::{EventBatch, TraceInst};
use std::collections::BTreeMap;

/// A commit-order kernel state machine.
///
/// Obtained fresh from [`crate::KernelSpec::semantics`]; the SoC frontend
/// owns one per deployed kernel and judges every committing instruction
/// through it. Implementations must be **pure functions of the event
/// stream**: no wall-clock, no OS randomness — the determinism contract
/// every golden test and `.fgt` replay is built on.
///
/// `Send` is a supertrait so a judging stage can run on a pipeline worker
/// thread ahead of the core; state machines are plain owned data, never
/// shared handles.
pub trait Semantics: std::fmt::Debug + Send {
    /// Judges one committed instruction in program order; returns `true`
    /// when it violates this kernel's policy.
    fn judge(&mut self, t: &TraceInst) -> bool;

    /// Judges a seq-ordered batch, OR-ing `1 << vbit` into `out[i]` for
    /// each violating event — the data-oriented form of [`Self::judge`].
    ///
    /// The default walks the batch through `judge` one event at a time;
    /// because trait defaults are instantiated per implementation, that
    /// loop is monomorphic (no per-event virtual dispatch). Hot kernels
    /// override it with branchless column scans over the batch's
    /// structure-of-arrays fields. Every override must stay bit-identical
    /// to the default — the registry conformance suite checks each
    /// registered kernel's batched verdicts against serial `judge`.
    fn judge_batch(&mut self, batch: &EventBatch, vbit: u8, out: &mut [u8]) {
        let bit = 1u8 << vbit;
        for (o, t) in out.iter_mut().zip(batch.events()) {
            if self.judge(t) {
                *o |= bit;
            }
        }
    }
}

/// Batched judging for the heap-bounds kernels (ASan, UaF, MTE): they all
/// fast-reject addresses outside a `[lo, hi)` bound that only heap events
/// can widen. Heap events delimit spans of constant bounds, so within a
/// span the candidate filter is a branchless compare over the batch's
/// `addr` column; only candidates (and the heap events themselves) take
/// the exact `judge` path. The filter condition is *exactly* the serial
/// fast path (`NO_ADDR` fails `a < hi` like any other out-of-bounds
/// address), so the verdicts are bit-identical by construction.
pub(crate) fn judge_batch_bounded<S: Semantics>(
    s: &mut S,
    bounds_of: impl Fn(&S) -> (u64, u64),
    batch: &EventBatch,
    bit: u8,
    out: &mut [u8],
) {
    let n = batch.len();
    let events = batch.events();
    let mut i = 0;
    while i < n {
        if batch.heap[i] {
            if s.judge(&events[i]) {
                out[i] |= bit;
            }
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < n && !batch.heap[j] {
            j += 1;
        }
        let (lo, hi) = bounds_of(s);
        for k in i..j {
            let a = batch.addr[k];
            if a >= lo && a < hi && s.judge(&events[k]) {
                out[k] |= bit;
            }
        }
        i = j;
    }
}

/// Widens a `[lo, hi)` tracking bound to cover `[base - slack,
/// base + size + slack)`.
pub(crate) fn widen(bounds: &mut (u64, u64), base: u64, size: u64, slack: u64) {
    bounds.0 = bounds.0.min(base.saturating_sub(slack));
    bounds.1 = bounds
        .1
        .max(base.saturating_add(size).saturating_add(slack));
}

/// True when `addr` falls inside a `[base, base + size + slack)` region of
/// the map (keyed by base, valued by size).
pub(crate) fn region_contains(map: &BTreeMap<u64, u64>, addr: u64, slack: u64) -> bool {
    match map.range(..=addr).next_back() {
        Some((&base, &size)) => addr < base + size + slack,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::KernelId;
    use fireguard_trace::{
        AttackKind, AttackPlan, AttackingTrace, TraceGenerator, WorkloadProfile,
    };

    #[test]
    fn verdicts_match_injected_ground_truth_end_to_end() {
        // Run all four paper kernels over an attacked dedup trace: every
        // injected attack must be judged a violation by the responsible
        // kernel, and natural instructions must never be flagged by SS/PMC
        // (ASan/UaF naturals are exact too, by generator construction).
        let plan = AttackPlan::campaign(
            &[
                AttackKind::RetHijack,
                AttackKind::OutOfBounds,
                AttackKind::UseAfterFree,
                AttackKind::BoundsViolation,
            ],
            40,
            50_000,
            250_000,
            7,
        );
        let g = TraceGenerator::new(WorkloadProfile::parsec("dedup").unwrap(), 11);
        let mut trace = AttackingTrace::new(g, plan);
        let mut pmc = KernelId::PMC.semantics();
        let mut ss = KernelId::SHADOW_STACK.semantics();
        let mut asan = KernelId::ASAN.semantics();
        let mut uaf = KernelId::UAF.semantics();
        let mut detected = 0;
        let mut materialised = 0;
        for t in trace.by_ref().take(400_000) {
            let v_pmc = pmc.judge(&t);
            let v_ss = ss.judge(&t);
            let v_asan = asan.judge(&t);
            let v_uaf = uaf.judge(&t);
            if t.attack.is_some() {
                materialised += 1;
            }
            match t.attack {
                Some(AttackKind::RetHijack) => {
                    assert!(v_ss, "hijack at seq {}", t.seq);
                    detected += 1;
                }
                Some(AttackKind::OutOfBounds) => {
                    assert!(v_asan, "OOB at seq {}", t.seq);
                    detected += 1;
                }
                Some(AttackKind::UseAfterFree) => {
                    assert!(v_uaf && v_asan, "UaF at seq {}", t.seq);
                    detected += 1;
                }
                Some(AttackKind::BoundsViolation) => {
                    assert!(v_pmc, "bounds at seq {}", t.seq);
                    detected += 1;
                }
                None => {
                    assert!(!v_ss, "no natural SS violation at {}", t.seq);
                    assert!(!v_pmc, "no natural PMC violation at {}", t.seq);
                    assert!(!v_asan, "no natural ASan violation at {}", t.seq);
                    assert!(!v_uaf, "no natural UaF violation at {}", t.seq);
                }
            }
        }
        assert!(
            materialised >= 35,
            "most attacks materialised: {materialised}/40"
        );
        assert_eq!(
            detected, materialised,
            "every materialised attack was judged a violation"
        );
    }

    #[test]
    fn new_kernels_are_silent_on_natural_traces() {
        // The DIFT and MTE state machines derive everything from the
        // existing deterministic trace events; a natural stream must never
        // introduce taint or a tag mismatch.
        let g = TraceGenerator::new(WorkloadProfile::parsec("dedup").unwrap(), 11);
        let mut taint = KernelId::TAINT.semantics();
        let mut mte = KernelId::MTE.semantics();
        for t in g.take(300_000) {
            assert!(!taint.judge(&t), "natural taint violation at seq {}", t.seq);
            assert!(!mte.judge(&t), "natural tag mismatch at seq {}", t.seq);
        }
    }
}
