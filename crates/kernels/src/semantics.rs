//! Commit-order kernel semantics (the exact, golden side of each kernel).
//!
//! `judge` is called once per committed, subscribed instruction, in program
//! order. It updates kernel state (allocations, quarantine, shadow stack,
//! counters) and returns whether this instruction violates the kernel's
//! policy — the verdict bit the µ-programs later branch on.

use fireguard_isa::InstClass;
use fireguard_trace::{gen, HeapEvent, TraceInst};
use std::collections::BTreeMap;

/// Red-zone span checked around each allocation (matches the generator).
const REDZONE: u64 = gen::REDZONE_BYTES;
/// Quarantine capacity before MineSweeper-style sweeps release regions.
const QUARANTINE_CAP: usize = 4096;

/// Commit-order semantic state for one kernel instance.
#[derive(Debug, Clone)]
pub enum KernelSemantics {
    /// Custom performance counter with bounds check: counts per-class
    /// events and flags accesses inside the protected region.
    Pmc {
        /// Per-class event counters.
        counts: [u64; InstClass::COUNT],
        /// Protected region `[base, base+size)`.
        region: (u64, u64),
    },
    /// Shadow stack: calls push `pc+4`, returns must match.
    ShadowStack {
        /// The golden shadow stack.
        stack: Vec<u64>,
    },
    /// AddressSanitizer: red zones around live allocations plus freed
    /// regions are poisoned.
    Asan {
        /// Live allocations: base → size.
        live: BTreeMap<u64, u64>,
        /// Poisoned freed regions: base → size.
        freed: BTreeMap<u64, u64>,
        /// `[lo, hi)` bound over everything ever tracked (red zones
        /// included). Never shrinks, so an address outside it provably
        /// cannot match and the per-access tree walks are skipped — the
        /// overwhelming majority of traffic is stack/global, far from
        /// any heap allocation.
        bounds: (u64, u64),
    },
    /// MineSweeper-style use-after-free detection: freed regions are
    /// quarantined; accesses into quarantine are violations; sweeps
    /// periodically release quarantine (costing µcore work elsewhere).
    Uaf {
        /// Quarantined regions: base → size.
        quarantine: BTreeMap<u64, u64>,
        /// `[lo, hi)` bound over every region ever quarantined (never
        /// shrinks); see the identical fast path in the ASan arm.
        bounds: (u64, u64),
        /// Frees since the last sweep.
        frees_since_sweep: u64,
        /// Total sweeps performed.
        sweeps: u64,
    },
}

impl KernelSemantics {
    /// Fresh PMC state protecting the generator's PMC region.
    pub fn pmc() -> Self {
        KernelSemantics::Pmc {
            counts: [0; InstClass::COUNT],
            region: (gen::PMC_REGION_BASE, gen::PMC_REGION_SIZE),
        }
    }

    /// Fresh shadow-stack state.
    pub fn shadow_stack() -> Self {
        KernelSemantics::ShadowStack { stack: Vec::new() }
    }

    /// Fresh AddressSanitizer state.
    pub fn asan() -> Self {
        KernelSemantics::Asan {
            live: BTreeMap::new(),
            freed: BTreeMap::new(),
            bounds: (u64::MAX, 0),
        }
    }

    /// Fresh use-after-free state.
    pub fn uaf() -> Self {
        KernelSemantics::Uaf {
            quarantine: BTreeMap::new(),
            bounds: (u64::MAX, 0),
            frees_since_sweep: 0,
            sweeps: 0,
        }
    }

    /// Judges one committed instruction in program order; returns `true`
    /// when it violates this kernel's policy.
    pub fn judge(&mut self, t: &TraceInst) -> bool {
        match self {
            KernelSemantics::Pmc { counts, region } => {
                counts[t.class.index()] += 1;
                match t.mem_addr {
                    Some(a) => a >= region.0 && a < region.0 + region.1,
                    None => false,
                }
            }
            KernelSemantics::ShadowStack { stack } => match t.class {
                InstClass::Call => {
                    if stack.len() < 1 << 16 {
                        stack.push(t.pc + 4);
                    }
                    false
                }
                InstClass::Ret => {
                    let expected = stack.pop();
                    let actual = t.control.map(|c| c.target);
                    expected.is_some() && actual.is_some() && expected != actual
                }
                _ => false,
            },
            KernelSemantics::Asan {
                live,
                freed,
                bounds,
            } => {
                match t.heap {
                    Some(HeapEvent::Malloc { base, size }) => {
                        live.insert(base, size);
                        freed.remove(&base);
                        widen(bounds, base, size, REDZONE);
                        return false;
                    }
                    Some(HeapEvent::Free { base, size }) => {
                        live.remove(&base);
                        freed.insert(base, size);
                        widen(bounds, base, size, REDZONE);
                        return false;
                    }
                    None => {}
                }
                let Some(a) = t.mem_addr else { return false };
                // Outside everything ever allocated (red zones included)
                // nothing can match: skip both tree walks.
                if a < bounds.0 || a >= bounds.1 {
                    return false;
                }
                // In a freed region?
                if region_contains(freed, a, 0) {
                    return true;
                }
                // In the red zone of a live allocation?
                if let Some((&base, &size)) = live.range(..=a + REDZONE).next_back() {
                    let in_left = a >= base.saturating_sub(REDZONE) && a < base;
                    let in_right = a >= base + size && a < base + size + REDZONE;
                    if in_left || in_right {
                        return true;
                    }
                }
                false
            }
            KernelSemantics::Uaf {
                quarantine,
                bounds,
                frees_since_sweep,
                sweeps,
            } => {
                match t.heap {
                    Some(HeapEvent::Free { base, size }) => {
                        quarantine.insert(base, size);
                        widen(bounds, base, size, 0);
                        *frees_since_sweep += 1;
                        if quarantine.len() > QUARANTINE_CAP {
                            // Sweep: release the oldest half.
                            let release: Vec<u64> = quarantine
                                .keys()
                                .take(QUARANTINE_CAP / 2)
                                .copied()
                                .collect();
                            for b in release {
                                quarantine.remove(&b);
                            }
                            *sweeps += 1;
                            *frees_since_sweep = 0;
                        }
                        return false;
                    }
                    Some(HeapEvent::Malloc { base, .. }) => {
                        quarantine.remove(&base);
                        return false;
                    }
                    None => {}
                }
                match t.mem_addr {
                    // Addresses outside every region ever quarantined
                    // cannot match; see the ASan arm's fast path.
                    Some(a) if a >= bounds.0 && a < bounds.1 => region_contains(quarantine, a, 0),
                    _ => false,
                }
            }
        }
    }

    /// Number of sweeps (UaF only; 0 otherwise).
    pub fn sweeps(&self) -> u64 {
        match self {
            KernelSemantics::Uaf { sweeps, .. } => *sweeps,
            _ => 0,
        }
    }
}

/// Widens a `[lo, hi)` tracking bound to cover `[base - slack,
/// base + size + slack)`.
fn widen(bounds: &mut (u64, u64), base: u64, size: u64, slack: u64) {
    bounds.0 = bounds.0.min(base.saturating_sub(slack));
    bounds.1 = bounds
        .1
        .max(base.saturating_add(size).saturating_add(slack));
}

fn region_contains(map: &BTreeMap<u64, u64>, addr: u64, slack: u64) -> bool {
    match map.range(..=addr).next_back() {
        Some((&base, &size)) => addr < base + size + slack,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireguard_isa::{Instruction, MemWidth};
    use fireguard_trace::{
        AttackKind, AttackPlan, AttackingTrace, ControlFlow, TraceGenerator, WorkloadProfile,
    };

    fn mem(seq: u64, addr: u64) -> TraceInst {
        let inst = Instruction::load(MemWidth::D, 1.into(), 2.into(), 0);
        TraceInst {
            seq,
            pc: 0x10000,
            class: inst.class(),
            inst,
            mem_addr: Some(addr),
            control: None,
            heap: None,
            attack: None,
        }
    }

    fn heap_call(seq: u64, ev: HeapEvent) -> TraceInst {
        let inst = Instruction::call(64);
        TraceInst {
            seq,
            pc: 0x10000,
            class: inst.class(),
            inst,
            mem_addr: None,
            control: Some(ControlFlow {
                taken: true,
                target: 0x20000,
                static_id: 0,
            }),
            heap: Some(ev),
            attack: None,
        }
    }

    #[test]
    fn asan_flags_redzone_and_freed_access() {
        let mut k = KernelSemantics::asan();
        assert!(!k.judge(&heap_call(
            0,
            HeapEvent::Malloc {
                base: 0x1000,
                size: 64
            }
        )));
        assert!(!k.judge(&mem(1, 0x1000)), "in-bounds ok");
        assert!(!k.judge(&mem(2, 0x103F)), "last byte ok");
        assert!(k.judge(&mem(3, 0x1040)), "right red zone");
        assert!(k.judge(&mem(4, 0x1000 - 8)), "left red zone");
        assert!(!k.judge(&heap_call(
            5,
            HeapEvent::Free {
                base: 0x1000,
                size: 64
            }
        )));
        assert!(k.judge(&mem(6, 0x1010)), "freed region poisoned");
    }

    #[test]
    fn uaf_flags_only_freed_access() {
        let mut k = KernelSemantics::uaf();
        k.judge(&heap_call(
            0,
            HeapEvent::Malloc {
                base: 0x2000,
                size: 128,
            },
        ));
        assert!(!k.judge(&mem(1, 0x2000 + 130)), "OOB is not UaF's business");
        k.judge(&heap_call(
            2,
            HeapEvent::Free {
                base: 0x2000,
                size: 128,
            },
        ));
        assert!(k.judge(&mem(3, 0x2040)), "quarantined access flagged");
    }

    #[test]
    fn shadow_stack_flags_hijack_only() {
        let mut k = KernelSemantics::shadow_stack();
        let call = |seq, pc| {
            let inst = Instruction::call(64);
            TraceInst {
                seq,
                pc,
                class: inst.class(),
                inst,
                mem_addr: None,
                control: Some(ControlFlow {
                    taken: true,
                    target: 0x40000,
                    static_id: 0,
                }),
                heap: None,
                attack: None,
            }
        };
        let ret = |seq, target| {
            let inst = Instruction::ret();
            TraceInst {
                seq,
                pc: 0x40004,
                class: inst.class(),
                inst,
                mem_addr: None,
                control: Some(ControlFlow {
                    taken: true,
                    target,
                    static_id: 0,
                }),
                heap: None,
                attack: None,
            }
        };
        assert!(!k.judge(&call(0, 0x1000)));
        assert!(!k.judge(&ret(1, 0x1004)), "honest return");
        assert!(!k.judge(&call(2, 0x2000)));
        assert!(k.judge(&ret(3, 0xDEAD)), "hijacked return");
    }

    #[test]
    fn pmc_flags_protected_region() {
        let mut k = KernelSemantics::pmc();
        assert!(!k.judge(&mem(0, 0x5000_0000)));
        assert!(k.judge(&mem(1, gen::PMC_REGION_BASE + 16)));
        assert!(!k.judge(&mem(2, gen::PMC_REGION_BASE + gen::PMC_REGION_SIZE)));
    }

    #[test]
    fn verdicts_match_injected_ground_truth_end_to_end() {
        // Run all four kernels over an attacked dedup trace: every injected
        // attack must be judged a violation by the responsible kernel, and
        // natural instructions must never be flagged by SS/PMC (ASan/UaF
        // naturals are exact too, by generator construction).
        let plan = AttackPlan::campaign(
            &[
                AttackKind::RetHijack,
                AttackKind::OutOfBounds,
                AttackKind::UseAfterFree,
                AttackKind::BoundsViolation,
            ],
            40,
            50_000,
            250_000,
            7,
        );
        let g = TraceGenerator::new(WorkloadProfile::parsec("dedup").unwrap(), 11);
        let mut trace = AttackingTrace::new(g, plan);
        let mut pmc = KernelSemantics::pmc();
        let mut ss = KernelSemantics::shadow_stack();
        let mut asan = KernelSemantics::asan();
        let mut uaf = KernelSemantics::uaf();
        let mut detected = 0;
        let mut materialised = 0;
        for t in trace.by_ref().take(400_000) {
            let v_pmc = pmc.judge(&t);
            let v_ss = ss.judge(&t);
            let v_asan = asan.judge(&t);
            let v_uaf = uaf.judge(&t);
            if t.attack.is_some() {
                materialised += 1;
            }
            match t.attack {
                Some(AttackKind::RetHijack) => {
                    assert!(v_ss, "hijack at seq {}", t.seq);
                    detected += 1;
                }
                Some(AttackKind::OutOfBounds) => {
                    assert!(v_asan, "OOB at seq {}", t.seq);
                    detected += 1;
                }
                Some(AttackKind::UseAfterFree) => {
                    assert!(v_uaf && v_asan, "UaF at seq {}", t.seq);
                    detected += 1;
                }
                Some(AttackKind::BoundsViolation) => {
                    assert!(v_pmc, "bounds at seq {}", t.seq);
                    detected += 1;
                }
                None => {
                    assert!(!v_ss, "no natural SS violation at {}", t.seq);
                    assert!(!v_pmc, "no natural PMC violation at {}", t.seq);
                    assert!(!v_asan, "no natural ASan violation at {}", t.seq);
                    assert!(!v_uaf, "no natural UaF violation at {}", t.seq);
                }
            }
        }
        assert!(
            materialised >= 35,
            "most attacks materialised: {materialised}/40"
        );
        assert_eq!(
            detected, materialised,
            "every materialised attack was judged a violation"
        );
    }
}
