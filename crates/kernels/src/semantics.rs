//! Commit-order kernel semantics (the exact, golden side of each kernel).
//!
//! [`Semantics::judge`] is called once per committed, subscribed
//! instruction, in program order. It updates kernel state (allocations,
//! quarantine, shadow stack, counters, taint, memory tags) and returns
//! whether this instruction violates the kernel's policy — the verdict bit
//! the µ-programs later branch on.
//!
//! Each registered kernel ships its own state machine in its plugin module
//! (see [`crate::plugins`]); this module holds the trait they implement
//! plus the region-tracking helpers the heap-watching kernels share.

use fireguard_trace::TraceInst;
use std::collections::BTreeMap;

/// A commit-order kernel state machine.
///
/// Obtained fresh from [`crate::KernelSpec::semantics`]; the SoC frontend
/// owns one per deployed kernel and judges every committing instruction
/// through it. Implementations must be **pure functions of the event
/// stream**: no wall-clock, no OS randomness — the determinism contract
/// every golden test and `.fgt` replay is built on.
pub trait Semantics: std::fmt::Debug {
    /// Judges one committed instruction in program order; returns `true`
    /// when it violates this kernel's policy.
    fn judge(&mut self, t: &TraceInst) -> bool;
}

/// Widens a `[lo, hi)` tracking bound to cover `[base - slack,
/// base + size + slack)`.
pub(crate) fn widen(bounds: &mut (u64, u64), base: u64, size: u64, slack: u64) {
    bounds.0 = bounds.0.min(base.saturating_sub(slack));
    bounds.1 = bounds
        .1
        .max(base.saturating_add(size).saturating_add(slack));
}

/// True when `addr` falls inside a `[base, base + size + slack)` region of
/// the map (keyed by base, valued by size).
pub(crate) fn region_contains(map: &BTreeMap<u64, u64>, addr: u64, slack: u64) -> bool {
    match map.range(..=addr).next_back() {
        Some((&base, &size)) => addr < base + size + slack,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::KernelId;
    use fireguard_trace::{
        AttackKind, AttackPlan, AttackingTrace, TraceGenerator, WorkloadProfile,
    };

    #[test]
    fn verdicts_match_injected_ground_truth_end_to_end() {
        // Run all four paper kernels over an attacked dedup trace: every
        // injected attack must be judged a violation by the responsible
        // kernel, and natural instructions must never be flagged by SS/PMC
        // (ASan/UaF naturals are exact too, by generator construction).
        let plan = AttackPlan::campaign(
            &[
                AttackKind::RetHijack,
                AttackKind::OutOfBounds,
                AttackKind::UseAfterFree,
                AttackKind::BoundsViolation,
            ],
            40,
            50_000,
            250_000,
            7,
        );
        let g = TraceGenerator::new(WorkloadProfile::parsec("dedup").unwrap(), 11);
        let mut trace = AttackingTrace::new(g, plan);
        let mut pmc = KernelId::PMC.semantics();
        let mut ss = KernelId::SHADOW_STACK.semantics();
        let mut asan = KernelId::ASAN.semantics();
        let mut uaf = KernelId::UAF.semantics();
        let mut detected = 0;
        let mut materialised = 0;
        for t in trace.by_ref().take(400_000) {
            let v_pmc = pmc.judge(&t);
            let v_ss = ss.judge(&t);
            let v_asan = asan.judge(&t);
            let v_uaf = uaf.judge(&t);
            if t.attack.is_some() {
                materialised += 1;
            }
            match t.attack {
                Some(AttackKind::RetHijack) => {
                    assert!(v_ss, "hijack at seq {}", t.seq);
                    detected += 1;
                }
                Some(AttackKind::OutOfBounds) => {
                    assert!(v_asan, "OOB at seq {}", t.seq);
                    detected += 1;
                }
                Some(AttackKind::UseAfterFree) => {
                    assert!(v_uaf && v_asan, "UaF at seq {}", t.seq);
                    detected += 1;
                }
                Some(AttackKind::BoundsViolation) => {
                    assert!(v_pmc, "bounds at seq {}", t.seq);
                    detected += 1;
                }
                None => {
                    assert!(!v_ss, "no natural SS violation at {}", t.seq);
                    assert!(!v_pmc, "no natural PMC violation at {}", t.seq);
                    assert!(!v_asan, "no natural ASan violation at {}", t.seq);
                    assert!(!v_uaf, "no natural UaF violation at {}", t.seq);
                }
            }
        }
        assert!(
            materialised >= 35,
            "most attacks materialised: {materialised}/40"
        );
        assert_eq!(
            detected, materialised,
            "every materialised attack was judged a violation"
        );
    }

    #[test]
    fn new_kernels_are_silent_on_natural_traces() {
        // The DIFT and MTE state machines derive everything from the
        // existing deterministic trace events; a natural stream must never
        // introduce taint or a tag mismatch.
        let g = TraceGenerator::new(WorkloadProfile::parsec("dedup").unwrap(), 11);
        let mut taint = KernelId::TAINT.semantics();
        let mut mte = KernelId::MTE.semantics();
        for t in g.take(300_000) {
            assert!(!taint.judge(&t), "natural taint violation at seq {}", t.seq);
            assert!(!mte.judge(&t), "natural tag mismatch at seq {}", t.seq);
        }
    }
}
