//! Shadow-stack plugin (paper kernel, wire id 1).
//!
//! Calls push `pc+4`, returns must match — return-address hijacks are
//! violations. Message locality matters for the stack slots, so this
//! kernel runs its Scheduling Engine in block mode.

use crate::kernel::{ProgrammingModel, SharedTiming, CHECK_CLASS_SHIFT, OP_SS_STEP, SSTACK_BASE};
use crate::programs::{self, ProgramShape, SlowPath};
use crate::semantics::Semantics;
use crate::spec::{ctrl_subscriptions, KernelId, KernelSpec};
use fireguard_core::{groups, DpSel, Gid, Policy};
use fireguard_isa::InstClass;
use fireguard_trace::{AttackKind, TraceInst};
use fireguard_ucore::backend::CustomResult;
use fireguard_ucore::{KernelBackend, SparseMem, UProgram};
use std::cell::RefCell;
use std::rc::Rc;

/// The shadow-stack kernel spec.
pub struct ShadowStack;

impl KernelSpec for ShadowStack {
    fn id(&self) -> KernelId {
        KernelId::SHADOW_STACK
    }

    fn name(&self) -> &'static str {
        "Shadow"
    }

    fn cli_names(&self) -> &'static [&'static str] {
        &["shadow-stack", "shadowstack", "ss", "shadow"]
    }

    fn summary(&self) -> &'static str {
        "shadow stack (return-address hijack detection)"
    }

    fn gids(&self) -> Vec<Gid> {
        vec![groups::CTRL]
    }

    fn subscriptions(&self) -> Vec<(InstClass, Gid, DpSel)> {
        ctrl_subscriptions(groups::CTRL)
    }

    fn policy(&self) -> Policy {
        // Message locality matters for the shadow stack: block mode.
        Policy::Block
    }

    fn detects(&self) -> &'static [AttackKind] {
        &[AttackKind::RetHijack]
    }

    fn semantics(&self) -> Box<dyn Semantics> {
        Box::new(ShadowStackSemantics { stack: Vec::new() })
    }

    fn program(&self, model: ProgrammingModel) -> UProgram {
        programs::build(
            ProgramShape {
                fast_op: OP_SS_STEP,
                slow: SlowPath::Alarm(2),
            },
            model,
        )
    }

    fn backend(&self, vbit: usize, shared: Rc<RefCell<SharedTiming>>) -> Box<dyn KernelBackend> {
        Box::new(ShadowStackBackend {
            vbit,
            shared,
            mem: SparseMem::new(),
        })
    }
}

/// Commit-order shadow-stack state: the golden stack itself.
#[derive(Debug)]
struct ShadowStackSemantics {
    stack: Vec<u64>,
}

impl Semantics for ShadowStackSemantics {
    fn judge(&mut self, t: &TraceInst) -> bool {
        match t.class {
            InstClass::Call => {
                if self.stack.len() < 1 << 16 {
                    self.stack.push(t.pc + 4);
                }
                false
            }
            InstClass::Ret => {
                let expected = self.stack.pop();
                let actual = t.control.map(|c| c.target);
                expected.is_some() && actual.is_some() && expected != actual
            }
            _ => false,
        }
    }
}

/// Per-engine shadow-stack backend: push/pop against real stack slots.
#[derive(Debug)]
struct ShadowStackBackend {
    vbit: usize,
    shared: Rc<RefCell<SharedTiming>>,
    mem: SparseMem,
}

impl KernelBackend for ShadowStackBackend {
    fn mem_read(&mut self, addr: u64) -> u64 {
        self.mem.mem_read(addr)
    }

    fn mem_write(&mut self, addr: u64, value: u64) {
        self.mem.mem_write(addr, value);
    }

    fn custom(&mut self, op: u8, _a: u64, b: u64) -> CustomResult {
        // `b` carries packet bits [127:VERDICT]: verdict byte in [7:0],
        // class at CHECK_CLASS_SHIFT, flags at CHECK_FLAGS_SHIFT.
        let verdict = (b >> self.vbit) & 1;
        match op {
            OP_SS_STEP => {
                let class = (b >> CHECK_CLASS_SHIFT) & 0xF;
                const CALL: u64 = 10;
                const RET: u64 = 11;
                let mut sh = self.shared.borrow_mut();
                match class {
                    CALL => {
                        sh.ss_depth += 1;
                        let d = sh.ss_depth.max(0) as u64;
                        CustomResult {
                            value: 0,
                            extra_cycles: 0,
                            mem_touch: Some(SSTACK_BASE + (d & 0xFFFF) * 8),
                            touch_blind: true, // the push is a blind store
                        }
                    }
                    RET => {
                        let d = sh.ss_depth.max(0) as u64;
                        sh.ss_depth -= 1;
                        CustomResult {
                            value: verdict,
                            extra_cycles: 0,
                            mem_touch: Some(SSTACK_BASE + (d & 0xFFFF) * 8),
                            touch_blind: false, // the pop+compare gates
                        }
                    }
                    _ => CustomResult {
                        value: 0,
                        extra_cycles: 0,
                        mem_touch: None,
                        touch_blind: true,
                    },
                }
            }
            _ => CustomResult::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireguard_isa::Instruction;
    use fireguard_trace::ControlFlow;

    #[test]
    fn shadow_stack_flags_hijack_only() {
        let mut k = ShadowStack.semantics();
        let call = |seq, pc| {
            let inst = Instruction::call(64);
            TraceInst {
                seq,
                pc,
                class: inst.class(),
                inst,
                mem_addr: None,
                control: Some(ControlFlow {
                    taken: true,
                    target: 0x40000,
                    static_id: 0,
                }),
                heap: None,
                attack: None,
            }
        };
        let ret = |seq, target| {
            let inst = Instruction::ret();
            TraceInst {
                seq,
                pc: 0x40004,
                class: inst.class(),
                inst,
                mem_addr: None,
                control: Some(ControlFlow {
                    taken: true,
                    target,
                    static_id: 0,
                }),
                heap: None,
                attack: None,
            }
        };
        assert!(!k.judge(&call(0, 0x1000)));
        assert!(!k.judge(&ret(1, 0x1004)), "honest return");
        assert!(!k.judge(&call(2, 0x2000)));
        assert!(k.judge(&ret(3, 0xDEAD)), "hijacked return");
    }

    #[test]
    fn ss_step_tracks_depth_and_flags_on_ret_verdict() {
        let shared = Rc::new(RefCell::new(SharedTiming::default()));
        let mut be = ShadowStack.backend(1, Rc::clone(&shared));
        // class nibble: Call=10, Ret=11 (InstClass dense indices).
        let call_b = 10 << CHECK_CLASS_SHIFT;
        let ret_bad = (11 << CHECK_CLASS_SHIFT) | 0b0010; // verdict bit 1 set
        let r = be.custom(OP_SS_STEP, 0x4000, call_b);
        assert_eq!(r.value, 0);
        assert!(r.mem_touch.is_some());
        let r = be.custom(OP_SS_STEP, 0xDEAD, ret_bad);
        assert_eq!(r.value, 1, "hijack verdict surfaces on the ret");
        assert_eq!(shared.borrow().ss_depth, 0);
    }

    #[test]
    fn non_call_ret_ss_step_is_cheap_noop() {
        let mut be = ShadowStack.backend(1, Rc::new(RefCell::new(SharedTiming::default())));
        let jump_b = 8 << CHECK_CLASS_SHIFT; // Jump class
        let r = be.custom(OP_SS_STEP, 0x1000, jump_b);
        assert_eq!(r.value, 0);
        assert_eq!(r.mem_touch, None);
    }
}
