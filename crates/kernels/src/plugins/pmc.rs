//! PMC plugin: custom performance counter with bounds check (paper
//! kernel, wire id 0).
//!
//! Counts per-class events and flags any access inside the protected
//! region — the paper's programmable-counter guardian.

use crate::kernel::{ProgrammingModel, SharedTiming, CHECK_CLASS_SHIFT, COUNTER_BASE, OP_PMC_STEP};
use crate::programs::{self, ProgramShape, SlowPath};
use crate::semantics::Semantics;
use crate::spec::{mem_subscriptions, KernelId, KernelSpec};
use fireguard_core::{groups, DpSel, Gid};
use fireguard_isa::InstClass;
use fireguard_trace::{gen, AttackKind, TraceInst};
use fireguard_ucore::backend::CustomResult;
use fireguard_ucore::{KernelBackend, SparseMem, UProgram};
use std::cell::RefCell;
use std::rc::Rc;

/// The PMC kernel spec.
pub struct Pmc;

impl KernelSpec for Pmc {
    fn id(&self) -> KernelId {
        KernelId::PMC
    }

    fn name(&self) -> &'static str {
        "PMC"
    }

    fn cli_names(&self) -> &'static [&'static str] {
        &["pmc"]
    }

    fn summary(&self) -> &'static str {
        "custom performance counter with bounds check"
    }

    fn gids(&self) -> Vec<Gid> {
        // The PMC counts and bounds-checks memory events: one group keeps
        // its packet volume at the paper's design point.
        vec![groups::MEM]
    }

    fn subscriptions(&self) -> Vec<(InstClass, Gid, DpSel)> {
        mem_subscriptions(groups::MEM)
    }

    fn detects(&self) -> &'static [AttackKind] {
        &[AttackKind::BoundsViolation]
    }

    fn semantics(&self) -> Box<dyn Semantics> {
        Box::new(PmcSemantics {
            counts: [0; InstClass::COUNT],
            region: (gen::PMC_REGION_BASE, gen::PMC_REGION_SIZE),
        })
    }

    fn program(&self, model: ProgrammingModel) -> UProgram {
        programs::build(
            ProgramShape {
                fast_op: OP_PMC_STEP,
                slow: SlowPath::Alarm(0),
            },
            model,
        )
    }

    fn backend(&self, vbit: usize, _shared: Rc<RefCell<SharedTiming>>) -> Box<dyn KernelBackend> {
        Box::new(PmcBackend {
            vbit,
            mem: SparseMem::new(),
        })
    }
}

/// Commit-order PMC state: per-class counters + the protected region.
#[derive(Debug)]
struct PmcSemantics {
    counts: [u64; InstClass::COUNT],
    region: (u64, u64),
}

impl Semantics for PmcSemantics {
    fn judge(&mut self, t: &TraceInst) -> bool {
        self.counts[t.class.index()] += 1;
        match t.mem_addr {
            Some(a) => a >= self.region.0 && a < self.region.0 + self.region.1,
            None => false,
        }
    }
}

/// Per-engine PMC backend: counter bumps against a tiny, always-hot line.
#[derive(Debug)]
struct PmcBackend {
    vbit: usize,
    mem: SparseMem,
}

impl KernelBackend for PmcBackend {
    fn mem_read(&mut self, addr: u64) -> u64 {
        self.mem.mem_read(addr)
    }

    fn mem_write(&mut self, addr: u64, value: u64) {
        self.mem.mem_write(addr, value);
    }

    fn custom(&mut self, op: u8, _a: u64, b: u64) -> CustomResult {
        // `b` carries packet bits [127:VERDICT]: verdict byte in [7:0],
        // class at CHECK_CLASS_SHIFT, flags at CHECK_FLAGS_SHIFT.
        match op {
            OP_PMC_STEP => CustomResult {
                value: (b >> self.vbit) & 1,
                extra_cycles: 0,
                // Per-class counter line, indexed by the class nibble.
                mem_touch: Some(COUNTER_BASE + ((b >> CHECK_CLASS_SHIFT) & 0xF) * 8),
                touch_blind: true, // counter bumps are blind updates
            },
            _ => CustomResult::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireguard_isa::{Instruction, MemWidth};

    fn mem(seq: u64, addr: u64) -> TraceInst {
        let inst = Instruction::load(MemWidth::D, 1.into(), 2.into(), 0);
        TraceInst {
            seq,
            pc: 0x10000,
            class: inst.class(),
            inst,
            mem_addr: Some(addr),
            control: None,
            heap: None,
            attack: None,
        }
    }

    #[test]
    fn pmc_flags_protected_region() {
        let mut k = Pmc.semantics();
        assert!(!k.judge(&mem(0, 0x5000_0000)));
        assert!(k.judge(&mem(1, gen::PMC_REGION_BASE + 16)));
        assert!(!k.judge(&mem(2, gen::PMC_REGION_BASE + gen::PMC_REGION_SIZE)));
    }

    #[test]
    fn pmc_step_returns_this_kernels_verdict_bit() {
        let mut be = Pmc.backend(1, Rc::new(RefCell::new(SharedTiming::default())));
        let r = be.custom(OP_PMC_STEP, 0, 0b0010 | (4 << CHECK_CLASS_SHIFT));
        assert_eq!(r.value, 1);
        assert_eq!(r.mem_touch, Some(COUNTER_BASE + 4 * 8));
        let r = be.custom(OP_PMC_STEP, 0, 0b0001);
        assert_eq!(r.value, 0);
    }
}
