//! The registered guardian-kernel plugins, one self-contained module per
//! analysis.
//!
//! Each module holds everything its kernel needs: the [`crate::KernelSpec`]
//! unit struct, the commit-order [`crate::Semantics`] state machine, the
//! per-engine [`fireguard_ucore::KernelBackend`], and the choice of
//! µ-program shape. Adding an analysis = adding one file here + one line
//! in [`crate::spec::registry`]; see `ARCHITECTURE.md` for the checklist.

pub mod asan;
pub mod mte;
pub mod pmc;
pub mod shadow_stack;
pub mod taint;
pub mod uaf;
