//! Use-after-free plugin (MineSweeper-style; paper kernel, wire id 3).
//!
//! Freed regions are quarantined; accesses into quarantine are
//! violations; periodic sweeps release quarantine, costing µcore work
//! that does not parallelise away.

use crate::kernel::{
    heap_flag_short_circuit, ProgrammingModel, SharedTiming, OP_CHECK, OP_HEAP, QTABLE_BASE,
    SHADOW_BASE,
};
use crate::programs::{self, ProgramShape, SlowPath};
use crate::semantics::{region_contains, widen, Semantics};
use crate::spec::{mem_and_ctrl_subscriptions, KernelId, KernelSpec};
use fireguard_core::{groups, DpSel, Gid};
use fireguard_isa::InstClass;
use fireguard_trace::{AttackKind, HeapEvent, TraceInst};
use fireguard_ucore::backend::CustomResult;
use fireguard_ucore::{KernelBackend, SparseMem, UProgram};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Quarantine capacity before MineSweeper-style sweeps release regions.
const QUARANTINE_CAP: usize = 4096;

/// The use-after-free kernel spec.
pub struct Uaf;

impl KernelSpec for Uaf {
    fn id(&self) -> KernelId {
        KernelId::UAF
    }

    fn name(&self) -> &'static str {
        "UaF"
    }

    fn cli_names(&self) -> &'static [&'static str] {
        &["uaf", "use-after-free"]
    }

    fn summary(&self) -> &'static str {
        "use-after-free detection (MineSweeper-style quarantine)"
    }

    fn gids(&self) -> Vec<Gid> {
        vec![groups::MEM, groups::CTRL]
    }

    fn subscriptions(&self) -> Vec<(InstClass, Gid, DpSel)> {
        mem_and_ctrl_subscriptions()
    }

    fn detects(&self) -> &'static [AttackKind] {
        &[AttackKind::UseAfterFree]
    }

    fn semantics(&self) -> Box<dyn Semantics> {
        Box::new(UafSemantics {
            quarantine: BTreeMap::new(),
            bounds: (u64::MAX, 0),
            frees_since_sweep: 0,
            sweeps: 0,
        })
    }

    fn program(&self, model: ProgrammingModel) -> UProgram {
        programs::build(
            ProgramShape {
                fast_op: OP_CHECK,
                slow: SlowPath::HeapAware {
                    alarm: 1,
                    heap_op: OP_HEAP,
                },
            },
            model,
        )
    }

    fn backend(&self, vbit: usize, shared: Rc<RefCell<SharedTiming>>) -> Box<dyn KernelBackend> {
        Box::new(UafBackend {
            vbit,
            shared,
            mem: SparseMem::new(),
        })
    }
}

/// Commit-order UaF state: the quarantine region map.
#[derive(Debug)]
struct UafSemantics {
    /// Quarantined regions: base → size.
    quarantine: BTreeMap<u64, u64>,
    /// `[lo, hi)` bound over every region ever quarantined (never
    /// shrinks); see the identical fast path in the ASan plugin.
    bounds: (u64, u64),
    /// Frees since the last sweep.
    frees_since_sweep: u64,
    /// Total sweeps performed.
    sweeps: u64,
}

impl Semantics for UafSemantics {
    fn judge(&mut self, t: &TraceInst) -> bool {
        match t.heap {
            Some(HeapEvent::Free { base, size }) => {
                self.quarantine.insert(base, size);
                widen(&mut self.bounds, base, size, 0);
                self.frees_since_sweep += 1;
                if self.quarantine.len() > QUARANTINE_CAP {
                    // Sweep: release the oldest half.
                    let release: Vec<u64> = self
                        .quarantine
                        .keys()
                        .take(QUARANTINE_CAP / 2)
                        .copied()
                        .collect();
                    for b in release {
                        self.quarantine.remove(&b);
                    }
                    self.sweeps += 1;
                    self.frees_since_sweep = 0;
                }
                return false;
            }
            Some(HeapEvent::Malloc { base, .. }) => {
                self.quarantine.remove(&base);
                return false;
            }
            None => {}
        }
        match t.mem_addr {
            // Addresses outside every region ever quarantined cannot
            // match; see the ASan plugin's fast path.
            Some(a) if a >= self.bounds.0 && a < self.bounds.1 => {
                region_contains(&self.quarantine, a, 0)
            }
            _ => false,
        }
    }

    fn judge_batch(&mut self, batch: &fireguard_trace::EventBatch, vbit: u8, out: &mut [u8]) {
        crate::semantics::judge_batch_bounded(self, |s| s.bounds, batch, 1 << vbit, out);
    }
}

/// Per-engine UaF backend: quarantine-bucket touches + sweep microloops.
#[derive(Debug)]
struct UafBackend {
    vbit: usize,
    shared: Rc<RefCell<SharedTiming>>,
    mem: SparseMem,
}

impl KernelBackend for UafBackend {
    fn mem_read(&mut self, addr: u64) -> u64 {
        self.mem.mem_read(addr)
    }

    fn mem_write(&mut self, addr: u64, value: u64) {
        self.mem.mem_write(addr, value);
    }

    fn custom(&mut self, op: u8, a: u64, b: u64) -> CustomResult {
        // `b` carries packet bits [127:VERDICT]: verdict byte in [7:0],
        // class at CHECK_CLASS_SHIFT, flags at CHECK_FLAGS_SHIFT.
        let verdict = (b >> self.vbit) & 1;
        match op {
            OP_CHECK => {
                if let Some(r) = heap_flag_short_circuit(b) {
                    return r;
                }
                CustomResult {
                    value: verdict,
                    extra_cycles: 0,
                    // Page-granular quarantine hash buckets.
                    mem_touch: Some(QTABLE_BASE + ((a >> 12) & 0xF_FFFF) * 8),
                    touch_blind: false,
                }
            }
            OP_HEAP => {
                // a = region base, b = size (from the AUX field here).
                let size = b & fireguard_core::packet::layout::AUX_MASK;
                let mut sh = self.shared.borrow_mut();
                let mut extra = 4 + size / 256;
                sh.frees += 1;
                sh.quarantine_len += 1;
                // MineSweeper sweep: every 64th free walks a chunk of
                // the quarantine — work that does not parallelise away.
                if sh.frees % 64 == 0 {
                    extra += (sh.quarantine_len / 4).min(512) + 64;
                    sh.quarantine_len = sh.quarantine_len.saturating_sub(sh.quarantine_len / 2);
                    sh.sweeps_charged += 1;
                }
                CustomResult {
                    value: 0,
                    extra_cycles: extra,
                    mem_touch: Some(SHADOW_BASE + (a >> 3)),
                    touch_blind: true, // poison writes are fire-and-forget
                }
            }
            _ => CustomResult::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fireguard_isa::{Instruction, MemWidth};
    use fireguard_trace::ControlFlow;

    fn mem(seq: u64, addr: u64) -> TraceInst {
        let inst = Instruction::load(MemWidth::D, 1.into(), 2.into(), 0);
        TraceInst {
            seq,
            pc: 0x10000,
            class: inst.class(),
            inst,
            mem_addr: Some(addr),
            control: None,
            heap: None,
            attack: None,
        }
    }

    fn heap_call(seq: u64, ev: HeapEvent) -> TraceInst {
        let inst = Instruction::call(64);
        TraceInst {
            seq,
            pc: 0x10000,
            class: inst.class(),
            inst,
            mem_addr: None,
            control: Some(ControlFlow {
                taken: true,
                target: 0x20000,
                static_id: 0,
            }),
            heap: Some(ev),
            attack: None,
        }
    }

    #[test]
    fn uaf_flags_only_freed_access() {
        let mut k = Uaf.semantics();
        k.judge(&heap_call(
            0,
            HeapEvent::Malloc {
                base: 0x2000,
                size: 128,
            },
        ));
        assert!(!k.judge(&mem(1, 0x2000 + 130)), "OOB is not UaF's business");
        k.judge(&heap_call(
            2,
            HeapEvent::Free {
                base: 0x2000,
                size: 128,
            },
        ));
        assert!(k.judge(&mem(3, 0x2040)), "quarantined access flagged");
    }

    #[test]
    fn uaf_heap_op_charges_sweeps_periodically() {
        let shared = Rc::new(RefCell::new(SharedTiming::default()));
        let mut be = Uaf.backend(3, Rc::clone(&shared));
        let mut max_extra = 0;
        for _ in 0..200 {
            let r = be.custom(OP_HEAP, 0x1000, 512);
            max_extra = max_extra.max(r.extra_cycles);
        }
        assert!(max_extra > 64, "sweeps charge big microloops: {max_extra}");
        assert!(shared.borrow().sweeps_charged >= 3);
    }
}
