//! AddressSanitizer plugin (paper kernel, wire id 2).
//!
//! Red zones around live allocations plus freed regions are poisoned;
//! any access into poison is a violation. The µcore side touches real
//! shadow bytes (one per 8 program bytes), which is where the paper's
//! ASan tail latencies come from.

use crate::kernel::{
    heap_flag_short_circuit, ProgrammingModel, SharedTiming, OP_CHECK, OP_HEAP, SHADOW_BASE,
};
use crate::programs::{self, ProgramShape, SlowPath};
use crate::semantics::{judge_batch_bounded, region_contains, widen, Semantics};
use crate::spec::{mem_and_ctrl_subscriptions, KernelId, KernelSpec};
use fireguard_core::{groups, DpSel, Gid};
use fireguard_isa::InstClass;
use fireguard_trace::{gen, AttackKind, HeapEvent, TraceInst};
use fireguard_ucore::backend::CustomResult;
use fireguard_ucore::{KernelBackend, SparseMem, UProgram};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Red-zone span checked around each allocation (matches the generator).
const REDZONE: u64 = gen::REDZONE_BYTES;

/// The AddressSanitizer kernel spec.
pub struct Asan;

impl KernelSpec for Asan {
    fn id(&self) -> KernelId {
        KernelId::ASAN
    }

    fn name(&self) -> &'static str {
        "Sanitizer"
    }

    fn cli_names(&self) -> &'static [&'static str] {
        &["asan", "sanitizer"]
    }

    fn summary(&self) -> &'static str {
        "AddressSanitizer (red zones + freed-region poisoning)"
    }

    fn gids(&self) -> Vec<Gid> {
        vec![groups::MEM, groups::CTRL]
    }

    fn subscriptions(&self) -> Vec<(InstClass, Gid, DpSel)> {
        mem_and_ctrl_subscriptions()
    }

    fn detects(&self) -> &'static [AttackKind] {
        &[AttackKind::OutOfBounds, AttackKind::UseAfterFree]
    }

    fn semantics(&self) -> Box<dyn Semantics> {
        Box::new(AsanSemantics {
            live: BTreeMap::new(),
            freed: BTreeMap::new(),
            bounds: (u64::MAX, 0),
        })
    }

    fn program(&self, model: ProgrammingModel) -> UProgram {
        programs::build(
            ProgramShape {
                fast_op: OP_CHECK,
                slow: SlowPath::HeapAware {
                    alarm: 1,
                    heap_op: OP_HEAP,
                },
            },
            model,
        )
    }

    fn backend(&self, vbit: usize, _shared: Rc<RefCell<SharedTiming>>) -> Box<dyn KernelBackend> {
        Box::new(AsanBackend {
            vbit,
            mem: SparseMem::new(),
        })
    }
}

/// Commit-order ASan state: live + freed region maps.
#[derive(Debug)]
struct AsanSemantics {
    /// Live allocations: base → size.
    live: BTreeMap<u64, u64>,
    /// Poisoned freed regions: base → size.
    freed: BTreeMap<u64, u64>,
    /// `[lo, hi)` bound over everything ever tracked (red zones
    /// included). Never shrinks, so an address outside it provably
    /// cannot match and the per-access tree walks are skipped — the
    /// overwhelming majority of traffic is stack/global, far from
    /// any heap allocation.
    bounds: (u64, u64),
}

impl Semantics for AsanSemantics {
    fn judge(&mut self, t: &TraceInst) -> bool {
        match t.heap {
            Some(HeapEvent::Malloc { base, size }) => {
                self.live.insert(base, size);
                self.freed.remove(&base);
                widen(&mut self.bounds, base, size, REDZONE);
                return false;
            }
            Some(HeapEvent::Free { base, size }) => {
                self.live.remove(&base);
                self.freed.insert(base, size);
                widen(&mut self.bounds, base, size, REDZONE);
                return false;
            }
            None => {}
        }
        let Some(a) = t.mem_addr else { return false };
        // Outside everything ever allocated (red zones included)
        // nothing can match: skip both tree walks.
        if a < self.bounds.0 || a >= self.bounds.1 {
            return false;
        }
        // In a freed region?
        if region_contains(&self.freed, a, 0) {
            return true;
        }
        // In the red zone of a live allocation?
        if let Some((&base, &size)) = self.live.range(..=a + REDZONE).next_back() {
            let in_left = a >= base.saturating_sub(REDZONE) && a < base;
            let in_right = a >= base + size && a < base + size + REDZONE;
            if in_left || in_right {
                return true;
            }
        }
        false
    }

    fn judge_batch(&mut self, batch: &fireguard_trace::EventBatch, vbit: u8, out: &mut [u8]) {
        judge_batch_bounded(self, |s| s.bounds, batch, 1 << vbit, out);
    }
}

/// Per-engine ASan backend: shadow-byte touches + poison microloops.
#[derive(Debug)]
struct AsanBackend {
    vbit: usize,
    mem: SparseMem,
}

impl KernelBackend for AsanBackend {
    fn mem_read(&mut self, addr: u64) -> u64 {
        self.mem.mem_read(addr)
    }

    fn mem_write(&mut self, addr: u64, value: u64) {
        self.mem.mem_write(addr, value);
    }

    fn custom(&mut self, op: u8, a: u64, b: u64) -> CustomResult {
        // `b` carries packet bits [127:VERDICT]: verdict byte in [7:0],
        // class at CHECK_CLASS_SHIFT, flags at CHECK_FLAGS_SHIFT.
        let verdict = (b >> self.vbit) & 1;
        match op {
            OP_CHECK => {
                // Fused check: heap-flagged packets short-circuit to the
                // slow path (value 2); otherwise the shadow byte is touched
                // and the verdict bit returned.
                if let Some(r) = heap_flag_short_circuit(b) {
                    return r;
                }
                CustomResult {
                    value: verdict,
                    extra_cycles: 0,
                    // ASan shadow: one byte per 8 program bytes.
                    mem_touch: Some(SHADOW_BASE + (a >> 3)),
                    touch_blind: false,
                }
            }
            OP_HEAP => {
                // a = region base, b = size (from the AUX field here).
                let size = b & fireguard_core::packet::layout::AUX_MASK;
                CustomResult {
                    value: 0,
                    extra_cycles: 4 + size / 256,
                    mem_touch: Some(SHADOW_BASE + (a >> 3)),
                    touch_blind: true, // poison writes are fire-and-forget
                }
            }
            _ => CustomResult::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::CHECK_FLAGS_SHIFT;
    use fireguard_isa::{Instruction, MemWidth};
    use fireguard_trace::ControlFlow;

    fn mem(seq: u64, addr: u64) -> TraceInst {
        let inst = Instruction::load(MemWidth::D, 1.into(), 2.into(), 0);
        TraceInst {
            seq,
            pc: 0x10000,
            class: inst.class(),
            inst,
            mem_addr: Some(addr),
            control: None,
            heap: None,
            attack: None,
        }
    }

    fn heap_call(seq: u64, ev: HeapEvent) -> TraceInst {
        let inst = Instruction::call(64);
        TraceInst {
            seq,
            pc: 0x10000,
            class: inst.class(),
            inst,
            mem_addr: None,
            control: Some(ControlFlow {
                taken: true,
                target: 0x20000,
                static_id: 0,
            }),
            heap: Some(ev),
            attack: None,
        }
    }

    #[test]
    fn asan_flags_redzone_and_freed_access() {
        let mut k = Asan.semantics();
        assert!(!k.judge(&heap_call(
            0,
            HeapEvent::Malloc {
                base: 0x1000,
                size: 64
            }
        )));
        assert!(!k.judge(&mem(1, 0x1000)), "in-bounds ok");
        assert!(!k.judge(&mem(2, 0x103F)), "last byte ok");
        assert!(k.judge(&mem(3, 0x1040)), "right red zone");
        assert!(k.judge(&mem(4, 0x1000 - 8)), "left red zone");
        assert!(!k.judge(&heap_call(
            5,
            HeapEvent::Free {
                base: 0x1000,
                size: 64
            }
        )));
        assert!(k.judge(&mem(6, 0x1010)), "freed region poisoned");
    }

    #[test]
    fn check_op_extracts_this_kernels_verdict_bit() {
        let mut be = Asan.backend(2, Rc::new(RefCell::new(SharedTiming::default())));
        // Verdict nibble 0b0100 → bit 2 set.
        let r = be.custom(OP_CHECK, 0x1234, 0b0100);
        assert_eq!(r.value, 1);
        let r = be.custom(OP_CHECK, 0x1234, 0b1011);
        assert_eq!(r.value, 0);
        assert_eq!(r.mem_touch, Some(SHADOW_BASE + (0x1234 >> 3)));
    }

    #[test]
    fn heap_flagged_packets_short_circuit_to_the_slow_path() {
        let mut be = Asan.backend(0, Rc::new(RefCell::new(SharedTiming::default())));
        let r = be.custom(OP_CHECK, 0x1000, 0b01 << CHECK_FLAGS_SHIFT);
        assert_eq!(r.value, 2);
        assert_eq!(r.mem_touch, None);
    }
}
